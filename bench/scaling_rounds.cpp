// Experiment S1 — the theorem's round complexity O(beta * n^rho / rho):
// measured simulated CONGEST rounds vs n at fixed (eps, kappa, rho).
//
// Shape to check: log-log slope of rounds vs n close to (and no more than a
// hair above) rho — i.e. genuinely low-polynomial, in contrast to [Elk05]'s
// n^{1+1/(2kappa)} which has slope > 1.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/elkin_matar.hpp"
#include "util/timer.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double eps = flags.real("eps", 0.25);
  const int kappa = static_cast<int>(flags.integer("kappa", 3));
  const double rho = flags.real("rho", 0.4);
  const auto max_n = static_cast<graph::Vertex>(flags.integer("max_n", 8192));
  const std::string family = flags.str("family", "er");
  const std::string csv_path = flags.str("csv", "");
  // Substrate selection for the engine-backed Algorithm 1 cross-check:
  // --crosscheck re-simulates every phase round-by-round, so large-n runs
  // should pick --substrate parallel (optionally --threads N).
  const bool crosscheck = flags.boolean("crosscheck", false);
  core::BuildOptions build_options{.validate = false};
  build_options.cross_check_alg1 = crosscheck;
  build_options.substrate.substrate =
      congest::parse_substrate(flags.str("substrate", "serial"));
  build_options.substrate.threads =
      static_cast<unsigned>(flags.integer("threads", 0));
  const auto vf = bench::read_verify_flags(flags);
  flags.reject_unknown();

  bench::banner("S1", "round complexity scaling: rounds vs n");
  std::cout << "family=" << family << " eps=" << eps << " kappa=" << kappa
            << " rho=" << rho;
  if (crosscheck) {
    std::cout << " crosscheck="
              << congest::substrate_name(build_options.substrate.substrate);
  }
  std::cout << "\n\n";

  util::CsvWriter csv(csv_path, {"n", "m", "rounds", "bound", "wall_ms"});
  util::Table t({"n", "m", "rounds (simulated)", "beta*n^rho/rho bound",
                 "rounds/n^rho", "slope vs prev", "wall ms"});
  bool verify_failed = false;

  double prev_n = 0, prev_rounds = 0;
  for (graph::Vertex n = 512; n <= max_n; n *= 2) {
    const auto g = graph::make_workload(family, n, 31);
    const auto params = core::Params::practical(g.num_vertices(), eps, kappa, rho);
    util::Timer timer;
    const auto result = core::build_spanner(g, params, build_options);
    const double wall = timer.millis();
    const auto rounds = static_cast<double>(result.ledger.rounds());
    const double bound = params.beta_paper() *
                         std::pow(static_cast<double>(g.num_vertices()), rho) /
                         rho;
    const double slope =
        prev_n > 0 ? bench::loglog_slope(prev_n, prev_rounds,
                                         g.num_vertices(), rounds)
                   : 0.0;
    t.add_row({std::to_string(g.num_vertices()), std::to_string(g.num_edges()),
               util::Table::num(static_cast<std::uint64_t>(rounds)),
               util::Table::sci(bound),
               util::Table::num(rounds / std::pow(g.num_vertices(), rho)),
               prev_n > 0 ? util::Table::num(slope) : "-",
               util::Table::num(wall)});
    csv.row({std::to_string(g.num_vertices()), std::to_string(g.num_edges()),
             util::Table::num(static_cast<std::uint64_t>(rounds)),
             util::Table::sci(bound, 6), util::Table::num(wall, 1)});
    if (!bench::verify_row(g, result.spanner, params.stretch_multiplicative(),
                           params.stretch_additive(), vf)) {
      verify_failed = true;
    }
    prev_n = g.num_vertices();
    prev_rounds = rounds;
  }
  t.print(std::cout);
  std::cout << "\nshape check: the slope column should sit near rho=" << rho
            << " (the schedule's n^rho deg caps and ruling-set n^{1/c} factor\n"
            << "dominate), far below the [Elk05] slope 1+1/(2k)="
            << 1.0 + 1.0 / (2 * kappa) << ".\n";
  return verify_failed ? 1 : 0;
}
