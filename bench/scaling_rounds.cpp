// Experiment S1 — the theorem's round complexity O(beta * n^rho / rho):
// measured simulated CONGEST rounds vs n at fixed (eps, kappa, rho).
//
// Shape to check: log-log slope of rounds vs n close to (and no more than a
// hair above) rho — i.e. genuinely low-polynomial, in contrast to [Elk05]'s
// n^{1+1/(2kappa)} which has slope > 1.
//
// Thin wrapper over the scenario runner: the {n} sweep is a matrix, the
// generate/build/verify loop is run::Runner, and this file only renders the
// shape table against the theoretical bound.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/params.hpp"
#include "run/runner.hpp"
#include "run/sinks.hpp"
#include "util/table.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  run::ScenarioMatrix matrix;
  matrix.seeds = {31};
  const double eps = flags.real("eps", 0.25, "epsilon");
  matrix.epss = {eps};
  const int kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
  matrix.kappas = {kappa};
  const double rho = flags.real("rho", 0.4, "rho");
  matrix.rhos = {rho};
  const auto max_n = static_cast<graph::Vertex>(
      flags.integer("max_n", 8192, "largest n (doubling from 512)"));
  const std::string family = flags.str("family", "er", "workload family");
  matrix.families = {family};
  const std::string csv_path =
      flags.str("csv", "", "unified CSV rows output path");
  const std::string json_path =
      flags.str("json", "", "unified JSON rows output path");
  // Substrate selection for the engine-backed Algorithm 1 cross-check:
  // --crosscheck re-simulates every phase round-by-round, so large-n runs
  // should pick --substrate parallel (optionally --threads N).
  matrix.crosscheck = flags.boolean(
      "crosscheck", false, "re-simulate Algorithm 1 on the round engine");
  matrix.substrate = flags.str("substrate", "serial",
                               "cross-check substrate: serial|parallel|alpha");
  matrix.build_threads = static_cast<unsigned>(
      flags.integer("threads", 0, "parallel-substrate workers, 0 = all"));
  matrix.verify_sources = static_cast<std::uint32_t>(
      flags.integer("verify", 0, "sampled verification sources (0 = off)"));
  matrix.verify_mode = matrix.verify_sources > 0 ? "sampled" : "off";
  matrix.verify_threads = static_cast<unsigned>(
      flags.integer("verify-threads", 0, "verifier shards, 0 = all cores"));
  const auto run_threads = static_cast<unsigned>(
      flags.integer("run-threads", 1, "concurrent scenarios, 0 = all cores"));
  if (flags.handle_help("scaling_rounds — experiment S1: rounds vs n")) {
    return 0;
  }
  flags.reject_unknown();

  matrix.ns.clear();
  for (graph::Vertex n = 512; n <= max_n; n *= 2) matrix.ns.push_back(n);

  bench::banner("S1", "round complexity scaling: rounds vs n");
  std::cout << "family=" << family << " eps=" << eps << " kappa=" << kappa
            << " rho=" << rho;
  if (matrix.crosscheck) std::cout << " crosscheck=" << matrix.substrate;
  std::cout << "\n\n";

  run::Runner runner;
  run::RunOptions run_options;
  run_options.threads = run_threads;
  const auto rows = runner.run(matrix.expand(), run_options);

  util::Table t({"n", "m", "rounds (simulated)", "beta*n^rho/rho bound",
                 "rounds/n^rho", "slope vs prev", "wall ms"});
  bool failed = false;
  double prev_n = 0, prev_rounds = 0;
  for (const auto& row : rows) {
    if (!row.ok) {
      std::cout << row.spec.id() << ": error: " << row.error << "\n";
      failed = true;
      prev_n = 0;  // the next row's slope would span the gap; print "-"
      continue;
    }
    const auto rounds = static_cast<double>(row.rounds);
    const double bound =
        core::Params::practical(row.n, eps, kappa, rho).beta_paper() *
        std::pow(static_cast<double>(row.n), rho) / rho;
    const double slope =
        prev_n > 0 ? bench::loglog_slope(prev_n, prev_rounds, row.n, rounds)
                   : 0.0;
    t.add_row({std::to_string(row.n), std::to_string(row.m),
               util::Table::num(row.rounds), util::Table::sci(bound),
               util::Table::num(rounds / std::pow(row.n, rho)),
               prev_n > 0 ? util::Table::num(slope) : "-",
               util::Table::num(row.build_wall_ms)});
    if (!bench::print_verify_status(row)) failed = true;
    prev_n = row.n;
    prev_rounds = rounds;
  }
  t.print(std::cout);

  if (!csv_path.empty()) run::write_csv(rows, csv_path);
  if (!json_path.empty()) run::write_json(rows, json_path);

  std::cout << "\nshape check: the slope column should sit near rho=" << rho
            << " (the schedule's n^rho deg caps and ruling-set n^{1/c} factor\n"
            << "dominate), far below the [Elk05] slope 1+1/(2k)="
            << 1.0 + 1.0 / (2 * kappa) << ".\n";
  return failed ? 1 : 0;
}
