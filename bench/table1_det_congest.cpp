// Experiment T1 — reproduces the paper's Table 1: the comparison between the
// only previously known deterministic CONGEST algorithm for near-additive
// spanners ([Elk05], superlinear time) and the paper's new algorithm
// (low polynomial time).
//
// Part A regenerates the *bound* comparison that Table 1 states:
//     [Elk05]: stretch (1+ε, β_E), β_E=(κ/ε)^{O(log κ)}·(ρ⁻¹)^{ρ⁻¹},
//              time O(n^{1+1/(2κ)})
//     New:     stretch (1+ε, β),   β = eq. (18),
//              time O(β·n^ρ·ρ⁻¹)
// and shows where the new algorithm's round bound overtakes the superlinear
// one as n grows (the whole point of the paper: n^ρ ≪ n^{1+1/(2κ)}).
//
// Part B adds what Table 1 cannot show on paper: *measured* rows for the new
// algorithm on concrete workloads — simulated CONGEST rounds, spanner size,
// and observed stretch, against the stated bounds.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/elkin_matar.hpp"
#include "verify/stretch.hpp"

using namespace nas;

namespace {

// Table 1 row for [Elk05]: β_E = (κ/ε)^{log κ} · (ρ⁻¹)^{ρ⁻¹} with the O(·)
// constant set to 1 (we only need the shape of the comparison).
double beta_elk05(double eps, int kappa, double rho) {
  return std::pow(kappa / eps, std::log2(static_cast<double>(kappa))) *
         std::pow(1.0 / rho, 1.0 / rho);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  const double eps = flags.real("eps", 1.0, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 4, "kappa"));
  const double rho = flags.real("rho", 0.45, "rho");
  if (flags.handle_help("table1_det_congest — T1: [Elk05] vs the paper")) {
    return 0;
  }
  flags.reject_unknown();

  bench::banner("T1", "Table 1: deterministic CONGEST algorithms compared");

  std::cout << "Part A — bound comparison (eps=" << eps << ", kappa=" << kappa
            << ", rho=" << rho << ")\n";
  const double bE = beta_elk05(eps, kappa, rho);
  const double bNew = core::Params::beta_formula_eq18(eps, kappa, rho);
  std::cout << "  beta_E (Elk05)  = " << util::Table::sci(bE) << "\n";
  std::cout << "  beta   (New)    = " << util::Table::sci(bNew) << "\n\n";

  util::Table ta({"n", "Elk05 rounds ~ n^{1+1/(2k)}", "New rounds ~ beta*n^rho/rho",
                  "ratio Elk05/New", "faster"});
  util::CsvWriter csv(csv_path, {"n", "elk05_rounds", "new_rounds", "ratio"});
  for (double n = 1e3; n <= 1e12; n *= 10) {
    const double elk05 = std::pow(n, 1.0 + 1.0 / (2.0 * kappa));
    const double ours = bNew * std::pow(n, rho) / rho;
    ta.add_row({util::Table::sci(n, 0), util::Table::sci(elk05),
                util::Table::sci(ours), util::Table::num(elk05 / ours),
                elk05 > ours ? "New" : "Elk05"});
    csv.row({util::Table::sci(n, 6), util::Table::sci(elk05, 6),
             util::Table::sci(ours, 6), util::Table::num(elk05 / ours, 6)});
  }
  ta.print(std::cout);
  std::cout << "  -> the deterministic low-polynomial algorithm overtakes the\n"
               "     superlinear [Elk05] bound once n is large enough; the\n"
               "     crossover moves with beta exactly as Table 1 implies.\n\n";

  std::cout << "Part B — measured rows for the New algorithm (practical-mode\n"
               "schedule so the run is feasible at laptop n; same pipeline)\n";
  util::Table tb({"workload", "n", "m", "|H|", "size bound", "rounds",
                  "rounds bound", "max mult", "max add", "bound ok"});
  for (const std::string family : {"er", "grid", "caveman"}) {
    const auto g = graph::make_workload(family, 1024, 7);
    const auto params =
        core::Params::practical(g.num_vertices(), 0.25, kappa, rho);
    const auto result = core::build_spanner(g, params, {.validate = false});
    const auto rep = verify::verify_stretch_sampled(
        g, result.spanner, params.stretch_multiplicative(),
        params.stretch_additive(), 48, 3);
    tb.add_row({family, std::to_string(g.num_vertices()),
                std::to_string(g.num_edges()),
                std::to_string(result.spanner.num_edges()),
                util::Table::sci(params.beta_paper() *
                                 std::pow(g.num_vertices(), 1.0 + 1.0 / kappa)),
                std::to_string(result.ledger.rounds()),
                util::Table::sci(params.beta_paper() *
                                 std::pow(g.num_vertices(), rho) / rho),
                util::Table::num(rep.max_multiplicative),
                std::to_string(rep.max_additive),
                rep.bound_ok ? "yes" : "NO"});
  }
  tb.print(std::cout);
  return 0;
}
