// Experiment S2 — the theorem's size bound O(beta * n^{1+1/kappa}):
// measured spanner size vs n, and vs kappa (sparser for larger kappa).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/elkin_matar.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double eps = flags.real("eps", 0.25);
  const double rho = flags.real("rho", 0.4);
  const auto max_n = static_cast<graph::Vertex>(flags.integer("max_n", 8192));
  const std::string family = flags.str("family", "er_dense");
  const std::string csv_path = flags.str("csv", "");
  // Substrate selection for the engine-backed Algorithm 1 cross-check; see
  // scaling_rounds.cpp.  Large-n cross-checked runs want --substrate parallel.
  core::BuildOptions build_options{.validate = false};
  build_options.cross_check_alg1 = flags.boolean("crosscheck", false);
  build_options.substrate.substrate =
      congest::parse_substrate(flags.str("substrate", "serial"));
  build_options.substrate.threads =
      static_cast<unsigned>(flags.integer("threads", 0));
  const auto vf = bench::read_verify_flags(flags);
  flags.reject_unknown();

  bench::banner("S2", "spanner size scaling: |H| vs n and vs kappa");
  util::CsvWriter csv(csv_path, {"kappa", "n", "m", "edges", "normalized"});
  bool verify_failed = false;

  for (const int kappa : {3, 4, 8}) {
    if (rho < 1.0 / kappa || kappa * rho < 1.0) continue;
    std::cout << "kappa=" << kappa << " (target |H| ~ n^{1+1/kappa} = n^"
              << util::Table::num(1.0 + 1.0 / kappa) << ")\n";
    util::Table t({"n", "m", "|H|", "|H|/n^{1+1/k}", "|H|/|E| %",
                   "slope vs prev"});
    double prev_n = 0, prev_edges = 0;
    for (graph::Vertex n = 512; n <= max_n; n *= 2) {
      const auto g = graph::make_workload(family, n, 37);
      const auto params =
          core::Params::practical(g.num_vertices(), eps, kappa, rho);
      const auto result = core::build_spanner(g, params, build_options);
      const auto edges = static_cast<double>(result.spanner.num_edges());
      const double norm =
          edges / std::pow(static_cast<double>(g.num_vertices()),
                           1.0 + 1.0 / kappa);
      const double slope =
          prev_n > 0 ? bench::loglog_slope(prev_n, prev_edges,
                                           g.num_vertices(), edges)
                     : 0.0;
      t.add_row({std::to_string(g.num_vertices()),
                 std::to_string(g.num_edges()),
                 std::to_string(result.spanner.num_edges()),
                 util::Table::num(norm),
                 util::Table::num(100.0 * edges /
                                  std::max<std::size_t>(g.num_edges(), 1)),
                 prev_n > 0 ? util::Table::num(slope) : "-"});
      csv.row({std::to_string(kappa), std::to_string(g.num_vertices()),
               std::to_string(g.num_edges()),
               std::to_string(result.spanner.num_edges()),
               util::Table::num(norm, 4)});
      if (!bench::verify_row(g, result.spanner,
                             params.stretch_multiplicative(),
                             params.stretch_additive(), vf)) {
        verify_failed = true;
      }
      prev_n = g.num_vertices();
      prev_edges = edges;
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "shape checks: slope stays near (often below) 1+1/kappa and\n"
            << "the normalized column stays O(beta); larger kappa gives\n"
            << "sparser spanners, as the tradeoff requires.\n";
  return verify_failed ? 1 : 0;
}
