// Experiment S2 — the theorem's size bound O(beta * n^{1+1/kappa}):
// measured spanner size vs n, and vs kappa (sparser for larger kappa).
//
// Thin wrapper over the scenario runner: expands {kappa} x {n} into a
// matrix, executes it (optionally across --run-threads workers; the rows
// and sinks are identical at any count), and renders the per-kappa shape
// tables from the unified rows.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "run/runner.hpp"
#include "run/sinks.hpp"
#include "util/table.hpp"

using namespace nas;

namespace {

double normalized_size(const run::ResultRow& row) {
  return static_cast<double>(row.spanner_edges) /
         std::pow(static_cast<double>(row.n), 1.0 + 1.0 / row.spec.kappa);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  run::ScenarioMatrix matrix;
  matrix.seeds = {37};
  matrix.epss = {flags.real("eps", 0.25, "epsilon")};
  const double rho = flags.real("rho", 0.4, "rho");
  matrix.rhos = {rho};
  const auto max_n = static_cast<graph::Vertex>(
      flags.integer("max_n", 8192, "largest n (doubling from 512)"));
  matrix.families = {flags.str("family", "er_dense", "workload family")};
  const std::string csv_path =
      flags.str("csv", "", "unified CSV rows output path");
  const std::string json_path =
      flags.str("json", "", "unified JSON rows output path");
  // Substrate selection for the engine-backed Algorithm 1 cross-check; see
  // scaling_rounds.cpp.  Large-n cross-checked runs want --substrate parallel.
  matrix.substrate = flags.str("substrate", "serial",
                               "cross-check substrate: serial|parallel|alpha");
  matrix.build_threads = static_cast<unsigned>(
      flags.integer("threads", 0, "parallel-substrate workers, 0 = all"));
  matrix.crosscheck = flags.boolean(
      "crosscheck", false, "re-simulate Algorithm 1 on the round engine");
  matrix.verify_sources = static_cast<std::uint32_t>(
      flags.integer("verify", 0, "sampled verification sources (0 = off)"));
  matrix.verify_mode = matrix.verify_sources > 0 ? "sampled" : "off";
  matrix.verify_threads = static_cast<unsigned>(
      flags.integer("verify-threads", 0, "verifier shards, 0 = all cores"));
  const auto run_threads = static_cast<unsigned>(
      flags.integer("run-threads", 1, "concurrent scenarios, 0 = all cores"));
  if (flags.handle_help("scaling_size — experiment S2: |H| vs n and kappa")) {
    return 0;
  }
  flags.reject_unknown();

  matrix.kappas.clear();
  for (const int kappa : {3, 4, 8}) {
    if (rho >= 1.0 / kappa && kappa * rho >= 1.0) matrix.kappas.push_back(kappa);
  }
  matrix.ns.clear();
  for (graph::Vertex n = 512; n <= max_n; n *= 2) matrix.ns.push_back(n);

  bench::banner("S2", "spanner size scaling: |H| vs n and vs kappa");
  run::Runner runner;
  run::RunOptions run_options;
  run_options.threads = run_threads;
  const auto rows = runner.run(matrix.expand(), run_options);

  bool failed = false;
  for (const int kappa : matrix.kappas) {
    std::cout << "kappa=" << kappa << " (target |H| ~ n^{1+1/kappa} = n^"
              << util::Table::num(1.0 + 1.0 / kappa) << ")\n";
    util::Table t({"n", "m", "|H|", "|H|/n^{1+1/k}", "|H|/|E| %",
                   "slope vs prev"});
    double prev_n = 0, prev_edges = 0;
    for (const auto& row : rows) {
      if (row.spec.kappa != kappa) continue;
      if (!row.ok) {
        std::cout << "  " << row.spec.id() << ": error: " << row.error << "\n";
        failed = true;
        prev_n = 0;  // the next row's slope would span the gap; print "-"
        continue;
      }
      const auto edges = static_cast<double>(row.spanner_edges);
      const double slope =
          prev_n > 0 ? bench::loglog_slope(prev_n, prev_edges,
                                           row.n, edges)
                     : 0.0;
      t.add_row({std::to_string(row.n), std::to_string(row.m),
                 std::to_string(row.spanner_edges),
                 util::Table::num(normalized_size(row)),
                 util::Table::num(100.0 * edges /
                                  std::max<std::uint64_t>(row.m, 1)),
                 prev_n > 0 ? util::Table::num(slope) : "-"});
      if (!bench::print_verify_status(row)) failed = true;
      prev_n = row.n;
      prev_edges = edges;
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  run::SinkOptions sink_options;
  sink_options.extra = [](const run::ResultRow& row) {
    // Failed rows have n = 0; 0/0 would render as NaN and corrupt the JSON.
    return util::JsonObject{
        {"normalized",
         row.ok ? util::JsonValue::literal(
                      run::format_real(normalized_size(row), 4))
                : util::JsonValue::literal("null")}};
  };
  if (!csv_path.empty()) run::write_csv(rows, csv_path, sink_options);
  if (!json_path.empty()) run::write_json(rows, json_path, sink_options);

  std::cout << "shape checks: slope stays near (often below) 1+1/kappa and\n"
            << "the normalized column stays O(beta); larger kappa gives\n"
            << "sparser spanners, as the tradeoff requires.\n";
  return failed ? 1 : 0;
}
