// Experiment F5 — regenerates the paper's Figure 5 (interconnection paths)
// as measured statistics: for every phase, how many shortest paths the
// unpopular clusters installed, how long they are (<= delta_i by Theorem
// 2.1), and how the added-edge total compares to the Lemma 2.12 bound
// O(n^{1+1/kappa} * delta_i).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/elkin_matar.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1200, "target vertex count"));
  const double eps = flags.real("eps", 0.25, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
  const double rho = flags.real("rho", 0.4, "rho");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help("figure5_interconnection — F5: interconnection step")) {
    return 0;
  }
  flags.reject_unknown();

  bench::banner("F5", "interconnection step per phase (Figure 5)");

  util::CsvWriter csv(csv_path, {"family", "phase", "u_centers", "paths",
                                 "edges", "max_path", "delta", "lemma212"});

  for (const std::string family : {"er", "grid", "ba"}) {
    const auto g = graph::make_workload(family, n, 19);
    const auto params =
        core::Params::practical(g.num_vertices(), eps, kappa, rho);
    const auto result = core::build_spanner(g, params, {.validate = false});
    std::cout << "workload: " << family << " " << g.summary() << "\n";

    util::Table t({"phase", "|U_i|", "paths installed", "avg paths/center",
                   "edges+", "max path len", "delta_i",
                   "Lemma 2.12 bound n^{1+1/k}*delta"});
    for (const auto& ph : result.trace.phases) {
      const double bound =
          std::pow(static_cast<double>(g.num_vertices()), 1.0 + 1.0 / kappa) *
          static_cast<double>(ph.delta);
      t.add_row(
          {std::to_string(ph.index), std::to_string(ph.num_settled),
           std::to_string(ph.paths_inter),
           ph.num_settled
               ? util::Table::num(static_cast<double>(ph.paths_inter) /
                                  static_cast<double>(ph.num_settled))
               : "-",
           std::to_string(ph.edges_inter), std::to_string(ph.max_inter_path),
           std::to_string(ph.delta), util::Table::sci(bound)});
      csv.row({family, std::to_string(ph.index), std::to_string(ph.num_settled),
               std::to_string(ph.paths_inter), std::to_string(ph.edges_inter),
               std::to_string(ph.max_inter_path), std::to_string(ph.delta),
               util::Table::sci(bound, 6)});
    }
    t.print(std::cout);

    // Shape checks (Figure 5 / Theorem 2.1 / Lemma 2.12).
    bool ok = true;
    for (const auto& ph : result.trace.phases) {
      if (ph.max_inter_path > ph.delta) ok = false;  // paths <= delta_i
      const double bound =
          std::pow(static_cast<double>(g.num_vertices()), 1.0 + 1.0 / kappa) *
          static_cast<double>(ph.delta);
      if (static_cast<double>(ph.edges_inter) > bound) ok = false;
      // Unpopular centers install at most deg_i paths each.
      if (ph.num_settled > 0 && !result.trace.phases[ph.index].domination_ok) {
        ok = false;
      }
      if (ph.num_settled > 0 &&
          ph.paths_inter > ph.num_settled * ph.deg) {
        ok = false;
      }
    }
    std::cout << "  path length <= delta_i, <= deg_i paths per center, and\n"
              << "  Lemma 2.12 edge bound: " << (ok ? "all hold" : "VIOLATED")
              << "\n\n";
    if (!ok) return 1;
  }
  return 0;
}
