// Experiment V1 — verification pipeline scaling: wall-clock of the
// source-sharded stretch verifier vs worker threads on one fixed graph.
//
// The stretch verifier is the dominant cost of every validated run (2n BFS
// passes for the exact oracle), so this bench tracks the speedup of the
// sharded path over the serial baseline and re-checks, at every thread
// count, that the merged StretchReport is bit-identical to the serial one.
// Verification cost is independent of the spanner's content (always two BFS
// per source), so the "identity" algorithm (H = G) keeps the bench about
// verifier throughput only.
//
//   ./verify_scaling [--family er] [--n 50000] [--seed 1]
//       [--sources 0]            # 0 = exact (all n sources), k = sampled
//       [--threads 1,2,4,8]      # comma-separated worker counts; first is
//                                # the speedup baseline
//       [--json BENCH_verify.json]  # unified rows + timing + speedup extras
//       [--csv out.csv]
//
// Thin wrapper over the scenario runner: the thread sweep is a vector of
// specs differing only in verify_threads (the graph is built once through
// the GraphCache), executed sequentially so the wall-clock per row is
// honest; speedup and bit-identity are derived from the rows afterwards.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "run/runner.hpp"
#include "run/sinks.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  run::ScenarioSpec base;
  base.family = flags.str("family", "er", "workload family");
  base.n = static_cast<graph::Vertex>(
      flags.integer("n", 50000, "target vertex count"));
  base.seed = static_cast<std::uint64_t>(
      flags.integer("seed", 1, "graph generator seed"));
  const auto sources = static_cast<std::uint32_t>(flags.integer(
      "sources", 0, "BFS sources: 0 = exact (all n), k = sampled"));
  const std::string thread_spec =
      flags.str("threads", "1,2,4,8",
                "comma-separated verifier worker counts; first = baseline");
  const std::string json_path =
      flags.str("json", "BENCH_verify.json", "perf JSON output path");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help(
          "verify_scaling — experiment V1: verifier wall-clock vs threads")) {
    return 0;
  }
  flags.reject_unknown();

  base.algo = "identity";
  base.verify_mode = sources == 0 ? "exact" : "sampled";
  base.verify_sources = sources;

  std::vector<unsigned> thread_list;
  for (const auto& item : run::split_list(thread_spec)) {
    thread_list.push_back(static_cast<unsigned>(
        util::Flags::parse_integer("threads", item)));
  }
  if (thread_list.empty()) {
    std::cerr << "error: empty --threads list\n";
    return 2;
  }

  bench::banner("V1", "verification pipeline scaling: wall-clock vs threads");
  run::Runner runner;
  const auto g = runner.cache().get(base.family, base.n, base.seed);
  const std::uint32_t num_sources = sources == 0 ? g->num_vertices() : sources;
  std::cout << "family=" << base.family << " " << g->summary()
            << " mode=" << base.verify_mode << " (" << num_sources
            << " BFS sources)\n\n";

  // Resolve each requested count the way the verifier itself will (0 = all
  // cores, clamped to the source count), so the table, efficiency column,
  // and JSON rows record the worker count actually used.
  std::vector<run::ScenarioSpec> specs;
  for (const unsigned threads : thread_list) {
    auto spec = base;
    spec.verify_threads = util::ThreadPool::resolve(threads, num_sources);
    specs.push_back(spec);
  }

  // Sequential execution (runner threads = 1): each row's verify_wall_ms
  // must not share cores with another scenario.
  const auto rows = runner.run(specs);

  util::Table t({"threads", "wall ms", "speedup", "efficiency %", "identical"});
  std::vector<double> speedups;
  std::vector<bool> identicals;
  bool all_ok = true, all_identical = true;
  const double baseline_ms = rows.front().verify_wall_ms;
  for (const auto& row : rows) {
    if (!row.ok) {
      std::cerr << "error: " << row.error << "\n";
      return 2;
    }
    const bool identical =
        verify::bit_identical(row.report, rows.front().report);
    const double speedup =
        row.verify_wall_ms > 0.0 ? baseline_ms / row.verify_wall_ms : 0.0;
    speedups.push_back(speedup);
    identicals.push_back(identical);
    all_identical = all_identical && identical;
    all_ok = all_ok && row.passed();
    t.add_row({std::to_string(row.spec.verify_threads),
               util::Table::num(row.verify_wall_ms, 1),
               util::Table::num(speedup),
               util::Table::num(100.0 * speedup / row.spec.verify_threads),
               identical ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n" << rows.front().report.pairs_checked
            << " pairs checked per run; baseline is the first --threads entry ("
            << rows.front().spec.verify_threads << ").\n";
  if (!all_identical) {
    std::cout << "ERROR: a sharded report diverged from the baseline.\n";
  }

  // Perf-trajectory artifact: unified rows + wall clock + derived columns.
  run::SinkOptions sink_options;
  sink_options.timing = true;
  sink_options.extra = [&](const run::ResultRow& row) {
    return util::JsonObject{
        {"verify_threads",
         util::JsonValue::number(
             static_cast<std::uint64_t>(row.spec.verify_threads))},
        {"speedup", util::JsonValue::literal(
                        run::format_real(speedups[row.index], 4))},
        {"identical_to_baseline",
         util::JsonValue::boolean(identicals[row.index])},
    };
  };
  if (!json_path.empty()) {
    run::write_json(rows, json_path, sink_options);
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  if (!csv_path.empty()) run::write_csv(rows, csv_path, sink_options);

  return all_identical && all_ok ? 0 : 1;
}
