// Experiment V1 — verification pipeline scaling: wall-clock of the
// source-sharded stretch verifier vs worker threads on one fixed graph.
//
// The stretch verifier is the dominant cost of every validated run (2n BFS
// passes for the exact oracle), so this bench tracks the speedup of the
// sharded path over the serial baseline and re-checks, at every thread
// count, that the merged StretchReport is bit-identical to the serial one.
// Verification cost is independent of the spanner's content (always two BFS
// per source), so H = G keeps the bench about verifier throughput only.
//
//   ./verify_scaling [--family er] [--n 50000] [--seed 1]
//       [--sources 0]            # 0 = exact (all n sources), k = sampled
//       [--threads 1,2,4,8]      # comma-separated worker counts; first is
//                                # the speedup baseline
//       [--json BENCH_verify.json]  # machine-readable perf rows
//       [--csv out.csv]
//
// The JSON file holds one row per thread count so the perf trajectory across
// PRs has datapoints: bench/family/n/m/mode/threads/wall_ms/speedup/...
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/stretch.hpp"

using namespace nas;

namespace {

std::vector<unsigned> parse_thread_list(const std::string& spec) {
  std::vector<unsigned> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  if (out.empty()) throw std::invalid_argument("empty --threads list");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string family = flags.str("family", "er");
  const auto n = static_cast<graph::Vertex>(flags.integer("n", 50000));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 1));
  const auto sources = static_cast<std::uint32_t>(flags.integer("sources", 0));
  auto thread_list = parse_thread_list(flags.str("threads", "1,2,4,8"));
  const std::string json_path = flags.str("json", "BENCH_verify.json");
  const std::string csv_path = flags.str("csv", "");
  flags.reject_unknown();

  bench::banner("V1", "verification pipeline scaling: wall-clock vs threads");
  const auto g = graph::make_workload(family, n, seed);
  const std::string mode = sources == 0 ? "exact" : "sampled";
  const std::uint32_t num_sources = sources == 0 ? g.num_vertices() : sources;
  std::cout << "family=" << family << " " << g.summary() << " mode=" << mode
            << " (" << num_sources << " BFS sources)\n\n";
  // Resolve each requested count the way the verifier itself will (0 = all
  // cores, clamped to the source count), so the table, efficiency column,
  // and JSON rows record the worker count actually used.
  for (unsigned& threads : thread_list) {
    threads = util::ThreadPool::resolve(threads, num_sources);
  }

  const auto run_once = [&](unsigned threads) {
    return sources == 0
               ? verify::verify_stretch_exact(g, g, 1.0, 0.0, threads)
               : verify::verify_stretch_sampled(g, g, 1.0, 0.0, sources, 1,
                                                threads);
  };

  util::CsvWriter csv(csv_path, {"threads", "wall_ms", "speedup", "identical"});
  util::Table t({"threads", "wall ms", "speedup", "efficiency %", "identical"});
  struct Row {
    unsigned threads;
    double wall_ms;
    double speedup;
    bool identical;
  };
  std::vector<Row> rows;
  verify::StretchReport reference;
  std::uint64_t pairs = 0;
  bool all_identical = true;
  double baseline_ms = 0.0;
  for (std::size_t i = 0; i < thread_list.size(); ++i) {
    const unsigned threads = thread_list[i];
    util::Timer timer;
    const auto rep = run_once(threads);
    const double wall = timer.millis();
    if (i == 0) {
      reference = rep;
      baseline_ms = wall;
      pairs = rep.pairs_checked;
    }
    const bool identical = verify::bit_identical(rep, reference);
    all_identical = all_identical && identical;
    const double speedup = wall > 0.0 ? baseline_ms / wall : 0.0;
    rows.push_back({threads, wall, speedup, identical});
    t.add_row({std::to_string(threads), util::Table::num(wall, 1),
               util::Table::num(speedup), util::Table::num(100.0 * speedup /
                                                           threads),
               identical ? "yes" : "NO"});
    csv.row({std::to_string(threads), util::Table::num(wall, 3),
             util::Table::num(speedup, 3), identical ? "1" : "0"});
  }
  t.print(std::cout);
  std::cout << "\n" << pairs << " pairs checked per run; baseline is the "
            << "first --threads entry (" << thread_list.front() << ").\n";
  if (!all_identical) {
    std::cout << "ERROR: a sharded report diverged from the baseline.\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "error: cannot open " << json_path << "\n";
      return 2;
    }
    json << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      json << "  {\"bench\": \"verify_scaling\", \"family\": \"" << family
           << "\", \"n\": " << g.num_vertices() << ", \"m\": " << g.num_edges()
           << ", \"mode\": \"" << mode << "\", \"threads\": " << r.threads
           << ", \"wall_ms\": " << util::Table::num(r.wall_ms, 3)
           << ", \"speedup\": " << util::Table::num(r.speedup, 3)
           << ", \"pairs_checked\": " << pairs
           << ", \"identical_to_baseline\": " << (r.identical ? "true" : "false")
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "]\n";
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  return all_identical ? 0 : 1;
}
