// Experiment N1 — served-path latency: replay a query workload against a
// running nas_served over N concurrent connections.
//
// This is the client half of the network serving gate.  It generates the
// same deterministic workload the offline tools use (apps::make_query_workload
// — or replays an explicit --query-file), splits it into contiguous
// per-connection blocks, streams each block as BATCH chunks, and reassembles
// the reply lines back into workload order.  Because the server's answer
// lines are exactly apps::write_answers bytes, the reassembled --answers
// file must cmp equal to `nas_oracle --answers` for the same workload —
// that byte gate, plus the answer digest in the JSON artifact, is what CI
// checks; the latency percentiles are the perf side of the story.
//
//   ./serve_latency --port-file port.txt --workload zipf --queries 16000
//       --connections 4 --batch 64 --answers net_answers.txt
//       --json BENCH_net.json
//
// The vertex universe is discovered from the server's STATS line, so the
// client needs no graph flags at all — point it at a port and go.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "graph/graph.hpp"
#include "net/client.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace nas;

namespace {

/// Pulls one unsigned JSON field out of a flat stats line (the repo's JSON
/// is write-only, so this reader stays deliberately tiny).
[[nodiscard]] std::uint64_t json_field_u64(const std::string& json,
                                           const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) {
    throw std::runtime_error("STATS reply has no \"" + key +
                             "\" field: " + json);
  }
  return std::stoull(json.substr(at + needle.size()));
}

/// Parses the "<u> <v> <d>" answer line back to the distance ("inf" =
/// unreachable) for the digest; the line itself is kept verbatim for the
/// byte-identical answers file.
[[nodiscard]] std::uint32_t parse_answer_distance(const std::string& line) {
  const std::size_t last_space = line.find_last_of(' ');
  if (last_space == std::string::npos || last_space + 1 >= line.size()) {
    throw std::runtime_error("malformed answer line: \"" + line + "\"");
  }
  const std::string d = line.substr(last_space + 1);
  if (d == "inf") return graph::kInfDist;
  return static_cast<std::uint32_t>(std::stoul(d));
}

[[nodiscard]] double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    const std::string host =
        flags.str("host", "127.0.0.1", "server IPv4 address");
    const auto port_flag = flags.integer("port", 0, "server TCP port");
    const std::string port_file = flags.str(
        "port-file", "", "read the port number from this file (nas_served "
                         "--port-file counterpart)");
    const auto connections = static_cast<std::size_t>(
        flags.integer("connections", 4, "concurrent client connections"));
    const auto batch = static_cast<std::uint64_t>(flags.integer(
        "batch", 64, "queries per BATCH request (1 uses single Q lines)"));
    const std::string query_file = flags.str(
        "query-file", "", "replay 'u v' request lines from this file");
    const std::string workload = flags.str(
        "workload", "zipf", "generate requests: uniform|zipf");
    const auto num_queries = static_cast<std::uint64_t>(
        flags.integer("queries", 10000, "generated requests"));
    const auto workload_seed = static_cast<std::uint64_t>(
        flags.integer("workload-seed", 1, "request-generator seed"));
    const double zipf_theta =
        flags.real("zipf-theta", 0.99, "zipf skew exponent");
    const std::string answers_path = flags.str(
        "answers", "", "write the reassembled 'u v d' lines here (workload "
                       "order; cmp-compatible with nas_oracle --answers)");
    const std::string json_path =
        flags.str("json", "BENCH_net.json", "perf JSON output path");
    const std::string metrics_path = flags.str(
        "metrics-json", "",
        "after the replay, send METRICS and write the server's reply line "
        "here (exercises the METRICS verb; CI key-set checks the schema)");
    if (flags.handle_help(
            "serve_latency — experiment N1: replay a workload against "
            "nas_served and measure round-trip latency")) {
      return 0;
    }
    flags.reject_unknown();
    if (connections == 0) {
      throw std::invalid_argument("flag --connections must be >= 1");
    }
    if (batch == 0) throw std::invalid_argument("flag --batch must be >= 1");

    std::uint16_t port = static_cast<std::uint16_t>(port_flag);
    if (!port_file.empty()) {
      std::ifstream in(port_file);
      unsigned long read_port = 0;
      if (!(in >> read_port)) {
        throw std::runtime_error("cannot read a port from " + port_file);
      }
      port = static_cast<std::uint16_t>(read_port);
    }
    if (port == 0) {
      throw std::invalid_argument("pass --port or --port-file");
    }

    // One probe connection discovers the universe (and proves liveness)
    // before any worker starts.
    std::uint64_t universe = 0;
    {
      net::LineClient probe(host, port);
      probe.send("STATS\n");
      const auto stats = probe.recv_line();
      if (!stats.has_value()) {
        throw std::runtime_error("server closed the probe connection");
      }
      universe = json_field_u64(*stats, "universe");
      probe.send("QUIT\n");
      static_cast<void>(probe.recv_line());  // BYE
    }
    if (universe == 0) {
      throw std::runtime_error("server reports an empty vertex universe");
    }

    std::vector<apps::Query> queries;
    if (!query_file.empty()) {
      queries = apps::read_query_file(query_file);
    } else {
      queries = apps::make_query_workload(
          static_cast<graph::Vertex>(universe),
          {workload, num_queries, workload_seed, zipf_theta});
    }
    if (queries.empty()) throw std::runtime_error("no requests to replay");

    std::cout << "serve_latency: " << queries.size() << " requests -> "
              << host << ":" << port << " over " << connections
              << " connections (BATCH " << batch << ", universe " << universe
              << ")\n";

    // Contiguous block split: connection c owns [begin, end) of the
    // workload, so reassembly is a straight copy and the answers file is in
    // workload order regardless of connection interleaving.
    std::vector<std::string> answer_lines(queries.size());
    std::vector<std::vector<double>> rtts(connections);
    std::vector<std::exception_ptr> failures(connections);
    std::vector<std::thread> workers;
    workers.reserve(connections);
    util::Timer wall;
    for (std::size_t c = 0; c < connections; ++c) {
      const std::size_t begin = queries.size() * c / connections;
      const std::size_t end = queries.size() * (c + 1) / connections;
      workers.emplace_back([&, c, begin, end] {
        try {
          net::LineClient client(host, port);
          std::string request;
          for (std::size_t at = begin; at < end;) {
            const std::size_t take =
                std::min<std::size_t>(end - at, static_cast<std::size_t>(batch));
            request.clear();
            if (take == 1 && batch == 1) {
              request = "Q " + std::to_string(queries[at].u) + " " +
                        std::to_string(queries[at].v) + "\n";
            } else {
              request = "BATCH " + std::to_string(take) + "\n";
              for (std::size_t i = 0; i < take; ++i) {
                request += std::to_string(queries[at + i].u);
                request += ' ';
                request += std::to_string(queries[at + i].v);
                request += '\n';
              }
            }
            util::Timer rtt;
            client.send(request);
            auto lines = client.recv_lines(take);
            rtts[c].push_back(rtt.millis());
            for (std::size_t i = 0; i < take; ++i) {
              answer_lines[at + i] = std::move(lines[i]);
            }
            at += take;
          }
          client.send("QUIT\n");
          static_cast<void>(client.recv_line());  // BYE
        } catch (...) {
          failures[c] = std::current_exception();
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const double total_ms = wall.millis();
    for (const auto& failure : failures) {
      if (failure) std::rethrow_exception(failure);
    }

    // Digest over the parsed distances — comparable to the nas_oracle /
    // nas_serve stats digest for the same workload.
    std::vector<std::uint32_t> answers;
    answers.reserve(answer_lines.size());
    for (const auto& line : answer_lines) {
      answers.push_back(parse_answer_distance(line));
    }
    const std::uint64_t digest = apps::digest_answers(answers);

    std::vector<double> all_rtts;
    for (const auto& per_conn : rtts) {
      all_rtts.insert(all_rtts.end(), per_conn.begin(), per_conn.end());
    }
    std::sort(all_rtts.begin(), all_rtts.end());
    const double qps =
        total_ms > 0
            ? static_cast<double>(queries.size()) / (total_ms / 1000.0)
            : 0.0;

    std::cout << "  " << queries.size() << " answers in " << total_ms
              << " ms (" << static_cast<std::uint64_t>(qps) << " q/s), RTT "
              << "p50 " << percentile(all_rtts, 0.50) << " ms, p99 "
              << percentile(all_rtts, 0.99) << " ms, digest " << std::hex
              << digest << std::dec << "\n";

    if (!answers_path.empty()) {
      std::ofstream out(answers_path);
      if (!out) {
        throw std::runtime_error("cannot open answers file " + answers_path);
      }
      for (const auto& line : answer_lines) out << line << "\n";
    }

    if (!metrics_path.empty()) {
      // Post-replay METRICS snapshot over a fresh connection, so the file
      // reflects every batch this run served.
      net::LineClient metrics_client(host, port);
      metrics_client.send("METRICS\n");
      const auto metrics = metrics_client.recv_line();
      if (!metrics.has_value()) {
        throw std::runtime_error("server closed the METRICS connection");
      }
      metrics_client.send("QUIT\n");
      static_cast<void>(metrics_client.recv_line());  // BYE
      std::ofstream out(metrics_path);
      if (!out) {
        throw std::runtime_error("cannot open metrics file " + metrics_path);
      }
      out << *metrics << "\n";
      std::cout << "  wrote metrics to " << metrics_path << "\n";
    }

    if (!json_path.empty()) {
      const auto real = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.4f", v);
        return util::JsonValue::literal(buf);
      };
      const util::JsonObject fields{
          {"bench", util::JsonValue::str("serve_latency")},
          {"connections", util::JsonValue::number(
                              static_cast<std::uint64_t>(connections))},
          {"batch", util::JsonValue::number(batch)},
          {"queries", util::JsonValue::number(
                          static_cast<std::uint64_t>(queries.size()))},
          {"workload", util::JsonValue::str(
                           query_file.empty() ? workload : "file")},
          {"universe", util::JsonValue::number(universe)},
          {"total_ms", real(total_ms)},
          {"qps", real(qps)},
          {"rtt_p50_ms", real(percentile(all_rtts, 0.50))},
          {"rtt_p90_ms", real(percentile(all_rtts, 0.90))},
          {"rtt_p99_ms", real(percentile(all_rtts, 0.99))},
          {"rtt_max_ms",
           real(all_rtts.empty() ? 0.0 : all_rtts.back())},
          {"digest", util::JsonValue::hex64(digest)},
      };
      std::ofstream out(json_path);
      if (!out) {
        throw std::runtime_error("cannot open JSON file " + json_path);
      }
      out << "[" << util::render_json_object(fields) << "]\n";
      std::cout << "  wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve_latency: error: " << e.what() << "\n";
    return 2;
  }
}
