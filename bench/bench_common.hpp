// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace nas::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " — " << what << " ===\n"
            << "    (paper: Elkin & Matar, Near-Additive Spanners In Low\n"
            << "     Polynomial Deterministic CONGEST Time, PODC 2019)\n\n";
}

/// log-log slope between two (x, y) samples; the scaling benches report it
/// against the theoretical exponent.
inline double loglog_slope(double x0, double y0, double x1, double y1) {
  if (x0 <= 0 || x1 <= 0 || y0 <= 0 || y1 <= 0 || x0 == x1) return 0.0;
  return (std::log(y1) - std::log(y0)) / (std::log(x1) - std::log(x0));
}

}  // namespace nas::bench
