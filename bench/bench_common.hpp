// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "verify/stretch.hpp"

namespace nas::bench {

/// Shared --verify / --verify-threads flags of the scaling benches: sampled
/// stretch verification with `sources` BFS sources (0 = off), sharded over
/// `threads` workers (0 = hardware concurrency).
struct VerifyFlags {
  std::uint32_t sources = 0;
  unsigned threads = 0;
};

inline VerifyFlags read_verify_flags(const util::Flags& flags) {
  return {static_cast<std::uint32_t>(flags.integer("verify", 0)),
          static_cast<unsigned>(flags.integer("verify-threads", 0))};
}

/// Verifies one bench row's spanner against the (mult, add) guarantee when
/// enabled; prints a status line and returns false iff the bound is
/// violated (no-op returning true when vf.sources == 0).
inline bool verify_row(const graph::Graph& g, const graph::Graph& h,
                       double mult, double add, const VerifyFlags& vf) {
  if (vf.sources == 0) return true;
  const auto rep = verify::verify_stretch_sampled(g, h, mult, add, vf.sources,
                                                  1, vf.threads);
  std::cout << "  verify n=" << g.num_vertices() << ": " << rep.pairs_checked
            << " pairs, max mult " << util::Table::num(rep.max_multiplicative)
            << " -> " << (rep.bound_ok ? "OK" : "BOUND VIOLATED") << "\n";
  return rep.bound_ok;
}

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " — " << what << " ===\n"
            << "    (paper: Elkin & Matar, Near-Additive Spanners In Low\n"
            << "     Polynomial Deterministic CONGEST Time, PODC 2019)\n\n";
}

/// log-log slope between two (x, y) samples; the scaling benches report it
/// against the theoretical exponent.
inline double loglog_slope(double x0, double y0, double x1, double y1) {
  if (x0 <= 0 || x1 <= 0 || y0 <= 0 || y1 <= 0 || x0 == x1) return 0.0;
  return (std::log(y1) - std::log(y0)) / (std::log(x1) - std::log(x0));
}

}  // namespace nas::bench
