// Shared helpers for the reproduction bench binaries.
//
// Experiment execution (generate/build/measure/verify/emit) lives in
// src/run — benches construct a ScenarioMatrix, call run::Runner, and
// post-process the rows.  What remains here is presentation: the banner and
// the log-log slope the scaling benches report against theory.
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "run/runner.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace nas::bench {

/// Prints the per-row verification status line the scaling benches share;
/// no-op for rows that did not verify.  Returns row.passed().
inline bool print_verify_status(const run::ResultRow& row) {
  if (row.verified) {
    std::cout << "  verify n=" << row.n << ": " << row.report.pairs_checked
              << " pairs, max mult "
              << util::Table::num(row.report.max_multiplicative) << " -> "
              << (row.report.bound_ok ? "OK" : "BOUND VIOLATED") << "\n";
  }
  return row.passed();
}

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " — " << what << " ===\n"
            << "    (paper: Elkin & Matar, Near-Additive Spanners In Low\n"
            << "     Polynomial Deterministic CONGEST Time, PODC 2019)\n\n";
}

/// log-log slope between two (x, y) samples; the scaling benches report it
/// against the theoretical exponent.
inline double loglog_slope(double x0, double y0, double x1, double y1) {
  if (x0 <= 0 || x1 <= 0 || y0 <= 0 || y1 <= 0 || x0 == x1) return 0.0;
  return (std::log(y1) - std::log(y0)) / (std::log(x1) - std::log(x0));
}

}  // namespace nas::bench
