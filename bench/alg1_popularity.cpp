// Experiment A1 — the Theorem 2.1 contract of Algorithm 1 (Appendix A),
// measured: round cost against the deg*delta schedule, knowledge
// completeness of unpopular centers, per-edge layer load against the
// CONGEST window capacity.
#include <iostream>

#include "bench_common.hpp"
#include "core/popular.hpp"
#include "graph/bfs.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1000, "target vertex count"));
  const std::string family = flags.str("family", "er", "workload family");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help("alg1_popularity — A1: Algorithm 1 contract")) return 0;
  flags.reject_unknown();

  bench::banner("A1", "Algorithm 1 (popular cluster detection) contract");
  const auto g = graph::make_workload(family, n, 41);
  std::cout << "workload: " << family << " " << g.summary() << "\n\n";

  std::vector<graph::Vertex> centers;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) centers.push_back(v);

  util::CsvWriter csv(csv_path, {"delta", "cap", "rounds", "schedule",
                                 "messages", "max_edge_layer_load", "popular",
                                 "complete_ok"});
  util::Table t({"delta", "cap", "rounds", "= 1+delta*cap", "messages",
                 "max edge load/layer (<=cap)", "#popular",
                 "unpopular knowledge complete"});

  for (const std::uint64_t delta : {1, 2, 4, 8}) {
    for (const std::uint64_t cap : {2, 8, 32}) {
      const auto res = core::run_algorithm1(g, centers, delta, cap);
      std::uint64_t popular = 0;
      for (graph::Vertex v : centers) popular += res.popular[v];

      // Completeness check for a sample of unpopular centers.
      bool complete = true;
      int checked = 0;
      for (graph::Vertex v = 0; v < g.num_vertices() && checked < 50; v += 7) {
        if (res.popular[v]) continue;
        ++checked;
        const auto bfs = graph::bfs(g, v);
        std::size_t within = 0;
        for (graph::Vertex u : centers) {
          if (u != v && bfs.dist[u] != graph::kInfDist && bfs.dist[u] <= delta) {
            ++within;
          }
        }
        if (res.knowledge[v].size() != within) complete = false;
      }

      t.add_row({std::to_string(delta), std::to_string(cap),
                 std::to_string(res.rounds_charged),
                 std::to_string(1 + delta * cap), std::to_string(res.messages),
                 std::to_string(res.max_edge_layer_load), std::to_string(popular),
                 complete ? "yes" : "NO"});
      csv.row({std::to_string(delta), std::to_string(cap),
               std::to_string(res.rounds_charged),
               std::to_string(1 + delta * cap), std::to_string(res.messages),
               std::to_string(res.max_edge_layer_load), std::to_string(popular),
               complete ? "1" : "0"});
    }
  }
  t.print(std::cout);
  std::cout << "\nshape checks: rounds follow the 1+delta*cap schedule exactly;\n"
            << "per-edge layer load never exceeds cap (CONGEST capacity);\n"
            << "popularity counts grow with delta and shrink with cap.\n";
  return 0;
}
