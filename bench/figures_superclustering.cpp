// Experiment F1-F4 — regenerates the structures the paper's Figures 1-4
// illustrate, as measured per-phase statistics:
//
//   Fig 1: superclusters grown around chosen popular centers
//            -> |P_i|, |W_i| (popular), |RS_i| (chosen), coverage of W_i
//   Fig 2: BFS trees of new superclusters added to H
//            -> edges added by the superclustering step, forest depth
//   Fig 3: disjoint delta-neighborhoods of ruling-set members
//            -> verified (q+1)-separation => disjointness (Theorem 2.2)
//   Fig 4: root-to-center paths added to H
//            -> measured cluster radii vs the Lemma 2.3 bound R_{i+1}
//
// Also checks the cluster-counting Lemmas 2.10/2.11:
//   |P_i| <= n^{1-(2^i-1)/kappa}            (exponential growth stage)
//   |P_i| <= n^{1+1/kappa-(i-i0)rho}        (fixed growth stage)
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/elkin_matar.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1200, "target vertex count"));
  const double eps = flags.real("eps", 0.25, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
  const double rho = flags.real("rho", 0.4, "rho");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help(
          "figures_superclustering — F1-F4: per-phase structure")) {
    return 0;
  }
  flags.reject_unknown();

  bench::banner("F1-F4", "superclustering structure per phase (Figures 1-4)");

  util::CsvWriter csv(csv_path,
                      {"family", "phase", "clusters", "popular", "rulers",
                       "settled", "lemma_bound", "edges_super", "edges_inter",
                       "measured_radius", "radius_bound"});

  bool lemmas_ok = true;
  for (const std::string family : {"er_dense", "caveman", "geometric"}) {
    const auto g = graph::make_workload(family, n, 17);
    const auto params =
        core::Params::practical(g.num_vertices(), eps, kappa, rho);
    std::cout << "workload: " << family << " " << g.summary() << "\n"
              << "schedule: " << params.describe() << "\n";
    const auto result = core::build_spanner(g, params, {.validate = true});

    util::Table t({"phase", "|P_i|", "Lemma 2.10/2.11 bound", "|W_i|",
                   "|RS_i|", "|U_i|", "Fig2 edges+",
                   "Fig4 rad (meas<=bound)", "Fig3 sep/dom ok"});
    const double dn = g.num_vertices();
    const auto lemma_bound = [&](int index) {
      // Lemma 2.10 for the exponential stage (and its last index i0+1),
      // Lemma 2.11 beyond.
      if (index <= params.i0() + 1) {
        return std::pow(dn, 1.0 - (std::ldexp(1.0, index) - 1.0) / kappa);
      }
      return std::pow(dn, 1.0 + 1.0 / kappa - (index - params.i0()) * rho);
    };
    for (const auto& ph : result.trace.phases) {
      const double bound = lemma_bound(ph.index);
      if (static_cast<double>(ph.num_clusters) > bound + 1e-9) {
        lemmas_ok = false;
      }
      t.add_row({std::to_string(ph.index), std::to_string(ph.num_clusters),
                 util::Table::num(bound), std::to_string(ph.num_popular),
                 std::to_string(ph.num_rulers), std::to_string(ph.num_settled),
                 std::to_string(ph.edges_super),
                 std::to_string(ph.measured_max_radius) + " <= " +
                     std::to_string(ph.radius_bound_next) +
                     (ph.radius_ok ? " ok" : " VIOLATED"),
                 (ph.separation_ok && ph.domination_ok) ? "yes" : "NO"});
      csv.row({family, std::to_string(ph.index),
               std::to_string(ph.num_clusters), std::to_string(ph.num_popular),
               std::to_string(ph.num_rulers), std::to_string(ph.num_settled),
               util::Table::num(bound, 3), std::to_string(ph.edges_super),
               std::to_string(ph.edges_inter),
               std::to_string(ph.measured_max_radius),
               std::to_string(ph.radius_bound_next)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Lemma 2.10/2.11 cluster-count bounds: "
            << (lemmas_ok ? "hold at every phase" : "VIOLATED") << "\n"
            << "Theorem 2.2 separation/domination and Lemma 2.3 radii were\n"
            << "verified during the runs (the build throws on violation).\n";
  return lemmas_ok ? 0 : 1;
}
