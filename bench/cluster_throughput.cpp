// Experiment C1 — sharded serving-cluster throughput: batch wall-clock vs
// shard count, partitioner, and pool slots on one fixed workload.
//
// The cluster is the repo's partitioned-deployment story: the same batch
// nas_oracle serves through one oracle, routed across N shard oracles with
// private bounded caches.  This bench sweeps the cluster knobs the scenario
// runner exposes — cluster-shards x partition x query-threads — on one
// (family, n, seed, schedule, workload) point, and gates on the serving
// layer's determinism contract: every row's answer digest must equal the
// first row's (shard count 0 = the single-oracle baseline).
//
//   ./cluster_throughput [--family er] [--n 20000] [--seed 1]
//       [--algo em] [--eps 0.25] [--kappa 3] [--rho 0.4]
//       [--workload zipf] [--queries 20000] [--workload-seed 1]
//       [--zipf-theta 0.99] [--cache-budget 67108864]   # per shard
//       [--shards 0,1,2,8]        # 0 = single-oracle baseline row
//       [--partition hash,range]
//       [--replicas 1,2,4]        # replica-group sizes per shard
//       [--route round-robin,least-loaded,deterministic]
//       [--threads 1,2]           # pool slots serving the shards
//       [--snapshot-format none,v1,v2]  # warm direct / from saved snapshot
//       [--bfs-kernel auto,topdown,hybrid]  # traversal kernels to sweep
//       [--json BENCH_cluster.json] [--csv out.csv]
//
// Thin wrapper over the scenario runner (specs differ only in the cluster
// axes), executed sequentially so per-row wall-clock is honest.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "run/sinks.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  run::ScenarioSpec base;
  base.family = flags.str("family", "er", "workload family");
  base.n = static_cast<graph::Vertex>(
      flags.integer("n", 20000, "target vertex count"));
  base.seed = static_cast<std::uint64_t>(
      flags.integer("seed", 1, "graph generator seed"));
  base.algo = flags.str("algo", "em", "spanner algorithm: em|en17|identity");
  base.eps = flags.real("eps", 0.25, "schedule epsilon");
  base.kappa = static_cast<int>(flags.integer("kappa", 3, "schedule kappa"));
  base.rho = flags.real("rho", 0.4, "schedule rho");
  base.workload = flags.str("workload", "zipf", "request mix: uniform|zipf");
  base.queries = static_cast<std::uint64_t>(
      flags.integer("queries", 20000, "requests per batch"));
  base.workload_seed = static_cast<std::uint64_t>(
      flags.integer("workload-seed", 1, "request-generator seed"));
  base.zipf_theta = flags.real("zipf-theta", 0.99, "zipf skew exponent");
  base.cache_budget = static_cast<std::uint64_t>(flags.integer(
      "cache-budget", 64 << 20, "per-shard cache budget in bytes"));
  const std::string shard_spec = flags.str(
      "shards", "0,1,2,8",
      "comma-separated shard counts; 0 = single-oracle baseline");
  const std::string partition_spec =
      flags.str("partition", "hash", "comma-separated partitioners: hash|range");
  const std::string replica_spec = flags.str(
      "replicas", "1", "comma-separated replica counts per shard (>= 1)");
  const std::string route_spec = flags.str(
      "route", "round-robin",
      "comma-separated routing policies: round-robin|least-loaded|"
      "deterministic (the digest gate proves answers are policy-independent)");
  const std::string thread_spec =
      flags.str("threads", "1,2", "comma-separated pool slots per batch");
  const std::string format_spec = flags.str(
      "snapshot-format", "none",
      "comma-separated warmup paths: none (direct) | v1 | v2 (cluster warmed "
      "from a saved snapshot; warmup time is the shared reload cost)");
  const std::string kernel_spec = flags.str(
      "bfs-kernel", "auto",
      "comma-separated BFS kernels: topdown|hybrid|auto (the digest gate "
      "proves answers are kernel-independent)");
  const std::string json_path =
      flags.str("json", "BENCH_cluster.json", "perf JSON output path");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help(
          "cluster_throughput — experiment C1: sharded serving cluster "
          "wall-clock vs shards/partition/threads")) {
    return 0;
  }
  flags.reject_unknown();

  std::vector<unsigned> shard_list;
  for (const auto& item : run::split_list(shard_spec)) {
    shard_list.push_back(
        static_cast<unsigned>(util::Flags::parse_integer("shards", item)));
  }
  const auto partition_list = run::split_list(partition_spec);
  std::vector<unsigned> replica_list;
  for (const auto& item : run::split_list(replica_spec)) {
    replica_list.push_back(
        static_cast<unsigned>(util::Flags::parse_integer("replicas", item)));
  }
  const auto route_list = run::split_list(route_spec);
  std::vector<unsigned> thread_list;
  for (const auto& item : run::split_list(thread_spec)) {
    thread_list.push_back(
        static_cast<unsigned>(util::Flags::parse_integer("threads", item)));
  }
  const auto format_list = run::split_list(format_spec);
  const auto kernel_list = run::split_list(kernel_spec);
  if (shard_list.empty() || partition_list.empty() || replica_list.empty() ||
      route_list.empty() || thread_list.empty() || format_list.empty() ||
      kernel_list.empty()) {
    std::cerr << "error: empty --shards, --partition, --replicas, --route, "
                 "--threads, --snapshot-format, or --bfs-kernel list\n";
    return 2;
  }

  bench::banner("C1", "sharded serving cluster: wall-clock vs shards/partition");
  run::Runner runner;
  const auto g = runner.cache().get(base.family, base.n, base.seed);
  std::cout << "family=" << base.family << " " << g->summary()
            << " algo=" << base.algo << " workload=" << base.workload << " ("
            << base.queries << " queries/batch, budget " << base.cache_budget
            << " B/shard)\n\n";

  // Shard-major sweep; a 0-shard row is the single-oracle baseline (the
  // partition/replica/route axes are meaningless there, so they are pinned
  // to their first values instead of duplicating the row per combination).
  std::vector<run::ScenarioSpec> specs;
  for (const auto& kernel : kernel_list) {
    for (const auto& format : format_list) {
      for (const unsigned shards : shard_list) {
        for (const auto& partition : partition_list) {
          if (shards == 0 && partition != partition_list.front()) continue;
          for (const unsigned replicas : replica_list) {
            if (shards == 0 && replicas != replica_list.front()) continue;
            for (const auto& route : route_list) {
              if (shards == 0 && route != route_list.front()) continue;
              for (const unsigned threads : thread_list) {
                auto spec = base;
                spec.bfs_kernel = kernel;
                spec.snapshot_format = format;
                spec.cluster_shards = shards;
                spec.partition = partition;
                spec.replicas = replicas;
                spec.route = route;
                spec.query_threads = threads;
                specs.push_back(spec);
              }
            }
          }
        }
      }
    }
  }

  // Sequential execution: per-row serving wall-clock must not share cores.
  const auto rows = runner.run(specs);

  util::Table t({"kernel", "format", "shards", "partition", "R", "route",
                 "slots", "used", "warmup ms", "serve ms", "kqueries/s", "BFS",
                 "hits", "evict", "sheds", "digest ok"});
  bool all_ok = true, all_identical = true;
  std::vector<double> kqps;
  std::vector<bool> identicals;
  const auto digest0 = rows.front().oracle_digest;
  for (const auto& row : rows) {
    if (!row.ok) {
      std::cerr << "error: " << row.error << "\n";
      return 2;
    }
    const bool identical = row.oracle_digest == digest0;
    const double rate =
        row.oracle_wall_ms > 0.0
            ? static_cast<double>(row.oracle_queries) / row.oracle_wall_ms
            : 0.0;
    kqps.push_back(rate);
    identicals.push_back(identical);
    all_identical = all_identical && identical;
    all_ok = all_ok && row.passed();
    const bool cluster_row = row.spec.cluster_shards != 0;
    t.add_row({row.spec.bfs_kernel, row.spec.snapshot_format,
               std::to_string(row.spec.cluster_shards),
               cluster_row ? row.spec.partition : "-",
               cluster_row ? std::to_string(row.spec.replicas) : "-",
               cluster_row ? row.spec.route : "-",
               std::to_string(row.spec.query_threads),
               std::to_string(row.cluster_shards_used),
               util::Table::num(row.snapshot_warmup_ms, 2),
               util::Table::num(row.oracle_wall_ms, 1), util::Table::num(rate),
               std::to_string(row.oracle_bfs_passes),
               std::to_string(row.oracle_cache_hits),
               std::to_string(row.oracle_evictions),
               std::to_string(row.cluster_sheds),
               identical ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\ndigest baseline is the first row ("
            << (rows.front().spec.cluster_shards == 0
                    ? "single oracle"
                    : "a cluster row — pass a leading 0 in --shards for the "
                      "single-oracle cross-check")
            << "); every other row must match it byte-for-byte.\n";
  if (!all_identical) {
    std::cout << "ERROR: an answer digest diverged from the baseline.\n";
  }

  run::SinkOptions sink_options;
  sink_options.timing = true;
  sink_options.extra = [&](const run::ResultRow& row) {
    return util::JsonObject{
        {"kqueries_per_s",
         util::JsonValue::literal(run::format_real(kqps[row.index], 4))},
        {"identical_to_baseline",
         util::JsonValue::boolean(identicals[row.index])},
    };
  };
  if (!json_path.empty()) {
    run::write_json(rows, json_path, sink_options);
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  if (!csv_path.empty()) run::write_csv(rows, csv_path, sink_options);

  return all_identical && all_ok ? 0 : 1;
}
