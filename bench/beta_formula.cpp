// Experiment E1 — regenerates the paper's headline bound, eq. (1)/(18):
//
//   beta = ( O(log kr + 1/rho) / (rho*eps) )^{log kr + 1/rho + O(1)}
//
// as a surface over (eps, kappa, rho), alongside:
//   * the [Elk05] additive term beta_E it improves upon, and
//   * the exact Lemma-2.16 pair (M_ell, A_ell) our integer schedule proves,
//     in both paper mode (rescaled internal eps) and practical mode.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/params.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help("beta_formula — E1: the additive term beta")) return 0;
  flags.reject_unknown();

  bench::banner("E1", "eq. (1)/(18): the additive term beta");

  util::CsvWriter csv(csv_path, {"eps", "kappa", "rho", "ell", "beta_eq18",
                                 "beta_elk05", "A_exact_paper_mode"});

  std::cout << "beta surface (paper mode, n = 10^6 for the schedule):\n";
  util::Table t({"eps'", "kappa", "rho", "ell", "beta eq.(18)",
                 "beta_E [Elk05]", "beta_E / beta", "exact A_ell (paper mode)"});
  for (const double eps : {1.0, 0.5, 0.25}) {
    for (const int kappa : {3, 4, 8, 16, 64, 256, 1024}) {
      for (const double rho : {0.45, 0.35, 0.25}) {
        if (rho < 1.0 / kappa || kappa * rho < 1.0) continue;
        const double beta = core::Params::beta_formula_eq18(eps, kappa, rho);
        const double beta_e =
            std::pow(kappa / eps, std::log2(static_cast<double>(kappa))) *
            std::pow(1.0 / rho, 1.0 / rho);
        // The exact integer schedule (and its Lemma 2.16 pair) exists only
        // where the u64 schedule does not overflow; the formula itself is
        // defined everywhere.
        std::string ell = "-", a_exact = "schedule overflows";
        try {
          const auto p = core::Params::paper(1000000, eps, kappa, rho);
          ell = std::to_string(p.ell());
          a_exact = util::Table::sci(p.stretch_additive());
        } catch (const std::invalid_argument&) {
        }
        t.add_row({util::Table::num(eps), std::to_string(kappa),
                   util::Table::num(rho), ell, util::Table::sci(beta),
                   util::Table::sci(beta_e), util::Table::sci(beta_e / beta),
                   a_exact});
        csv.row({util::Table::num(eps, 4), std::to_string(kappa),
                 util::Table::num(rho, 4), ell, util::Table::sci(beta, 6),
                 util::Table::sci(beta_e, 6), a_exact});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\npractical mode: the exact (M_ell, A_ell) stretch pair the\n"
               "implementation proves for moderate internal eps (n = 4096):\n";
  util::Table tp({"eps_int", "kappa", "rho", "ell", "M_ell", "A_ell",
                  "delta_ell", "beta=eps^-ell"});
  for (const double eps : {0.5, 0.25, 0.125}) {
    for (const int kappa : {3, 4, 8}) {
      const double rho = 0.45;
      if (rho < 1.0 / kappa || kappa * rho < 1.0) continue;
      const auto p = core::Params::practical(4096, eps, kappa, rho);
      tp.add_row({util::Table::num(eps, 3), std::to_string(kappa),
                  util::Table::num(rho), std::to_string(p.ell()),
                  util::Table::num(p.stretch_multiplicative()),
                  util::Table::num(p.stretch_additive(), 0),
                  std::to_string(p.phases().back().delta),
                  util::Table::num(p.beta_paper(), 0)});
    }
  }
  tp.print(std::cout);

  std::cout
      << "\nshape checks vs the paper:\n"
      << "  * beta grows as eps' shrinks and as the exponent\n"
      << "    (log kr + 1/rho) grows — eq. (18);\n"
      << "  * beta_E [Elk05] is quasi-polynomial in kappa ((k/eps)^{log k})\n"
      << "    while eq. (18)'s base is only polylogarithmic in kappa, so the\n"
      << "    beta_E/beta column crosses above 1 as kappa grows (with our\n"
      << "    literal constant choices around kappa ~ 10^3).  [Elk05]'s other\n"
      << "    deficit — superlinear *running time* — is experiment T1.\n";
  return 0;
}
