// Experiment M1 — google-benchmark microbenchmarks of the substrates:
// generators, BFS oracles, the CONGEST engine, Algorithm 1, the ruling set,
// and the full pipeline.  These are wall-clock throughput numbers for the
// simulator itself (not paper claims); they document that the reproduction
// runs comfortably at laptop scale.
#include <benchmark/benchmark.h>

#include <cmath>

#include "congest/parallel.hpp"
#include "congest/protocols.hpp"
#include "core/elkin_matar.hpp"
#include "core/popular.hpp"
#include "core/ruling_set.hpp"
#include "graph/apsp.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

using namespace nas;

namespace {

void BM_GenerateErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::erdos_renyi(n, 8.0 / n, 1));
  }
}
BENCHMARK(BM_GenerateErdosRenyi)->Arg(1024)->Arg(8192);

void BM_Bfs(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(1024)->Arg(8192);

void BM_Apsp(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Apsp(g));
  }
}
BENCHMARK(BM_Apsp)->Arg(256)->Arg(1024);

void BM_CongestEngineBroadcast(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(congest::broadcast(g, 0, 42));
  }
}
BENCHMARK(BM_CongestEngineBroadcast)->Arg(512)->Arg(2048);

// Serial vs. multi-threaded round engine on an all-to-all flood program
// (every vertex re-broadcasts every round): the worst-case message volume
// the spanner protocols generate.  Arg pair: (n, threads); threads == 0 is
// the serial engine.
void BM_RoundEngineFlood(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  const auto threads = static_cast<unsigned>(state.range(1));
  std::vector<std::uint64_t> value(g.num_vertices(), 1);
  const auto program = [&](graph::Vertex v, std::uint64_t,
                           std::span<const congest::Message> inbox,
                           congest::Mailbox& mbox) {
    for (const auto& m : inbox) value[v] += m.a;
    for (graph::Vertex u : g.neighbors(v)) mbox.send(u, {.a = value[v] & 0xff});
  };
  for (auto _ : state) {
    std::uint64_t sent = 0;
    if (threads == 0) {
      congest::Engine engine(g);
      engine.run_rounds(8, program);
      sent = engine.messages_sent();
    } else {
      congest::ParallelEngine engine(g, {.threads = threads});
      engine.run_rounds(8, program);
      sent = engine.messages_sent();
    }
    benchmark::DoNotOptimize(sent);
  }
  state.SetItemsProcessed(state.iterations() * 8 * 2 * g.num_edges());
}
BENCHMARK(BM_RoundEngineFlood)
    ->Args({4096, 0})
    ->Args({4096, 2})
    ->Args({4096, 8})
    ->Args({16384, 0})
    ->Args({16384, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Algorithm1(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  std::vector<graph::Vertex> centers;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) centers.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_algorithm1(g, centers, 4, 8));
  }
}
BENCHMARK(BM_Algorithm1)->Arg(1024)->Arg(4096);

void BM_RulingSet(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  std::vector<graph::Vertex> w;
  for (graph::Vertex v = 0; v < g.num_vertices(); v += 2) w.push_back(v);
  const auto b = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(
             std::ceil(std::pow(static_cast<double>(g.num_vertices()), 1.0 / 3))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_ruling_set(g, w, 4, 3, b));
  }
}
BENCHMARK(BM_RulingSet)->Arg(1024)->Arg(4096);

void BM_FullSpanner(benchmark::State& state) {
  const auto g = graph::make_workload("er", static_cast<graph::Vertex>(state.range(0)), 1);
  const auto params = core::Params::practical(g.num_vertices(), 0.25, 3, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_spanner(g, params, {.validate = false}));
  }
}
BENCHMARK(BM_FullSpanner)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
