// Experiment T2 — reproduces the implementable core of the paper's Table 2
// (Appendix B): a head-to-head of near-additive and multiplicative spanner
// algorithms across models.
//
// Rows (one per algorithm, as in the survey table):
//   New        — this paper: deterministic CONGEST, ruling-set derandomized
//   EN17       — Elkin-Neiman: randomized CONGEST, sampling
//   EP01       — Elkin-Peleg-style: centralized deterministic
//   BS07       — Baswana-Sen: randomized, multiplicative (2κ−1)
//   Greedy     — Althöfer et al.: centralized multiplicative (2κ−1)
//
// For each we report the proven stretch, measured stretch, spanner size and
// simulated CONGEST rounds.  The shape to check against the paper: all
// near-additive rows deliver (1+ε)d+β-type error (small additive error on
// long distances), the multiplicative rows do not; the deterministic CONGEST
// row pays more rounds than EN17 but stays n^ρ-shaped, and β_New is in the
// same ballpark as (slightly above) β_EN — Table 1/2's qualitative content.
#include <iostream>

#include "baselines/additive2.hpp"
#include "baselines/baswana_sen.hpp"
#include "baselines/elkin_peleg.hpp"
#include "baselines/en17.hpp"
#include "baselines/greedy.hpp"
#include "bench_common.hpp"
#include "core/elkin_matar.hpp"
#include "verify/stretch.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 900, "target vertex count"));
  const double eps = flags.real("eps", 0.25, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
  const double rho = flags.real("rho", 0.4, "rho");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help("table2_survey — T2: algorithms head-to-head")) {
    return 0;
  }
  flags.reject_unknown();

  bench::banner("T2", "Table 2: near-additive spanner algorithms, head-to-head");
  util::CsvWriter csv(csv_path,
                      {"workload", "algorithm", "model", "edges", "rounds",
                       "max_mult", "max_add", "mean_mult"});

  for (const std::string family : {"er", "torus", "caveman"}) {
    const auto g = graph::make_workload(family, n, 11);
    const auto params = core::Params::practical(g.num_vertices(), eps, kappa, rho);
    std::cout << "workload: " << family << "  " << g.summary()
              << "  (eps=" << eps << " kappa=" << kappa << " rho=" << rho
              << ")\n";

    util::Table t({"algorithm", "model", "proven stretch", "|H|", "|H|/|E| %",
                   "rounds", "max mult", "max add", "mean mult"});
    const auto add_row = [&](const std::string& name, const std::string& model,
                             const std::string& proven, const graph::Graph& h,
                             std::uint64_t rounds) {
      const auto rep = verify::verify_stretch_sampled(g, h, 1.0, 1e18, 64, 5);
      t.add_row({name, model, proven, std::to_string(h.num_edges()),
                 util::Table::num(100.0 * h.num_edges() /
                                  std::max<std::size_t>(g.num_edges(), 1)),
                 rounds == 0 ? "n/a (centralized)" : std::to_string(rounds),
                 util::Table::num(rep.max_multiplicative),
                 std::to_string(rep.max_additive),
                 util::Table::num(rep.mean_multiplicative)});
      csv.row({family, name, model, std::to_string(h.num_edges()),
               std::to_string(rounds), util::Table::num(rep.max_multiplicative, 4),
               std::to_string(rep.max_additive),
               util::Table::num(rep.mean_multiplicative, 4)});
    };

    {
      const auto r = core::build_spanner(g, params, {.validate = false});
      add_row("New (this paper)", "CONGEST det",
              "(" + util::Table::num(params.stretch_multiplicative()) + ", " +
                  util::Table::num(params.stretch_additive(), 0) + ")",
              r.spanner, r.ledger.rounds());
    }
    {
      const auto r = baselines::build_en17_spanner(g, params, 23);
      add_row("EN17", "CONGEST rand",
              "(" + util::Table::num(r.stretch_multiplicative) + ", " +
                  util::Table::num(r.stretch_additive, 0) + ")",
              r.spanner, r.ledger.rounds());
    }
    {
      const auto r = baselines::build_elkin_peleg_spanner(g, params);
      add_row("EP01-style", "centralized det",
              "(" + util::Table::num(r.stretch_multiplicative) + ", " +
                  util::Table::num(r.stretch_additive, 0) + ")",
              r.spanner, 0);
    }
    {
      const auto r = baselines::build_baswana_sen_spanner(g, kappa, 29);
      add_row("BS07", "CONGEST rand",
              "(" + std::to_string(2 * kappa - 1) + ", 0) mult", r.spanner,
              r.ledger.rounds());
    }
    {
      const auto r = baselines::build_greedy_spanner(g, kappa);
      add_row("Greedy", "centralized det",
              "(" + std::to_string(2 * kappa - 1) + ", 0) mult", r.spanner, 0);
    }
    {
      const auto r = baselines::build_additive2_spanner(g);
      add_row("ACIM99 (+2)", "centralized det", "(1, 2) pure additive",
              r.spanner, 0);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "shape checks vs the paper:\n"
      << "  * near-additive rows (New/EN17/EP01) keep max additive error far\n"
      << "    below the multiplicative rows' worst-case (2k-2)*d allowance;\n"
      << "  * the deterministic New row pays the ruling-set round overhead\n"
      << "    over EN17 (Table 1: same n^rho ballpark, larger constants);\n"
      << "  * multiplicative baselines are cheaper in rounds but their error\n"
      << "    grows with distance.\n";
  return 0;
}
