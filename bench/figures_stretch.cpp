// Experiment F6-F8 — regenerates the paper's stretch argument (Figures 6-8)
// as measurements: the per-distance error profile of the constructed
// spanner.  Figure 8 divides a shortest path into segments of length
// eps^{-i}; the additive error is paid per segment boundary, so measured
// additive error should grow sub-linearly with distance and stay far below
// the worst-case A_ell, while the multiplicative component stays near 1.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/elkin_matar.hpp"
#include "graph/bfs.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(flags.integer("n", 900));
  const int kappa = static_cast<int>(flags.integer("kappa", 3));
  const double rho = flags.real("rho", 0.4);
  const std::string csv_path = flags.str("csv", "");
  flags.reject_unknown();

  bench::banner("F6-F8", "stretch decomposition by distance (Figures 6-8)");
  util::CsvWriter csv(csv_path, {"family", "eps", "dG_bucket", "pairs",
                                 "max_add", "mean_add", "max_mult"});

  for (const std::string family : {"torus", "grid"}) {
    const auto g = graph::make_workload(family, n, 23);
    std::cout << "workload: " << family << " " << g.summary()
              << " (large diameter => long shortest paths)\n";
    for (const double eps : {0.5, 0.25}) {
      const auto params =
          core::Params::practical(g.num_vertices(), eps, kappa, rho);
      const auto result = core::build_spanner(g, params, {.validate = false});

      // Bucket pairs by d_G and record the error profile.
      struct Bucket {
        std::uint64_t pairs = 0, max_add = 0, sum_add = 0;
        double max_mult = 1.0;
      };
      std::map<std::uint32_t, Bucket> buckets;  // key: dG rounded to bucket
      const graph::Graph& h = result.spanner;
      for (graph::Vertex s = 0; s < g.num_vertices();
           s += std::max<graph::Vertex>(1, g.num_vertices() / 64)) {
        const auto dg = graph::bfs(g, s);
        const auto dh = graph::bfs(h, s);
        for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
          if (v == s || dg.dist[v] == graph::kInfDist) continue;
          const std::uint32_t bucket = 1u << (31 - __builtin_clz(dg.dist[v]));
          auto& b = buckets[bucket];
          ++b.pairs;
          const std::uint64_t add = dh.dist[v] - dg.dist[v];
          b.max_add = std::max(b.max_add, add);
          b.sum_add += add;
          b.max_mult = std::max(
              b.max_mult, static_cast<double>(dh.dist[v]) / dg.dist[v]);
        }
      }

      std::cout << "  eps=" << eps << "  guarantee: d_H <= "
                << params.stretch_multiplicative() << "*d_G + "
                << params.stretch_additive()
                << "   |H|=" << h.num_edges() << "\n";
      util::Table t({"d_G in", "pairs", "max additive", "mean additive",
                     "max multiplicative"});
      for (const auto& [bucket, b] : buckets) {
        t.add_row({"[" + std::to_string(bucket) + "," +
                       std::to_string(2 * bucket) + ")",
                   std::to_string(b.pairs), std::to_string(b.max_add),
                   util::Table::num(static_cast<double>(b.sum_add) /
                                    static_cast<double>(b.pairs)),
                   util::Table::num(b.max_mult)});
        csv.row({family, util::Table::num(eps, 3), std::to_string(bucket),
                 std::to_string(b.pairs), std::to_string(b.max_add),
                 util::Table::num(static_cast<double>(b.sum_add) / b.pairs, 3),
                 util::Table::num(b.max_mult, 4)});
      }
      t.print(std::cout);

      // Figure-8 shape check: the multiplicative component decays towards 1
      // on the longest distances (the additive term is a constant, so
      // dH/dG -> 1 as dG grows) — the defining property of near-additive
      // spanners the paper's introduction emphasizes.
      if (buckets.size() >= 2) {
        const auto first = buckets.begin()->second.max_mult;
        const auto last = buckets.rbegin()->second.max_mult;
        std::cout << "  max mult on short distances " << first
                  << "  vs on longest " << last << "  -> "
                  << (last <= first + 1e-9 ? "decays (near-additive shape ok)"
                                           : "no decay (UNEXPECTED)")
                  << "\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
