// Experiment F6-F8 — regenerates the paper's stretch argument (Figures 6-8)
// as measurements: the per-distance error profile of the constructed
// spanner.  Figure 8 divides a shortest path into segments of length
// eps^{-i}; the additive error is paid per segment boundary, so measured
// additive error should grow sub-linearly with distance and stay far below
// the worst-case A_ell, while the multiplicative component stays near 1.
//
// Thin wrapper over the scenario runner: the {family} x {eps} matrix is
// expanded and built by run::Runner (keep_graphs retains each spanner);
// this file only does the per-distance bucketing the figures need.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "graph/bfs.hpp"
#include "run/runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  run::ScenarioMatrix matrix;
  matrix.families = {"torus", "grid"};
  matrix.epss = {0.5, 0.25};
  matrix.seeds = {23};
  matrix.ns = {static_cast<graph::Vertex>(
      flags.integer("n", 900, "target vertex count"))};
  matrix.kappas = {static_cast<int>(flags.integer("kappa", 3, "kappa"))};
  matrix.rhos = {flags.real("rho", 0.4, "rho")};
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  const auto run_threads = static_cast<unsigned>(
      flags.integer("run-threads", 1, "concurrent scenarios, 0 = all cores"));
  if (flags.handle_help(
          "figures_stretch — F6-F8: per-distance stretch decomposition")) {
    return 0;
  }
  flags.reject_unknown();

  bench::banner("F6-F8", "stretch decomposition by distance (Figures 6-8)");
  util::CsvWriter csv(csv_path, {"family", "eps", "dG_bucket", "pairs",
                                 "max_add", "mean_add", "max_mult"});

  run::Runner runner;
  run::RunOptions run_options;
  run_options.threads = run_threads;
  run_options.keep_graphs = true;
  auto rows = runner.run(matrix.expand(), run_options);

  // Matrix order is family-major (families outermost, eps innermost), which
  // is exactly the original per-family presentation order.
  std::string last_family;
  for (auto& row : rows) {
    if (!row.ok) {
      std::cout << row.spec.id() << ": error: " << row.error << "\n";
      return 1;
    }
    const graph::Graph& g = *row.graph;
    const graph::Graph& h = *row.spanner;
    if (row.spec.family != last_family) {
      if (!last_family.empty()) std::cout << "\n";
      std::cout << "workload: " << row.spec.family << " " << g.summary()
                << " (large diameter => long shortest paths)\n";
      last_family = row.spec.family;
    }

    // Bucket pairs by d_G and record the error profile.
    struct Bucket {
      std::uint64_t pairs = 0, max_add = 0, sum_add = 0;
      double max_mult = 1.0;
    };
    std::map<std::uint32_t, Bucket> buckets;  // key: dG rounded to bucket
    for (graph::Vertex s = 0; s < g.num_vertices();
         s += std::max<graph::Vertex>(1, g.num_vertices() / 64)) {
      const auto dg = graph::bfs(g, s);
      const auto dh = graph::bfs(h, s);
      for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
        if (v == s || dg.dist[v] == graph::kInfDist) continue;
        const std::uint32_t bucket = 1u << (31 - __builtin_clz(dg.dist[v]));
        auto& b = buckets[bucket];
        ++b.pairs;
        const std::uint64_t add = dh.dist[v] - dg.dist[v];
        b.max_add = std::max(b.max_add, add);
        b.sum_add += add;
        b.max_mult = std::max(
            b.max_mult, static_cast<double>(dh.dist[v]) / dg.dist[v]);
      }
    }

    std::cout << "  eps=" << row.spec.eps << "  guarantee: d_H <= "
              << row.guarantee_mult << "*d_G + " << row.guarantee_add
              << "   |H|=" << h.num_edges() << "\n";
    util::Table t({"d_G in", "pairs", "max additive", "mean additive",
                   "max multiplicative"});
    for (const auto& [bucket, b] : buckets) {
      // Assemble via += (GCC 12's -Wrestrict false positive PR105651).
      std::string range = "[";
      range += std::to_string(bucket);
      range += ",";
      range += std::to_string(2 * bucket);
      range += ")";
      t.add_row({range, std::to_string(b.pairs), std::to_string(b.max_add),
                 util::Table::num(static_cast<double>(b.sum_add) /
                                  static_cast<double>(b.pairs)),
                 util::Table::num(b.max_mult)});
      csv.row({row.spec.family, util::Table::num(row.spec.eps, 3),
               std::to_string(bucket), std::to_string(b.pairs),
               std::to_string(b.max_add),
               util::Table::num(static_cast<double>(b.sum_add) / b.pairs, 3),
               util::Table::num(b.max_mult, 4)});
    }
    t.print(std::cout);

    // Figure-8 shape check: the multiplicative component decays towards 1
    // on the longest distances (the additive term is a constant, so
    // dH/dG -> 1 as dG grows) — the defining property of near-additive
    // spanners the paper's introduction emphasizes.
    if (buckets.size() >= 2) {
      const auto first = buckets.begin()->second.max_mult;
      const auto last = buckets.rbegin()->second.max_mult;
      std::cout << "  max mult on short distances " << first
                << "  vs on longest " << last << "  -> "
                << (last <= first + 1e-9 ? "decays (near-additive shape ok)"
                                         : "no decay (UNEXPECTED)")
                << "\n";
    }
    // Done with this row's retained graphs; release the spanner now instead
    // of holding every scenario's copy through the whole bucketing pass.
    row.spanner.reset();
    row.graph.reset();
  }
  std::cout << "\n";
  return 0;
}
