// Ablation — the paper's central design choice: replacing EN17's random
// sampling with a deterministic ruling set, and the knob c (= 1/rho) inside
// Theorem 2.2.
//
// Part A: vary c for a fixed phase-1-style ruling-set call and measure the
// three-way tradeoff the paper exploits:
//     rounds ~ q*c*n^{1/c}   (larger c => more sub-steps, smaller base)
//     domination <= q*c      (larger c => farther roots => larger radii,
//                             hence the additive-term inflation vs EN17)
//
// Part B: determinism as a feature.  EN17's sampling is Monte Carlo: across
// seeds its spanner size and round count fluctuate, and unlucky seeds leave
// popular centers uncovered (more interconnection edges).  The
// deterministic construction is one fixed point.  We measure that spread.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "baselines/en17.hpp"
#include "bench_common.hpp"
#include "core/elkin_matar.hpp"
#include "core/popular.hpp"
#include "core/ruling_set.hpp"
#include "graph/bfs.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(flags.integer("n", 1200));
  const std::string csv_path = flags.str("csv", "");
  flags.reject_unknown();

  bench::banner("ABL", "ablation: ruling set vs sampling; the c knob");
  util::CsvWriter csv(csv_path, {"part", "key", "value1", "value2", "value3"});

  const auto g = graph::make_workload("er", n, 53);
  std::cout << "workload: " << g.summary() << "\n\n";

  // ---- Part A: the c knob --------------------------------------------------
  std::cout << "Part A — Theorem 2.2 tradeoff as c varies (q = 8, W = all "
               "popular-ish vertices)\n";
  std::vector<graph::Vertex> w;
  for (graph::Vertex v = 0; v < g.num_vertices(); v += 3) w.push_back(v);
  const std::uint64_t q = 8;
  util::Table ta({"c", "b=ceil(n^{1/c})", "rounds charged", "|A|",
                  "max domination (<= q*c)", "implied radius growth/phase"});
  for (const int c : {2, 3, 4, 6}) {
    const auto b = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::ceil(
               std::pow(static_cast<double>(g.num_vertices()), 1.0 / c))));
    const auto res = core::compute_ruling_set(g, w, q, c, b);
    std::uint32_t max_dom = 0;
    const auto bfs = graph::multi_source_bfs(g, res.rulers);
    for (graph::Vertex v : w) max_dom = std::max(max_dom, bfs.dist[v]);
    ta.add_row({std::to_string(c), std::to_string(b),
                std::to_string(res.rounds_charged),
                std::to_string(res.rulers.size()), std::to_string(max_dom),
                std::to_string(q * c)});
    csv.row({"c_knob", std::to_string(c), std::to_string(res.rounds_charged),
             std::to_string(res.rulers.size()), std::to_string(max_dom)});
  }
  ta.print(std::cout);
  std::cout << "  -> rounds shrink with c only while n^{1/c} dominates; the\n"
               "     domination radius (and hence beta) grows linearly in c.\n"
               "     The paper picks c = 1/rho: rounds O(q n^rho / rho).\n\n";

  // ---- Part B: determinism vs sampling spread ------------------------------
  std::cout << "Part B — EN17 seed spread vs the deterministic fixed point\n";
  const auto params = core::Params::practical(g.num_vertices(), 0.25, 3, 0.4);
  const auto det = core::build_spanner(g, params, {.validate = false});

  std::vector<std::size_t> sizes;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto en = baselines::build_en17_spanner(g, params, seed);
    sizes.push_back(en.spanner.num_edges());
    csv.row({"en17_seed", std::to_string(seed),
             std::to_string(en.spanner.num_edges()), "", ""});
  }
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  double mean = 0;
  for (auto s : sizes) mean += static_cast<double>(s);
  mean /= static_cast<double>(sizes.size());

  util::Table tb({"construction", "|H| min", "|H| mean", "|H| max",
                  "spread max/min"});
  tb.add_row({"EN17 (15 seeds)", std::to_string(*mn), util::Table::num(mean),
              std::to_string(*mx),
              util::Table::num(static_cast<double>(*mx) /
                               static_cast<double>(*mn))});
  tb.add_row({"New (deterministic)", std::to_string(det.spanner.num_edges()),
              std::to_string(det.spanner.num_edges()),
              std::to_string(det.spanner.num_edges()), "1.00"});
  tb.print(std::cout);
  std::cout << "  -> the deterministic construction has zero variance by\n"
               "     construction — the property the paper trades rounds for.\n";
  return 0;
}
