// Ablation — the paper's central design choice: replacing EN17's random
// sampling with a deterministic ruling set, and the knob c (= 1/rho) inside
// Theorem 2.2.
//
// Part A: vary c for a fixed phase-1-style ruling-set call and measure the
// three-way tradeoff the paper exploits:
//     rounds ~ q*c*n^{1/c}   (larger c => more sub-steps, smaller base)
//     domination <= q*c      (larger c => farther roots => larger radii,
//                             hence the additive-term inflation vs EN17)
//
// Part B: determinism as a feature.  EN17's sampling is Monte Carlo: across
// seeds its spanner size and round count fluctuate, and unlucky seeds leave
// popular centers uncovered (more interconnection edges).  The
// deterministic construction is one fixed point.  Expressed as a scenario
// matrix: one "em" spec plus {algo = en17} x {algo-seed = 1..15} over the
// same cached graph; the spread is derived from the unified rows.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/popular.hpp"
#include "core/ruling_set.hpp"
#include "graph/bfs.hpp"
#include "run/runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1200, "target vertex count"));
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  const auto run_threads = static_cast<unsigned>(
      flags.integer("run-threads", 1, "concurrent scenarios, 0 = all cores"));
  if (flags.handle_help(
          "ablation_ruling — ruling set vs sampling; the c knob")) {
    return 0;
  }
  flags.reject_unknown();

  bench::banner("ABL", "ablation: ruling set vs sampling; the c knob");
  util::CsvWriter csv(csv_path, {"part", "key", "value1", "value2", "value3"});

  run::Runner runner;
  const auto g = runner.cache().get("er", n, 53);
  std::cout << "workload: " << g->summary() << "\n\n";

  // ---- Part A: the c knob --------------------------------------------------
  std::cout << "Part A — Theorem 2.2 tradeoff as c varies (q = 8, W = all "
               "popular-ish vertices)\n";
  std::vector<graph::Vertex> w;
  for (graph::Vertex v = 0; v < g->num_vertices(); v += 3) w.push_back(v);
  const std::uint64_t q = 8;
  util::Table ta({"c", "b=ceil(n^{1/c})", "rounds charged", "|A|",
                  "max domination (<= q*c)", "implied radius growth/phase"});
  for (const int c : {2, 3, 4, 6}) {
    const auto b = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::ceil(
               std::pow(static_cast<double>(g->num_vertices()), 1.0 / c))));
    const auto res = core::compute_ruling_set(*g, w, q, c, b);
    std::uint32_t max_dom = 0;
    const auto bfs = graph::multi_source_bfs(*g, res.rulers);
    for (graph::Vertex v : w) max_dom = std::max(max_dom, bfs.dist[v]);
    ta.add_row({std::to_string(c), std::to_string(b),
                std::to_string(res.rounds_charged),
                std::to_string(res.rulers.size()), std::to_string(max_dom),
                std::to_string(q * c)});
    csv.row({"c_knob", std::to_string(c), std::to_string(res.rounds_charged),
             std::to_string(res.rulers.size()), std::to_string(max_dom)});
  }
  ta.print(std::cout);
  std::cout << "  -> rounds shrink with c only while n^{1/c} dominates; the\n"
               "     domination radius (and hence beta) grows linearly in c.\n"
               "     The paper picks c = 1/rho: rounds O(q n^rho / rho).\n\n";

  // ---- Part B: determinism vs sampling spread ------------------------------
  std::cout << "Part B — EN17 seed spread vs the deterministic fixed point\n";
  run::ScenarioMatrix matrix;
  matrix.families = {"er"};
  matrix.ns = {n};
  matrix.seeds = {53};  // same cache key as Part A: the graph is reused
  matrix.algos = {"em", "en17"};
  matrix.algo_seeds.clear();
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    matrix.algo_seeds.push_back(seed);
  }
  auto specs = matrix.expand();
  // The deterministic construction ignores algo_seed, so one "em" spec
  // suffices: drop its redundant seed copies.
  specs.erase(std::remove_if(specs.begin(), specs.end(),
                             [](const run::ScenarioSpec& s) {
                               return s.algo == "em" && s.algo_seed != 1;
                             }),
              specs.end());
  run::RunOptions run_options;
  run_options.threads = run_threads;
  const auto rows = runner.run(specs, run_options);

  std::vector<std::size_t> sizes;
  std::size_t det_edges = 0;
  for (const auto& row : rows) {
    if (!row.ok) {
      std::cout << row.spec.id() << ": error: " << row.error << "\n";
      return 1;
    }
    if (row.spec.algo == "em") {
      det_edges = row.spanner_edges;
    } else {
      sizes.push_back(row.spanner_edges);
      csv.row({"en17_seed", std::to_string(row.spec.algo_seed),
               std::to_string(row.spanner_edges), "", ""});
    }
  }
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  double mean = 0;
  for (auto s : sizes) mean += static_cast<double>(s);
  mean /= static_cast<double>(sizes.size());

  util::Table tb({"construction", "|H| min", "|H| mean", "|H| max",
                  "spread max/min"});
  tb.add_row({"EN17 (15 seeds)", std::to_string(*mn), util::Table::num(mean),
              std::to_string(*mx),
              util::Table::num(static_cast<double>(*mx) /
                               static_cast<double>(*mn))});
  tb.add_row({"New (deterministic)", std::to_string(det_edges),
              std::to_string(det_edges), std::to_string(det_edges), "1.00"});
  tb.print(std::cout);
  std::cout << "  -> the deterministic construction has zero variance by\n"
               "     construction — the property the paper trades rounds for.\n";
  return 0;
}
