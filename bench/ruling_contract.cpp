// Experiment A2 — the Theorem 2.2 ruling-set contract, measured: separation
// >= q+1, domination <= q*c, and rounds against the O(q*c*n^{1/c}) schedule.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/ruling_set.hpp"
#include "graph/bfs.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1500, "target vertex count"));
  const std::string family = flags.str("family", "er", "workload family");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help("ruling_contract — A2: Theorem 2.2 contract")) return 0;
  flags.reject_unknown();

  bench::banner("A2", "deterministic ruling set (Theorem 2.2) contract");
  const auto g = graph::make_workload(family, n, 43);
  std::cout << "workload: " << family << " " << g.summary() << "\n\n";

  std::vector<graph::Vertex> w;
  for (graph::Vertex v = 0; v < g.num_vertices(); v += 2) w.push_back(v);

  util::CsvWriter csv(csv_path, {"q", "c", "b", "rulers", "min_sep", "sep_req",
                                 "max_dom", "dom_bound", "rounds", "schedule"});
  util::Table t({"q", "c", "b", "|A|", "min separation (>= q+1)",
                 "max domination (<= q*c)", "rounds", "= c*b*(q+1)"});

  for (const int c : {2, 3, 4}) {
    const auto b = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::ceil(
               std::pow(static_cast<double>(g.num_vertices()), 1.0 / c))));
    for (const std::uint64_t q : {2, 4, 8}) {
      const auto res = core::compute_ruling_set(g, w, q, c, b);

      // Measure separation (min pairwise distance) and domination.
      std::uint32_t min_sep = graph::kInfDist;
      for (graph::Vertex r : res.rulers) {
        const auto bfs = graph::bfs(g, r);
        for (graph::Vertex r2 : res.rulers) {
          if (r2 != r && bfs.dist[r2] != graph::kInfDist) {
            min_sep = std::min(min_sep, bfs.dist[r2]);
          }
        }
      }
      std::uint32_t max_dom = 0;
      {
        const auto bfs = graph::multi_source_bfs(g, res.rulers);
        for (graph::Vertex v : w) max_dom = std::max(max_dom, bfs.dist[v]);
      }
      const std::uint64_t schedule = static_cast<std::uint64_t>(c) * b * (q + 1);
      t.add_row({std::to_string(q), std::to_string(c), std::to_string(b),
                 std::to_string(res.rulers.size()),
                 min_sep == graph::kInfDist ? "inf" : std::to_string(min_sep),
                 std::to_string(max_dom), std::to_string(res.rounds_charged),
                 std::to_string(schedule)});
      csv.row({std::to_string(q), std::to_string(c), std::to_string(b),
               std::to_string(res.rulers.size()), std::to_string(min_sep),
               std::to_string(q + 1), std::to_string(max_dom),
               std::to_string(q * c), std::to_string(res.rounds_charged),
               std::to_string(schedule)});
      if ((min_sep != graph::kInfDist && min_sep < q + 1) || max_dom > q * c) {
        std::cout << "CONTRACT VIOLATED\n";
        return 1;
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nshape checks: separation/domination always within contract;\n"
            << "rounds grow as q*c*n^{1/c} — larger c trades rounds per\n"
            << "sub-step for a larger domination radius, exactly the knob the\n"
            << "paper turns with c = 1/rho.\n";
  return 0;
}
