// Experiment K1 — BFS kernel microbench: edges inspected and wall-clock for
// the top-down, direction-optimizing (hybrid), and auto kernels on the same
// graphs.
//
// The serving and verification hot paths spend their time in single-source
// BFS over the Csr view (src/graph/bfs_kernel.hpp).  This bench drives the
// kernels directly — no oracle, no spanner — so the traversal cost is
// isolated: per (family, n, kernel) it runs the same source set on one
// reused BfsScratch and reports the kernel's own work counters
// (edges_inspected, top-down/bottom-up level split) next to wall-clock.
//
//   ./bfs_kernels [--family er,er_dense,ba,grid] [--n 4000,16000] [--seed 1]
//       [--sources 16] [--json BENCH_bfs.json]
//
// Two gates make the run self-checking (nonzero exit on violation):
//   * identity — every kernel's distance array is byte-identical to
//     top-down's for every source (distances are level structure, not
//     traversal order, so any divergence is a kernel bug);
//   * work — on the ba and er families (hub-heavy / average degree ~8, the
//     shapes direction-optimizing targets) hybrid must inspect no more
//     edges than top-down.
#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/csr.hpp"
#include "run/scenario.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace nas;

namespace {

constexpr std::array<graph::BfsKernel, 3> kKernels = {
    graph::BfsKernel::kTopDown, graph::BfsKernel::kHybrid,
    graph::BfsKernel::kAuto};

/// Deterministic source spread: `count` vertices striding the id space, so
/// every kernel (and every rerun) sees the same sources without an RNG.
std::vector<graph::Vertex> pick_sources(graph::Vertex n, std::uint64_t count) {
  const auto want = static_cast<graph::Vertex>(
      std::min<std::uint64_t>(count, n == 0 ? 0 : n));
  std::vector<graph::Vertex> sources;
  sources.reserve(want);
  const graph::Vertex stride =
      want == 0 ? 1 : std::max<graph::Vertex>(n / want, 1);
  for (graph::Vertex i = 0; i < want; ++i) sources.push_back(i * stride);
  return sources;
}

struct KernelRow {
  std::string family;
  graph::Vertex n = 0;
  std::size_t m = 0;
  graph::BfsKernel kernel = graph::BfsKernel::kTopDown;
  graph::BfsKernelStats stats;
  double wall_ms = 0.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string family_spec = flags.str(
      "family", "er,er_dense,ba,grid", "comma-separated graph families");
  const std::string n_spec =
      flags.str("n", "4000,16000", "comma-separated target vertex counts");
  const auto seed = static_cast<std::uint64_t>(
      flags.integer("seed", 1, "graph generator seed"));
  const auto num_sources = static_cast<std::uint64_t>(
      flags.integer("sources", 16, "BFS sources per (family, n) point"));
  const std::string json_path =
      flags.str("json", "BENCH_bfs.json", "perf JSON output path");
  if (flags.handle_help(
          "bfs_kernels — experiment K1: BFS kernel work counters and "
          "wall-clock (topdown vs hybrid vs auto)")) {
    return 0;
  }
  flags.reject_unknown();

  const auto family_list = run::split_list(family_spec);
  std::vector<graph::Vertex> n_list;
  for (const auto& item : run::split_list(n_spec)) {
    n_list.push_back(
        static_cast<graph::Vertex>(util::Flags::parse_integer("n", item)));
  }
  if (family_list.empty() || n_list.empty()) {
    std::cerr << "error: empty --family or --n list\n";
    return 2;
  }

  bench::banner("K1", "BFS kernels: edges inspected, topdown vs hybrid");

  std::vector<KernelRow> rows;
  bool all_identical = true;
  bool work_gate_ok = true;
  for (const auto& family : family_list) {
    for (const auto n : n_list) {
      const auto g = graph::make_workload(family, n, seed);
      const auto csr = graph::Csr::from_graph(g);
      const auto sources = pick_sources(g.num_vertices(), num_sources);
      std::cout << "family=" << family << " " << g.summary() << " ("
                << sources.size() << " sources)\n";

      // Reference distances: one top-down array per source; hybrid and auto
      // must reproduce each byte-for-byte.
      std::vector<std::vector<std::uint32_t>> reference;
      std::uint64_t topdown_edges = 0;
      for (const auto kernel : kKernels) {
        KernelRow row;
        row.family = family;
        row.n = g.num_vertices();
        row.m = g.num_edges();
        row.kernel = kernel;
        graph::BfsScratch scratch;
        std::vector<std::uint32_t> dist(g.num_vertices());
        util::Timer timer;
        for (std::size_t i = 0; i < sources.size(); ++i) {
          graph::BfsKernelStats stats;
          graph::bfs_kernel_into(csr, sources[i], dist, scratch, kernel,
                                 &stats);
          row.stats.edges_inspected += stats.edges_inspected;
          row.stats.top_down_levels += stats.top_down_levels;
          row.stats.bottom_up_levels += stats.bottom_up_levels;
          if (kernel == graph::BfsKernel::kTopDown) {
            reference.push_back(dist);
          } else if (dist != reference[i]) {
            row.identical = false;
          }
        }
        row.wall_ms = timer.millis();
        if (kernel == graph::BfsKernel::kTopDown) {
          topdown_edges = row.stats.edges_inspected;
        } else if (kernel == graph::BfsKernel::kHybrid &&
                   (family == "ba" || family == "er") &&
                   row.stats.edges_inspected > topdown_edges) {
          work_gate_ok = false;
        }
        all_identical = all_identical && row.identical;
        rows.push_back(row);
      }
    }
  }

  util::Table t({"family", "n", "kernel", "edges inspected", "td lvls",
                 "bu lvls", "ms", "identical"});
  for (const auto& row : rows) {
    t.add_row({row.family, std::to_string(row.n),
               graph::bfs_kernel_name(row.kernel),
               std::to_string(row.stats.edges_inspected),
               std::to_string(row.stats.top_down_levels),
               std::to_string(row.stats.bottom_up_levels),
               util::Table::num(row.wall_ms, 2),
               row.identical ? "yes" : "NO"});
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nidentity gate: every kernel's distances match top-down's "
               "byte-for-byte; work gate: hybrid edges <= topdown on ba/er.\n";
  if (!all_identical) {
    std::cout << "ERROR: a kernel's distance array diverged from top-down.\n";
  }
  if (!work_gate_ok) {
    std::cout << "ERROR: hybrid inspected more edges than top-down on a "
                 "hub-heavy family.\n";
  }

  if (!json_path.empty()) {
    std::string out = "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      const util::JsonObject fields{
          {"family", util::JsonValue::str(row.family)},
          {"n", util::JsonValue::number(static_cast<std::uint64_t>(row.n))},
          {"m", util::JsonValue::number(static_cast<std::uint64_t>(row.m))},
          {"kernel", util::JsonValue::str(graph::bfs_kernel_name(row.kernel))},
          {"sources", util::JsonValue::number(num_sources)},
          {"edges_inspected",
           util::JsonValue::number(row.stats.edges_inspected)},
          {"top_down_levels",
           util::JsonValue::number(
               static_cast<std::uint64_t>(row.stats.top_down_levels))},
          {"bottom_up_levels",
           util::JsonValue::number(
               static_cast<std::uint64_t>(row.stats.bottom_up_levels))},
          {"wall_ms",
           util::JsonValue::literal(run::format_real(row.wall_ms, 4))},
          {"identical_to_topdown", util::JsonValue::boolean(row.identical)},
      };
      out += "  ";
      out += util::render_json_object(fields);
      if (i + 1 < rows.size()) out += ",";
      out += "\n";
    }
    out += "]\n";
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "error: cannot open " << json_path << "\n";
      return 2;
    }
    file << out;
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }

  return all_identical && work_gate_ok ? 0 : 1;
}
