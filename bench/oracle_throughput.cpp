// Experiment O1 — distance-oracle serving throughput: batch-query wall-clock
// vs query shards and cache budget on one fixed oracle.
//
// The serving layer is the repo's heavy-traffic story: one spanner, many
// queries.  This bench sweeps the two serving knobs the scenario runner
// exposes — query-threads (BFS shards inside one batch) and cache-budget
// (bounded source cache) — on one (family, n, seed, schedule) oracle, and
// re-checks at every point that the answer digest matches the first row:
// the serving layer's determinism contract is that answers depend on the
// spec only, never on the thread count or the budget.
//
//   ./oracle_throughput [--family er] [--n 20000] [--seed 1]
//       [--algo em] [--eps 0.25] [--kappa 3] [--rho 0.4]
//       [--workload zipf] [--queries 20000] [--workload-seed 1]
//       [--zipf-theta 0.99]
//       [--threads 1,2,4,8]       # query shards; first is the baseline
//       [--budgets 0,4194304,67108864]  # cache budgets in bytes
//       [--snapshot-format none,v1,v2]  # serve direct / via saved snapshot
//       [--bfs-kernel auto,topdown,hybrid]  # traversal kernels to sweep
//       [--json BENCH_oracle.json]      # unified rows + timing + extras
//       [--csv out.csv]
//
// Thin wrapper over the scenario runner: the sweep is a vector of specs
// differing only in query_threads x cache_budget (the graph and spanner are
// rebuilt per row but deterministically identical; the graph itself comes
// from the shared GraphCache), executed sequentially so per-row wall-clock
// is honest.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "run/sinks.hpp"

using namespace nas;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  run::ScenarioSpec base;
  base.family = flags.str("family", "er", "workload family");
  base.n = static_cast<graph::Vertex>(
      flags.integer("n", 20000, "target vertex count"));
  base.seed = static_cast<std::uint64_t>(
      flags.integer("seed", 1, "graph generator seed"));
  base.algo = flags.str("algo", "em", "spanner algorithm: em|en17|identity");
  base.eps = flags.real("eps", 0.25, "schedule epsilon");
  base.kappa = static_cast<int>(flags.integer("kappa", 3, "schedule kappa"));
  base.rho = flags.real("rho", 0.4, "schedule rho");
  base.workload = flags.str("workload", "zipf", "request mix: uniform|zipf");
  base.queries = static_cast<std::uint64_t>(
      flags.integer("queries", 20000, "requests per batch"));
  base.workload_seed = static_cast<std::uint64_t>(
      flags.integer("workload-seed", 1, "request-generator seed"));
  base.zipf_theta = flags.real("zipf-theta", 0.99, "zipf skew exponent");
  const std::string thread_spec = flags.str(
      "threads", "1,2,4,8", "comma-separated query shards; first = baseline");
  const std::string budget_spec =
      flags.str("budgets", "67108864", "comma-separated cache budgets (bytes)");
  const std::string format_spec = flags.str(
      "snapshot-format", "none",
      "comma-separated serving paths: none (direct) | v1 | v2 (snapshot "
      "round-trip; warmup time is the reload cost)");
  const std::string kernel_spec = flags.str(
      "bfs-kernel", "auto",
      "comma-separated BFS kernels: topdown|hybrid|auto (the digest gate "
      "proves answers are kernel-independent)");
  const std::string json_path =
      flags.str("json", "BENCH_oracle.json", "perf JSON output path");
  const std::string csv_path = flags.str("csv", "", "CSV output path");
  if (flags.handle_help(
          "oracle_throughput — experiment O1: serving wall-clock vs query "
          "shards and cache budget")) {
    return 0;
  }
  flags.reject_unknown();

  std::vector<unsigned> thread_list;
  for (const auto& item : run::split_list(thread_spec)) {
    thread_list.push_back(static_cast<unsigned>(
        util::Flags::parse_integer("threads", item)));
  }
  std::vector<std::uint64_t> budget_list;
  for (const auto& item : run::split_list(budget_spec)) {
    budget_list.push_back(static_cast<std::uint64_t>(
        util::Flags::parse_integer("budgets", item)));
  }
  const auto format_list = run::split_list(format_spec);
  const auto kernel_list = run::split_list(kernel_spec);
  if (thread_list.empty() || budget_list.empty() || format_list.empty() ||
      kernel_list.empty()) {
    std::cerr << "error: empty --threads, --budgets, --snapshot-format, or "
                 "--bfs-kernel list\n";
    return 2;
  }

  bench::banner("O1", "distance-oracle serving: wall-clock vs shards/budget");
  run::Runner runner;
  const auto g = runner.cache().get(base.family, base.n, base.seed);
  std::cout << "family=" << base.family << " " << g->summary() << " algo="
            << base.algo << " workload=" << base.workload << " ("
            << base.queries << " queries/batch)\n\n";

  // Kernel-major, then format-major, then budget-major sweep.  The spec
  // carries the *requested* thread count; the batch resolves it against the
  // deduplicated uncached-source count, and the table reports that actual
  // shard count (row.oracle_shards).
  std::vector<run::ScenarioSpec> specs;
  for (const auto& kernel : kernel_list) {
    for (const auto& format : format_list) {
      for (const auto budget : budget_list) {
        for (const unsigned threads : thread_list) {
          auto spec = base;
          spec.bfs_kernel = kernel;
          spec.snapshot_format = format;
          spec.cache_budget = budget;
          spec.query_threads = threads;
          specs.push_back(spec);
        }
      }
    }
  }

  // Sequential execution: per-row serving wall-clock must not share cores.
  const auto rows = runner.run(specs);

  util::Table t({"kernel", "format", "budget B", "req", "shards", "warmup ms",
                 "serve ms", "kqueries/s", "BFS", "hits", "evict",
                 "digest ok"});
  bool all_ok = true, all_identical = true;
  std::vector<double> kqps;
  std::vector<bool> identicals;
  const auto digest0 = rows.front().oracle_digest;
  for (const auto& row : rows) {
    if (!row.ok) {
      std::cerr << "error: " << row.error << "\n";
      return 2;
    }
    const bool identical = row.oracle_digest == digest0;
    const double rate = row.oracle_wall_ms > 0.0
                            ? static_cast<double>(row.oracle_queries) /
                                  row.oracle_wall_ms
                            : 0.0;
    kqps.push_back(rate);
    identicals.push_back(identical);
    all_identical = all_identical && identical;
    all_ok = all_ok && row.passed();
    t.add_row({row.spec.bfs_kernel, row.spec.snapshot_format,
               std::to_string(row.spec.cache_budget),
               std::to_string(row.spec.query_threads),
               std::to_string(row.oracle_shards),
               util::Table::num(row.snapshot_warmup_ms, 2),
               util::Table::num(row.oracle_wall_ms, 1),
               util::Table::num(rate),
               std::to_string(row.oracle_bfs_passes),
               std::to_string(row.oracle_cache_hits),
               std::to_string(row.oracle_evictions),
               identical ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n" << rows.front().oracle_sources
            << " distinct sources per batch; digest baseline is the first "
               "row.\n";
  if (!all_identical) {
    std::cout << "ERROR: an answer digest diverged from the baseline.\n";
  }

  run::SinkOptions sink_options;
  sink_options.timing = true;
  sink_options.extra = [&](const run::ResultRow& row) {
    return util::JsonObject{
        {"kqueries_per_s",
         util::JsonValue::literal(run::format_real(kqps[row.index], 4))},
        {"identical_to_baseline",
         util::JsonValue::boolean(identicals[row.index])},
    };
  };
  if (!json_path.empty()) {
    run::write_json(rows, json_path, sink_options);
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  if (!csv_path.empty()) run::write_csv(rows, csv_path, sink_options);

  return all_identical && all_ok ? 0 : 1;
}
