// Example: regenerate the paper's Figures 1-5 as Graphviz files from a real
// run on a small clustered graph.
//
// Writes to the working directory:
//   fig1_superclusters.dot — clusters colored by final supercluster, the
//                            chosen ruling-set centers double-circled (Fig 1)
//   fig2_forest.dot        — the spanner edges added by superclustering
//                            highlighted over the input graph (Figs 2 & 4)
//   fig5_interconnect.dot  — the full spanner H highlighted over G (Fig 5)
//
// Render with: neato -Tpng fig1_superclusters.dot -o fig1.png
#include <iostream>

#include "core/elkin_matar.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 60, "target vertex count"));
  const std::string out_prefix =
      flags.str("out", "fig", "output filename prefix");
  if (flags.handle_help("draw_figures — Figures 1-5 as Graphviz files")) {
    return 0;
  }
  flags.reject_unknown();

  // A caveman graph mirrors the paper's Figure 1 setting: dense areas that
  // become superclusters, sparse in-between regions that interconnect.
  const auto g = graph::caveman(std::max<graph::Vertex>(n / 10, 3), 10, n / 12, 5);
  const auto params = core::Params::practical(g.num_vertices(), 0.25, 3, 0.4);
  const auto result = core::build_spanner(g, params);

  // Figure 1: color by the cluster that settled each vertex; double-circle
  // the settled centers.
  graph::DotStyle fig1;
  fig1.name = "fig1_superclusters";
  fig1.group.resize(g.num_vertices());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    fig1.group[v] = result.clusters.settled_center(v);
  }
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (result.clusters.settled_center(v) == v) fig1.emphasized.push_back(v);
  }
  graph::write_dot_file(g, fig1, out_prefix + "1_superclusters.dot");

  // Figures 2/4: the spanner edges contributed by superclustering steps.
  // (Phase trace records counts; the actual edges are the spanner minus the
  // interconnection-only edges — for the drawing we highlight all of H and
  // rely on fig1's grouping to show the trees.)
  graph::DotStyle fig2;
  fig2.name = "fig2_forest";
  fig2.group = fig1.group;
  fig2.highlighted_edges = result.spanner.edges();
  graph::write_dot_file(g, fig2, out_prefix + "2_forest.dot");

  // Figure 5: the final spanner over the input graph.
  graph::DotStyle fig5;
  fig5.name = "fig5_spanner";
  fig5.highlighted_edges = result.spanner.edges();
  fig5.emphasized = fig1.emphasized;
  graph::write_dot_file(g, fig5, out_prefix + "5_interconnect.dot");

  std::cout << "input: " << g.summary() << "\n"
            << "spanner: " << result.spanner.num_edges() << " edges\n"
            << "wrote " << out_prefix << "1_superclusters.dot, "
            << out_prefix << "2_forest.dot, " << out_prefix
            << "5_interconnect.dot\n"
            << "render: neato -Tpng " << out_prefix
            << "1_superclusters.dot -o fig1.png\n";
  return 0;
}
