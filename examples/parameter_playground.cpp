// Example: exploring the (eps, kappa, rho) tradeoff surface on a fixed
// workload — the three knobs of Corollary 2.18:
//   * kappa  — sparsity exponent: |H| = O(beta * n^{1+1/kappa});
//   * rho    — round exponent: O(beta * n^rho / rho) time, but beta grows
//              as rho shrinks;
//   * eps    — stretch: beta ~ eps^{-ell}.
//
//   ./parameter_playground [--n 1000] [--family er_dense]
#include <iostream>

#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "verify/stretch.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1000, "target vertex count"));
  const std::string family =
      flags.str("family", "er_dense", "workload family");
  if (flags.handle_help(
          "parameter_playground — the (eps, kappa, rho) tradeoff surface")) {
    return 0;
  }
  flags.reject_unknown();

  const auto g = graph::make_workload(family, n, 4242);
  std::cout << "workload: " << g.summary() << " (" << family << ")\n\n";

  util::Table t({"eps", "kappa", "rho", "ell", "phases (delta_i)", "|H|",
                 "rounds", "measured max mult", "measured max add",
                 "proven (M, A)"});

  for (const double eps : {0.5, 0.25}) {
    for (const int kappa : {3, 4, 8}) {
      for (const double rho : {0.45, 0.4}) {
        if (rho < 1.0 / kappa || kappa * rho < 1.0) continue;
        const auto params =
            core::Params::practical(g.num_vertices(), eps, kappa, rho);
        const auto result = core::build_spanner(g, params, {.validate = false});
        const auto rep = verify::verify_stretch_sampled(
            g, result.spanner, params.stretch_multiplicative(),
            params.stretch_additive(), 32, 1);

        std::string deltas;
        for (const auto& ph : params.phases()) {
          if (!deltas.empty()) deltas += ",";
          deltas += std::to_string(ph.delta);
        }
        // Assemble via += (GCC 12's -Wrestrict false positive PR105651
        // flags `"(" + rvalue string`).
        std::string bound = "(";
        bound += util::Table::num(params.stretch_multiplicative());
        bound += ", ";
        bound += util::Table::num(params.stretch_additive(), 0);
        bound += ")";
        if (!rep.bound_ok) bound += " VIOLATED";
        t.add_row({util::Table::num(eps), std::to_string(kappa),
                   util::Table::num(rho), std::to_string(params.ell()),
                   deltas, std::to_string(result.spanner.num_edges()),
                   std::to_string(result.ledger.rounds()),
                   util::Table::num(rep.max_multiplicative),
                   std::to_string(rep.max_additive), bound});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nreading the table:\n"
            << "  * larger kappa  -> smaller |H| (sparser), more phases;\n"
            << "  * smaller rho   -> fewer rounds per n but bigger deltas\n"
            << "                     (beta explodes as rho -> 1/kappa);\n"
            << "  * smaller eps   -> larger deltas and rounds, tighter\n"
            << "                     multiplicative error on long routes.\n";
  return 0;
}
