// Example: sparse communication backbone for a dense overlay network.
//
// The classic spanner application from the paper's introduction (synchro-
// nizers, broadcast overlays): a dense network wants a sparse subgraph over
// which to run expensive all-to-all protocols, while promising that routes
// stay near-optimal.  We build the near-additive spanner of a dense
// clustered network, then compare:
//   * edges maintained (link-state overhead),
//   * broadcast cost (messages = edges touched by a flood),
//   * route quality (distance inflation on sampled routes).
//
//   ./overlay_backbone [--n 1500] [--eps 0.25] [--kappa 4] [--rho 0.45]
#include <iostream>

#include "congest/protocols.hpp"
#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "verify/stretch.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1500, "target vertex count"));
  const double eps = flags.real("eps", 0.25, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 4, "kappa"));
  const double rho = flags.real("rho", 0.45, "rho");
  if (flags.handle_help("overlay_backbone — sparse communication backbone")) {
    return 0;
  }
  flags.reject_unknown();

  const auto g = graph::make_workload("caveman", n, 2024);
  std::cout << "overlay network: " << g.summary()
            << " (clustered topology: dense caves + sparse bridges)\n\n";

  const auto params = core::Params::practical(g.num_vertices(), eps, kappa, rho);
  const auto result = core::build_spanner(g, params, {.validate = false});
  const auto& backbone = result.spanner;

  // Broadcast cost: a flood touches every edge twice in the worst case, so
  // messages scale with the edge count; measure via the CONGEST simulator.
  congest::Ledger full_ledger, thin_ledger;
  (void)congest::broadcast(g, 0, 7, &full_ledger);
  (void)congest::broadcast(backbone, 0, 7, &thin_ledger);

  const auto quality = verify::verify_stretch_sampled(
      g, backbone, params.stretch_multiplicative(), params.stretch_additive(),
      64, 9);

  util::Table t({"metric", "full overlay", "spanner backbone", "change"});
  t.add_row({"links maintained", std::to_string(g.num_edges()),
             std::to_string(backbone.num_edges()),
             util::Table::num(100.0 * backbone.num_edges() / g.num_edges()) +
                 "% kept"});
  t.add_row({"broadcast messages", std::to_string(full_ledger.messages()),
             std::to_string(thin_ledger.messages()),
             util::Table::num(100.0 * thin_ledger.messages() /
                              std::max<std::uint64_t>(full_ledger.messages(), 1)) +
                 "% of cost"});
  t.add_row({"broadcast rounds", std::to_string(full_ledger.rounds()),
             std::to_string(thin_ledger.rounds()),
             "+" + std::to_string(thin_ledger.rounds() -
                                  std::min(full_ledger.rounds(),
                                           thin_ledger.rounds())) +
                 " rounds"});
  t.add_row({"worst route inflation (sampled)", "1.00",
             util::Table::num(quality.max_multiplicative),
             "max additive " + std::to_string(quality.max_additive)});
  t.print(std::cout);

  std::cout << "\nguarantee carried by the backbone: every route is within "
            << params.stretch_multiplicative() << "x + "
            << params.stretch_additive() << " of optimal"
            << (quality.bound_ok ? " (verified on samples)\n"
                                 : " (VIOLATED?!)\n");
  std::cout << "construction cost: " << result.ledger.rounds()
            << " simulated CONGEST rounds, deterministic (no randomness to "
               "re-roll on failure).\n";
  return quality.bound_ok ? 0 : 1;
}
