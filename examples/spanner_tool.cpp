// Command-line spanner tool: read an edge list, write the spanner's edge
// list plus a stats summary — the "downstream user" entry point.
//
//   ./spanner_tool --in graph.txt --out spanner.txt
//       [--eps 0.25] [--kappa 3] [--rho 0.4] [--mode practical|paper]
//       [--verify 32]          # sampled stretch verification with k sources
//       [--verify-threads 0]   # verification worker shards; 0 = all cores
//                              # (the report is identical at any count)
//
// Input format: "n m" header line, then one "u v" pair per line ('#'
// comments allowed).  Exit code 0 iff construction (and verification, if
// requested) succeeded.
//
// Thin wrapper over the scenario runner: one file-sourced ScenarioSpec,
// executed like any other experiment (keep_graphs retains the spanner for
// the edge-list dump).
#include <iostream>

#include "core/params.hpp"
#include "graph/io.hpp"
#include "run/runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  try {
    util::Flags flags(argc, argv);
    run::ScenarioSpec spec;
    const std::string in_path =
        flags.str("in", "", "input edge-list file (required)");
    const std::string out_path =
        flags.str("out", "", "write the spanner's edge list here");
    spec.eps = flags.real("eps", 0.25, "epsilon");
    spec.kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
    spec.rho = flags.real("rho", 0.4, "rho");
    spec.mode = flags.str("mode", "practical", "schedule: practical|paper");
    spec.verify_sources = static_cast<std::uint32_t>(flags.integer(
        "verify", 0, "sampled verification sources (0 = off)"));
    spec.verify_mode = spec.verify_sources > 0 ? "sampled" : "off";
    spec.verify_threads = static_cast<unsigned>(flags.integer(
        "verify-threads", 0, "verifier shards, 0 = all cores"));
    if (flags.handle_help(
            "spanner_tool — build a near-additive spanner of an edge list")) {
      return 0;
    }
    flags.reject_unknown();

    if (in_path.empty()) {
      std::cerr << "usage: spanner_tool --in graph.txt [--out spanner.txt]\n"
                   "       [--eps E] [--kappa K] [--rho R] [--mode practical|paper]\n"
                   "       [--verify NUM_SOURCES] [--verify-threads T]\n"
                   "       (--help lists all flags)\n";
      return 2;
    }
    spec.family = "file:" + in_path;

    run::Runner runner;
    run::RunOptions run_options;
    run_options.keep_graphs = true;
    const auto row = runner.run_one(spec, 0, run_options);
    if (!row.ok) {
      std::cerr << "error: " << row.error << "\n";
      return 2;
    }
    std::cerr << "read Graph(n=" << row.n << ", m=" << row.m << ") from "
              << in_path << "\n";
    std::cerr << "schedule: "
              << (spec.mode == "paper"
                      ? core::Params::paper(row.n, spec.eps, spec.kappa,
                                            spec.rho)
                      : core::Params::practical(row.n, spec.eps, spec.kappa,
                                                spec.rho))
                     .describe()
              << "\n";

    if (!out_path.empty()) {
      graph::write_edge_list_file(*row.spanner, out_path);
      std::cerr << "wrote " << row.spanner_edges << " edges to " << out_path
                << "\n";
    }

    util::Table t({"metric", "value"});
    t.add_row({"input edges", std::to_string(row.m)});
    t.add_row({"spanner edges", std::to_string(row.spanner_edges)});
    t.add_row({"kept %",
               util::Table::num(100.0 * static_cast<double>(row.spanner_edges) /
                                std::max<std::uint64_t>(row.m, 1))});
    t.add_row({"simulated CONGEST rounds", std::to_string(row.rounds)});
    t.add_row({"guarantee multiplicative",
               util::Table::num(row.guarantee_mult)});
    t.add_row({"guarantee additive", util::Table::num(row.guarantee_add, 0)});
    t.print(std::cout);

    if (row.verified) {
      std::cout << "verification (" << row.report.pairs_checked
                << " pairs): max mult "
                << util::Table::num(row.report.max_multiplicative)
                << ", max additive " << row.report.max_additive << " -> "
                << (row.report.bound_ok ? "bound OK" : "BOUND VIOLATED")
                << "\n";
      if (!row.report.bound_ok) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
