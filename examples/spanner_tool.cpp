// Command-line spanner tool: read an edge list, write the spanner's edge
// list plus a stats summary — the "downstream user" entry point.
//
//   ./spanner_tool --in graph.txt --out spanner.txt
//       [--eps 0.25] [--kappa 3] [--rho 0.4] [--mode practical|paper]
//       [--verify 32]          # sampled stretch verification with k sources
//       [--verify-threads 0]   # verification worker shards; 0 = all cores
//                              # (the report is identical at any count)
//
// Input format: "n m" header line, then one "u v" pair per line ('#'
// comments allowed).  Exit code 0 iff construction (and verification, if
// requested) succeeded.
#include <iostream>

#include "core/elkin_matar.hpp"
#include "graph/io.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "verify/stretch.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  try {
    util::Flags flags(argc, argv);
    const std::string in_path = flags.str("in", "");
    const std::string out_path = flags.str("out", "");
    const double eps = flags.real("eps", 0.25);
    const int kappa = static_cast<int>(flags.integer("kappa", 3));
    const double rho = flags.real("rho", 0.4);
    const std::string mode = flags.str("mode", "practical");
    const auto verify_sources =
        static_cast<std::uint32_t>(flags.integer("verify", 0));
    const auto verify_threads =
        static_cast<unsigned>(flags.integer("verify-threads", 0));
    flags.reject_unknown();

    if (in_path.empty()) {
      std::cerr << "usage: spanner_tool --in graph.txt [--out spanner.txt]\n"
                   "       [--eps E] [--kappa K] [--rho R] [--mode practical|paper]\n"
                   "       [--verify NUM_SOURCES] [--verify-threads T]\n";
      return 2;
    }

    const auto g = graph::read_edge_list_file(in_path);
    std::cerr << "read " << g.summary() << " from " << in_path << "\n";

    const auto params =
        mode == "paper"
            ? core::Params::paper(g.num_vertices(), eps, kappa, rho)
            : core::Params::practical(g.num_vertices(), eps, kappa, rho);
    std::cerr << "schedule: " << params.describe() << "\n";

    const auto result = core::build_spanner(g, params, {.validate = false});
    if (!out_path.empty()) {
      graph::write_edge_list_file(result.spanner, out_path);
      std::cerr << "wrote " << result.spanner.num_edges() << " edges to "
                << out_path << "\n";
    }

    util::Table t({"metric", "value"});
    t.add_row({"input edges", std::to_string(g.num_edges())});
    t.add_row({"spanner edges", std::to_string(result.spanner.num_edges())});
    t.add_row({"kept %", util::Table::num(100.0 * result.spanner.num_edges() /
                                          std::max<std::size_t>(g.num_edges(), 1))});
    t.add_row({"simulated CONGEST rounds", std::to_string(result.ledger.rounds())});
    t.add_row({"guarantee multiplicative",
               util::Table::num(params.stretch_multiplicative())});
    t.add_row({"guarantee additive",
               util::Table::num(params.stretch_additive(), 0)});
    t.print(std::cout);

    if (verify_sources > 0) {
      const auto rep = verify::verify_stretch_sampled(
          g, result.spanner, params.stretch_multiplicative(),
          params.stretch_additive(), verify_sources, 1, verify_threads);
      std::cout << "verification (" << rep.pairs_checked
                << " pairs): max mult " << util::Table::num(rep.max_multiplicative)
                << ", max additive " << rep.max_additive << " -> "
                << (rep.bound_ok ? "bound OK" : "BOUND VIOLATED") << "\n";
      if (!rep.bound_ok) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
