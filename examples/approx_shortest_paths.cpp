// Example: all-pairs approximate shortest paths from a near-additive
// spanner.
//
// Computing exact APSP costs O(n*m) BFS work; on the spanner it costs
// O(n*|H|), and near-additivity makes the answers almost exact for long
// distances — the regime the paper's introduction highlights (multiplicative
// spanners lose a factor 2k-1 there).
//
//   ./approx_shortest_paths [--n 1200] [--family torus] [--eps 0.25]
#include <iostream>

#include "core/elkin_matar.hpp"
#include "graph/apsp.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1200, "target vertex count"));
  const std::string family = flags.str("family", "torus", "workload family");
  const double eps = flags.real("eps", 0.25, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
  const double rho = flags.real("rho", 0.4, "rho");
  if (flags.handle_help(
          "approx_shortest_paths — APSP from a near-additive spanner")) {
    return 0;
  }
  flags.reject_unknown();

  const auto g = graph::make_workload(family, n, 77);
  std::cout << "graph: " << g.summary() << " (" << family << ")\n";

  const auto params = core::Params::practical(g.num_vertices(), eps, kappa, rho);
  const auto result = core::build_spanner(g, params, {.validate = false});
  std::cout << "spanner: " << result.spanner.num_edges() << " of "
            << g.num_edges() << " edges\n\n";

  util::Timer exact_timer;
  const graph::Apsp exact(g);
  const double exact_ms = exact_timer.millis();

  util::Timer approx_timer;
  const graph::Apsp approx(result.spanner);
  const double approx_ms = approx_timer.millis();

  // Error profile by distance.
  struct Bucket {
    std::uint64_t pairs = 0, exact_sum = 0, err_sum = 0, err_max = 0;
  };
  std::vector<Bucket> buckets(20);
  std::uint32_t max_d = 0;
  for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    for (graph::Vertex v = u + 1; v < g.num_vertices(); ++v) {
      const auto d = exact.dist(u, v);
      if (d == graph::kInfDist || d == 0) continue;
      max_d = std::max(max_d, d);
      auto& b = buckets[std::min<std::size_t>(31 - __builtin_clz(d), 19)];
      ++b.pairs;
      b.exact_sum += d;
      const std::uint64_t err = approx.dist(u, v) - d;
      b.err_sum += err;
      b.err_max = std::max(b.err_max, err);
    }
  }

  util::Table t({"d_G range", "pairs", "mean additive err", "max additive err",
                 "mean relative err %"});
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    if (b.pairs == 0) continue;
    // Assemble via += (GCC 12's -Wrestrict false positive PR105651 flags
    // `"[" + rvalue string`).
    std::string range = "[";
    range += std::to_string(1u << i);
    range += ",";
    range += std::to_string(2u << i);
    range += ")";
    t.add_row({range,
               std::to_string(b.pairs),
               util::Table::num(static_cast<double>(b.err_sum) / b.pairs),
               std::to_string(b.err_max),
               util::Table::num(100.0 * static_cast<double>(b.err_sum) /
                                static_cast<double>(b.exact_sum))});
  }
  t.print(std::cout);

  std::cout << "\nAPSP wall time: exact " << util::Table::num(exact_ms)
            << " ms on " << g.num_edges() << " edges vs approx "
            << util::Table::num(approx_ms) << " ms on "
            << result.spanner.num_edges() << " edges\n"
            << "diameter " << max_d << "; near-additive guarantee: error <= "
            << (params.stretch_multiplicative() - 1.0)
            << "*d + " << params.stretch_additive()
            << " — relative error decays on long distances.\n";
  return 0;
}
