// Quickstart: build a near-additive spanner of a random graph and print
// what you got.
//
//   ./quickstart [--n 1000] [--family er] [--eps 0.25] [--kappa 3] [--rho 0.4]
#include <iostream>

#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "verify/stretch.hpp"

int main(int argc, char** argv) {
  using namespace nas;
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::Vertex>(
      flags.integer("n", 1000, "target vertex count"));
  const std::string family = flags.str("family", "er", "workload family");
  const double eps = flags.real("eps", 0.25, "epsilon");
  const int kappa = static_cast<int>(flags.integer("kappa", 3, "kappa"));
  const double rho = flags.real("rho", 0.4, "rho");
  if (flags.handle_help("quickstart — build a spanner and print what you got")) {
    return 0;
  }
  flags.reject_unknown();

  const auto g = graph::make_workload(family, n, /*seed=*/42);
  std::cout << "input: " << g.summary() << " (" << family << ")\n";

  const auto params = core::Params::practical(g.num_vertices(), eps, kappa, rho);
  std::cout << "schedule: " << params.describe() << "\n\n";

  const auto result = core::build_spanner(g, params);

  util::Table t({"phase", "|P_i|", "|W_i|", "|RS_i|", "|U_i|", "delta_i",
                 "deg_i", "edges+", "rounds"});
  for (const auto& ph : result.trace.phases) {
    t.add_row({std::to_string(ph.index), std::to_string(ph.num_clusters),
               std::to_string(ph.num_popular), std::to_string(ph.num_rulers),
               std::to_string(ph.num_settled), std::to_string(ph.delta),
               std::to_string(ph.deg),
               std::to_string(ph.edges_super + ph.edges_inter),
               std::to_string(ph.rounds_total())});
  }
  t.print(std::cout);

  const auto stretch = verify::verify_stretch_sampled(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive(), 32, /*seed=*/7);

  std::cout << "\nspanner: " << result.spanner.num_edges() << " edges ("
            << 100.0 * result.spanner.num_edges() / std::max<std::size_t>(g.num_edges(), 1)
            << "% of input)\n";
  std::cout << "simulated CONGEST rounds: " << result.ledger.rounds() << "\n";
  std::cout << "guaranteed stretch: d_H <= " << params.stretch_multiplicative()
            << "*d_G + " << params.stretch_additive() << "\n";
  std::cout << "measured (sampled): max multiplicative "
            << stretch.max_multiplicative << ", max additive "
            << stretch.max_additive
            << (stretch.bound_ok ? "  [bound OK]" : "  [BOUND VIOLATED]")
            << "\n";
  return stretch.bound_ok ? 0 : 1;
}
