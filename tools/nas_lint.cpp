// nas_lint — the repo-invariant checker (see src/lint/lint.hpp for the rule
// set and the reasoning).  Dry-run only by design: it prints file:line
// diagnostics and exits nonzero; fixes stay human-sized diffs.
//
//   nas_lint --root .                 # walk src/ tools/ bench/ examples/
//                                     # tests/ (skipping tests/data)
//   nas_lint --files src/a.cpp,src/b.hpp --root .
//   nas_lint --list-rules
//
// Registered as the `nas_lint_tree` ctest, so `ctest` fails locally the same
// way the CI lint job does.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/flags.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    nas::util::Flags flags(argc, argv);
    const std::string root = flags.str(
        "root", ".", "repo root; walks src/ tools/ bench/ examples/ tests/");
    const std::string files_spec = flags.str(
        "files", "", "comma-separated repo-relative files to lint instead");
    const bool list_rules = flags.boolean(
        "list-rules", false, "print the rule set and the allowlist, then exit");
    const bool quiet =
        flags.boolean("quiet", false, "suppress the summary line");
    if (flags.handle_help(
            "nas_lint — determinism and hygiene checker for this tree")) {
      return 0;
    }
    flags.reject_unknown();

    if (list_rules) {
      for (const auto& rule : nas::lint::rules()) {
        std::cout << rule.name << "\n    " << rule.description << "\n";
      }
      std::cout << "allowlist (rule: file):\n";
      for (const auto& [rule, path] : nas::lint::allowlist()) {
        std::cout << "    " << rule << ": " << path << "\n";
      }
      std::cout << "escape hatch: // nas-lint: allow(<rule>[, <rule>...]) on "
                   "the flagged line or the line above\n";
      return 0;
    }

    std::vector<nas::lint::Diagnostic> diagnostics;
    if (!files_spec.empty()) {
      for (const auto& rel : split_csv(files_spec)) {
        std::ifstream in(root + "/" + rel, std::ios::binary);
        if (!in) {
          std::cerr << "nas_lint: cannot read " << rel << "\n";
          return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const auto diags = nas::lint::lint_file(rel, buf.str());
        diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
      }
    } else {
      diagnostics = nas::lint::lint_tree(root);
    }

    for (const auto& d : diagnostics) {
      std::cout << nas::lint::render(d) << "\n";
    }
    if (!quiet) {
      std::cerr << "nas_lint: " << diagnostics.size() << " finding"
                << (diagnostics.size() == 1 ? "" : "s") << "\n";
    }
    return diagnostics.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "nas_lint: " << e.what() << "\n";
    return 2;
  }
}
