// nas_served — long-running socket daemon serving the sharded cluster.
//
// Where nas_serve answers one batch and exits, nas_served binds a TCP port
// and answers the src/net line protocol until stopped:
//
//   Q <u> <v>   ->  "<u> <v> <d>"        (one line, nas_oracle byte format)
//   BATCH <n>   +   n "<u> <v>" lines -> n answer lines in request order
//   STATS       ->  one cluster+server stats JSON line
//   METRICS     ->  one metrics JSON line (histograms, replica counters)
//   QUIT        ->  "BYE", then the connection closes
//
//   # build from a generated graph and serve on an ephemeral port
//   ./nas_served --family er --n 2000 --eps 0.25 --shards 8 --port 0
//                --port-file port.txt
//
//   # warm from a snapshot, fixed port, 30s idle timeout
//   ./nas_served --load oracle.naso --shards 4 --port 7979
//                --idle-timeout-ms 30000
//
// The daemon prints "listening on <host>:<port>" to stderr once ready (and
// writes the bare port number to --port-file, for scripts that asked for
// port 0).  SIGINT/SIGTERM stop it gracefully: the listen socket closes,
// in-flight batches finish and flush (bounded by --drain-timeout-ms), then
// the process exits 0.  A second signal exits immediately.
//
// Answer lines are byte-identical to nas_oracle/nas_serve for the same
// requests at every --shards/--partition/--replicas/--route/--threads/
// --bfs-kernel value — CI's serving gate replays a workload through
// bench/serve_latency and cmp's the transcript against the nas_oracle
// answers file, at several replica counts and routing policies.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/snapshot.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "net/server.hpp"
#include "run/scenario.hpp"
#include "serve/cluster.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

using namespace nas;

namespace {

std::atomic<net::Server*> g_server{nullptr};

extern "C" void handle_stop_signal(int /*signum*/) {
  net::Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_stop();  // async-signal-safe
}

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the self-pipe wakes the loop anyway
  if (::sigaction(SIGINT, &action, nullptr) != 0 ||
      ::sigaction(SIGTERM, &action, nullptr) != 0) {
    throw std::runtime_error("nas_served: cannot install signal handlers");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);

    // Cluster source: snapshot path(s), or a graph + schedule to build from
    // (same flags as nas_serve).
    const std::string load_spec = flags.str(
        "load", "",
        "warm shards from snapshot path(s): one path replicates, a comma "
        "list is one snapshot per shard");
    const std::string family = flags.str(
        "family", "er", "graph family (or file:<path> for an edge list)");
    const auto n = static_cast<graph::Vertex>(
        flags.integer("n", 1024, "target vertex count (generated families)"));
    const auto seed = static_cast<std::uint64_t>(
        flags.integer("seed", 1, "graph generator seed"));
    const double eps = flags.real("eps", 0.25, "schedule epsilon");
    const int kappa =
        static_cast<int>(flags.integer("kappa", 3, "schedule kappa"));
    const double rho = flags.real("rho", 0.4, "schedule rho");
    const std::string mode =
        flags.str("mode", "practical", "schedule mode: practical|paper");

    const auto non_negative = [&](const char* name, std::int64_t fallback,
                                  const char* desc) {
      const auto parsed = flags.integer(name, fallback, desc);
      if (parsed < 0) {
        throw std::invalid_argument(std::string("flag --") + name +
                                    " must be non-negative, got " +
                                    std::to_string(parsed));
      }
      return parsed;
    };
    const auto shards = static_cast<unsigned>(
        non_negative("shards", 1, "serving shards (>= 1)"));
    if (shards == 0 && !flags.help_requested()) {
      throw std::invalid_argument("flag --shards must be >= 1, got 0");
    }
    const std::string partition =
        flags.str("partition", "hash", "vertex partitioner: hash|range");
    const auto replicas = static_cast<unsigned>(
        non_negative("replicas", 1, "replicas per shard (>= 1)"));
    if (replicas == 0 && !flags.help_requested()) {
      throw std::invalid_argument("flag --replicas must be >= 1, got 0");
    }
    const std::string route = flags.str(
        "route", "round-robin",
        "replica routing policy: round-robin|least-loaded|deterministic "
        "(answers are byte-identical for every choice)");
    const auto replica_queue_depth = static_cast<std::uint64_t>(non_negative(
        "replica-queue-depth", 0,
        "per-replica admission cap before shedding to the group, 0 = off"));
    const std::string snapshot_format_guard = flags.str(
        "snapshot-format", "auto",
        "require --load snapshots to be this format: auto|v1|v2 (auto "
        "accepts either; a mismatch is an error before any load runs)");
    const auto cache_budget = static_cast<std::uint64_t>(non_negative(
        "cache-budget", 64 << 20, "per-shard cache budget in bytes, 0 = off"));
    const auto threads = static_cast<unsigned>(non_negative(
        "threads", 1, "shard-execution pool slots per batch, 0 = all cores"));
    const std::string bfs_kernel_name = flags.str(
        "bfs-kernel", "auto",
        "BFS traversal kernel for every shard: topdown|hybrid|auto (answers "
        "are byte-identical for every choice)");

    // Daemon flags.
    const std::string listen =
        flags.str("listen", "127.0.0.1", "IPv4 address to bind");
    const auto port = static_cast<std::uint16_t>(
        non_negative("port", 0, "TCP port, 0 = kernel-assigned ephemeral"));
    const std::string port_file = flags.str(
        "port-file", "",
        "write the bound port number to this file once listening");
    const auto max_conns = static_cast<std::size_t>(non_negative(
        "max-conns", 256, "concurrent connections before \"ERR server busy\""));
    const auto idle_timeout_ms = static_cast<std::uint64_t>(non_negative(
        "idle-timeout-ms", 60000, "close connections idle this long, 0 = off"));
    const auto max_batch = static_cast<std::uint64_t>(
        non_negative("max-batch", 1 << 16, "largest accepted BATCH count"));
    const auto queue_depth = static_cast<std::size_t>(non_negative(
        "queue-depth", 64, "bridge jobs buffered before backpressure"));
    const auto drain_timeout_ms = static_cast<std::uint64_t>(non_negative(
        "drain-timeout-ms", 5000,
        "graceful-shutdown bound for flushing in-flight batches"));
    const std::string stats_path = flags.str(
        "stats-json", "",
        "write final cluster + server stats JSON here on clean shutdown");

    if (flags.handle_help(
            "nas_served — serve the sharded distance-oracle cluster over a "
            "TCP line protocol")) {
      return 0;
    }
    flags.reject_unknown();
    if (snapshot_format_guard != "auto" && snapshot_format_guard != "v1" &&
        snapshot_format_guard != "v2") {
      throw std::invalid_argument(
          "flag --snapshot-format must be auto|v1|v2, got \"" +
          snapshot_format_guard + "\"");
    }
    if (snapshot_format_guard != "auto" && !load_spec.empty()) {
      const auto want = apps::parse_snapshot_format(snapshot_format_guard);
      for (const auto& path : run::split_list(load_spec)) {
        const auto have = apps::detect_snapshot_format(path);
        if (have != want) {
          throw std::runtime_error(
              std::string("snapshot ") + path + " is " +
              apps::snapshot_format_name(have) + " but --snapshot-format " +
              snapshot_format_guard + " was requested");
        }
      }
    }

    const serve::ClusterOptions cluster_options{
        .shards = shards,
        .partition = partition,
        .replicas = replicas,
        .route = route,
        .replica_queue_depth = replica_queue_depth,
        .shard_cache_budget_bytes = cache_budget,
        .bfs_kernel = graph::parse_bfs_kernel(bfs_kernel_name)};
    serve::ShardedCluster cluster = [&] {
      if (!load_spec.empty()) {
        return serve::ShardedCluster::from_snapshot_files(
            run::split_list(load_spec), cluster_options);
      }
      const graph::Graph g = family.rfind("file:", 0) == 0
                                 ? graph::read_edge_list_file(family.substr(5))
                                 : graph::make_workload(family, n, seed);
      const auto params =
          mode == "paper"
              ? core::Params::paper(g.num_vertices(), eps, kappa, rho)
              : core::Params::practical(g.num_vertices(), eps, kappa, rho);
      const auto result = core::build_spanner(g, params, {.validate = false});
      return serve::ShardedCluster(result.spanner,
                                   params.stretch_multiplicative(),
                                   params.stretch_additive(), cluster_options);
    }();
    std::cerr << "cluster: " << cluster.num_shards() << " shards ("
              << cluster.partitioner().name() << " partition), "
              << cluster.num_replicas() << " replicas/shard ("
              << serve::route_policy_name(cluster.route_policy())
              << " routing), " << cluster.shard(0).summary() << " per shard\n";

    net::ServerOptions server_options;
    server_options.listen = listen;
    server_options.port = port;
    server_options.max_conns = max_conns;
    server_options.idle_timeout_ms = idle_timeout_ms;
    server_options.max_batch = max_batch;
    server_options.queue_depth = queue_depth;
    server_options.serve_threads = threads;
    server_options.drain_timeout_ms = drain_timeout_ms;

    net::Server server(cluster, server_options);
    g_server.store(&server, std::memory_order_release);
    install_stop_handlers();

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) {
        throw std::runtime_error("cannot open port file " + port_file);
      }
      out << server.port() << "\n";
    }
    std::cerr << "listening on " << listen << ":" << server.port() << "\n";

    server.run();
    g_server.store(nullptr, std::memory_order_release);

    const net::ServerTotals& totals = server.totals();
    std::cerr << "served " << totals.requests << " requests ("
              << totals.batches << " batches) over "
              << totals.connections_accepted << " connections ("
              << totals.connections_rejected << " rejected, "
              << totals.idle_closed << " idle-closed, "
              << totals.protocol_errors << " protocol errors)\n";

    if (!stats_path.empty()) {
      util::JsonObject fields =
          serve::cluster_stats_fields(cluster, totals.cluster);
      fields.emplace_back("connections_accepted",
                          util::JsonValue::number(totals.connections_accepted));
      fields.emplace_back("connections_rejected",
                          util::JsonValue::number(totals.connections_rejected));
      fields.emplace_back("served_requests",
                          util::JsonValue::number(totals.requests));
      fields.emplace_back("served_batches",
                          util::JsonValue::number(totals.batches));
      fields.emplace_back("stats_requests",
                          util::JsonValue::number(totals.stats_requests));
      fields.emplace_back("metrics_requests",
                          util::JsonValue::number(totals.metrics_requests));
      fields.emplace_back("protocol_errors",
                          util::JsonValue::number(totals.protocol_errors));
      fields.emplace_back("idle_closed",
                          util::JsonValue::number(totals.idle_closed));
      std::ofstream out(stats_path);
      if (!out) {
        throw std::runtime_error("cannot open stats file " + stats_path);
      }
      out << util::render_json_object(fields) << "\n";
      std::cerr << "wrote stats to " << stats_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "nas_served: error: " << e.what() << "\n";
    return 2;
  }
}
