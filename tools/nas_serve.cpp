// nas_serve — build or warm a sharded serving cluster and serve batches.
//
// The cluster-scale counterpart to nas_oracle: where nas_oracle operates one
// DistanceOracle, nas_serve partitions serving across N shard oracles behind
// a deterministic Router (serve::ShardedCluster) — the process shape of a
// partitioned deployment, driven from one binary so CI can compare it
// byte-for-byte against the single-oracle baseline.
//
//   # build from a generated graph, serve a zipfian batch over 8 shards
//   ./nas_serve --family er --n 2000 --eps 0.25 --shards 8 --partition hash
//               --workload zipf --queries 20000 --answers out.txt
//
//   # warm every shard from a NAS-ORACLE snapshot (one path = replicated;
//   # a comma list = one snapshot per shard)
//   ./nas_serve --load oracle.naso --shards 8 --workload zipf --queries 20000
//
//   # answer an explicit query file ("u v" lines, '#' comments)
//   ./nas_serve --load oracle.naso --shards 4 --query-file pairs.txt
//
// The answers file has one "u v d" line per request in request order — the
// same format nas_oracle writes — and is byte-identical at every --shards,
// --partition, --threads, --cache-budget, and --bfs-kernel value.  CI's
// serving-cluster gate cmp's it against the nas_oracle output for the same
// workload.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/query_workload.hpp"
#include "apps/snapshot.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "run/scenario.hpp"
#include "serve/cluster.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace nas;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);

    // Cluster source: snapshot path(s), or a graph + schedule to build from.
    const std::string load_spec = flags.str(
        "load", "",
        "warm shards from snapshot path(s): one path replicates, a comma "
        "list is one snapshot per shard");
    const std::string family = flags.str(
        "family", "er", "graph family (or file:<path> for an edge list)");
    const auto n = static_cast<graph::Vertex>(
        flags.integer("n", 1024, "target vertex count (generated families)"));
    const auto seed = static_cast<std::uint64_t>(
        flags.integer("seed", 1, "graph generator seed"));
    const double eps = flags.real("eps", 0.25, "schedule epsilon");
    const int kappa =
        static_cast<int>(flags.integer("kappa", 3, "schedule kappa"));
    const double rho = flags.real("rho", 0.4, "schedule rho");
    const std::string mode =
        flags.str("mode", "practical", "schedule mode: practical|paper");

    const auto non_negative = [&](const char* name, std::int64_t fallback,
                                  const char* desc) {
      const auto parsed = flags.integer(name, fallback, desc);
      if (parsed < 0) {
        throw std::invalid_argument(std::string("flag --") + name +
                                    " must be non-negative, got " +
                                    std::to_string(parsed));
      }
      return parsed;
    };
    const auto shards = static_cast<unsigned>(
        non_negative("shards", 1, "serving shards (>= 1)"));
    // Fail fast: the Partitioner would reject 0 too, but only after the
    // whole spanner build or snapshot load already ran.
    if (shards == 0 && !flags.help_requested()) {
      throw std::invalid_argument("flag --shards must be >= 1, got 0");
    }
    const std::string partition =
        flags.str("partition", "hash", "vertex partitioner: hash|range");
    const auto replicas = static_cast<unsigned>(
        non_negative("replicas", 1, "replicas per shard (>= 1)"));
    if (replicas == 0 && !flags.help_requested()) {
      throw std::invalid_argument("flag --replicas must be >= 1, got 0");
    }
    const std::string route = flags.str(
        "route", "round-robin",
        "replica routing policy: round-robin|least-loaded|deterministic "
        "(answers are byte-identical for every choice)");
    const auto replica_queue_depth = static_cast<std::uint64_t>(non_negative(
        "replica-queue-depth", 0,
        "per-replica admission cap before shedding to the group, 0 = off"));
    const std::string snapshot_format_guard = flags.str(
        "snapshot-format", "auto",
        "require --load snapshots to be this format: auto|v1|v2 (auto "
        "accepts either; a mismatch is an error before any load runs)");
    const auto cache_budget = static_cast<std::uint64_t>(non_negative(
        "cache-budget", 64 << 20, "per-shard cache budget in bytes, 0 = off"));
    const auto threads = static_cast<unsigned>(non_negative(
        "threads", 1, "shard-execution pool slots, 0 = all cores"));
    const std::string bfs_kernel_name = flags.str(
        "bfs-kernel", "auto",
        "BFS traversal kernel for every shard: topdown|hybrid|auto (answers "
        "are byte-identical for every choice)");

    // Requests: an explicit file, or a generated workload.
    const std::string query_file = flags.str(
        "query-file", "", "answer 'u v' request lines from this file");
    const std::string workload = flags.str(
        "workload", "", "generate requests: uniform|zipf (empty = none)");
    const auto num_queries = static_cast<std::uint64_t>(
        non_negative("queries", 1000, "generated requests"));
    const auto workload_seed = static_cast<std::uint64_t>(
        flags.integer("workload-seed", 1, "request-generator seed"));
    const double zipf_theta =
        flags.real("zipf-theta", 0.99, "zipf skew exponent");

    const std::string answers_path =
        flags.str("answers", "", "write 'u v d' answer lines to this file");
    const std::string stats_path = flags.str(
        "stats-json", "", "write cluster + per-shard stats JSON to this file");

    if (flags.handle_help(
            "nas_serve — partition distance-oracle serving across a sharded "
            "cluster")) {
      return 0;
    }
    flags.reject_unknown();
    if (snapshot_format_guard != "auto" && snapshot_format_guard != "v1" &&
        snapshot_format_guard != "v2") {
      throw std::invalid_argument(
          "flag --snapshot-format must be auto|v1|v2, got \"" +
          snapshot_format_guard + "\"");
    }
    if (snapshot_format_guard != "auto" && !load_spec.empty()) {
      // Deployment guard: a cluster pinned to one encoding refuses to warm
      // from the other, before any shard loads (cheap magic-byte sniff).
      const auto want = apps::parse_snapshot_format(snapshot_format_guard);
      for (const auto& path : run::split_list(load_spec)) {
        const auto have = apps::detect_snapshot_format(path);
        if (have != want) {
          throw std::runtime_error(
              std::string("snapshot ") + path + " is " +
              apps::snapshot_format_name(have) + " but --snapshot-format " +
              snapshot_format_guard + " was requested");
        }
      }
    }

    const serve::ClusterOptions cluster_options{
        .shards = shards,
        .partition = partition,
        .replicas = replicas,
        .route = route,
        .replica_queue_depth = replica_queue_depth,
        .shard_cache_budget_bytes = cache_budget,
        .bfs_kernel = graph::parse_bfs_kernel(bfs_kernel_name)};
    util::Timer build_timer;
    serve::ShardedCluster cluster = [&] {
      if (!load_spec.empty()) {
        return serve::ShardedCluster::from_snapshot_files(
            run::split_list(load_spec), cluster_options);
      }
      const graph::Graph g = family.rfind("file:", 0) == 0
                                 ? graph::read_edge_list_file(family.substr(5))
                                 : graph::make_workload(family, n, seed);
      const auto params =
          mode == "paper"
              ? core::Params::paper(g.num_vertices(), eps, kappa, rho)
              : core::Params::practical(g.num_vertices(), eps, kappa, rho);
      const auto result = core::build_spanner(g, params, {.validate = false});
      return serve::ShardedCluster(result.spanner,
                                   params.stretch_multiplicative(),
                                   params.stretch_additive(), cluster_options);
    }();
    const double build_ms = build_timer.millis();
    std::cerr << "cluster: " << cluster.num_shards() << " shards ("
              << cluster.partitioner().name() << " partition), "
              << cluster.num_replicas() << " replicas/shard ("
              << serve::route_policy_name(cluster.route_policy())
              << " routing), " << cluster.shard(0).summary() << " per shard, "
              << "guarantee d_H <= " << cluster.multiplicative() << "*d_G + "
              << cluster.additive() << ", cache capacity "
              << cluster.shard(0).cache_capacity() << " sources/shard\n";

    std::vector<apps::Query> queries;
    if (!query_file.empty()) {
      queries = apps::read_query_file(query_file);
    } else if (!workload.empty()) {
      queries = apps::make_query_workload(
          cluster.universe(),
          {workload, num_queries, workload_seed, zipf_theta});
    }

    serve::ClusterStats stats;
    std::vector<std::uint32_t> answers;
    util::Timer serve_timer;
    if (!queries.empty()) {
      answers = cluster.serve(queries, threads, &stats);
    }
    const double serve_ms = serve_timer.millis();

    if (!queries.empty()) {
      std::cerr << "served " << stats.requests << " requests across "
                << stats.shards_used << "/" << cluster.num_shards()
                << " shards (" << stats.distinct_sources << " sources, "
                << stats.cache_hits << " cached, " << stats.bfs_passes
                << " BFS, " << stats.evictions << " evictions)\n";
    }
    if (!answers_path.empty()) {
      // Same contract as nas_oracle: the file is created even for an empty
      // request set, but answers with no request source is a usage error.
      if (query_file.empty() && workload.empty()) {
        throw std::runtime_error(
            "--answers needs requests: pass --query-file or --workload");
      }
      std::ofstream out(answers_path);
      if (!out) {
        throw std::runtime_error("cannot open answers file " + answers_path);
      }
      apps::write_answers(queries, answers, out);
      std::cerr << "wrote " << queries.size() << " answers to " << answers_path
                << "\n";
    } else if (!queries.empty()) {
      apps::write_answers(queries, answers, std::cout);
    }

    if (!stats_path.empty()) {
      // Shared schema (serve::cluster_stats_fields — the same core
      // nas_served's STATS command emits) plus this tool's one-shot extras.
      util::JsonObject fields = serve::cluster_stats_fields(cluster, stats);
      fields.emplace_back(
          "digest", util::JsonValue::hex64(apps::digest_answers(answers)));
      fields.emplace_back("build_ms",
                          util::JsonValue::literal(run::format_real(build_ms, 4)));
      fields.emplace_back("serve_ms",
                          util::JsonValue::literal(run::format_real(serve_ms, 4)));
      std::ofstream out(stats_path);
      if (!out) {
        throw std::runtime_error("cannot open stats file " + stats_path);
      }
      out << util::render_json_object(fields) << "\n";
      std::cerr << "wrote stats to " << stats_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "nas_serve: error: " << e.what() << "\n";
    return 2;
  }
}
