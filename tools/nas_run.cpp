// nas_run — the declarative experiment pipeline entry point.
//
// Expands a scenario matrix (from a scenario file, matrix flags, or both —
// flags refine the file), executes every scenario on Runner workers, prints
// a result table, and writes the unified JSON/CSV row schema.  Replaces the
// ad-hoc shell loops over per-figure binaries:
//
//   # 3 families x 2 sizes x 2 eps, verified, 4 runner workers
//   ./nas_run --family er,grid,ba --n 512,1024 --eps 0.25,0.5
//             --verify 16 --threads 4 --json results.json
//
//   # the same matrix as a scenario file
//   ./nas_run --scenario experiments/smoke.scenario --json results.json
//
// Output determinism: without --timing, the JSON/CSV bytes are identical at
// any --threads / --verify-threads value (rows are emitted in matrix order
// and every field is a pure function of the spec).
#include <iostream>

#include "run/runner.hpp"
#include "run/sinks.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nas;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    const std::string scenario_path =
        flags.str("scenario", "", "scenario file (key = value[, ...] lines)");
    const auto threads = static_cast<unsigned>(
        flags.integer("threads", 1, "runner workers, 0 = all cores"));
    const std::string json_path =
        flags.str("json", "", "write unified JSON rows to this file");
    const std::string csv_path =
        flags.str("csv", "", "write unified CSV rows to this file");
    const bool timing = flags.boolean(
        "timing", false, "include wall-clock columns (nondeterministic)");
    const bool table =
        flags.boolean("table", true, "print the result table to stdout");
    const bool quiet =
        flags.boolean("quiet", false, "suppress per-scenario progress lines");

    run::ScenarioMatrix matrix;
    if (!scenario_path.empty() && !flags.help_requested()) {
      matrix = run::ScenarioMatrix::from_file(scenario_path);
    }
    matrix.apply_flags(flags);
    if (flags.handle_help(
            "nas_run — expand a scenario matrix and run every experiment")) {
      return 0;
    }
    flags.reject_unknown();

    const auto specs = matrix.expand();
    if (!quiet) {
      std::cerr << "nas_run: " << specs.size() << " scenarios, " << "threads="
                << threads << "\n";
    }

    run::Runner runner;
    run::RunOptions run_options;
    run_options.threads = threads;
    run_options.progress = !quiet;
    const auto rows = runner.run(specs, run_options);

    if (table) {
      util::Table t({"scenario", "n", "m", "|H|", "rounds", "verify",
                     "status"});
      for (const auto& row : rows) {
        t.add_row({row.spec.id(), std::to_string(row.n), std::to_string(row.m),
                   std::to_string(row.spanner_edges),
                   std::to_string(row.rounds),
                   row.verified ? std::to_string(row.report.pairs_checked) +
                                      " pairs"
                                : "-",
                   row.ok ? (row.passed() ? "ok" : "BOUND VIOLATED")
                          : row.error});
      }
      t.print(std::cout);
    }

    run::SinkOptions sink_options;
    sink_options.timing = timing;
    if (!json_path.empty()) {
      run::write_json(rows, json_path, sink_options);
      std::cerr << "wrote " << rows.size() << " rows to " << json_path << "\n";
    }
    if (!csv_path.empty()) {
      run::write_csv(rows, csv_path, sink_options);
      std::cerr << "wrote " << rows.size() << " rows to " << csv_path << "\n";
    }

    const auto stats = runner.cache().stats();
    if (!quiet) {
      std::cerr << "graph cache: " << stats.misses << " built, " << stats.hits
                << " reused\n";
    }

    std::size_t failed = 0;
    for (const auto& row : rows) {
      if (!row.passed()) ++failed;
    }
    if (failed > 0) {
      std::cerr << "nas_run: " << failed << "/" << rows.size()
                << " scenarios failed\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "nas_run: error: " << e.what() << "\n";
    return 2;
  }
}
