// nas_oracle — build, snapshot, and serve a spanner-backed distance oracle.
//
// The serving-side counterpart to nas_run: where nas_run sweeps construction
// experiments, nas_oracle operates one oracle — build it from a graph (or
// load a snapshot), optionally save the snapshot, then answer a batch of
// queries from a file or a generated workload.
//
//   # build from a generated graph, save the serving snapshot
//   ./nas_oracle --family er --n 2000 --seed 1 --eps 0.25 --save oracle.naso
//
//   # migrate a v1 text snapshot to the v2 binary (mmap-able) format
//   ./nas_oracle --load oracle.naso --convert oracle.naso2 --snapshot-format v2
//
//   # serve a zipfian heavy-traffic batch from the snapshot, 8 shards
//   ./nas_oracle --load oracle.naso --workload zipf --queries 20000
//                --query-threads 8 --cache-budget 16777216 --answers out.txt
//
//   # answer an explicit query file ("u v" lines, '#' comments)
//   ./nas_oracle --load oracle.naso --query-file pairs.txt --answers out.txt
//
// The answers file has one "u v d" line per request in request order (d is
// "inf" for disconnected pairs) and is byte-identical at every
// --query-threads value, every --cache-budget, and every --bfs-kernel —
// that invariant is CI's cmp gate over this binary.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "run/scenario.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace nas;

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);

    // Oracle source: a snapshot, or a graph + schedule to build from.
    const std::string load_path =
        flags.str("load", "", "load a serving snapshot instead of building");
    const std::string family = flags.str(
        "family", "er", "graph family (or file:<path> for an edge list)");
    const auto n = static_cast<graph::Vertex>(
        flags.integer("n", 1024, "target vertex count (generated families)"));
    const auto seed = static_cast<std::uint64_t>(
        flags.integer("seed", 1, "graph generator seed"));
    const double eps = flags.real("eps", 0.25, "schedule epsilon");
    const int kappa = static_cast<int>(flags.integer("kappa", 3, "schedule kappa"));
    const double rho = flags.real("rho", 0.4, "schedule rho");
    const std::string mode =
        flags.str("mode", "practical", "schedule mode: practical|paper");
    const std::string save_path =
        flags.str("save", "", "write the serving snapshot to this path");
    const std::string convert_path = flags.str(
        "convert", "",
        "write the loaded/built oracle as a fresh snapshot to this path "
        "(migration between --snapshot-format encodings)");
    const std::string snapshot_format_name = flags.str(
        "snapshot-format", "v1",
        "encoding for --save/--convert: v1 (text) | v2 (binary, mmap-able); "
        "--load auto-detects");

    // Serving configuration.  Negative values would wrap to huge unsigned
    // ones (an accidentally unbounded cache), so they are rejected here.
    const auto non_negative = [&](const char* name, std::int64_t fallback,
                                  const char* desc) {
      const auto parsed = flags.integer(name, fallback, desc);
      if (parsed < 0) {
        throw std::invalid_argument(std::string("flag --") + name +
                                    " must be non-negative, got " +
                                    std::to_string(parsed));
      }
      return parsed;
    };
    const auto cache_budget = static_cast<std::uint64_t>(non_negative(
        "cache-budget", 64 << 20, "source-cache budget in bytes, 0 = off"));
    const auto query_threads = static_cast<unsigned>(non_negative(
        "query-threads", 1, "batch-query shards, 0 = all cores"));
    const std::string bfs_kernel_name = flags.str(
        "bfs-kernel", "auto",
        "BFS traversal kernel: topdown|hybrid|auto (answers are "
        "byte-identical for every choice)");

    // Requests: an explicit file, or a generated workload.
    const std::string query_file =
        flags.str("query-file", "", "answer 'u v' request lines from this file");
    const std::string workload = flags.str(
        "workload", "", "generate requests: uniform|zipf (empty = none)");
    const auto num_queries = static_cast<std::uint64_t>(
        non_negative("queries", 1000, "generated requests"));
    const auto workload_seed = static_cast<std::uint64_t>(
        flags.integer("workload-seed", 1, "request-generator seed"));
    const double zipf_theta =
        flags.real("zipf-theta", 0.99, "zipf skew exponent");

    const std::string answers_path =
        flags.str("answers", "", "write 'u v d' answer lines to this file");
    const std::string stats_path =
        flags.str("stats-json", "", "write serving stats JSON to this file");

    if (flags.handle_help(
            "nas_oracle — build/save/load a distance oracle and serve query "
            "batches")) {
      return 0;
    }
    flags.reject_unknown();
    const auto snapshot_format =
        apps::parse_snapshot_format(snapshot_format_name);

    const apps::OracleOptions oracle_options{
        .cache_budget_bytes = cache_budget,
        .bfs_kernel = graph::parse_bfs_kernel(bfs_kernel_name)};
    util::Timer build_timer;
    apps::SpannerDistanceOracle oracle = [&] {
      if (!load_path.empty()) {
        return apps::SpannerDistanceOracle::load_file(load_path,
                                                      oracle_options);
      }
      const graph::Graph g = family.rfind("file:", 0) == 0
                                 ? graph::read_edge_list_file(family.substr(5))
                                 : graph::make_workload(family, n, seed);
      const auto params =
          mode == "paper"
              ? core::Params::paper(g.num_vertices(), eps, kappa, rho)
              : core::Params::practical(g.num_vertices(), eps, kappa, rho);
      return apps::SpannerDistanceOracle(g, params, oracle_options);
    }();
    const double build_ms = build_timer.millis();
    std::cerr << "oracle: " << oracle.summary() << ", guarantee d_H <= "
              << oracle.multiplicative() << "*d_G + " << oracle.additive()
              << ", cache capacity " << oracle.cache_capacity()
              << " sources\n";

    if (!save_path.empty()) {
      oracle.save_file(save_path, snapshot_format);
      std::cerr << "saved " << apps::snapshot_format_name(snapshot_format)
                << " snapshot to " << save_path << "\n";
    }
    if (!convert_path.empty()) {
      oracle.save_file(convert_path, snapshot_format);
      std::cerr << "converted snapshot to "
                << apps::snapshot_format_name(snapshot_format) << " at "
                << convert_path << "\n";
    }

    std::vector<apps::Query> queries;
    if (!query_file.empty()) {
      queries = apps::read_query_file(query_file);
    } else if (!workload.empty()) {
      queries = apps::make_query_workload(
          oracle.num_vertices(),
          {workload, num_queries, workload_seed, zipf_theta});
    }

    apps::BatchStats stats;
    std::vector<std::uint32_t> answers;
    util::Timer serve_timer;
    if (!queries.empty()) {
      answers = oracle.batch_query(queries, query_threads, &stats);
    }
    const double serve_ms = serve_timer.millis();

    if (!queries.empty()) {
      std::cerr << "served " << stats.queries << " queries ("
                << stats.distinct_sources << " sources, " << stats.cache_hits
                << " cached, " << stats.bfs_passes << " BFS, "
                << stats.evictions << " evictions)\n";
    }
    if (!answers_path.empty()) {
      // The file is created even for an empty request set (a query file of
      // only comments, --queries 0) so downstream cmp-style gates compare
      // real output instead of failing on a missing file; asking for
      // answers with no request source at all is a usage error.
      if (query_file.empty() && workload.empty()) {
        throw std::runtime_error(
            "--answers needs requests: pass --query-file or --workload");
      }
      std::ofstream out(answers_path);
      if (!out) {
        throw std::runtime_error("cannot open answers file " + answers_path);
      }
      apps::write_answers(queries, answers, out);
      std::cerr << "wrote " << queries.size() << " answers to " << answers_path
                << "\n";
    } else if (!queries.empty()) {
      apps::write_answers(queries, answers, std::cout);
    }

    if (!stats_path.empty()) {
      const util::JsonObject fields{
          {"spanner_edges",
           util::JsonValue::number(
               static_cast<std::uint64_t>(oracle.spanner_edges()))},
          {"guarantee_mult",
           util::JsonValue::literal(run::format_real(oracle.multiplicative()))},
          {"guarantee_add",
           util::JsonValue::literal(run::format_real(oracle.additive()))},
          {"cache_capacity", util::JsonValue::number(oracle.cache_capacity())},
          {"queries", util::JsonValue::number(stats.queries)},
          {"distinct_sources", util::JsonValue::number(stats.distinct_sources)},
          {"cache_hits", util::JsonValue::number(stats.cache_hits)},
          {"bfs_passes", util::JsonValue::number(stats.bfs_passes)},
          {"evictions", util::JsonValue::number(stats.evictions)},
          {"digest", util::JsonValue::hex64(apps::digest_answers(answers))},
          {"build_ms",
           util::JsonValue::literal(run::format_real(build_ms, 4))},
          {"serve_ms",
           util::JsonValue::literal(run::format_real(serve_ms, 4))},
      };
      std::ofstream out(stats_path);
      if (!out) throw std::runtime_error("cannot open stats file " + stats_path);
      out << util::render_json_object(fields) << "\n";
      std::cerr << "wrote stats to " << stats_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "nas_oracle: error: " << e.what() << "\n";
    return 2;
  }
}
