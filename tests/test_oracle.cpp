// Tests for the concurrent distance-oracle serving layer: batch-answer
// bit-identity across thread counts and cache budgets, deterministic cache
// eviction, snapshot round-trips, the malformed-snapshot corpus (mirroring
// the read_edge_list line-numbered-error contract), and the query-workload
// generator.  Per the repo's single-core bench policy these tests assert
// determinism, never wall-clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "core/elkin_matar.hpp"
#include "graph/apsp.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using apps::Query;
using apps::SpannerDistanceOracle;
using core::Params;
using graph::Graph;
using graph::Vertex;

core::SpannerResult build_result(const Graph& g) {
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  return core::build_spanner(g, params, {.validate = false});
}

TEST(OracleBatch, BitIdenticalAcrossThreadsAndBudgets) {
  const Graph g = graph::make_workload("er", 300, 3);
  auto result = build_result(g);
  const auto queries = apps::make_query_workload(
      g.num_vertices(), {"zipf", 600, 11, 0.99});

  // Reference: serial, unbounded-ish budget.
  const SpannerDistanceOracle reference(std::move(result));
  const auto expected = reference.batch_query(queries, 1);
  const auto expected_digest = apps::digest_answers(expected);

  const Graph& spanner = reference.spanner();
  for (const std::uint64_t budget :
       {std::uint64_t{0}, std::uint64_t{8} * g.num_vertices(),
        std::uint64_t{64} << 20}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const SpannerDistanceOracle oracle(
          spanner, reference.multiplicative(), reference.additive(),
          {.cache_budget_bytes = budget});
      apps::BatchStats stats;
      const auto answers = oracle.batch_query(queries, threads, &stats);
      ASSERT_EQ(answers, expected)
          << "budget=" << budget << " threads=" << threads;
      EXPECT_EQ(apps::digest_answers(answers), expected_digest);
      EXPECT_EQ(stats.queries, queries.size());
      EXPECT_EQ(stats.cache_hits + stats.bfs_passes, stats.distinct_sources);
    }
  }
}

TEST(OracleBatch, SecondBatchServedFromCache) {
  const Graph g = graph::make_workload("er", 200, 5);
  const SpannerDistanceOracle oracle(build_result(g));
  const auto queries =
      apps::make_query_workload(g.num_vertices(), {"uniform", 200, 7, 0.0});
  apps::BatchStats first, second;
  const auto a1 = oracle.batch_query(queries, 2, &first);
  const auto a2 = oracle.batch_query(queries, 4, &second);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(first.bfs_passes, 0u);
  // Batch two picks cached endpoints as sources, so every request is a hit
  // (the distinct-source *set* may legitimately differ from batch one).
  EXPECT_EQ(second.bfs_passes, 0u);
  EXPECT_EQ(second.cache_hits, second.distinct_sources);
  EXPECT_EQ(oracle.bfs_passes(), first.bfs_passes);
}

TEST(OracleBatch, MatchesSingleQueriesAndHandlesEdgeCases) {
  const Graph g = graph::make_workload("grid", 144, 1);
  const SpannerDistanceOracle oracle(build_result(g));
  const std::vector<Query> queries{{0, 17}, {17, 0}, {5, 5}, {3, 140}};
  const auto answers = oracle.batch_query(queries, 2);
  ASSERT_EQ(answers.size(), queries.size());
  EXPECT_EQ(answers[0], answers[1]);  // symmetric
  EXPECT_EQ(answers[2], 0u);          // u == v
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(oracle.query(queries[i].u, queries[i].v), answers[i]);
  }
  EXPECT_THROW((void)oracle.batch_query(std::vector<Query>{{0, 9999}}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)oracle.query(9999, 0), std::invalid_argument);
}

TEST(OracleBatch, DisconnectedPairsReportInf) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto params = Params::practical(6, 0.5, 3, 0.4);
  const SpannerDistanceOracle oracle(g, params);
  const auto answers = oracle.batch_query(std::vector<Query>{{0, 2}, {0, 1}}, 2);
  EXPECT_EQ(answers[0], graph::kInfDist);
  EXPECT_EQ(answers[1], 1u);
}

TEST(OracleCache, DeterministicLruEvictionWithinBudget) {
  const Graph g = graph::make_workload("er", 100, 9);
  const auto n = g.num_vertices();
  // Budget for exactly two cached sources.
  const SpannerDistanceOracle oracle(
      build_result(g),
      {.cache_budget_bytes = 2ull * n * sizeof(std::uint32_t)});
  ASSERT_EQ(oracle.cache_capacity(), 2u);

  (void)oracle.query(5, 50);   // caches 5
  (void)oracle.query(10, 50);  // caches 10
  (void)oracle.query(20, 50);  // caches 20, evicts 5 (oldest)
  EXPECT_EQ(oracle.cached_sources(), 2u);
  EXPECT_EQ(oracle.evictions(), 1u);
  EXPECT_EQ(oracle.bfs_passes(), 3u);
  (void)oracle.query(10, 60);  // still cached -> no BFS
  EXPECT_EQ(oracle.bfs_passes(), 3u);
  (void)oracle.query(5, 60);  // was evicted -> BFS again
  EXPECT_EQ(oracle.bfs_passes(), 4u);
}

TEST(OracleCache, ZeroBudgetDisablesCachingButNotAnswers) {
  const Graph g = graph::make_workload("er", 150, 4);
  auto result = build_result(g);
  const SpannerDistanceOracle unbounded(result.spanner, 2.0, 10.0);
  const SpannerDistanceOracle uncached(result.spanner, 2.0, 10.0,
                                       {.cache_budget_bytes = 0});
  EXPECT_EQ(uncached.cache_capacity(), 0u);
  const auto queries =
      apps::make_query_workload(g.num_vertices(), {"uniform", 100, 3, 0.0});
  EXPECT_EQ(uncached.batch_query(queries, 2), unbounded.batch_query(queries, 2));
  EXPECT_EQ(uncached.cached_sources(), 0u);
}

// --- snapshot ----------------------------------------------------------------

TEST(OracleSnapshot, RoundTripPreservesAnswersParamsAndGuarantee) {
  const Graph g = graph::make_workload("ba", 250, 7);
  const SpannerDistanceOracle original(build_result(g));
  ASSERT_TRUE(original.params().has_value());

  std::stringstream snapshot;
  original.save(snapshot);
  const auto loaded = SpannerDistanceOracle::load(snapshot);

  EXPECT_EQ(loaded.spanner_edges(), original.spanner_edges());
  EXPECT_EQ(loaded.spanner().num_vertices(), original.spanner().num_vertices());
  EXPECT_EQ(loaded.multiplicative(), original.multiplicative());
  EXPECT_EQ(loaded.additive(), original.additive());
  ASSERT_TRUE(loaded.params().has_value());
  EXPECT_EQ(loaded.params()->kappa(), original.params()->kappa());
  EXPECT_EQ(loaded.params()->ell(), original.params()->ell());

  const auto queries = apps::make_query_workload(
      g.num_vertices(), {"zipf", 400, 13, 1.1});
  EXPECT_EQ(loaded.batch_query(queries, 2), original.batch_query(queries, 2));
}

TEST(OracleSnapshot, FileRoundTripAndPaperMode) {
  const Graph g = graph::make_workload("er", 120, 2);
  const auto params = Params::paper(g.num_vertices(), 0.5, 3, 0.4);
  const SpannerDistanceOracle original(g, params);
  const std::string path = ::testing::TempDir() + "oracle_roundtrip.naso";
  original.save_file(path);
  const auto loaded = SpannerDistanceOracle::load_file(path);
  EXPECT_EQ(loaded.multiplicative(), original.multiplicative());
  EXPECT_EQ(loaded.additive(), original.additive());
  ASSERT_TRUE(loaded.params().has_value());
  EXPECT_TRUE(loaded.params()->is_paper_mode());
  const auto queries =
      apps::make_query_workload(g.num_vertices(), {"uniform", 150, 1, 0.0});
  EXPECT_EQ(loaded.batch_query(queries, 8), original.batch_query(queries, 1));
}

TEST(OracleSnapshot, BaselineWithoutParamsRoundTrips) {
  const Graph g = graph::make_workload("grid", 100, 1);
  const SpannerDistanceOracle original(g, 3.0, 2.0);  // externally proven
  std::stringstream snapshot;
  original.save(snapshot);
  EXPECT_NE(snapshot.str().find("params none"), std::string::npos);
  const auto loaded = SpannerDistanceOracle::load(snapshot);
  EXPECT_FALSE(loaded.params().has_value());
  EXPECT_EQ(loaded.multiplicative(), 3.0);
  EXPECT_EQ(loaded.additive(), 2.0);
  EXPECT_EQ(loaded.spanner_edges(), g.num_edges());
}

// The malformed-snapshot corpus, mirroring read_edge_list's line-numbered
// errors: every rejection names the offending line of the enclosing file.
void expect_load_error(const std::string& text, const std::string& expected) {
  std::istringstream in(text);
  try {
    (void)SpannerDistanceOracle::load(in);
    FAIL() << "expected rejection of: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(OracleSnapshot, MalformedCorpusRejectedWithLineNumbers) {
  // Truncations at every stage.
  expect_load_error("", "truncated snapshot");
  expect_load_error("", "line 1");
  expect_load_error("NAS-ORACLE v1\n", "line 2");
  expect_load_error("NAS-ORACLE v1\nparams none\n", "line 3");
  // Bad magic (wrong tool, wrong version).
  expect_load_error("NAS-ORACLE v9\nparams none\n", "bad magic");
  expect_load_error("5 4\n0 1\n", "bad magic");
  // Malformed params / guarantee lines.
  expect_load_error("NAS-ORACLE v1\nschedule none\n", "params line");
  expect_load_error("NAS-ORACLE v1\nparams sideways 1 2 3 4\n",
                    "unknown params mode");
  expect_load_error("NAS-ORACLE v1\nparams practical 0.5 3\n",
                    "malformed params line");
  expect_load_error("NAS-ORACLE v1\nparams none extra\n", "trailing token");
  expect_load_error("NAS-ORACLE v1\nparams none\nguarantee 1.5\n",
                    "malformed guarantee line");
  expect_load_error("NAS-ORACLE v1\nparams none\nguarantee 1.5 2 junk\n",
                    "trailing token in guarantee line");
  // Edge-list body errors carry absolute line numbers (header offset 3).
  expect_load_error("NAS-ORACLE v1\nparams none\nguarantee 1 0\nnope\n",
                    "line 4");
  expect_load_error(
      "NAS-ORACLE v1\nparams none\nguarantee 1 0\n4 3\n0 1\n1 2\n",
      "declares m=3");
  expect_load_error(
      "NAS-ORACLE v1\nparams none\nguarantee 1 0\n4 1\n0 1\n1 2\n",
      "line 6");
  expect_load_error(
      "NAS-ORACLE v1\nparams none\nguarantee 1 0\n4 2\n0 1 7\n1 2\n",
      "trailing token");
  // Semantically out-of-range params keep the line-numbered contract.
  expect_load_error(
      "NAS-ORACLE v1\nparams practical 0.5 1 0.4 0\nguarantee 1 0\n"
      "4 2\n0 1\n1 2\n",
      "invalid params at line 2");
  // Recorded guarantee disagreeing with the recomputed schedule.
  expect_load_error(
      "NAS-ORACLE v1\nparams practical 0.5 3 0.4 0\nguarantee 1 0\n"
      "4 2\n0 1\n1 2\n",
      "disagrees with the recorded pair");
}

// --- workload generator ------------------------------------------------------

TEST(QueryWorkload, DeterministicAndInRange) {
  const apps::WorkloadSpec spec{"uniform", 500, 42, 0.0};
  const auto a = apps::make_query_workload(1000, spec);
  const auto b = apps::make_query_workload(1000, spec);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_LT(a[i].u, 1000u);
    EXPECT_LT(a[i].v, 1000u);
  }
}

TEST(QueryWorkload, ZipfSkewsSourcesUniformDoesNot) {
  const Vertex n = 1000;
  const std::uint64_t q = 5000;
  const auto count_max = [&](const std::string& dist, double theta) {
    std::vector<std::uint64_t> freq(n, 0);
    for (const auto& query :
         apps::make_query_workload(n, {dist, q, 3, theta})) {
      EXPECT_LT(query.u, n);
      ++freq[query.u];
    }
    return *std::max_element(freq.begin(), freq.end());
  };
  const std::uint64_t zipf_max = count_max("zipf", 1.1);
  const std::uint64_t uniform_max = count_max("uniform", 0.0);
  // Zipf: the hottest source dominates; uniform: close to q/n.
  EXPECT_GT(zipf_max, 20 * q / n);
  EXPECT_LT(uniform_max, 5 * q / n);
}

TEST(QueryWorkload, RejectsBadSpecs) {
  EXPECT_THROW((void)apps::make_query_workload(0, {"uniform", 1, 1, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)apps::make_query_workload(10, {"pareto", 1, 1, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)apps::make_query_workload(10, {"zipf", 1, 1, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)apps::make_query_workload(10, {"zipf", 1, 1, -1.0}),
               std::invalid_argument);
}

}  // namespace
