// Tests for the interconnection step (core/interconnect.hpp).
#include <gtest/gtest.h>

#include "core/interconnect.hpp"
#include "core/popular.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using graph::EdgeSet;
using graph::Graph;
using graph::Vertex;

TEST(Interconnect, InstallsShortestPaths) {
  const Graph g = graph::path(7);
  std::vector<Vertex> sources{0, 3, 6};
  const auto alg1 = core::run_algorithm1(g, sources, 3, 10);
  EdgeSet h(7);
  const auto res = core::interconnect(g, {3}, alg1, 3, 10, h);
  // Center 3 knows 0 and 6 at distance 3 each; both paths installed.
  EXPECT_EQ(res.paths_installed, 2u);
  EXPECT_EQ(res.edges_added, 6u);
  EXPECT_EQ(res.max_path_length, 3u);
  const Graph hg = h.to_graph();
  EXPECT_EQ(graph::bfs(hg, 3).dist[0], 3u);
  EXPECT_EQ(graph::bfs(hg, 3).dist[6], 3u);
}

TEST(Interconnect, PathLengthsEqualGraphDistances) {
  const Graph g = graph::make_workload("grid", 100, 3);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < g.num_vertices(); v += 7) sources.push_back(v);
  const std::uint64_t delta = 5, cap = 100;
  const auto alg1 = core::run_algorithm1(g, sources, delta, cap);
  EdgeSet h(g.num_vertices());
  (void)core::interconnect(g, sources, alg1, delta, cap, h);
  const Graph hg = h.to_graph();
  // For every center pair within delta, the spanner realizes the exact
  // distance (Lemma 2.14 with complete knowledge).
  for (Vertex s : sources) {
    const auto dg = graph::bfs(g, s);
    const auto dh = graph::bfs(hg, s);
    for (Vertex t : sources) {
      if (t == s || dg.dist[t] > delta) continue;
      EXPECT_EQ(dh.dist[t], dg.dist[t]) << s << "->" << t;
    }
  }
}

TEST(Interconnect, DedupSharedSubpaths) {
  const Graph g = graph::star(6);
  std::vector<Vertex> sources{1, 2, 3, 4, 5};
  const auto alg1 = core::run_algorithm1(g, sources, 2, 10);
  EdgeSet h(6);
  const auto res = core::interconnect(g, sources, alg1, 2, 10, h);
  // All 5*4 = 20 ordered pairs trace through the hub, but only 5 distinct
  // edges exist.
  EXPECT_EQ(res.paths_installed, 20u);
  EXPECT_EQ(h.size(), 5u);
}

TEST(Interconnect, EmptyCentersChargeScheduleOnly) {
  const Graph g = graph::path(5);
  const auto alg1 = core::run_algorithm1(g, {0}, 2, 3);
  EdgeSet h(5);
  congest::Ledger ledger;
  ledger.begin_section("t");
  const auto res = core::interconnect(g, {}, alg1, 2, 3, h, &ledger);
  EXPECT_EQ(res.edges_added, 0u);
  EXPECT_EQ(res.rounds_charged, 6u);
  EXPECT_EQ(ledger.rounds(), 6u);
}

TEST(Interconnect, OutOfRangeCenterThrows) {
  const Graph g = graph::path(5);
  const auto alg1 = core::run_algorithm1(g, {0}, 2, 3);
  EdgeSet h(5);
  EXPECT_THROW((void)core::interconnect(g, {9}, alg1, 2, 3, h),
               std::invalid_argument);
}

TEST(Interconnect, Phase0AddsIncidentEdges) {
  // With delta = 1 and all vertices as centers, interconnecting the
  // unpopular vertices adds exactly their incident edges (paper Lemma 2.12,
  // phase-0 case).
  const Graph g = graph::make_workload("er", 100, 5);
  std::vector<Vertex> all;
  for (Vertex v = 0; v < g.num_vertices(); ++v) all.push_back(v);
  const std::uint64_t cap = 1000;
  const auto alg1 = core::run_algorithm1(g, all, 1, cap);
  EdgeSet h(g.num_vertices());
  (void)core::interconnect(g, all, alg1, 1, cap, h);
  EXPECT_EQ(h.size(), g.num_edges());
}

}  // namespace
