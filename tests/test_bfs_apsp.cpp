// Tests for the centralized distance oracles (bfs, apsp, components, io).
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <vector>

#include "graph/apsp.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using namespace nas::graph;

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6);
  const auto res = bfs(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(res.dist[v], v);
  EXPECT_EQ(res.parent[3], 2u);
  EXPECT_EQ(res.root[5], 0u);
}

TEST(Bfs, UnreachableIsInf) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto res = bfs(g, 0);
  EXPECT_EQ(res.dist[2], kInfDist);
  EXPECT_EQ(res.root[2], kInvalidVertex);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = path(3);
  EXPECT_THROW(bfs(g, 5), std::invalid_argument);
}

TEST(Bfs, MultiSourceNearestRoot) {
  const Graph g = path(10);
  const auto res = multi_source_bfs(g, {0, 9});
  EXPECT_EQ(res.dist[4], 4u);
  EXPECT_EQ(res.root[4], 0u);
  EXPECT_EQ(res.dist[6], 3u);
  EXPECT_EQ(res.root[6], 9u);
}

TEST(Bfs, BoundedDepthStops) {
  const Graph g = path(10);
  const auto res = multi_source_bfs_bounded(g, {0}, 3);
  EXPECT_EQ(res.dist[3], 3u);
  EXPECT_EQ(res.dist[4], kInfDist);
}

TEST(Bfs, GridDistanceIsManhattan) {
  const Graph g = grid(5, 5);
  const auto res = bfs(g, 0);  // corner (0,0)
  EXPECT_EQ(res.dist[24], 8u);  // (4,4): 4+4
  EXPECT_EQ(res.dist[7], 3u);   // (1,2): 1+2
}

TEST(Bfs, HypercubeDistanceIsHamming) {
  const Graph g = hypercube(5);
  const auto res = bfs(g, 0);
  EXPECT_EQ(res.dist[0b10101], 3u);
  EXPECT_EQ(res.dist[0b11111], 5u);
}

TEST(BfsInto, MatchesAllocatingBfsAndReusesBuffers) {
  const Graph g = make_workload("er", 200, 7);
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  for (Vertex s = 0; s < g.num_vertices(); s += 23) {
    bfs_into(g, s, dist, frontier);
    const auto ref = bfs(g, s);
    EXPECT_EQ(dist, ref.dist) << "source " << s;
  }
}

TEST(BfsInto, ValidatesBufferSizeAndSource) {
  const Graph g = path(5);
  std::vector<std::uint32_t> wrong(3);
  std::vector<Vertex> frontier;
  EXPECT_THROW(
      bfs_into(g, 0, std::span<std::uint32_t>(wrong.data(), wrong.size()),
               frontier),
      std::invalid_argument);
  std::vector<std::uint32_t> dist;
  EXPECT_THROW(bfs_into(g, 9, dist, frontier), std::invalid_argument);
}

TEST(Bfs, EccentricityAndDiameter) {
  const Graph g = path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
  EXPECT_EQ(diameter_largest_component(g), 6u);
}

TEST(Apsp, MatchesRepeatedBfs) {
  const Graph g = make_workload("er", 120, 3);
  const Apsp apsp(g);
  for (Vertex s = 0; s < g.num_vertices(); s += 17) {
    const auto res = bfs(g, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(apsp.dist(s, v), res.dist[v]);
    }
  }
}

TEST(Apsp, GuardsAgainstHugeGraphs) {
  const Graph g = path(100);
  EXPECT_THROW(Apsp(g, 50), std::invalid_argument);
}

TEST(Apsp, MaxFiniteDistance) {
  const Graph g = path(9);
  const Apsp apsp(g);
  EXPECT_EQ(apsp.max_finite_distance(), 8u);
}

TEST(Components, CountsAndSizes) {
  const Graph g = Graph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp.count, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(comp.sizes[comp.largest], 3u);
  EXPECT_EQ(comp.component[0], comp.component[2]);
  EXPECT_NE(comp.component[0], comp.component[3]);
}

TEST(Components, IsConnected) {
  EXPECT_TRUE(is_connected(path(5)));
  EXPECT_FALSE(is_connected(Graph::from_edges(3, {{0, 1}})));
  EXPECT_TRUE(is_connected(Graph{}));
}

TEST(Components, LargestComponentRelabels) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {4, 5}});
  const auto lc = largest_component(g);
  EXPECT_EQ(lc.graph.num_vertices(), 3u);
  EXPECT_EQ(lc.graph.num_edges(), 2u);
  EXPECT_EQ(lc.new_to_old.size(), 3u);
  EXPECT_EQ(lc.old_to_new[4], kInvalidVertex);
}

TEST(Io, EdgeListRoundtrip) {
  const Graph g = make_workload("er", 80, 5);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(Io, CommentsAndMissingHeader) {
  std::stringstream ok("# comment\n3 1\n0 2\n");
  const Graph g = read_edge_list(ok);
  EXPECT_TRUE(g.has_edge(0, 2));
  std::stringstream bad("# only comments\n");
  EXPECT_THROW(read_edge_list(bad), std::runtime_error);
}

}  // namespace
