// End-to-end smoke test: the full pipeline on a small graph.
#include <gtest/gtest.h>

#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;

TEST(Smoke, BuildSpannerOnSmallRandomGraph) {
  const auto g = graph::make_workload("er", 200, /*seed=*/1);
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params);

  EXPECT_TRUE(verify::is_subgraph(g, result.spanner));
  EXPECT_TRUE(result.trace.all_invariants_ok());

  const auto stretch = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(stretch.bound_ok);
  EXPECT_TRUE(stretch.connectivity_ok);
  EXPECT_GT(result.ledger.rounds(), 0u);
}

}  // namespace
