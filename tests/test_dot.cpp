// Tests for the Graphviz export.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/dot.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas::graph;

TEST(Dot, BasicStructure) {
  const Graph g = path(3);
  DotStyle style;
  style.name = "t";
  std::ostringstream oss;
  write_dot(g, style, oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("graph \"t\""), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
  EXPECT_NE(s.find("1 -- 2"), std::string::npos);
}

TEST(Dot, GroupsColorVertices) {
  const Graph g = path(4);
  DotStyle style;
  style.group = {0, 0, 1, kInvalidVertex};
  std::ostringstream oss;
  write_dot(g, style, oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("#eeeeee"), std::string::npos);  // ungrouped vertex
}

TEST(Dot, HighlightedEdgesSplitStyles) {
  const Graph g = cycle(4);
  DotStyle style;
  style.highlighted_edges = {{0, 1}};
  std::ostringstream oss;
  write_dot(g, style, oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("penwidth=2"), std::string::npos);
  EXPECT_NE(s.find("style=dotted"), std::string::npos);
}

TEST(Dot, EmphasizedVerticesDoubleCircled) {
  const Graph g = star(4);
  DotStyle style;
  style.emphasized = {0};
  std::ostringstream oss;
  write_dot(g, style, oss);
  EXPECT_NE(oss.str().find("doublecircle"), std::string::npos);
}

TEST(Dot, GroupSizeMismatchThrows) {
  const Graph g = path(3);
  DotStyle style;
  style.group = {0};
  std::ostringstream oss;
  EXPECT_THROW(write_dot(g, style, oss), std::invalid_argument);
}

}  // namespace
