// Tests for the metrics primitives (src/metrics): histogram bucket-edge
// semantics, merge rules, the pow2 factory, digest stability and
// order-sensitivity, and the canonical JSON rendering.  Everything here is
// deterministic by construction — no wall-clock assertions.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "util/json.hpp"

namespace {

using namespace nas;
using metrics::Counter;
using metrics::Digest;
using metrics::HighWater;
using metrics::Histogram;

TEST(Counter, AccumulatesMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(HighWater, KeepsTheMaximum) {
  HighWater hw;
  EXPECT_EQ(hw.value(), 0u);
  hw.observe(7);
  hw.observe(3);
  EXPECT_EQ(hw.value(), 7u);
  hw.observe(9);
  EXPECT_EQ(hw.value(), 9u);
}

TEST(Histogram, DefaultIsOverflowOnly) {
  Histogram h;
  EXPECT_TRUE(h.bounds().empty());
  ASSERT_EQ(h.counts().size(), 1u);
  h.record(0);
  h.record(1'000'000);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.sum(), 1'000'000u);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  // Bucket i counts samples <= bounds[i]; the implicit last bucket counts
  // the overflow.  Exercise each edge exactly.
  Histogram h({1, 2, 4});
  ASSERT_EQ(h.counts().size(), 4u);
  h.record(0);  // <= 1
  h.record(1);  // <= 1
  h.record(2);  // <= 2
  h.record(3);  // <= 4
  h.record(4);  // <= 4
  h.record(5);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 2, 1}));
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.sum(), 15u);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(Histogram({2, 1}), std::invalid_argument);
}

TEST(Histogram, Pow2FactoryShape) {
  const auto h = Histogram::pow2(5);
  EXPECT_EQ(h.bounds(), (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(h.counts().size(), 6u);
  // Degenerate cases: 0 buckets is the overflow-only histogram, and the
  // bucket count clamps at 64 (the uint64 value range).
  EXPECT_TRUE(Histogram::pow2(0).bounds().empty());
  EXPECT_EQ(Histogram::pow2(100).bounds().size(), 64u);
}

TEST(Histogram, MergeRequiresIdenticalBounds) {
  Histogram a({1, 4});
  Histogram b({1, 4});
  a.record(1);
  a.record(9);
  b.record(3);
  a += b;
  EXPECT_EQ(a.counts(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.sum(), 13u);

  Histogram c({1, 8});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Digest, IsStableAndOrderSensitive) {
  Digest a, b;
  a.add(1);
  a.add(2);
  b.add(1);
  b.add(2);
  EXPECT_EQ(a.value(), b.value());

  Digest reversed;
  reversed.add(2);
  reversed.add(1);
  EXPECT_NE(a.value(), reversed.value());

  // The empty digest is the fixed zero seed; a nonzero word moves it
  // (zero is mix64's fixed point, same as in apps::digest_answers).
  Digest empty;
  EXPECT_EQ(empty.value(), 0u);
  Digest one;
  one.add(1);
  EXPECT_NE(one.value(), 0u);
}

TEST(Digest, CoversHistogramState) {
  Histogram h({1, 2});
  h.record(2);
  Digest with, without;
  with.add(h);
  without.add(Histogram({1, 2}));
  EXPECT_NE(with.value(), without.value());

  // Same recorded state folds to the same word.
  Histogram h2({1, 2});
  h2.record(2);
  Digest again;
  again.add(h2);
  EXPECT_EQ(with.value(), again.value());
}

TEST(Rendering, HistogramFieldsAreParallelArrays) {
  Histogram h({1, 2});
  h.record(1);
  h.record(3);
  util::JsonObject fields;
  metrics::append_histogram_fields(&fields, "depth", h);
  const std::string json = util::render_json_object(fields);
  EXPECT_NE(json.find("\"depth_le\": [1,2,\"inf\"]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"depth_count\": [1,0,1]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth_total\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth_sum\": 4"), std::string::npos) << json;
}

}  // namespace
