// Broad property sweep: the end-to-end guarantees across (family, seed)
// pairs beyond the targeted cases in test_elkin_matar.cpp.  Each instance
// checks the full contract: subgraph, stretch bound, connectivity
// preservation, partition, and per-phase counting.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;

using SweepCase = std::tuple<std::string, std::uint64_t>;

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, FullContract) {
  const auto& [family, seed] = GetParam();
  const Graph g = graph::make_workload(family, 180, seed);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params, {.validate = true});

  ASSERT_TRUE(verify::is_subgraph(g, result.spanner));
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  ASSERT_TRUE(rep.bound_ok) << family << " seed " << seed << " worst ("
                            << rep.worst_u << "," << rep.worst_v << ")";
  ASSERT_TRUE(rep.connectivity_ok);

  // Cluster counting: |P_{i+1}| * deg_i <= |P_i| whenever rulers exist.
  for (std::size_t i = 1; i < result.trace.phases.size(); ++i) {
    const auto& prev = result.trace.phases[i - 1];
    if (prev.num_rulers > 0) {
      ASSERT_LE(result.trace.phases[i].num_clusters * prev.deg,
                prev.num_clusters);
    }
  }
  // Partition (Corollary 2.5).
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(result.clusters.settled_phase(v), 0);
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* family : {"er", "er_dense", "gnm", "regular", "geometric",
                             "ba", "caveman", "grid", "torus", "dumbbell"}) {
    for (std::uint64_t seed : {101, 202, 303}) {
      cases.emplace_back(family, seed);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FamiliesBySeeds, EndToEndSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           return std::get<0>(info.param) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
