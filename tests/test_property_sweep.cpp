// Broad property sweep: the end-to-end guarantees across (family, seed)
// pairs beyond the targeted cases in test_elkin_matar.cpp.  Each instance
// checks the full contract: subgraph, stretch bound, connectivity
// preservation, partition, and per-phase counting.  A second sweep checks
// the serving layer's property — every distance-oracle answer sandwiched by
// exact APSP — for all five spanner algorithms.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "baselines/baswana_sen.hpp"
#include "baselines/elkin_peleg.hpp"
#include "baselines/en17.hpp"
#include "baselines/greedy.hpp"
#include "core/elkin_matar.hpp"
#include "graph/apsp.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;
using graph::Vertex;

using SweepCase = std::tuple<std::string, std::uint64_t>;

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, FullContract) {
  const auto& [family, seed] = GetParam();
  const Graph g = graph::make_workload(family, 180, seed);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params, {.validate = true});

  ASSERT_TRUE(verify::is_subgraph(g, result.spanner));
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  ASSERT_TRUE(rep.bound_ok) << family << " seed " << seed << " worst ("
                            << rep.worst_u << "," << rep.worst_v << ")";
  ASSERT_TRUE(rep.connectivity_ok);

  // Cluster counting: |P_{i+1}| * deg_i <= |P_i| whenever rulers exist.
  for (std::size_t i = 1; i < result.trace.phases.size(); ++i) {
    const auto& prev = result.trace.phases[i - 1];
    if (prev.num_rulers > 0) {
      ASSERT_LE(result.trace.phases[i].num_clusters * prev.deg,
                prev.num_clusters);
    }
  }
  // Partition (Corollary 2.5).
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(result.clusters.settled_phase(v), 0);
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* family : {"er", "er_dense", "gnm", "regular", "geometric",
                             "ba", "caveman", "grid", "torus", "dumbbell"}) {
    for (std::uint64_t seed : {101, 202, 303}) {
      cases.emplace_back(family, seed);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FamiliesBySeeds, EndToEndSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& param_info) {
                           return std::get<0>(param_info.param) + "_s" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// --- distance-oracle guarantee sweep -----------------------------------------
//
// The serving-layer property: for every algorithm's spanner, every oracle
// answer satisfies d_G(u,v) <= answer <= M*d_G(u,v) + A against exact APSP,
// where (M, A) is the guarantee that algorithm proves.  Runs the answers
// through the concurrent batch path (2 shards) so the sweep also covers the
// serving code the fleet uses.

apps::SpannerDistanceOracle make_oracle(const Graph& g,
                                        const std::string& algo) {
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  if (algo == "elkin_matar") {
    return apps::SpannerDistanceOracle(
        core::build_spanner(g, params, {.validate = false}));
  }
  const auto wrap = [](baselines::BaselineResult r) {
    return apps::SpannerDistanceOracle(std::move(r.spanner),
                                       r.stretch_multiplicative,
                                       r.stretch_additive);
  };
  if (algo == "en17") {
    return wrap(baselines::build_en17_spanner(g, params, 42));
  }
  if (algo == "baswana_sen") {
    return wrap(baselines::build_baswana_sen_spanner(g, 3, 42));
  }
  if (algo == "elkin_peleg") {
    return wrap(baselines::build_elkin_peleg_spanner(g, params));
  }
  if (algo == "greedy") {
    return wrap(baselines::build_greedy_spanner(g, 3));
  }
  throw std::invalid_argument("unknown sweep algo " + algo);
}

using OracleCase = std::tuple<std::string, std::string>;

class OracleGuaranteeSweep : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleGuaranteeSweep, AnswersSandwichedByExactApsp) {
  const auto& [algo, family] = GetParam();
  const Graph g = graph::make_workload(family, 160, 101);
  const auto oracle = make_oracle(g, algo);
  const graph::Apsp exact(g);

  // A structured pair sample plus a generated batch, all answered through
  // the sharded batch path.
  std::vector<apps::Query> queries;
  for (Vertex u = 0; u < g.num_vertices(); u += 5) {
    for (Vertex v = u; v < g.num_vertices(); v += 7) {
      queries.push_back({u, v});
    }
  }
  for (const auto& q : apps::make_query_workload(
           g.num_vertices(), {"uniform", 400, 17, 0.0})) {
    queries.push_back(q);
  }

  const auto answers = oracle.batch_query(queries, 2);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto d = exact.dist(queries[i].u, queries[i].v);
    if (d == graph::kInfDist) {
      ASSERT_EQ(answers[i], graph::kInfDist);
      continue;
    }
    ASSERT_GE(answers[i], d) << algo << " (" << queries[i].u << ","
                             << queries[i].v << ")";
    ASSERT_LE(answers[i],
              oracle.multiplicative() * d + oracle.additive() + 1e-9)
        << algo << " (" << queries[i].u << "," << queries[i].v << ") d=" << d;
  }
}

std::vector<OracleCase> oracle_cases() {
  std::vector<OracleCase> cases;
  for (const char* algo : {"elkin_matar", "en17", "baswana_sen",
                           "elkin_peleg", "greedy"}) {
    for (const char* family : {"er", "er_dense", "grid", "ba", "caveman"}) {
      cases.emplace_back(algo, family);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AlgosByFamilies, OracleGuaranteeSweep,
                         ::testing::ValuesIn(oracle_cases()),
                         [](const auto& param_info) {
                           return std::get<0>(param_info.param) + "_" +
                                  std::get<1>(param_info.param);
                         });

}  // namespace
