// Tests for the parameter schedule (core/params.hpp) against the paper's
// formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "core/params.hpp"

namespace {

using nas::core::Params;

TEST(Params, ValidationRejectsBadInputs) {
  EXPECT_THROW(Params::practical(1, 0.5, 3, 0.4), std::invalid_argument);   // n
  EXPECT_THROW(Params::practical(100, 0.5, 1, 0.4), std::invalid_argument); // κ
  EXPECT_THROW(Params::practical(100, 0.5, 2, 0.49), std::invalid_argument); // κρ<1
  EXPECT_THROW(Params::practical(100, 0.5, 3, 0.2), std::invalid_argument); // ρ<1/κ
  EXPECT_THROW(Params::practical(100, 0.5, 3, 0.5), std::invalid_argument); // ρ≥1/2
  EXPECT_THROW(Params::practical(100, 0.0, 3, 0.4), std::invalid_argument); // ε
  EXPECT_THROW(Params::practical(100, 1.0, 3, 0.4), std::invalid_argument); // ε
  EXPECT_THROW(Params::paper(100, 1.5, 3, 0.4), std::invalid_argument);     // ε'
  EXPECT_NO_THROW(Params::practical(100, 0.5, 3, 0.4));
  EXPECT_NO_THROW(Params::paper(100, 1.0, 3, 0.4));
}

TEST(Params, EllFormulaMatchesPaper) {
  // ℓ = ⌊log₂ κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1  (paper Section 2.1)
  const auto check = [](int kappa, double rho, int expected_i0, int expected_ell) {
    const auto p = Params::practical(1000, 0.25, kappa, rho);
    EXPECT_EQ(p.i0(), expected_i0) << "kappa=" << kappa << " rho=" << rho;
    EXPECT_EQ(p.ell(), expected_ell) << "kappa=" << kappa << " rho=" << rho;
  };
  // κρ = 1.2: i0 = 0, ⌈4/1.2⌉ = 4, ℓ = 3.
  check(3, 0.4, 0, 3);
  // κρ = 1.96: i0 = 0, ⌈5/1.96⌉ = 3, ℓ = 2.
  check(4, 0.49, 0, 2);
  // κρ = 3.2: i0 = 1, ⌈9/3.2⌉ = 3, ℓ = 3.
  check(8, 0.4, 1, 3);
  // κρ = 4.8: i0 = 2, ⌈13/4.8⌉ = 3, ℓ = 4.
  check(12, 0.4, 2, 4);
}

TEST(Params, DegreeScheduleExponentialThenFixed) {
  const auto p = Params::practical(4096, 0.25, 8, 0.4);  // i0 = 1, ell = 3
  const double n = 4096.0;
  // Exponential stage: deg_i = ⌈n^{2^i/κ}⌉.
  EXPECT_EQ(p.phase(0).deg, static_cast<std::uint64_t>(std::ceil(std::pow(n, 1.0 / 8))));
  EXPECT_EQ(p.phase(1).deg, static_cast<std::uint64_t>(std::ceil(std::pow(n, 2.0 / 8))));
  // Fixed stage and concluding phase: deg_i = ⌈n^ρ⌉.
  const auto nrho = static_cast<std::uint64_t>(std::ceil(std::pow(n, 0.4)));
  EXPECT_EQ(p.phase(2).deg, nrho);
  EXPECT_EQ(p.phase(3).deg, nrho);
  // deg_i <= n^rho throughout (paper: "we must keep deg_i <= n^rho").
  for (const auto& ph : p.phases()) EXPECT_LE(ph.deg, nrho);
}

TEST(Params, DeltaAndRadiusRecurrences) {
  const auto p = Params::practical(1000, 0.25, 3, 0.4);
  // Phase 0: L=1, R=0, δ=1, q=2, D=2c, R₁=2c.
  const auto& p0 = p.phase(0);
  EXPECT_EQ(p0.L, 1u);
  EXPECT_EQ(p0.radius, 0u);
  EXPECT_EQ(p0.delta, 1u);
  EXPECT_EQ(p0.q, 2u);
  const auto c = static_cast<std::uint64_t>(p.c());
  EXPECT_EQ(c, 3u);  // ⌈1/0.4⌉
  EXPECT_EQ(p0.forest_depth, 2 * c);
  EXPECT_EQ(p0.radius_next, 2 * c);
  // Phase 1: L = ⌊4⌋ = 4, R₁ = 6, δ = 4 + 12 = 16, D = 2·16·3 = 96.
  const auto& p1 = p.phase(1);
  EXPECT_EQ(p1.L, 4u);
  EXPECT_EQ(p1.radius, 6u);
  EXPECT_EQ(p1.delta, 16u);
  EXPECT_EQ(p1.forest_depth, 96u);
  EXPECT_EQ(p1.radius_next, 102u);
  // Phase 2: L = 16, δ = 16 + 204 = 220.
  EXPECT_EQ(p.phase(2).delta, 220u);
  // Concluding phase has no superclustering.
  EXPECT_TRUE(p.phases().back().concluding);
  EXPECT_EQ(p.phases().back().forest_depth, 0u);
}

TEST(Params, RadiusGrowsFastEnoughForLemma215) {
  // eq. (12) needs 3·R_j ≤ R_i for all j < i.
  const auto p = Params::practical(100000, 0.3, 6, 0.35);
  for (std::size_t i = 1; i < p.phases().size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_LE(3 * p.phase(j).radius, p.phase(i).radius);
    }
  }
}

TEST(Params, StretchRecursionMatchesHandComputation) {
  const auto p = Params::practical(1000, 0.25, 3, 0.4);
  // A_i = 2A_{i-1} + 6R_i;  M_i = M_{i-1} + A_i/L_i with R as above.
  // A_1 = 6*6 = 36;          M_1 = 1 + 36/4 = 10.
  // A_2 = 72 + 6*102 = 684;  M_2 = 10 + 684/16 = 52.75.
  // R_3 = 102 + 2*220*3 = 1422; A_3 = 1368 + 6*1422 = 9900;
  // L_3 = 64; M_3 = 52.75 + 9900/64 = 207.4375.
  EXPECT_DOUBLE_EQ(p.phase(1).additive, 36.0);
  EXPECT_DOUBLE_EQ(p.phase(1).multiplicative, 10.0);
  EXPECT_DOUBLE_EQ(p.phase(2).additive, 684.0);
  EXPECT_DOUBLE_EQ(p.phase(3).radius, 1422.0);
  EXPECT_DOUBLE_EQ(p.stretch_additive(), 9900.0);
  EXPECT_DOUBLE_EQ(p.stretch_multiplicative(), 207.4375);
}

TEST(Params, PaperModeRescaling) {
  // Section 2.4.4: ε_internal = ε'ρ/(30ℓ); β = ε_internal^{-ℓ}.
  const auto p = Params::paper(1000, 1.0, 3, 0.4);
  EXPECT_TRUE(p.is_paper_mode());
  EXPECT_EQ(p.ell(), 3);
  EXPECT_NEAR(p.eps_internal(), 1.0 * 0.4 / (30.0 * 3), 1e-12);
  EXPECT_NEAR(p.beta_paper(), std::pow(90.0 / 0.4, 3.0), 1e-6);
  EXPECT_DOUBLE_EQ(p.eps_user(), 1.0);
}

TEST(Params, BetaDecreasesWithLargerEps) {
  const double b1 = Params::paper(1000, 0.5, 3, 0.4).beta_paper();
  const double b2 = Params::paper(1000, 1.0, 3, 0.4).beta_paper();
  EXPECT_GT(b1, b2);
}

TEST(Params, BetaFormulaEq18Consistent) {
  // The closed form with instantiated constants equals β computed through
  // the rescaling.
  for (const double eps : {0.25, 0.5, 1.0}) {
    const double direct = Params::beta_formula_eq18(eps, 3, 0.4);
    const double via_params = Params::paper(1000, eps, 3, 0.4).beta_paper();
    EXPECT_NEAR(direct / via_params, 1.0, 1e-9) << eps;
  }
}

TEST(Params, BoundsArePositiveAndMonotoneInN) {
  const auto small = Params::paper(1000, 1.0, 3, 0.4);
  const auto large = Params::paper(100000, 1.0, 3, 0.4);
  EXPECT_GT(small.size_bound(), 0.0);
  EXPECT_GT(large.size_bound(), small.size_bound());
  EXPECT_GT(large.rounds_bound(), small.rounds_bound());
}

TEST(Params, RulingBaseCoversIdSpace) {
  for (const nas::graph::Vertex n : {64u, 1000u, 4096u, 100000u}) {
    const auto p = Params::practical(n, 0.25, 3, 0.4);
    long double span = 1.0L;
    for (int t = 0; t < p.c(); ++t) span *= p.ruling_base();
    EXPECT_GE(span, static_cast<long double>(n));
  }
}

TEST(Params, InfeasibleScheduleOverflowThrows) {
  // ε extremely small and many phases: δ_ℓ overflows the u64 guard.
  EXPECT_THROW(Params::practical(1000, 1e-5, 16, 0.45), std::invalid_argument);
}

TEST(Params, DescribeMentionsKeyNumbers) {
  const auto p = Params::practical(500, 0.25, 3, 0.4);
  const auto s = p.describe();
  EXPECT_NE(s.find("practical"), std::string::npos);
  EXPECT_NE(s.find("ell=3"), std::string::npos);
}

TEST(Params, PhaseCountIsEllPlusOne) {
  for (int kappa : {2, 3, 4, 8}) {
    for (double rho : {0.45, 0.4, 0.35}) {
      if (rho < 1.0 / kappa) continue;
      const auto p = Params::practical(2000, 0.3, kappa, rho);
      EXPECT_EQ(p.phases().size(), static_cast<std::size_t>(p.ell()) + 1);
    }
  }
}

}  // namespace
