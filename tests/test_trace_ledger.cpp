// Tests for the instrumentation surfaces: Trace semantics and Ledger
// section accounting across a full construction.
#include <gtest/gtest.h>

#include <string>

#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;

core::SpannerResult build(const Graph& g) {
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  return core::build_spanner(g, params);
}

TEST(Trace, OnePhaseTracePerScheduledPhase) {
  const Graph g = graph::make_workload("er", 200, 1);
  const auto result = build(g);
  EXPECT_EQ(result.trace.phases.size(),
            static_cast<std::size_t>(result.params.ell()) + 1);
  for (std::size_t i = 0; i < result.trace.phases.size(); ++i) {
    EXPECT_EQ(result.trace.phases[i].index, static_cast<int>(i));
  }
}

TEST(Trace, ScheduleFieldsMirrorParams) {
  const Graph g = graph::make_workload("er", 200, 2);
  const auto result = build(g);
  for (const auto& ph : result.trace.phases) {
    const auto& sched = result.params.phase(ph.index);
    EXPECT_EQ(ph.delta, sched.delta);
    EXPECT_EQ(ph.forest_depth, sched.forest_depth);
    EXPECT_EQ(ph.radius_bound, sched.radius);
    EXPECT_GE(ph.deg, sched.deg);  // equal except the concluding-phase cap
  }
}

TEST(Trace, ClusterFlowConservation) {
  // Every phase: clusters either supercluster or settle; next phase starts
  // with exactly the rulers.
  const Graph g = graph::make_workload("er_dense", 300, 3);
  const auto result = build(g);
  for (std::size_t i = 0; i < result.trace.phases.size(); ++i) {
    const auto& ph = result.trace.phases[i];
    EXPECT_EQ(ph.num_superclustered + ph.num_settled, ph.num_clusters);
    if (i + 1 < result.trace.phases.size()) {
      EXPECT_EQ(result.trace.phases[i + 1].num_clusters, ph.num_rulers);
    }
  }
  // Settled cluster counts over all phases account for every vertex's
  // settle event exactly once at the center level: the sum of |U_i| equals
  // the number of distinct settled centers.
  std::uint64_t settled = 0;
  for (const auto& ph : result.trace.phases) settled += ph.num_settled;
  std::uint64_t distinct_centers = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (result.clusters.settled_center(v) == v) ++distinct_centers;
  }
  EXPECT_EQ(settled, distinct_centers);
}

TEST(Trace, RoundsAndEdgesAggregate) {
  const Graph g = graph::make_workload("grid", 196, 4);
  const auto result = build(g);
  EXPECT_EQ(result.trace.total_edges(), result.spanner.num_edges());
  EXPECT_LE(result.trace.total_rounds(), result.ledger.rounds());
  EXPECT_TRUE(result.trace.all_invariants_ok());
}

TEST(Ledger, SectionsCoverEveryStepOfEveryPhase) {
  const Graph g = graph::make_workload("er", 150, 5);
  const auto result = build(g);
  // Expect alg1/ruling/superclustering/interconnection sections for phases
  // 0..ell-1 and alg1/count/interconnection for the concluding phase.
  int alg1 = 0, ruling = 0, super = 0, inter = 0;
  for (const auto& s : result.ledger.sections()) {
    if (s.label.find("algorithm1") != std::string::npos) ++alg1;
    if (s.label.find("ruling") != std::string::npos) ++ruling;
    if (s.label.find("superclustering") != std::string::npos) ++super;
    if (s.label.find("interconnection") != std::string::npos) ++inter;
  }
  const int ell = result.params.ell();
  EXPECT_EQ(alg1, ell + 1);
  EXPECT_EQ(ruling, ell);
  EXPECT_EQ(super, ell);
  EXPECT_EQ(inter, ell + 1);
  // Section rounds sum to the total.
  std::uint64_t sum = 0;
  for (const auto& s : result.ledger.sections()) sum += s.rounds;
  EXPECT_EQ(sum, result.ledger.rounds());
}

TEST(Ledger, MessagesArePositiveAndSectioned) {
  const Graph g = graph::make_workload("er", 150, 6);
  const auto result = build(g);
  EXPECT_GT(result.ledger.messages(), 0u);
  std::uint64_t sum = 0;
  for (const auto& s : result.ledger.sections()) sum += s.messages;
  EXPECT_EQ(sum, result.ledger.messages());
}

}  // namespace
