// Tests for the direction-optimizing BFS kernel layer (graph/bfs_kernel).
//
// The contract under test is byte-identity: distances are level structure,
// independent of traversal order and direction, so top-down, hybrid, and
// auto must produce identical distance arrays on every graph — and the
// serving layer built on them must produce identical answers at every
// thread count.  The epoch-tagged scratch additionally has a 16-bit wrap
// path that only fires after 65535 reuses; that wrap is exercised here.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "graph/bfs.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using graph::BfsKernel;
using graph::BfsKernelStats;
using graph::BfsScratch;
using graph::Csr;
using graph::Graph;
using graph::kInfDist;
using graph::Vertex;

constexpr std::array<BfsKernel, 3> kKernels = {
    BfsKernel::kTopDown, BfsKernel::kHybrid, BfsKernel::kAuto};

/// Distance array via the retired-queue-compatible reference (graph::bfs).
std::vector<std::uint32_t> reference_dist(const Graph& g, Vertex s) {
  return graph::bfs(g, s).dist;
}

/// Distance array via the kernel under test, through a fresh scratch.
std::vector<std::uint32_t> kernel_dist(const Csr& csr, Vertex s,
                                       BfsKernel kernel) {
  BfsScratch scratch;
  std::vector<std::uint32_t> dist(csr.num_vertices());
  graph::bfs_kernel_into(csr, s, dist, scratch, kernel);
  return dist;
}

void expect_all_kernels_match_reference(const Graph& g,
                                        const std::string& what) {
  const auto csr = Csr::from_graph(g);
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    const auto want = reference_dist(g, s);
    for (const auto kernel : kKernels) {
      EXPECT_EQ(kernel_dist(csr, s, kernel), want)
          << what << ", source " << s << ", kernel "
          << graph::bfs_kernel_name(kernel);
    }
  }
}

TEST(BfsKernel, ParseAndNameRoundTrip) {
  EXPECT_EQ(graph::parse_bfs_kernel("topdown"), BfsKernel::kTopDown);
  EXPECT_EQ(graph::parse_bfs_kernel("hybrid"), BfsKernel::kHybrid);
  EXPECT_EQ(graph::parse_bfs_kernel("auto"), BfsKernel::kAuto);
  for (const auto kernel : kKernels) {
    EXPECT_EQ(graph::parse_bfs_kernel(graph::bfs_kernel_name(kernel)), kernel);
  }
  EXPECT_THROW((void)graph::parse_bfs_kernel("bottomup"),
               std::invalid_argument);
  EXPECT_THROW((void)graph::parse_bfs_kernel(""), std::invalid_argument);
}

// Every kernel reproduces the reference distances from every source on all
// six workload families the benches sweep — the hub-heavy shapes where
// hybrid actually switches direction (er_dense, ba) and the flat ones where
// auto must stay top-down (grid, path).
TEST(BfsKernel, MatchesReferenceOnWorkloadFamilies) {
  const std::array<const char*, 6> families = {"er",   "er_dense", "ba",
                                               "grid", "path",     "star"};
  for (const auto* family : families) {
    const Graph g = graph::make_workload(family, 250, 7);
    expect_all_kernels_match_reference(g, family);
  }
}

TEST(BfsKernel, MatchesReferenceOnAwkwardShapes) {
  // Disconnected: two components plus an isolated vertex — bottom-up scans
  // must not claim vertices outside the source's component.
  const Graph two = Graph::from_edges(9, {{0, 1}, {1, 2}, {2, 0},
                                          {4, 5}, {5, 6}, {6, 7}});
  expect_all_kernels_match_reference(two, "disconnected");
  // Single vertex and empty edge set: the frontier dies immediately.
  expect_all_kernels_match_reference(Graph::from_edges(1, {}), "single");
  expect_all_kernels_match_reference(Graph::from_edges(5, {}), "edgeless");
  // Star: one bottom-up-friendly level from the hub, n-1 from a leaf.
  expect_all_kernels_match_reference(graph::star(64), "star");
  // Path: maximal level count, frontier of 1 throughout.
  expect_all_kernels_match_reference(graph::path(65), "path");
}

TEST(BfsKernel, UnreachableAndAccessors) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {4, 5}});
  const auto csr = Csr::from_graph(g);
  for (const auto kernel : kKernels) {
    BfsScratch scratch;
    scratch.run(csr, 0, kernel);
    EXPECT_EQ(scratch.distance(0), 0u);
    EXPECT_EQ(scratch.distance(2), 2u);
    EXPECT_EQ(scratch.distance(3), kInfDist);
    EXPECT_EQ(scratch.distance(4), kInfDist);
    EXPECT_EQ(scratch.max_reached_distance(), 2u);
    ASSERT_EQ(scratch.reached().size(), 3u);
    EXPECT_EQ(scratch.reached().front(), 0u);  // source is discovered first
    std::vector<std::uint32_t> dist(6);
    scratch.copy_distances(dist);
    EXPECT_EQ(dist, reference_dist(g, 0));
  }
}

TEST(BfsKernel, SourceOutOfRangeThrows) {
  const auto csr = Csr::from_graph(graph::path(4));
  BfsScratch scratch;
  EXPECT_THROW(scratch.run(csr, 4), std::invalid_argument);
  EXPECT_THROW(scratch.run(csr, 100), std::invalid_argument);
}

TEST(BfsKernel, CopyDistancesRejectsWrongSize) {
  const auto csr = Csr::from_graph(graph::path(4));
  BfsScratch scratch;
  scratch.run(csr, 0);
  std::vector<std::uint32_t> wrong(3);
  EXPECT_THROW(scratch.copy_distances(wrong), std::invalid_argument);
}

TEST(BfsKernel, StatsCountLevelsAndEdges) {
  const auto csr = Csr::from_graph(graph::make_workload("er_dense", 400, 3));
  BfsScratch scratch;
  BfsKernelStats topdown, hybrid;
  scratch.run(csr, 0, BfsKernel::kTopDown, &topdown);
  scratch.run(csr, 0, BfsKernel::kHybrid, &hybrid);
  EXPECT_GT(topdown.edges_inspected, 0u);
  EXPECT_EQ(topdown.bottom_up_levels, 0u);
  EXPECT_GT(topdown.top_down_levels, 0u);
  // Dense ER is the direction-optimizing sweet spot: the hybrid run must
  // actually switch, and switching must save work.
  EXPECT_GT(hybrid.bottom_up_levels, 0u);
  EXPECT_LT(hybrid.edges_inspected, topdown.edges_inspected);
}

// One scratch reused past the 16-bit epoch space: after the wrap flushes the
// mark array, stale marks from 65535 runs ago must not leak into distance().
TEST(BfsKernel, EpochWrapAfter64kReuses) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  const auto csr = Csr::from_graph(g);
  const auto want0 = reference_dist(g, 0);
  const auto want3 = reference_dist(g, 3);
  BfsScratch scratch;
  std::vector<std::uint32_t> dist(5);
  for (std::uint32_t i = 0; i < (1u << 16) + 50; ++i) {
    const Vertex s = (i % 2 == 0) ? Vertex{0} : Vertex{3};
    scratch.run(csr, s, BfsKernel::kTopDown);
    scratch.copy_distances(dist);
    ASSERT_EQ(dist, s == 0 ? want0 : want3) << "reuse " << i;
    ASSERT_EQ(scratch.distance(s == 0 ? 4 : 0), kInfDist) << "reuse " << i;
  }
}

// Resizing between graphs of different vertex counts resets the epoch
// space; distances on the new graph must be exact immediately.
TEST(BfsKernel, ReuseAcrossDifferentGraphs) {
  const Graph small = graph::path(4);
  const Graph big = graph::make_workload("er", 200, 11);
  const auto small_csr = Csr::from_graph(small);
  const auto big_csr = Csr::from_graph(big);
  BfsScratch scratch;
  for (int round = 0; round < 3; ++round) {
    scratch.run(small_csr, 0);
    std::vector<std::uint32_t> dist(small.num_vertices());
    scratch.copy_distances(dist);
    EXPECT_EQ(dist, reference_dist(small, 0));
    scratch.run(big_csr, 5);
    std::vector<std::uint32_t> big_dist(big.num_vertices());
    scratch.copy_distances(big_dist);
    EXPECT_EQ(big_dist, reference_dist(big, 5));
  }
}

// The serving contract end-to-end: one oracle per kernel, the same batch at
// 1, 2, and 8 query shards — every (kernel, threads) combination returns
// the same answer vector.
TEST(BfsKernel, OracleBatchesIdenticalAcrossKernelsAndThreads) {
  const Graph g = graph::make_workload("ba", 300, 5);
  std::vector<apps::Query> queries;
  for (Vertex i = 0; i < 120; ++i) {
    queries.push_back({static_cast<Vertex>((i * 7) % 300),
                       static_cast<Vertex>((i * 13 + 1) % 300)});
  }
  std::vector<std::uint32_t> baseline;
  for (const auto kernel : kKernels) {
    const apps::SpannerDistanceOracle oracle(
        g, 1.0, 0.0, apps::OracleOptions{.bfs_kernel = kernel});
    for (const unsigned threads : {1u, 2u, 8u}) {
      const auto answers = oracle.batch_query(queries, threads);
      if (baseline.empty()) baseline = answers;
      EXPECT_EQ(answers, baseline)
          << "kernel " << graph::bfs_kernel_name(kernel) << ", threads "
          << threads;
    }
  }
}

}  // namespace
