// Property tests for the deterministic ruling set (core/ruling_set.hpp)
// against the Theorem 2.2 contract.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/ruling_set.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using graph::Graph;
using graph::kInfDist;
using graph::Vertex;

std::uint64_t base_for(const Graph& g, int c) {
  return std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(
             std::ceil(std::pow(static_cast<double>(g.num_vertices()), 1.0 / c))));
}

void check_contract(const Graph& g, const std::vector<Vertex>& w,
                    const std::vector<Vertex>& rulers, std::uint64_t q, int c) {
  // Rulers are a subset of W.
  std::vector<std::uint8_t> in_w(g.num_vertices(), 0);
  for (Vertex v : w) in_w[v] = 1;
  for (Vertex r : rulers) EXPECT_TRUE(in_w[r]) << "ruler " << r << " not in W";

  // Separation: pairwise distance >= q+1.
  for (Vertex r : rulers) {
    const auto bfs = graph::bfs(g, r);
    for (Vertex r2 : rulers) {
      if (r2 != r && bfs.dist[r2] != kInfDist) {
        EXPECT_GE(bfs.dist[r2], q + 1) << r << " vs " << r2;
      }
    }
  }
  // Domination: every w-vertex within q*c of some ruler.
  if (!w.empty()) {
    ASSERT_FALSE(rulers.empty());
    const auto bfs = graph::multi_source_bfs(g, rulers);
    for (Vertex v : w) {
      ASSERT_NE(bfs.dist[v], kInfDist);
      EXPECT_LE(bfs.dist[v], q * static_cast<std::uint64_t>(c)) << v;
    }
  }
}

TEST(RulingSet, ValidatesInputs) {
  const Graph g = graph::path(4);
  EXPECT_THROW(core::compute_ruling_set(g, {0}, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(core::compute_ruling_set(g, {0}, 1, 0, 2), std::invalid_argument);
  EXPECT_THROW(core::compute_ruling_set(g, {0}, 1, 2, 1), std::invalid_argument);
  EXPECT_THROW(core::compute_ruling_set(g, {9}, 1, 2, 2), std::invalid_argument);
  // b^c < n: digits not unique.
  const Graph big = graph::path(100);
  EXPECT_THROW(core::compute_ruling_set(big, {0}, 1, 2, 3), std::invalid_argument);
}

TEST(RulingSet, EmptyInputGivesEmptyOutput) {
  const Graph g = graph::path(10);
  const auto res = core::compute_ruling_set(g, {}, 2, 2, 4);
  EXPECT_TRUE(res.rulers.empty());
  EXPECT_EQ(res.rounds_charged, 2u * 4 * 3);  // c*b*(q+1) charged regardless
}

TEST(RulingSet, SingletonSurvives) {
  const Graph g = graph::path(10);
  const auto res = core::compute_ruling_set(g, {4}, 2, 2, 4);
  ASSERT_EQ(res.rulers.size(), 1u);
  EXPECT_EQ(res.rulers[0], 4u);
}

TEST(RulingSet, FarApartVerticesAllSurvive) {
  const Graph g = graph::path(30);
  // Pairwise distance 10 > q = 3: nothing can eliminate anything.
  const auto res = core::compute_ruling_set(g, {0, 10, 20}, 3, 2, 6);
  EXPECT_EQ(res.rulers.size(), 3u);
}

TEST(RulingSet, CliqueKeepsExactlyOne) {
  const Graph g = graph::complete(16);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < 16; ++v) w.push_back(v);
  const auto res = core::compute_ruling_set(g, w, 2, 2, 4);
  EXPECT_EQ(res.rulers.size(), 1u);
}

TEST(RulingSet, RoundsFormula) {
  const Graph g = graph::path(16);
  const auto res = core::compute_ruling_set(g, {0, 8}, 3, 2, 4);
  EXPECT_EQ(res.rounds_charged, 2u * 4u * 4u);  // c*b*(q+1)
}

TEST(RulingSet, DeterministicAcrossRuns) {
  const Graph g = graph::make_workload("er", 300, 3);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < g.num_vertices(); v += 3) w.push_back(v);
  const auto a = core::compute_ruling_set(g, w, 4, 3, base_for(g, 3));
  const auto b = core::compute_ruling_set(g, w, 4, 3, base_for(g, 3));
  EXPECT_EQ(a.rulers, b.rulers);
}

struct RsCase {
  std::string family;
  Vertex n;
  std::uint64_t q;
  int c;
  int stride;
  std::uint64_t seed;
};

class RulingSetContract : public ::testing::TestWithParam<RsCase> {};

TEST_P(RulingSetContract, MeetsTheorem22) {
  const auto& tc = GetParam();
  const Graph g = graph::make_workload(tc.family, tc.n, tc.seed);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < g.num_vertices(); v += tc.stride) w.push_back(v);
  const auto res =
      core::compute_ruling_set(g, w, tc.q, tc.c, base_for(g, tc.c));
  check_contract(g, w, res.rulers, tc.q, tc.c);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RulingSetContract,
    ::testing::Values(RsCase{"er", 200, 2, 2, 1, 3},
                      RsCase{"er", 200, 4, 3, 2, 5},
                      RsCase{"er", 400, 2, 3, 1, 7},
                      RsCase{"grid", 225, 3, 2, 1, 1},
                      RsCase{"grid", 225, 6, 3, 2, 1},
                      RsCase{"torus", 225, 4, 2, 3, 1},
                      RsCase{"cycle", 100, 5, 2, 1, 1},
                      RsCase{"hypercube", 256, 2, 4, 1, 1},
                      RsCase{"ba", 300, 3, 3, 1, 11},
                      RsCase{"caveman", 250, 2, 2, 1, 13},
                      RsCase{"dumbbell", 120, 4, 2, 1, 1},
                      RsCase{"geometric", 250, 4, 3, 2, 17},
                      RsCase{"tree", 127, 3, 2, 1, 1},
                      RsCase{"er_dense", 250, 2, 2, 1, 19}),
    [](const auto& param_info) {
      const auto& c = param_info.param;
      return c.family + "_n" + std::to_string(c.n) + "_q" +
             std::to_string(c.q) + "_c" + std::to_string(c.c) + "_s" +
             std::to_string(c.stride);
    });

TEST(RulingSet, DisconnectedGraphHandled) {
  // Two components; W split across them: each side gets its own rulers.
  const Graph g = graph::Graph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}});
  const auto res = core::compute_ruling_set(g, {0, 3, 4, 7}, 2, 2, 3);
  // Domination must hold within components.
  const auto bfs = graph::multi_source_bfs(g, res.rulers);
  for (Vertex v : {0u, 3u, 4u, 7u}) {
    ASSERT_NE(bfs.dist[v], kInfDist);
    EXPECT_LE(bfs.dist[v], 4u);
  }
}

}  // namespace
