// Tests for the sharded serving-cluster layer (src/serve): partitioner
// coverage and determinism, router plan/merge round-trips, cluster answers
// byte-identical across shard counts {1,2,8} x thread counts {1,2,8} x both
// partitioners and equal to the single-oracle baseline, deterministic
// cluster counters, snapshot warmup, and the runner's cluster axes.  Per the
// repo's single-core bench policy these tests assert determinism, never
// wall-clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "run/runner.hpp"
#include "run/sinks.hpp"
#include "serve/cluster.hpp"
#include "serve/partition.hpp"
#include "serve/router.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nas;
using apps::Query;
using apps::SpannerDistanceOracle;
using graph::Graph;
using graph::Vertex;
using serve::ClusterOptions;
using serve::ClusterStats;
using serve::Partitioner;
using serve::PartitionKind;
using serve::Router;
using serve::ShardedCluster;

core::SpannerResult build_result(const Graph& g) {
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  return core::build_spanner(g, params, {.validate = false});
}

// --- partitioner -------------------------------------------------------------

TEST(Partitioner, ParseAndName) {
  EXPECT_EQ(serve::parse_partition("hash"), PartitionKind::kHash);
  EXPECT_EQ(serve::parse_partition("range"), PartitionKind::kRange);
  EXPECT_THROW((void)serve::parse_partition("modulo"), std::invalid_argument);
  EXPECT_EQ(serve::partition_name(PartitionKind::kHash), "hash");
  EXPECT_EQ(serve::partition_name(PartitionKind::kRange), "range");
}

TEST(Partitioner, RejectsDegenerateUniverses) {
  EXPECT_THROW(Partitioner(PartitionKind::kHash, 0, 100),
               std::invalid_argument);
  EXPECT_THROW(Partitioner(PartitionKind::kRange, 4, 0),
               std::invalid_argument);
  const Partitioner p(PartitionKind::kHash, 4, 100);
  EXPECT_THROW((void)p.shard_of(100), std::invalid_argument);
}

TEST(Partitioner, EveryVertexOwnedByExactlyOneValidShard) {
  const Vertex n = 1000;
  for (const auto kind : {PartitionKind::kHash, PartitionKind::kRange}) {
    for (const unsigned shards : {1u, 2u, 3u, 8u, 64u}) {
      const Partitioner p(kind, shards, n);
      std::vector<std::uint64_t> owned(shards, 0);
      for (Vertex v = 0; v < n; ++v) {
        const auto s = p.shard_of(v);
        ASSERT_LT(s, shards);
        ++owned[s];
        // Determinism: a second partitioner with the same spec agrees.
        EXPECT_EQ(Partitioner(kind, shards, n).shard_of(v), s);
      }
      EXPECT_EQ(std::accumulate(owned.begin(), owned.end(), std::uint64_t{0}),
                n);
    }
  }
}

TEST(Partitioner, RangeMatchesThreadPoolShardBlocks) {
  // The range partitioner must be the exact inverse of the canonical
  // ThreadPool::shard block split.
  const Vertex n = 997;  // prime: exercises uneven blocks
  for (const unsigned shards : {1u, 2u, 5u, 8u}) {
    const Partitioner p(PartitionKind::kRange, shards, n);
    for (unsigned s = 0; s < shards; ++s) {
      const auto [begin, end] = util::ThreadPool::shard(n, shards, s);
      for (std::size_t v = begin; v < end; ++v) {
        EXPECT_EQ(p.shard_of(static_cast<Vertex>(v)), s);
      }
    }
  }
}

TEST(Partitioner, PairRoutingIsOrientationInvariant) {
  const Partitioner p(PartitionKind::kHash, 8, 500);
  for (Vertex u = 0; u < 50; ++u) {
    for (Vertex v = 0; v < 50; ++v) {
      EXPECT_EQ(p.shard_of_pair(u, v), p.shard_of_pair(v, u));
      EXPECT_EQ(p.shard_of_pair(u, v), p.shard_of(std::min(u, v)));
    }
  }
}

// --- router ------------------------------------------------------------------

TEST(Router, PlanCoversEveryRequestOnceInArrivalOrder) {
  const Partitioner p(PartitionKind::kRange, 4, 100);
  const Router router(p);
  const auto batch =
      apps::make_query_workload(100, {"uniform", 400, 42, 0.99});
  const auto plan = router.plan(batch);

  ASSERT_EQ(plan.queries.size(), 4u);
  ASSERT_EQ(plan.slots.size(), 4u);
  std::vector<int> seen(batch.size(), 0);
  for (unsigned s = 0; s < 4; ++s) {
    ASSERT_EQ(plan.queries[s].size(), plan.slots[s].size());
    for (std::size_t i = 0; i < plan.slots[s].size(); ++i) {
      const auto slot = plan.slots[s][i];
      ++seen[slot];
      // The sub-batch entry is the original request, routed correctly.
      EXPECT_EQ(plan.queries[s][i].u, batch[slot].u);
      EXPECT_EQ(plan.queries[s][i].v, batch[slot].v);
      EXPECT_EQ(p.shard_of_pair(batch[slot].u, batch[slot].v), s);
      // Arrival order within the shard.
      if (i > 0) {
        EXPECT_LT(plan.slots[s][i - 1], slot);
      }
    }
  }
  for (const auto count : seen) EXPECT_EQ(count, 1);
}

TEST(Router, PlanRejectsOutOfRangeVertices) {
  const Partitioner p(PartitionKind::kHash, 2, 10);
  const Router router(p);
  const std::vector<Query> bad{{3, 10}};
  EXPECT_THROW((void)router.plan(bad), std::invalid_argument);
}

TEST(Router, MergeScattersBackToBatchOrder) {
  const Partitioner p(PartitionKind::kRange, 2, 10);
  const Router router(p);
  // Vertices 0-4 -> shard 0, 5-9 -> shard 1 (routing key = min endpoint).
  const std::vector<Query> batch{{7, 8}, {1, 2}, {9, 6}, {0, 3}};
  const auto plan = router.plan(batch);
  ASSERT_EQ(plan.queries[0].size(), 2u);
  ASSERT_EQ(plan.queries[1].size(), 2u);
  EXPECT_EQ(plan.shards_used(), 2u);

  const std::vector<std::vector<std::uint32_t>> shard_answers{{11, 13},
                                                              {17, 19}};
  const auto merged = Router::merge(plan, shard_answers, batch.size());
  EXPECT_EQ(merged, (std::vector<std::uint32_t>{17, 11, 19, 13}));

  EXPECT_THROW((void)Router::merge(plan, {{1}, {2}}, batch.size()),
               std::invalid_argument);
}

// --- cluster -----------------------------------------------------------------

TEST(ShardedCluster, ByteIdenticalAcrossShardsThreadsAndPartitions) {
  for (const char* family : {"er", "grid", "ba"}) {
    const Graph g = graph::make_workload(family, 220, 3);
    const auto result = build_result(g);
    const double mult = result.params.stretch_multiplicative();
    const double add = result.params.stretch_additive();
    const auto batch =
        apps::make_query_workload(g.num_vertices(), {"zipf", 500, 11, 0.99});

    // Baseline: one plain oracle over the same spanner.
    const SpannerDistanceOracle baseline(Graph(result.spanner), mult, add);
    const auto expected = baseline.batch_query(batch, 1);

    for (const char* partition : {"hash", "range"}) {
      for (const unsigned shards : {1u, 2u, 8u}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
          ShardedCluster cluster(
              result.spanner, mult, add,
              {.shards = shards, .partition = partition});
          ClusterStats stats;
          const auto answers = cluster.serve(batch, threads, &stats);
          ASSERT_EQ(answers, expected)
              << family << " shards=" << shards << " threads=" << threads
              << " partition=" << partition;
          EXPECT_EQ(stats.requests, batch.size());
          EXPECT_LE(stats.shards_used, shards);
        }
      }
    }
  }
}

TEST(ShardedCluster, CountersAreDeterministicAndThreadIndependent) {
  const Graph g = graph::make_workload("er", 200, 5);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 400, 7, 0.99});

  const ClusterOptions options{.shards = 4,
                               .partition = "hash",
                               .shard_cache_budget_bytes =
                                   8ull * g.num_vertices()};
  ClusterStats reference;
  {
    ShardedCluster cluster(result.spanner, mult, add, options);
    (void)cluster.serve(batch, 1, &reference);
  }
  ASSERT_EQ(reference.per_shard.size(), 4u);
  // Sub-batch sizes sum to the batch; totals sum over shards.
  std::uint64_t requests = 0, bfs = 0;
  for (const auto& c : reference.per_shard) {
    requests += c.requests;
    bfs += c.bfs_passes;
  }
  EXPECT_EQ(requests, batch.size());
  EXPECT_EQ(bfs, reference.bfs_passes);

  for (const unsigned threads : {2u, 8u}) {
    ShardedCluster cluster(result.spanner, mult, add, options);
    ClusterStats stats;
    (void)cluster.serve(batch, threads, &stats);
    EXPECT_EQ(stats.shards_used, reference.shards_used);
    EXPECT_EQ(stats.distinct_sources, reference.distinct_sources);
    EXPECT_EQ(stats.cache_hits, reference.cache_hits);
    EXPECT_EQ(stats.bfs_passes, reference.bfs_passes);
    EXPECT_EQ(stats.evictions, reference.evictions);
    for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
      EXPECT_EQ(stats.per_shard[s].requests,
                reference.per_shard[s].requests);
      EXPECT_EQ(stats.per_shard[s].bfs_passes,
                reference.per_shard[s].bfs_passes);
      EXPECT_EQ(stats.per_shard[s].evictions,
                reference.per_shard[s].evictions);
    }
  }
}

TEST(ShardedCluster, RepeatedBatchesHitShardCaches) {
  const Graph g = graph::make_workload("er", 150, 2);
  const auto result = build_result(g);
  ShardedCluster cluster(result.spanner,
                         result.params.stretch_multiplicative(),
                         result.params.stretch_additive(),
                         {.shards = 4, .partition = "hash"});
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 200, 3, 0.99});
  ClusterStats first, second;
  const auto a1 = cluster.serve(batch, 2, &first);
  const auto a2 = cluster.serve(batch, 2, &second);
  EXPECT_EQ(a1, a2);
  EXPECT_GT(first.bfs_passes, 0u);
  // The same batch replayed is fully cache-hot: every distinct source was
  // inserted into its owning shard's cache by the first batch.
  EXPECT_EQ(second.bfs_passes, 0u);
  EXPECT_EQ(second.cache_hits, second.distinct_sources);
}

TEST(ShardedCluster, ZeroBudgetShardsStillAnswerIdentically) {
  const Graph g = graph::make_workload("grid", 144, 1);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 300, 9, 0.99});

  const SpannerDistanceOracle baseline(Graph(result.spanner), mult, add);
  const auto expected = baseline.batch_query(batch, 1);

  ShardedCluster cluster(result.spanner, mult, add,
                         {.shards = 4,
                          .partition = "range",
                          .shard_cache_budget_bytes = 0});
  ClusterStats stats;
  EXPECT_EQ(cluster.serve(batch, 2, &stats), expected);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedCluster, RejectsBadOptions) {
  const Graph g = graph::make_workload("er", 60, 1);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  EXPECT_THROW(ShardedCluster(result.spanner, mult, add, {.shards = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      ShardedCluster(result.spanner, mult, add,
                     {.shards = 2, .partition = "bogus"}),
      std::invalid_argument);
}

// --- snapshot warmup ---------------------------------------------------------

TEST(ShardedCluster, WarmsFromOneSnapshotReplicated) {
  const Graph g = graph::make_workload("er", 180, 4);
  const auto result = build_result(g);
  const SpannerDistanceOracle built{core::SpannerResult(result)};
  const std::string path = testing::TempDir() + "cluster_snapshot.naso";
  built.save_file(path);

  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 300, 13, 0.99});
  const auto expected = built.batch_query(batch, 1);

  auto cluster = ShardedCluster::from_snapshot_files(
      {path}, {.shards = 4, .partition = "hash"});
  EXPECT_EQ(cluster.num_shards(), 4u);
  EXPECT_EQ(cluster.multiplicative(), built.multiplicative());
  EXPECT_EQ(cluster.additive(), built.additive());
  EXPECT_EQ(cluster.serve(batch, 2), expected);
}

TEST(ShardedCluster, WarmsFromPerShardSnapshots) {
  const Graph g = graph::make_workload("grid", 100, 2);
  const auto result = build_result(g);
  const SpannerDistanceOracle built{core::SpannerResult(result)};
  std::vector<std::string> paths;
  for (int s = 0; s < 3; ++s) {
    paths.push_back(testing::TempDir() + "shard" + std::to_string(s) +
                    ".naso");
    built.save_file(paths.back());
  }
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 200, 1, 0.99});
  auto cluster = ShardedCluster::from_snapshot_files(
      paths, {.shards = 3, .partition = "range"});
  EXPECT_EQ(cluster.serve(batch, 2), built.batch_query(batch, 1));
}

TEST(ShardedCluster, SnapshotWarmupErrorContract) {
  EXPECT_THROW((void)ShardedCluster::from_snapshot_files({}, {.shards = 2}),
               std::runtime_error);

  const Graph g = graph::make_workload("er", 80, 1);
  const auto result = build_result(g);
  const SpannerDistanceOracle built{core::SpannerResult(result)};
  const std::string path = testing::TempDir() + "mismatch_a.naso";
  built.save_file(path);

  // Wrong path count: 2 snapshots for 3 shards.
  EXPECT_THROW((void)ShardedCluster::from_snapshot_files({path, path},
                                                         {.shards = 3}),
               std::runtime_error);

  // Disagreeing universes across per-shard snapshots.
  const Graph g2 = graph::make_workload("er", 90, 1);
  const auto result2 = build_result(g2);
  const SpannerDistanceOracle built2{core::SpannerResult(result2)};
  const std::string path2 = testing::TempDir() + "mismatch_b.naso";
  built2.save_file(path2);
  EXPECT_THROW((void)ShardedCluster::from_snapshot_files({path, path2},
                                                         {.shards = 2}),
               std::runtime_error);

  // Same universe and guarantee but different structure: the edge-count
  // drift guard must reject it (answers would otherwise depend on routing).
  const Graph h1 = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph h2 = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const std::string path3 = testing::TempDir() + "mismatch_c.naso";
  const std::string path4 = testing::TempDir() + "mismatch_d.naso";
  SpannerDistanceOracle(Graph(h1), 3.0, 2.0).save_file(path3);
  SpannerDistanceOracle(Graph(h2), 3.0, 2.0).save_file(path4);
  EXPECT_THROW((void)ShardedCluster::from_snapshot_files({path3, path4},
                                                         {.shards = 2}),
               std::runtime_error);
}

// --- runner integration ------------------------------------------------------

TEST(RunnerCluster, ClusterAxisKeepsDigestAndFillsClusterColumns) {
  run::ScenarioMatrix matrix;
  matrix.set("family", "er");
  matrix.set("n", "200");
  matrix.set("eps", "0.5");
  matrix.set("workload", "uniform");
  matrix.set("queries", "150");
  matrix.set("cluster-shards", "0, 1, 2, 8");
  matrix.set("partition", "hash, range");
  const auto specs = matrix.expand();
  ASSERT_EQ(specs.size(), 8u);

  run::Runner runner;
  const auto rows = runner.run(specs);
  for (const auto& row : rows) {
    ASSERT_TRUE(row.ok) << row.error;
    ASSERT_TRUE(row.served);
    EXPECT_EQ(row.oracle_digest, rows.front().oracle_digest)
        << row.spec.id();
    if (row.spec.cluster_shards == 0) {
      EXPECT_EQ(row.cluster_shards_used, 0u);
    } else {
      EXPECT_GE(row.cluster_shards_used, 1u);
      EXPECT_LE(row.cluster_shards_used, row.spec.cluster_shards);
    }
  }

  // The cluster axes are visible in the id and the sink schema.
  EXPECT_NE(rows.back().spec.id().find("/cs=8/range"), std::string::npos);
  const auto fields = run::row_fields(rows.back());
  bool saw_shards = false, saw_partition = false, saw_used = false;
  for (const auto& [key, value] : fields) {
    saw_shards |= key == "cluster_shards";
    saw_partition |= key == "cluster_partition";
    saw_used |= key == "cluster_shards_used";
  }
  EXPECT_TRUE(saw_shards);
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_used);
}

}  // namespace
