// Unit tests for the synchronizer overhead analysis (src/apps/synchronizer):
// the message accounting (2|H| safety messages per pulse vs the 2|E|
// baseline) and the pulse-latency/edge-stretch accounting, checked against a
// brute-force per-edge BFS recomputation on three graph families, with the
// overlay produced by the serial-engine spanner construction.  Previously
// the app only had end-to-end smoke coverage in test_apps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "apps/synchronizer.hpp"
#include "core/elkin_matar.hpp"
#include "core/params.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace {

using namespace nas;
using graph::Graph;
using graph::Vertex;

/// Brute-force recomputation of the quantities analyze_synchronizer reports:
/// max and mean over G-edges (u,v) of d_H(u,v), via one BFS over H per
/// vertex with G-neighbors.
struct BruteForce {
  std::uint32_t latency = 0;
  double mean = 1.0;
  bool connects = true;
};

BruteForce brute_force(const Graph& g, const Graph& h) {
  BruteForce out;
  double sum = 0.0;
  std::uint64_t count = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    const auto dist = graph::bfs(h, u);
    for (const Vertex v : g.neighbors(u)) {
      if (v < u) continue;
      if (dist.dist[v] == graph::kInfDist) {
        out.connects = false;
        continue;
      }
      out.latency = std::max(out.latency, dist.dist[v]);
      sum += dist.dist[v];
      ++count;
    }
  }
  if (count > 0) out.mean = sum / static_cast<double>(count);
  return out;
}

TEST(SynchronizerAccounting, MatchesBruteForceOnSpannerOverlays) {
  for (const char* family : {"er", "grid", "ba"}) {
    const Graph g = graph::make_workload(family, 180, 3);
    const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
    // The overlay comes out of the default (serial-engine) construction, so
    // this also pins the accounting to the engine-built spanner.
    const auto result = core::build_spanner(g, params, {.validate = false});
    const auto rep = apps::analyze_synchronizer(g, result.spanner);

    // Message accounting: one safety message per overlay edge direction.
    EXPECT_EQ(rep.messages_per_pulse, 2 * result.spanner.num_edges())
        << family;
    EXPECT_EQ(rep.baseline_messages_per_pulse, 2 * g.num_edges()) << family;
    EXPECT_DOUBLE_EQ(
        rep.message_saving(),
        static_cast<double>(result.spanner.num_edges()) /
            static_cast<double>(g.num_edges()))
        << family;

    // Latency/stretch accounting against the brute-force recomputation.
    const auto expected = brute_force(g, result.spanner);
    EXPECT_EQ(rep.overlay_connects, expected.connects) << family;
    EXPECT_EQ(rep.pulse_latency, expected.latency) << family;
    EXPECT_DOUBLE_EQ(rep.mean_edge_stretch, expected.mean) << family;

    // The spanner guarantee applied to distance-1 pairs bounds the latency:
    // every G-edge (u,v) has d_H(u,v) <= M*1 + A.
    EXPECT_TRUE(rep.overlay_connects) << family;
    EXPECT_LE(static_cast<double>(rep.pulse_latency),
              params.stretch_multiplicative() + params.stretch_additive())
        << family;
    EXPECT_GE(rep.mean_edge_stretch, 1.0) << family;
    EXPECT_LE(rep.mean_edge_stretch, static_cast<double>(rep.pulse_latency))
        << family;
  }
}

TEST(SynchronizerAccounting, IdentityOverlayIsTheFixedPoint) {
  for (const char* family : {"er", "grid", "ba"}) {
    const Graph g = graph::make_workload(family, 120, 5);
    ASSERT_GT(g.num_edges(), 0u);
    const auto rep = apps::analyze_synchronizer(g, g);
    EXPECT_EQ(rep.messages_per_pulse, rep.baseline_messages_per_pulse);
    EXPECT_DOUBLE_EQ(rep.message_saving(), 1.0);
    EXPECT_EQ(rep.pulse_latency, 1u) << family;
    EXPECT_DOUBLE_EQ(rep.mean_edge_stretch, 1.0) << family;
    EXPECT_TRUE(rep.overlay_connects);
  }
}

TEST(SynchronizerAccounting, HandcraftedOverlayLatency) {
  // G = triangle 0-1-2, H = path 0-1-2: the dropped edge (0,2) must be
  // simulated through the 2-hop path, the kept edges stay at 1.
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const Graph h = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto rep = apps::analyze_synchronizer(g, h);
  EXPECT_EQ(rep.messages_per_pulse, 4u);
  EXPECT_EQ(rep.baseline_messages_per_pulse, 6u);
  EXPECT_EQ(rep.pulse_latency, 2u);
  EXPECT_DOUBLE_EQ(rep.mean_edge_stretch, (1.0 + 1.0 + 2.0) / 3.0);
  EXPECT_TRUE(rep.overlay_connects);
}

TEST(SynchronizerAccounting, EmptyOverlayDisconnectsEveryEdge) {
  const Graph g = graph::make_workload("grid", 64, 1);
  const Graph empty = Graph::from_edges(g.num_vertices(), {});
  const auto rep = apps::analyze_synchronizer(g, empty);
  EXPECT_EQ(rep.messages_per_pulse, 0u);
  EXPECT_FALSE(rep.overlay_connects);
  EXPECT_EQ(rep.pulse_latency, 0u);
  EXPECT_DOUBLE_EQ(rep.mean_edge_stretch, 1.0);
  EXPECT_DOUBLE_EQ(rep.message_saving(), 0.0);
}

}  // namespace
