// Tests for the superclustering step (core/supercluster.hpp).
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/supercluster.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using core::ClusterState;
using graph::EdgeSet;
using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

TEST(Supercluster, ForestRespectsDepth) {
  const Graph g = graph::path(10);
  ClusterState cs(10);
  EdgeSet h(10);
  const auto res = core::build_superclusters(g, cs, {0}, 3, 0, h);
  EXPECT_EQ(res.forest_dist[3], 3u);
  EXPECT_EQ(res.forest_dist[4], kInfDist);
  EXPECT_EQ(res.forest_root[2], 0u);
  EXPECT_EQ(res.forest_root[4], kInvalidVertex);
}

TEST(Supercluster, MergesSpannedCentersAndInstallsPaths) {
  const Graph g = graph::path(6);
  ClusterState cs(6);
  EdgeSet h(6);
  const auto res = core::build_superclusters(g, cs, {2}, 2, 0, h);
  // Centers 0..4 are within depth 2 of root 2 and get superclustered.
  EXPECT_EQ(res.superclustered_centers.size(), 5u);
  EXPECT_EQ(cs.center(0), 2u);
  EXPECT_EQ(cs.center(4), 2u);
  EXPECT_TRUE(cs.is_active(5));
  EXPECT_TRUE(cs.is_center(5));  // 5 was not spanned
  // The installed paths make H connect the root to every spanned center.
  EXPECT_TRUE(h.contains(0, 1));
  EXPECT_TRUE(h.contains(1, 2));
  EXPECT_TRUE(h.contains(2, 3));
  EXPECT_TRUE(h.contains(3, 4));
  EXPECT_FALSE(h.contains(4, 5));
  EXPECT_EQ(res.edges_added, 4u);
}

TEST(Supercluster, TieBreaksTowardsSmallerRoot) {
  const Graph g = graph::path(5);
  ClusterState cs(5);
  EdgeSet h(5);
  // Roots 0 and 4; vertex 2 is equidistant: smaller root must win.
  const auto res = core::build_superclusters(g, cs, {0, 4}, 2, 0, h);
  EXPECT_EQ(res.forest_root[2], 0u);
}

TEST(Supercluster, PathsShareForestEdges) {
  const Graph g = graph::star(5);
  ClusterState cs(5);
  EdgeSet h(5);
  // Root 1 (a leaf); centers 2, 3, 4 all routed through hub 0: the shared
  // hub-root edge is installed once.
  const auto res = core::build_superclusters(g, cs, {1}, 2, 0, h);
  EXPECT_EQ(res.superclustered_centers.size(), 5u);
  EXPECT_EQ(res.edges_added, 4u);  // star has only 4 edges
}

TEST(Supercluster, RulerMustBeLiveCenter) {
  const Graph g = graph::path(4);
  ClusterState cs(4);
  cs.merge_cluster_into(1, 0);
  EdgeSet h(4);
  EXPECT_THROW(core::build_superclusters(g, cs, {1}, 2, 0, h),
               std::logic_error);
}

TEST(Supercluster, RadiusBoundLemma23) {
  // After superclustering with depth D from singleton clusters, every member
  // is within D of its center inside H.
  const Graph g = graph::make_workload("grid", 169, 3);
  ClusterState cs(g.num_vertices());
  EdgeSet h(g.num_vertices());
  const std::uint64_t depth = 4;
  const auto res = core::build_superclusters(g, cs, {0, 84, 168}, depth, 0, h);
  const Graph hg = h.to_graph();
  for (Vertex c : cs.centers()) {
    const auto bfs = graph::bfs(hg, c);
    for (Vertex v : cs.members(c)) {
      if (v == c) continue;
      ASSERT_NE(bfs.dist[v], kInfDist);
      EXPECT_LE(bfs.dist[v], depth);
    }
  }
  EXPECT_GT(res.superclustered_centers.size(), 0u);
}

TEST(Supercluster, ChargesRoundsAndMessages) {
  const Graph g = graph::path(10);
  ClusterState cs(10);
  EdgeSet h(10);
  congest::Ledger ledger;
  ledger.begin_section("test");
  const auto res = core::build_superclusters(g, cs, {0}, 3, 5, h, &ledger);
  EXPECT_EQ(res.rounds_charged, 2u * 4 + 5);
  EXPECT_EQ(ledger.rounds(), res.rounds_charged);
  EXPECT_GT(ledger.messages(), 0u);
}

TEST(Supercluster, EmptyRulersLeavesEverythingAlone) {
  const Graph g = graph::path(5);
  ClusterState cs(5);
  EdgeSet h(5);
  const auto res = core::build_superclusters(g, cs, {}, 3, 0, h);
  EXPECT_TRUE(res.superclustered_centers.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(cs.centers().size(), 5u);
}

}  // namespace
