// Tests for the cluster bookkeeping (core/cluster.hpp).
#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace {

using nas::core::ClusterState;
using nas::graph::kInvalidVertex;
using nas::graph::Vertex;

TEST(ClusterState, StartsAsSingletons) {
  ClusterState cs(4);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(cs.center(v), v);
    EXPECT_TRUE(cs.is_center(v));
    EXPECT_TRUE(cs.is_active(v));
    EXPECT_EQ(cs.settled_phase(v), -1);
  }
  EXPECT_EQ(cs.centers().size(), 4u);
  EXPECT_EQ(cs.active_count(), 4u);
}

TEST(ClusterState, MergeMovesMembers) {
  ClusterState cs(5);
  cs.merge_cluster_into(1, 0);
  cs.merge_cluster_into(2, 0);
  EXPECT_EQ(cs.center(1), 0u);
  EXPECT_EQ(cs.center(2), 0u);
  EXPECT_FALSE(cs.is_center(1));
  EXPECT_EQ(cs.members(0).size(), 3u);
  EXPECT_EQ(cs.centers().size(), 3u);  // 0, 3, 4
}

TEST(ClusterState, MergeOfMergedClusterKeepsTransitiveMembers) {
  ClusterState cs(4);
  cs.merge_cluster_into(1, 0);  // {0,1}
  cs.merge_cluster_into(0, 2);  // {0,1,2}
  EXPECT_EQ(cs.center(0), 2u);
  EXPECT_EQ(cs.center(1), 2u);
  EXPECT_EQ(cs.members(2).size(), 3u);
}

TEST(ClusterState, MergeSelfIsNoop) {
  ClusterState cs(3);
  cs.merge_cluster_into(1, 1);
  EXPECT_TRUE(cs.is_center(1));
}

TEST(ClusterState, MergeNonCenterThrows) {
  ClusterState cs(3);
  cs.merge_cluster_into(1, 0);
  EXPECT_THROW(cs.merge_cluster_into(1, 2), std::logic_error);
  EXPECT_THROW(cs.merge_cluster_into(2, 1), std::logic_error);
  EXPECT_THROW(cs.merge_cluster_into(5, 0), std::invalid_argument);
}

TEST(ClusterState, SettleRemovesWholeCluster) {
  ClusterState cs(4);
  cs.merge_cluster_into(1, 0);
  cs.settle_cluster(0, 2);
  EXPECT_FALSE(cs.is_active(0));
  EXPECT_FALSE(cs.is_active(1));
  EXPECT_EQ(cs.settled_phase(0), 2);
  EXPECT_EQ(cs.settled_phase(1), 2);
  EXPECT_EQ(cs.settled_center(1), 0u);
  EXPECT_EQ(cs.active_count(), 2u);
  EXPECT_EQ(cs.centers().size(), 2u);
}

TEST(ClusterState, SettleNonCenterThrows) {
  ClusterState cs(3);
  cs.settle_cluster(1, 0);
  EXPECT_THROW(cs.settle_cluster(1, 0), std::logic_error);
  EXPECT_THROW(cs.settle_cluster(9, 0), std::invalid_argument);
}

}  // namespace
