// Tests for Algorithm 1 (core/popular.hpp) against the Theorem 2.1 /
// Lemma A.1 contract, and cross-validation of the event-driven execution
// against the exact per-round CONGEST engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/popular.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using core::Algorithm1Result;
using graph::Graph;
using graph::kInfDist;
using graph::Vertex;

/// Oracle: centers within distance delta of u (excluding u), with distances.
std::vector<std::pair<Vertex, std::uint32_t>> centers_within(
    const Graph& g, const std::vector<Vertex>& sources, Vertex u,
    std::uint32_t delta) {
  std::vector<std::uint8_t> is_source(g.num_vertices(), 0);
  for (Vertex s : sources) is_source[s] = 1;
  const auto res = graph::bfs(g, u);
  std::vector<std::pair<Vertex, std::uint32_t>> out;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != u && is_source[v] && res.dist[v] != kInfDist && res.dist[v] <= delta) {
      out.emplace_back(v, res.dist[v]);
    }
  }
  return out;
}

TEST(Algorithm1, ValidatesInputs) {
  const Graph g = graph::path(4);
  EXPECT_THROW(core::run_algorithm1(g, {0}, 0, 1), std::invalid_argument);
  EXPECT_THROW(core::run_algorithm1(g, {0}, 1, 0), std::invalid_argument);
  EXPECT_THROW(core::run_algorithm1(g, {9}, 1, 1), std::invalid_argument);
}

TEST(Algorithm1, PathGraphKnowledge) {
  const Graph g = graph::path(6);
  // All vertices are centers, delta = 2, cap = 10 (no truncation).
  std::vector<Vertex> sources{0, 1, 2, 3, 4, 5};
  const auto res = core::run_algorithm1(g, sources, 2, 10);
  // Vertex 2 must know 0, 1, 3, 4 at distances 2, 1, 1, 2.
  ASSERT_EQ(res.knowledge[2].size(), 4u);
  const auto* k0 = core::find_knowledge(res.knowledge[2], 0);
  ASSERT_NE(k0, nullptr);
  EXPECT_EQ(k0->dist, 2u);
  EXPECT_EQ(k0->parent, 1u);
  const auto* k3 = core::find_knowledge(res.knowledge[2], 3);
  ASSERT_NE(k3, nullptr);
  EXPECT_EQ(k3->dist, 1u);
  EXPECT_EQ(k3->parent, 3u);
}

TEST(Algorithm1, PopularityThreshold) {
  const Graph g = graph::star(6);  // center 0 with 5 leaves
  std::vector<Vertex> sources{0, 1, 2, 3, 4, 5};
  // delta = 1, cap = 5: vertex 0 learns 5 others (popular); leaves learn 1.
  const auto res = core::run_algorithm1(g, sources, 1, 5);
  EXPECT_TRUE(res.popular[0]);
  for (Vertex leaf = 1; leaf <= 5; ++leaf) EXPECT_FALSE(res.popular[leaf]);
  // delta = 2: every leaf learns the 4 other leaves through the hub plus the
  // hub itself = 5 >= cap -> popular.
  const auto res2 = core::run_algorithm1(g, sources, 2, 5);
  for (Vertex v = 0; v < 6; ++v) EXPECT_TRUE(res2.popular[v]) << v;
}

TEST(Algorithm1, CapTruncatesDeterministicallyBySmallestOrigin) {
  const Graph g = graph::star(6);
  std::vector<Vertex> sources{1, 2, 3, 4, 5};  // leaves are centers, hub not
  const auto res = core::run_algorithm1(g, sources, 1, 3);
  // Hub hears 5 origins at layer 1 but keeps only the 3 smallest IDs.
  ASSERT_EQ(res.knowledge[0].size(), 3u);
  EXPECT_EQ(res.knowledge[0][0].origin, 1u);
  EXPECT_EQ(res.knowledge[0][1].origin, 2u);
  EXPECT_EQ(res.knowledge[0][2].origin, 3u);
}

TEST(Algorithm1, RoundsFormula) {
  const Graph g = graph::path(8);
  const auto res = core::run_algorithm1(g, {0, 7}, 3, 4);
  EXPECT_EQ(res.rounds_charged, 1 + 3u * 4u);
}

TEST(Algorithm1, EdgeLayerLoadRespectsCap) {
  const Graph g = graph::make_workload("er_dense", 150, 3);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < g.num_vertices(); ++v) sources.push_back(v);
  const auto res = core::run_algorithm1(g, sources, 3, 7);
  EXPECT_LE(res.max_edge_layer_load, 7u);
}

struct Alg1Case {
  std::string family;
  graph::Vertex n;
  std::uint64_t delta;
  std::uint64_t cap;
  int center_stride;  // every k-th vertex is a center
};

class Algorithm1Contract : public ::testing::TestWithParam<Alg1Case> {};

TEST_P(Algorithm1Contract, MatchesTheorem21) {
  const auto& tc = GetParam();
  const Graph g = graph::make_workload(tc.family, tc.n, 29);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < g.num_vertices(); v += tc.center_stride) {
    sources.push_back(v);
  }
  const auto res = core::run_algorithm1(g, sources, tc.delta, tc.cap);

  for (Vertex u : sources) {
    const auto oracle =
        centers_within(g, sources, u, static_cast<std::uint32_t>(tc.delta));
    // Lemma A.1: u knows at least min(cap, |Γ^δ(u) ∩ S|) centers.
    EXPECT_GE(res.knowledge[u].size(),
              std::min<std::size_t>(tc.cap, oracle.size()));
    // Popularity: >= cap other centers within delta.
    EXPECT_EQ(static_cast<bool>(res.popular[u]), oracle.size() >= tc.cap);
    // Theorem 2.1(2): an unpopular center knows ALL centers within delta,
    // at exact shortest distances.
    if (!res.popular[u]) {
      ASSERT_EQ(res.knowledge[u].size(), oracle.size());
      for (const auto& [origin, dist] : oracle) {
        const auto* k = core::find_knowledge(res.knowledge[u], origin);
        ASSERT_NE(k, nullptr) << "center " << u << " missing " << origin;
        EXPECT_EQ(k->dist, dist);
      }
    }
    // All recorded distances are exact shortest distances (even when capped).
    const auto bfs = graph::bfs(g, u);
    for (const auto& k : res.knowledge[u]) {
      EXPECT_EQ(k.dist, bfs.dist[k.origin]);
    }
  }
}

TEST_P(Algorithm1Contract, TraceBackChainsAreConsistent) {
  const auto& tc = GetParam();
  const Graph g = graph::make_workload(tc.family, tc.n, 31);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < g.num_vertices(); v += tc.center_stride) {
    sources.push_back(v);
  }
  const auto res = core::run_algorithm1(g, sources, tc.delta, tc.cap);
  // Every knowledge entry's parent chain must walk to the origin with
  // strictly decreasing recorded distances (Theorem 2.1(2)).
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const auto& k : res.knowledge[v]) {
      Vertex x = v;
      const core::Knowledge* cur = &k;
      while (cur->dist > 1) {
        const Vertex p = cur->parent;
        ASSERT_TRUE(g.has_edge(x, p));
        const auto* next = core::find_knowledge(res.knowledge[p], k.origin);
        ASSERT_NE(next, nullptr);
        ASSERT_EQ(next->dist, cur->dist - 1);
        x = p;
        cur = next;
      }
      EXPECT_EQ(cur->parent, k.origin);
    }
  }
}

TEST_P(Algorithm1Contract, EventDrivenMatchesExactEngine) {
  const auto& tc = GetParam();
  if (tc.n > 80) GTEST_SKIP() << "engine cross-check is for small inputs";
  const Graph g = graph::make_workload(tc.family, tc.n, 37);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < g.num_vertices(); v += tc.center_stride) {
    sources.push_back(v);
  }
  const auto fast = core::run_algorithm1(g, sources, tc.delta, tc.cap);
  const auto exact = core::run_algorithm1_exact(g, sources, tc.delta, tc.cap);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(fast.knowledge[v].size(), exact.knowledge[v].size()) << v;
    for (std::size_t i = 0; i < fast.knowledge[v].size(); ++i) {
      EXPECT_EQ(fast.knowledge[v][i].origin, exact.knowledge[v][i].origin);
      EXPECT_EQ(fast.knowledge[v][i].dist, exact.knowledge[v][i].dist);
      EXPECT_EQ(fast.knowledge[v][i].parent, exact.knowledge[v][i].parent);
    }
    EXPECT_EQ(fast.popular[v], exact.popular[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm1Contract,
    ::testing::Values(Alg1Case{"er", 60, 2, 4, 1},
                      Alg1Case{"er", 60, 3, 2, 2},
                      Alg1Case{"grid", 64, 4, 3, 1},
                      Alg1Case{"grid", 64, 2, 8, 3},
                      Alg1Case{"cycle", 40, 5, 2, 4},
                      Alg1Case{"tree", 63, 3, 3, 1},
                      Alg1Case{"hypercube", 64, 2, 6, 1},
                      Alg1Case{"dumbbell", 50, 2, 5, 1},
                      Alg1Case{"er", 300, 2, 6, 1},
                      Alg1Case{"geometric", 200, 3, 5, 2}),
    [](const auto& param_info) {
      const auto& c = param_info.param;
      return c.family + "_n" + std::to_string(c.n) + "_d" +
             std::to_string(c.delta) + "_c" + std::to_string(c.cap) + "_s" +
             std::to_string(c.center_stride);
    });

TEST(Algorithm1, DeterministicAcrossRuns) {
  const Graph g = graph::make_workload("er", 200, 41);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < g.num_vertices(); v += 2) sources.push_back(v);
  const auto a = core::run_algorithm1(g, sources, 3, 5);
  const auto b = core::run_algorithm1(g, sources, 3, 5);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(a.knowledge[v].size(), b.knowledge[v].size());
    for (std::size_t i = 0; i < a.knowledge[v].size(); ++i) {
      EXPECT_EQ(a.knowledge[v][i].origin, b.knowledge[v][i].origin);
      EXPECT_EQ(a.knowledge[v][i].parent, b.knowledge[v][i].parent);
    }
  }
}

}  // namespace
