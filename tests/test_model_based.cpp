// Model-based randomized tests: library containers checked against naive
// reference models under long deterministic operation sequences.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "baselines/en17.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace nas;
using graph::EdgeSet;
using graph::Graph;
using graph::Vertex;

class EdgeSetModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdgeSetModel, MatchesReferenceSetUnderRandomOps) {
  const Vertex n = 40;
  EdgeSet sut(n);
  std::set<std::pair<Vertex, Vertex>> model;
  util::Xoshiro256 rng(GetParam());

  for (int op = 0; op < 5000; ++op) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    const auto canon = graph::canonical(u, v);
    if (rng.bernoulli(0.7)) {
      const bool inserted_model = model.insert(canon).second;
      const bool inserted_sut = sut.insert(u, v);
      ASSERT_EQ(inserted_sut, inserted_model) << "op " << op;
    } else {
      ASSERT_EQ(sut.contains(u, v), model.count(canon) == 1) << "op " << op;
    }
    ASSERT_EQ(sut.size(), model.size());
  }

  // Final structural agreement.
  const Graph g = sut.to_graph();
  ASSERT_EQ(g.num_edges(), model.size());
  for (const auto& [u, v] : model) {
    ASSERT_TRUE(g.has_edge(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeSetModel,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

class GraphQueryModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphQueryModel, HasEdgeAgreesWithAdjacencyScan) {
  const Graph g = graph::make_workload("er", 200, GetParam());
  util::Xoshiro256 rng(GetParam() * 7 + 1);
  for (int q = 0; q < 2000; ++q) {
    const auto u = static_cast<Vertex>(rng.below(g.num_vertices()));
    const auto v = static_cast<Vertex>(rng.below(g.num_vertices()));
    bool found = false;
    for (Vertex w : g.neighbors(u)) {
      if (w == v) found = true;
    }
    ASSERT_EQ(g.has_edge(u, v), found);
    ASSERT_EQ(g.has_edge(u, v), g.has_edge(v, u));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphQueryModel, ::testing::Values(11, 12, 13),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

TEST(En17Determinism, SameSeedSameSpanner) {
  const Graph g = graph::make_workload("er", 250, 21);
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto a = baselines::build_en17_spanner(g, params, 77);
  const auto b = baselines::build_en17_spanner(g, params, 77);
  EXPECT_EQ(a.spanner.edges(), b.spanner.edges());
  EXPECT_EQ(a.ledger.rounds(), b.ledger.rounds());
}

TEST(En17Determinism, DifferentSeedsUsuallyDiffer) {
  const Graph g = graph::make_workload("er", 250, 23);
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto a = baselines::build_en17_spanner(g, params, 1);
  const auto b = baselines::build_en17_spanner(g, params, 2);
  EXPECT_NE(a.spanner.edges(), b.spanner.edges());
}

}  // namespace
