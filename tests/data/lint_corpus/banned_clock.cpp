// Corpus: banned-clock must fire on wall-clock and CPU-clock reads and stay
// quiet on identifiers that merely contain the words.
#include <chrono>
#include <ctime>

long bad_steady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
long bad_time() { return time(nullptr); }
long bad_clock() { return clock(); }
// steady_clock named in a comment is fine.
long fine_wait_time(long wait_time) { return wait_time; }
