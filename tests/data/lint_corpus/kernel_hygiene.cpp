// Corpus: kernel-file hygiene — a BFS-kernel-shaped file must stay free of
// clock reads (including raw cycle counters) and unordered-container
// iteration; CI lints the real kernel sources against exactly these rules.
#include <chrono>
#include <unordered_set>
#include <vector>

double bad_kernel_timing() {
  const auto t0 = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
unsigned long long bad_cycle_counter() { return __rdtsc(); }
unsigned long long bad_builtin_counter() {
  return __builtin_readcyclecounter();
}
int bad_frontier_order(const std::vector<int>& level) {
  std::unordered_set<int> frontier(level.begin(), level.end());
  int sum = 0;
  for (const int v : frontier) sum += v;
  return sum;
}
// A bitmap frontier keeps iteration in vertex order — this is the fix.
int fine_frontier_membership(int v) {
  std::unordered_set<int> frontier;
  return frontier.count(v) != 0 ? 1 : 0;
}
