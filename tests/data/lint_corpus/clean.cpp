// Corpus negative: every banned token below lives in a comment, a string,
// a char literal, or a raw string — the stripper must blank them all.
#include <string>

/* rand() srand(7) std::random_device steady_clock time(nullptr) */
const char* kDoc = "system_clock and rand() and unordered_map iteration";
const char* kRaw = R"(clock() gettimeofday rand())";
const char kChar = 'r';
// for (const auto& kv : counts) over an unordered_map
std::string describe() { return std::string(kDoc) + kRaw + kChar; }
