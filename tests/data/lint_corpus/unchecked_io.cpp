// unchecked-io corpus: raw POSIX transfer calls whose results vanish in
// statement position (bad), next to every consuming form that must stay
// silent (good).
#include <unistd.h>

void bad(int fd, char* buf) {
  ::close(fd);
  ::write(fd, buf, 16);
  if (fd > 0) {
    ::read(fd, buf, 16);
  }
  ::pwrite(
      fd, buf, 16, 0);
}

long good(int fd, char* buf, std::ofstream& obj) {
  const long n = ::read(fd, buf, 16);
  if (::write(fd, buf, 16) < 0) return -1;
  const int rc = ::close(fd);
  static_cast<void>(rc);
  close(fd);           // unqualified: some other close, not the raw syscall
  obj.write(buf, 16);  // member function, not ::write
  // ::send(fd, buf, 16, 0);  -- commented out, invisible to the rule
  return n + ::send(fd, buf, 16, 0);
}
