// Corpus: flag-description fires when the description argument is missing
// on the conventional `flags` receiver, including multi-line calls.
#include "util/flags.hpp"

void parse(nas::util::Flags& flags) {
  const auto bad_str = flags.str("family", "er");
  const auto bad_int = flags.integer(
      "threads",
      1);
  const auto good_real = flags.real("eps", 0.5, "additive-stretch epsilon");
  const auto good_bool = flags.boolean("quiet", false, "suppress the table");
  (void)bad_str;
  (void)bad_int;
  (void)good_real;
  (void)good_bool;
}
