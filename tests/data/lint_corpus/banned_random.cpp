// Corpus: banned-random must fire on every stdlib randomness source and
// stay quiet on mentions in comments and strings.
#include <cstdlib>
#include <random>

int bad_rand() { return rand(); }
void bad_srand() { srand(42); }
int bad_device() {
  std::random_device rd;
  return static_cast<int>(rd());
}
// rand() in a comment is fine.
const char* fine_string() { return "call rand() at your peril"; }
int fine_operand(int operand) { return operand; }
