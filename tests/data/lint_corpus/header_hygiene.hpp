// Corpus: header-pragma-once fires at line 1 when the pragma is missing;
// header-using-namespace fires on the directive's own line.
#include <string>

using namespace std;

inline string greet() { return "hi"; }
