// Corpus: the inline escape hatch.  A `nas-lint: allow(rule)` comment on
// the same line or the line directly above suppresses exactly that rule.
#include <cstdlib>

int same_line() { return rand(); }  // nas-lint: allow(banned-random)
// nas-lint: allow(banned-random)
int previous_line() { return rand(); }
int wrong_rule() { return rand(); }  // nas-lint: allow(banned-clock)
int unsuppressed() { return rand(); }
