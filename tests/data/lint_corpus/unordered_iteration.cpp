// Corpus: unordered-iteration must fire on range-for and .begin()/.end()
// over a declared unordered container and stay quiet on membership tests.
#include <unordered_map>
#include <unordered_set>
#include <vector>

int bad_range_for() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  return total;
}
std::vector<int> bad_begin() {
  std::unordered_set<int> seen;
  return std::vector<int>(seen.begin(), seen.end());
}
bool fine_membership(int key) {
  std::unordered_set<int> seen;
  return seen.count(key) != 0;
}
