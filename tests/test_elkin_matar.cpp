// End-to-end tests for the full Elkin-Matar construction: the paper's
// guarantees (stretch, size, partition, invariants) across graph families
// and parameter settings.
#include <gtest/gtest.h>

#include <string>

#include "core/elkin_matar.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;
using graph::Vertex;

struct EmCase {
  std::string family;
  Vertex n;
  double eps;
  int kappa;
  double rho;
  std::uint64_t seed;
};

class ElkinMatarEndToEnd : public ::testing::TestWithParam<EmCase> {
 protected:
  static Graph make(const EmCase& tc) {
    return graph::make_workload(tc.family, tc.n, tc.seed);
  }
};

TEST_P(ElkinMatarEndToEnd, StretchBoundHolds) {
  const auto& tc = GetParam();
  const Graph g = make(tc);
  const auto params = Params::practical(g.num_vertices(), tc.eps, tc.kappa, tc.rho);
  const auto result = core::build_spanner(g, params);
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.connectivity_ok);
  EXPECT_TRUE(rep.bound_ok)
      << "worst pair (" << rep.worst_u << "," << rep.worst_v
      << "): dG=" << rep.worst_dg << " dH=" << rep.worst_dh;
}

TEST_P(ElkinMatarEndToEnd, SpannerIsSubgraph) {
  const auto& tc = GetParam();
  const Graph g = make(tc);
  const auto params = Params::practical(g.num_vertices(), tc.eps, tc.kappa, tc.rho);
  const auto result = core::build_spanner(g, params);
  EXPECT_TRUE(verify::is_subgraph(g, result.spanner));
}

TEST_P(ElkinMatarEndToEnd, StructuralInvariantsHold) {
  const auto& tc = GetParam();
  const Graph g = make(tc);
  const auto params = Params::practical(g.num_vertices(), tc.eps, tc.kappa, tc.rho);
  // build_spanner throws on any Lemma 2.3/2.4 or Theorem 2.2 violation when
  // validation is on; reaching this point is the assertion.
  const auto result = core::build_spanner(g, params, {.validate = true});
  EXPECT_TRUE(result.trace.all_invariants_ok());

  // Corollary 2.5: settle phases partition V.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(result.clusters.settled_phase(v), 0);
    EXPECT_LE(result.clusters.settled_phase(v), params.ell());
  }
}

TEST_P(ElkinMatarEndToEnd, ClusterCountsShrinkPerLemmas210And211) {
  const auto& tc = GetParam();
  const Graph g = make(tc);
  const double n = g.num_vertices();
  const auto params = Params::practical(g.num_vertices(), tc.eps, tc.kappa, tc.rho);
  const auto result = core::build_spanner(g, params);
  for (const auto& ph : result.trace.phases) {
    if (ph.index == 0) {
      EXPECT_EQ(ph.num_clusters, g.num_vertices());
      continue;
    }
    // |P_{i+1}| = |RS_i| <= |P_i| / deg_i: each ruler's δ-neighborhood holds
    // >= deg_i distinct centers and the neighborhoods are disjoint.
    const auto& prev = result.trace.phases[ph.index - 1];
    if (prev.num_rulers > 0) {
      EXPECT_LE(ph.num_clusters * prev.deg, prev.num_clusters)
          << "phase " << ph.index;
    }
    (void)n;
  }
}

TEST_P(ElkinMatarEndToEnd, DeterministicAcrossRuns) {
  const auto& tc = GetParam();
  const Graph g = make(tc);
  const auto params = Params::practical(g.num_vertices(), tc.eps, tc.kappa, tc.rho);
  const auto a = core::build_spanner(g, params);
  const auto b = core::build_spanner(g, params);
  EXPECT_EQ(a.spanner.edges(), b.spanner.edges());
  EXPECT_EQ(a.ledger.rounds(), b.ledger.rounds());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElkinMatarEndToEnd,
    ::testing::Values(
        EmCase{"er", 150, 0.5, 3, 0.4, 1},
        EmCase{"er", 300, 0.25, 3, 0.4, 2},
        EmCase{"er_dense", 200, 0.5, 4, 0.45, 3},
        EmCase{"grid", 225, 0.5, 3, 0.4, 4},
        EmCase{"torus", 196, 0.25, 3, 0.34, 5},
        EmCase{"hypercube", 256, 0.5, 4, 0.3, 6},
        EmCase{"cycle", 120, 0.5, 3, 0.4, 7},
        EmCase{"path", 100, 0.5, 3, 0.4, 8},
        EmCase{"tree", 127, 0.25, 3, 0.4, 9},
        EmCase{"ba", 250, 0.5, 3, 0.4, 10},
        EmCase{"caveman", 216, 0.5, 3, 0.4, 11},
        EmCase{"dumbbell", 150, 0.5, 3, 0.4, 12},
        EmCase{"geometric", 200, 0.5, 4, 0.45, 13},
        EmCase{"star", 150, 0.5, 3, 0.4, 14},
        EmCase{"er", 200, 0.5, 4, 0.3, 15},
        EmCase{"er", 200, 0.4, 8, 0.4, 16}),
    [](const auto& param_info) {
      const auto& c = param_info.param;
      std::string eps = std::to_string(c.eps);
      eps.erase(eps.find_last_not_of('0') + 1);
      for (auto& ch : eps) {
        if (ch == '.') ch = 'p';
      }
      return c.family + "_n" + std::to_string(c.n) + "_e" + eps + "_k" +
             std::to_string(c.kappa);
    });

TEST(ElkinMatar, RejectsMismatchedParams) {
  const Graph g = graph::path(10);
  const auto params = Params::practical(50, 0.5, 3, 0.4);
  EXPECT_THROW(core::build_spanner(g, params), std::invalid_argument);
}

TEST(ElkinMatar, DisconnectedGraphSpansEachComponent) {
  const Graph g = graph::Graph::from_edges(
      10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 8}, {8, 9}});
  const auto params = Params::practical(10, 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params);
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_TRUE(rep.connectivity_ok);
}

TEST(ElkinMatar, TinyGraphs) {
  for (Vertex n : {2u, 3u, 5u}) {
    const Graph g = graph::path(n);
    const auto params = Params::practical(n, 0.5, 3, 0.4);
    const auto result = core::build_spanner(g, params);
    EXPECT_EQ(result.spanner.num_edges(), g.num_edges());  // paths can't shrink
  }
}

TEST(ElkinMatar, CompleteGraphCompressesHard) {
  const Graph g = graph::complete(64);
  const auto params = Params::practical(64, 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params);
  // K64 has 2016 edges; the spanner should be drastically smaller.
  EXPECT_LT(result.spanner.num_edges(), g.num_edges() / 2);
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.bound_ok);
}

TEST(ElkinMatar, PaperModeRunsOnSmallInstance) {
  // Paper mode's internal ε is tiny, so δ_i explodes; at κρ close to 2 and
  // small n the schedule stays executable and the (vacuous at this scale)
  // eq.(18) bound holds.
  const Graph g = graph::make_workload("er", 120, 21);
  const auto params = Params::paper(g.num_vertices(), 1.0, 4, 0.49);
  const auto result = core::build_spanner(g, params);
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, 1.0 + params.eps_user(), params.beta_paper());
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_TRUE(verify::is_subgraph(g, result.spanner));
}

TEST(ElkinMatar, RoundsMatchLedgerSections) {
  const Graph g = graph::make_workload("er", 200, 23);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params);
  std::uint64_t section_sum = 0;
  for (const auto& s : result.ledger.sections()) section_sum += s.rounds;
  EXPECT_EQ(section_sum, result.ledger.rounds());
  // The trace's per-phase rounds account for everything except the
  // concluding phase's cluster-count aggregation.
  EXPECT_LE(result.trace.total_rounds(), result.ledger.rounds());
}

TEST(ElkinMatar, EdgeCountWithinPaperBound) {
  // |H| = O(β n^{1+1/κ}); with the unit-constant bound of Params this holds
  // comfortably on every tested family.
  for (const char* family : {"er", "grid", "ba", "er_dense"}) {
    const Graph g = graph::make_workload(family, 250, 31);
    const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
    const auto result = core::build_spanner(g, params);
    const auto rep = verify::size_report(g, result.spanner,
                                         params.beta_paper(), params.kappa());
    EXPECT_TRUE(rep.within_bound) << family << ": " << rep.spanner_edges
                                  << " vs bound " << rep.bound;
  }
}

TEST(ElkinMatar, ValidateOffSkipsChecksButSameSpanner) {
  const Graph g = graph::make_workload("er", 200, 33);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto with = core::build_spanner(g, params, {.validate = true});
  const auto without = core::build_spanner(g, params, {.validate = false});
  EXPECT_EQ(with.spanner.edges(), without.spanner.edges());
}

}  // namespace
