// Tests for the application layer (distance oracle, synchronizer analysis)
// and the ACIM99 purely-additive +2 baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/distance_oracle.hpp"
#include "apps/synchronizer.hpp"
#include "baselines/additive2.hpp"
#include "core/elkin_matar.hpp"
#include "graph/apsp.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;
using graph::Vertex;

TEST(DistanceOracle, AnswersWithinGuarantee) {
  const Graph g = graph::make_workload("er", 300, 3);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const apps::SpannerDistanceOracle oracle(g, params);
  const graph::Apsp exact(g);
  for (Vertex u = 0; u < g.num_vertices(); u += 11) {
    for (Vertex v = 0; v < g.num_vertices(); v += 7) {
      const auto d = exact.dist(u, v);
      if (d == graph::kInfDist) continue;
      const auto q = oracle.query(u, v);
      EXPECT_GE(q, d);
      EXPECT_LE(q, oracle.multiplicative() * d + oracle.additive());
    }
  }
}

TEST(DistanceOracle, SelfDistanceZeroAndValidation) {
  const Graph g = graph::path(10);
  const auto params = Params::practical(10, 0.5, 3, 0.4);
  const apps::SpannerDistanceOracle oracle(g, params);
  EXPECT_EQ(oracle.query(4, 4), 0u);
  EXPECT_THROW((void)oracle.query(0, 99), std::invalid_argument);
}

TEST(DistanceOracle, CachesBfsPasses) {
  const Graph g = graph::make_workload("er", 200, 5);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const apps::SpannerDistanceOracle oracle(g, params);
  EXPECT_EQ(oracle.bfs_passes(), 0u);
  (void)oracle.query(0, 1);
  (void)oracle.query(0, 2);
  (void)oracle.query(3, 0);  // reuses 0's cached BFS (swapped side)
  EXPECT_EQ(oracle.bfs_passes(), 1u);
  (void)oracle.query(5, 6);
  EXPECT_EQ(oracle.bfs_passes(), 2u);
}

TEST(DistanceOracle, DisconnectedPairsReportInf) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto params = Params::practical(6, 0.5, 3, 0.4);
  const apps::SpannerDistanceOracle oracle(g, params);
  EXPECT_EQ(oracle.query(0, 2), graph::kInfDist);
  EXPECT_EQ(oracle.query(0, 1), 1u);
}

TEST(Synchronizer, IdentityOverlayHasUnitLatency) {
  const Graph g = graph::make_workload("er", 150, 7);
  const auto rep = apps::analyze_synchronizer(g, g);
  EXPECT_EQ(rep.pulse_latency, 1u);
  EXPECT_DOUBLE_EQ(rep.mean_edge_stretch, 1.0);
  EXPECT_DOUBLE_EQ(rep.message_saving(), 1.0);
  EXPECT_TRUE(rep.overlay_connects);
}

TEST(Synchronizer, SpannerOverlayTradesMessagesForLatency) {
  const Graph g = graph::make_workload("er_dense", 400, 9);
  const auto params = Params::practical(g.num_vertices(), 0.25, 3, 0.4);
  const auto result = core::build_spanner(g, params, {.validate = false});
  const auto rep = apps::analyze_synchronizer(g, result.spanner);
  EXPECT_TRUE(rep.overlay_connects);
  EXPECT_LT(rep.message_saving(), 1.0);           // fewer messages per pulse
  EXPECT_GE(rep.pulse_latency, 1u);               // some latency cost
  // Edge latency is bounded by the spanner guarantee on distance-1 pairs.
  EXPECT_LE(rep.pulse_latency, params.stretch_multiplicative() * 1.0 +
                                   params.stretch_additive());
  EXPECT_EQ(rep.messages_per_pulse, 2 * result.spanner.num_edges());
}

TEST(Synchronizer, DetectsBrokenOverlay) {
  const Graph g = graph::cycle(6);
  const Graph broken = Graph::from_edges(6, {{0, 1}, {3, 4}});
  const auto rep = apps::analyze_synchronizer(g, broken);
  EXPECT_FALSE(rep.overlay_connects);
}

TEST(Synchronizer, SizeMismatchThrows) {
  EXPECT_THROW(
      (void)apps::analyze_synchronizer(graph::path(4), graph::path(5)),
      std::invalid_argument);
}

// --- ACIM99 +2 additive spanner ---------------------------------------------

class Additive2Families : public ::testing::TestWithParam<const char*> {};

TEST_P(Additive2Families, PurelyAdditivePlusTwo) {
  const Graph g = graph::make_workload(GetParam(), 220, 13);
  const auto res = baselines::build_additive2_spanner(g);
  EXPECT_TRUE(verify::is_subgraph(g, res.spanner));
  const auto rep = verify::verify_stretch_exact(g, res.spanner, 1.0, 2.0);
  EXPECT_TRUE(rep.bound_ok) << GetParam() << " worst +" << rep.max_excess;
  EXPECT_TRUE(rep.connectivity_ok);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Additive2Families,
                         ::testing::Values("er", "er_dense", "ba", "caveman",
                                           "hypercube", "dumbbell"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

TEST(Additive2, SparseGraphsKeptVerbatim) {
  // All degrees below sqrt(n): every edge is light, spanner == G, error 0.
  const Graph g = graph::cycle(100);
  const auto res = baselines::build_additive2_spanner(g);
  EXPECT_EQ(res.spanner.num_edges(), g.num_edges());
}

TEST(Additive2, DenseGraphCompressedNearN32) {
  const Graph g = graph::complete(144);
  const auto res = baselines::build_additive2_spanner(g);
  // K_n: one dominator covers everything; light edges absent.
  EXPECT_LT(res.spanner.num_edges(), g.num_edges() / 4);
  const auto rep = verify::verify_stretch_exact(g, res.spanner, 1.0, 2.0);
  EXPECT_TRUE(rep.bound_ok);
}

TEST(Additive2, CustomThresholdRespected) {
  const Graph g = graph::make_workload("er_dense", 200, 15);
  // Threshold larger than max degree: everything light, spanner == G.
  const auto res = baselines::build_additive2_spanner(
      g, static_cast<std::uint32_t>(g.max_degree() + 1));
  EXPECT_EQ(res.spanner.num_edges(), g.num_edges());
}

TEST(Additive2, IllustratesAbboudBodwinTradeoff) {
  // The motivation the paper cites [AB15]: purely-additive needs ~n^{3/2}
  // edges where near-additive reaches n^{1+1/kappa}.  On a dense graph the
  // near-additive spanner (kappa = 3) is smaller than the +2 spanner.
  const Graph g = graph::make_workload("er_dense", 600, 17);
  const auto plus2 = baselines::build_additive2_spanner(g);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto near = core::build_spanner(g, params, {.validate = false});
  EXPECT_LT(near.spanner.num_edges(), plus2.spanner.num_edges());
}

}  // namespace
