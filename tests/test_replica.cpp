// Tests for R-way replica groups (src/serve/replica + the replicated
// ShardedCluster): answers byte-identical across replica counts {1,2,4} x
// routing policies x thread counts {1,2,8} x shard counts {1,2} and equal
// to the single-oracle baseline, deterministic-policy counter equality
// across runs, least-loaded liveness, admission-control shed accounting,
// cluster metrics, and the runner's replica axes.  Per the repo's
// single-core bench policy these tests assert determinism, never
// wall-clock.  The TSan CI lane runs this binary: the multi-threaded
// sweeps double as a data-race probe over the (shard, replica) execution
// units.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "run/runner.hpp"
#include "run/sinks.hpp"
#include "serve/cluster.hpp"
#include "serve/replica.hpp"

namespace {

using namespace nas;
using apps::Query;
using apps::SpannerDistanceOracle;
using graph::Graph;
using serve::ClusterOptions;
using serve::ClusterStats;
using serve::ReplicaGroup;
using serve::ReplicaGroupOptions;
using serve::RoutePolicy;
using serve::ShardedCluster;

core::SpannerResult build_result(const Graph& g) {
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  return core::build_spanner(g, params, {.validate = false});
}

// --- policy parsing ----------------------------------------------------------

TEST(RoutePolicy, ParseAndName) {
  EXPECT_EQ(serve::parse_route_policy("round-robin"),
            RoutePolicy::kRoundRobin);
  EXPECT_EQ(serve::parse_route_policy("least-loaded"),
            RoutePolicy::kLeastLoaded);
  EXPECT_EQ(serve::parse_route_policy("deterministic"),
            RoutePolicy::kDeterministic);
  EXPECT_THROW((void)serve::parse_route_policy("random"),
               std::invalid_argument);
  EXPECT_EQ(serve::route_policy_name(RoutePolicy::kRoundRobin), "round-robin");
  EXPECT_EQ(serve::route_policy_name(RoutePolicy::kLeastLoaded),
            "least-loaded");
  EXPECT_EQ(serve::route_policy_name(RoutePolicy::kDeterministic),
            "deterministic");
}

// --- replica group -----------------------------------------------------------

TEST(ReplicaGroup, PlanCoversEveryRequestOnceInArrivalOrder) {
  const Graph g = graph::make_workload("er", 120, 1);
  const auto result = build_result(g);
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 200, 5, 0.99});

  for (const auto policy : {RoutePolicy::kRoundRobin, RoutePolicy::kLeastLoaded,
                            RoutePolicy::kDeterministic}) {
    ReplicaGroup group(graph::Csr::from_graph(result.spanner),
                       result.params.stretch_multiplicative(),
                       result.params.stretch_additive(), {},
                       {.replicas = 3, .policy = policy});
    const auto plan = group.plan(batch);
    ASSERT_EQ(plan.queries.size(), 3u);
    ASSERT_EQ(plan.slots.size(), 3u);
    std::vector<int> seen(batch.size(), 0);
    for (unsigned r = 0; r < 3; ++r) {
      ASSERT_EQ(plan.queries[r].size(), plan.slots[r].size());
      for (std::size_t i = 0; i < plan.slots[r].size(); ++i) {
        const auto slot = plan.slots[r][i];
        ++seen[slot];
        EXPECT_EQ(plan.queries[r][i].u, batch[slot].u);
        EXPECT_EQ(plan.queries[r][i].v, batch[slot].v);
        // Arrival order within the replica.
        if (i > 0) {
          EXPECT_LT(plan.slots[r][i - 1], slot);
        }
      }
    }
    for (const auto count : seen) EXPECT_EQ(count, 1);
  }
}

TEST(ReplicaGroup, DeterministicPolicyIsPositionModuloR) {
  const Graph g = graph::make_workload("er", 100, 2);
  const auto result = build_result(g);
  ReplicaGroup group(graph::Csr::from_graph(result.spanner),
                     result.params.stretch_multiplicative(),
                     result.params.stretch_additive(), {},
                     {.replicas = 2, .policy = RoutePolicy::kDeterministic});
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 20, 1, 0.99});
  const auto plan = group.plan(batch);
  for (unsigned r = 0; r < 2; ++r) {
    for (const auto slot : plan.slots[r]) {
      EXPECT_EQ(slot % 2, r);
    }
  }
  // A second pass routes the same way: no hidden cursor state.
  const auto again = group.plan(batch);
  EXPECT_EQ(plan.slots, again.slots);
}

TEST(ReplicaGroup, RoundRobinCursorPersistsAcrossPasses) {
  const Graph g = graph::make_workload("er", 100, 2);
  const auto result = build_result(g);
  ReplicaGroup group(graph::Csr::from_graph(result.spanner),
                     result.params.stretch_multiplicative(),
                     result.params.stretch_additive(), {},
                     {.replicas = 2, .policy = RoutePolicy::kRoundRobin});
  const std::vector<Query> one{{0, 1}};
  // Three one-request passes: the cursor alternates 0, 1, 0.
  EXPECT_EQ(group.plan(one).queries[0].size(), 1u);
  EXPECT_EQ(group.plan(one).queries[1].size(), 1u);
  EXPECT_EQ(group.plan(one).queries[0].size(), 1u);
}

TEST(ReplicaGroup, LeastLoadedBalancesAndStaysLive) {
  const Graph g = graph::make_workload("er", 100, 3);
  const auto result = build_result(g);
  ReplicaGroup group(graph::Csr::from_graph(result.spanner),
                     result.params.stretch_multiplicative(),
                     result.params.stretch_additive(), {},
                     {.replicas = 4, .policy = RoutePolicy::kLeastLoaded});
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 400, 9, 0.99});
  const auto plan = group.plan(batch);
  // Liveness: every replica received work, and the in-pass balancing keeps
  // the split exactly even (each request goes to a minimum-depth replica).
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(plan.queries[r].size(), 100u) << "replica " << r;
  }
}

TEST(ReplicaGroup, AdmissionCapShedsToTheGroup) {
  const Graph g = graph::make_workload("er", 100, 4);
  const auto result = build_result(g);
  ReplicaGroup group(graph::Csr::from_graph(result.spanner),
                     result.params.stretch_multiplicative(),
                     result.params.stretch_additive(), {},
                     {.replicas = 2,
                      .policy = RoutePolicy::kDeterministic,
                      .queue_depth = 1});
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 10, 2, 0.99});
  const auto plan = group.plan(batch);
  // Every request is still planned exactly once — shedding reroutes, it
  // never drops.
  std::size_t planned = 0;
  std::uint64_t sheds = 0;
  for (unsigned r = 0; r < 2; ++r) {
    planned += plan.queries[r].size();
    sheds += plan.sheds[r];
  }
  EXPECT_EQ(planned, batch.size());
  // With a cap of 1 and 10 requests at 2 replicas, most requests shed.
  EXPECT_GT(sheds, 0u);

  // A single-replica group never sheds: there is no sibling to shed to.
  ReplicaGroup solo(graph::Csr::from_graph(result.spanner),
                    result.params.stretch_multiplicative(),
                    result.params.stretch_additive(), {},
                    {.replicas = 1,
                     .policy = RoutePolicy::kRoundRobin,
                     .queue_depth = 1});
  const auto solo_plan = solo.plan(batch);
  EXPECT_EQ(solo_plan.queries[0].size(), batch.size());
  EXPECT_EQ(solo_plan.sheds[0], 0u);
}

TEST(ReplicaGroup, ExecuteMergeRoundTripMatchesBaseline) {
  const Graph g = graph::make_workload("grid", 144, 1);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 300, 7, 0.99});
  const SpannerDistanceOracle baseline(Graph(result.spanner), mult, add);
  const auto expected = baseline.batch_query(batch, 1);

  ReplicaGroup group(graph::Csr::from_graph(result.spanner), mult, add, {},
                     {.replicas = 3, .policy = RoutePolicy::kRoundRobin});
  const auto plan = group.plan(batch);
  std::vector<std::vector<std::uint32_t>> answers(3);
  std::vector<apps::BatchStats> stats(3);
  for (unsigned r = 0; r < 3; ++r) {
    group.execute(plan, r, &answers[r], &stats[r]);
  }
  EXPECT_EQ(ReplicaGroup::merge(plan, answers, batch.size()), expected);

  std::vector<serve::ReplicaCounters> per_call;
  group.absorb(plan, stats, &per_call);
  ASSERT_EQ(per_call.size(), 3u);
  std::uint64_t requests = 0;
  for (const auto& c : per_call) requests += c.requests;
  EXPECT_EQ(requests, batch.size());
  // absorb() folded the same totals into the lifetime counters.
  requests = 0;
  for (const auto& c : group.counters()) requests += c.requests;
  EXPECT_EQ(requests, batch.size());
}

// --- replicated cluster ------------------------------------------------------

TEST(ReplicatedCluster, ByteIdenticalAcrossReplicasPoliciesThreadsAndShards) {
  const Graph g = graph::make_workload("er", 220, 3);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 500, 11, 0.99});

  const SpannerDistanceOracle baseline(Graph(result.spanner), mult, add);
  const auto expected = baseline.batch_query(batch, 1);

  for (const unsigned shards : {1u, 2u}) {
    for (const unsigned replicas : {1u, 2u, 4u}) {
      for (const char* route : {"round-robin", "least-loaded",
                                "deterministic"}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
          ShardedCluster cluster(result.spanner, mult, add,
                                 {.shards = shards,
                                  .partition = "hash",
                                  .replicas = replicas,
                                  .route = route});
          ClusterStats stats;
          const auto answers = cluster.serve(batch, threads, &stats);
          ASSERT_EQ(answers, expected)
              << "shards=" << shards << " replicas=" << replicas
              << " route=" << route << " threads=" << threads;
          EXPECT_EQ(stats.requests, batch.size());
          ASSERT_EQ(stats.per_replica.size(), shards);
          for (const auto& shard_replicas : stats.per_replica) {
            EXPECT_EQ(shard_replicas.size(), replicas);
          }
        }
      }
    }
  }
}

TEST(ReplicatedCluster, DeterministicPolicyCountersStableAcrossRunsAndThreads) {
  const Graph g = graph::make_workload("er", 200, 5);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 400, 7, 0.99});
  const ClusterOptions options{.shards = 2,
                               .partition = "hash",
                               .replicas = 4,
                               .route = "deterministic",
                               .replica_queue_depth = 8};

  ClusterStats reference;
  {
    ShardedCluster cluster(result.spanner, mult, add, options);
    (void)cluster.serve(batch, 1, &reference);
  }
  const auto reference_digest = reference.digest();

  // Fresh clusters at other thread counts reproduce every counter — and
  // therefore the digest CI diffs — exactly.
  for (const unsigned threads : {2u, 8u}) {
    ShardedCluster cluster(result.spanner, mult, add, options);
    ClusterStats stats;
    (void)cluster.serve(batch, threads, &stats);
    EXPECT_EQ(stats.digest(), reference_digest) << "threads=" << threads;
    ASSERT_EQ(stats.per_replica.size(), reference.per_replica.size());
    for (std::size_t s = 0; s < stats.per_replica.size(); ++s) {
      for (std::size_t r = 0; r < stats.per_replica[s].size(); ++r) {
        EXPECT_EQ(stats.per_replica[s][r].requests,
                  reference.per_replica[s][r].requests);
        EXPECT_EQ(stats.per_replica[s][r].bfs_passes,
                  reference.per_replica[s][r].bfs_passes);
        EXPECT_EQ(stats.per_replica[s][r].sheds,
                  reference.per_replica[s][r].sheds);
      }
    }
  }

  // The digest is sensitive: a different admission cap moves the shed
  // counters.  (A different *policy* need not move anything on a fresh
  // cluster's first pass — round-robin's cursor starts at 0, so its first
  // assignment coincides with deterministic's i % R by construction.)
  ShardedCluster other(result.spanner, mult, add,
                       {.shards = 2,
                        .partition = "hash",
                        .replicas = 4,
                        .route = "deterministic",
                        .replica_queue_depth = 1});
  ClusterStats other_stats;
  (void)other.serve(batch, 1, &other_stats);
  EXPECT_NE(other_stats.digest(), reference_digest);
  EXPECT_GT(other_stats.sheds, reference.sheds);
}

TEST(ReplicatedCluster, LifetimeStatsAccumulateAcrossBatches) {
  const Graph g = graph::make_workload("er", 150, 2);
  const auto result = build_result(g);
  ShardedCluster cluster(result.spanner,
                         result.params.stretch_multiplicative(),
                         result.params.stretch_additive(),
                         {.shards = 2, .replicas = 2});
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"zipf", 200, 3, 0.99});
  ClusterStats lifetime, first, second;
  (void)cluster.serve(batch, 2, &first);
  (void)cluster.serve(batch, 2, &second);
  lifetime += first;
  lifetime += second;
  EXPECT_EQ(lifetime.requests, 2 * batch.size());
  ASSERT_EQ(lifetime.per_replica.size(), 2u);
  std::uint64_t replica_requests = 0;
  for (const auto& shard_replicas : lifetime.per_replica) {
    for (const auto& c : shard_replicas) replica_requests += c.requests;
  }
  EXPECT_EQ(replica_requests, 2 * batch.size());
  // The cluster's own lifetime counters agree with the summed stats.
  std::uint64_t group_requests = 0;
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    for (const auto& c : cluster.group(s).counters()) {
      group_requests += c.requests;
    }
  }
  EXPECT_EQ(group_requests, 2 * batch.size());
}

TEST(ReplicatedCluster, MetricsTrackWorkDeterministically) {
  const Graph g = graph::make_workload("er", 150, 4);
  const auto result = build_result(g);
  const ClusterOptions options{.shards = 2,
                               .replicas = 2,
                               .route = "deterministic"};
  const auto batch =
      apps::make_query_workload(g.num_vertices(), {"uniform", 100, 1, 0.99});

  const auto run_digest = [&](unsigned threads) {
    ShardedCluster cluster(result.spanner,
                           result.params.stretch_multiplicative(),
                           result.params.stretch_additive(), options);
    (void)cluster.serve(batch, threads);
    (void)cluster.serve(batch, threads);
    EXPECT_EQ(cluster.metrics().serve_calls, 2u);
    EXPECT_EQ(cluster.metrics().batch_requests.total(), 2u);
    EXPECT_EQ(cluster.metrics().batch_requests.sum(), 2 * batch.size());
    return cluster.metrics().work_digest();
  };
  // The work digest — which excludes the serve-latency histogram — is
  // byte-stable across thread counts and fresh runs.
  const auto d1 = run_digest(1);
  EXPECT_EQ(run_digest(2), d1);
  EXPECT_EQ(run_digest(8), d1);

  // The rendered METRICS schema carries the digest and both work
  // histograms.
  ShardedCluster cluster(result.spanner,
                         result.params.stretch_multiplicative(),
                         result.params.stretch_additive(), options);
  (void)cluster.serve(batch, 1);
  const auto fields = serve::cluster_metrics_fields(cluster);
  bool saw_digest = false, saw_batch = false, saw_depth = false,
       saw_latency = false;
  for (const auto& [key, value] : fields) {
    saw_digest |= key == "metrics_digest";
    saw_batch |= key == "batch_requests_le";
    saw_depth |= key == "replica_depth_le";
    saw_latency |= key == "serve_latency_ms_le";
  }
  EXPECT_TRUE(saw_digest);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_latency);
}

TEST(ReplicatedCluster, RejectsBadOptions) {
  const Graph g = graph::make_workload("er", 60, 1);
  const auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  EXPECT_THROW(ShardedCluster(result.spanner, mult, add,
                              {.shards = 2, .replicas = 0}),
               std::invalid_argument);
  EXPECT_THROW(ShardedCluster(result.spanner, mult, add,
                              {.shards = 2, .route = "random"}),
               std::invalid_argument);
}

// --- runner integration ------------------------------------------------------

TEST(RunnerReplica, ReplicaAxesKeepDigestAndFillColumns) {
  run::ScenarioMatrix matrix;
  matrix.set("family", "er");
  matrix.set("n", "200");
  matrix.set("eps", "0.5");
  matrix.set("workload", "uniform");
  matrix.set("queries", "150");
  matrix.set("cluster-shards", "2");
  matrix.set("replicas", "1, 2");
  matrix.set("route", "round-robin, deterministic");
  const auto specs = matrix.expand();
  ASSERT_EQ(specs.size(), 4u);

  run::Runner runner;
  const auto rows = runner.run(specs);
  for (const auto& row : rows) {
    ASSERT_TRUE(row.ok) << row.error;
    ASSERT_TRUE(row.served);
    EXPECT_EQ(row.oracle_digest, rows.front().oracle_digest) << row.spec.id();
  }

  // Non-default replica axes are visible in the id; the default is not.
  EXPECT_EQ(rows.front().spec.id().find("/r="), std::string::npos);
  EXPECT_NE(rows.back().spec.id().find("/r=2/deterministic"),
            std::string::npos);

  // The sink schema carries the replica columns.
  const auto fields = run::row_fields(rows.back());
  bool saw_replicas = false, saw_route = false, saw_digest = false;
  for (const auto& [key, value] : fields) {
    saw_replicas |= key == "cluster_replicas";
    saw_route |= key == "cluster_route";
    saw_digest |= key == "cluster_counter_digest";
  }
  EXPECT_TRUE(saw_replicas);
  EXPECT_TRUE(saw_route);
  EXPECT_TRUE(saw_digest);

  // The matrix rejects a zero replica count and an unknown policy.
  run::ScenarioMatrix bad;
  EXPECT_THROW(bad.set("replicas", "0"), std::invalid_argument);
  EXPECT_THROW(bad.set("route", "random"), std::invalid_argument);
}

}  // namespace
