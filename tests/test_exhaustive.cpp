// Exhaustive small-graph property tests: run the full pipeline on EVERY
// connected graph on up to 6 vertices (up to isomorphism-free enumeration
// we simply take all labeled graphs) and assert the paper's guarantees.
// This catches boundary bugs that random families never hit (bridges,
// cut vertices, twins, near-cliques).
#include <gtest/gtest.h>

#include <vector>

#include "core/elkin_matar.hpp"
#include "core/ruling_set.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;
using graph::Vertex;

/// All labeled graphs on n vertices (edge subsets); filtered to connected.
std::vector<Graph> all_connected_graphs(Vertex n) {
  std::vector<graph::Edge> slots;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) slots.emplace_back(u, v);
  }
  std::vector<Graph> out;
  const std::uint32_t total = 1u << slots.size();
  for (std::uint32_t mask = 0; mask < total; ++mask) {
    std::vector<graph::Edge> edges;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (mask & (1u << i)) edges.push_back(slots[i]);
    }
    Graph g = Graph::from_edges(n, edges);
    if (graph::is_connected(g)) out.push_back(std::move(g));
  }
  return out;
}

TEST(Exhaustive, AllConnectedGraphsOnFourVertices) {
  const auto graphs = all_connected_graphs(4);
  ASSERT_EQ(graphs.size(), 38u);  // known count of connected labeled graphs
  const auto params = Params::practical(4, 0.5, 3, 0.4);
  for (const auto& g : graphs) {
    const auto result = core::build_spanner(g, params, {.validate = true});
    ASSERT_TRUE(verify::is_subgraph(g, result.spanner));
    const auto rep = verify::verify_stretch_exact(
        g, result.spanner, params.stretch_multiplicative(),
        params.stretch_additive());
    ASSERT_TRUE(rep.bound_ok) << g.summary();
    ASSERT_TRUE(rep.connectivity_ok) << g.summary();
  }
}

TEST(Exhaustive, AllConnectedGraphsOnFiveVertices) {
  const auto graphs = all_connected_graphs(5);
  ASSERT_EQ(graphs.size(), 728u);  // OEIS A001187(5)
  const auto params = Params::practical(5, 0.5, 3, 0.4);
  for (const auto& g : graphs) {
    const auto result = core::build_spanner(g, params, {.validate = true});
    ASSERT_TRUE(verify::is_subgraph(g, result.spanner));
    const auto rep = verify::verify_stretch_exact(
        g, result.spanner, params.stretch_multiplicative(),
        params.stretch_additive());
    ASSERT_TRUE(rep.bound_ok) << g.summary();
    ASSERT_TRUE(rep.connectivity_ok) << g.summary();
    // Corollary 2.5 on every graph.
    for (Vertex v = 0; v < 5; ++v) {
      ASSERT_GE(result.clusters.settled_phase(v), 0);
    }
  }
}

TEST(Exhaustive, SixVertexGraphsSampledDeterministically) {
  // 2^15 labeled graphs on 6 vertices is too many to run the full pipeline
  // on each; take a deterministic stride so ~500 connected ones are tested.
  std::vector<graph::Edge> slots;
  for (Vertex u = 0; u < 6; ++u) {
    for (Vertex v = u + 1; v < 6; ++v) slots.emplace_back(u, v);
  }
  const auto params = Params::practical(6, 0.5, 3, 0.4);
  int tested = 0;
  for (std::uint32_t mask = 0; mask < (1u << 15); mask += 37) {
    std::vector<graph::Edge> edges;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (mask & (1u << i)) edges.push_back(slots[i]);
    }
    const Graph g = Graph::from_edges(6, edges);
    if (!graph::is_connected(g)) continue;
    ++tested;
    const auto result = core::build_spanner(g, params, {.validate = true});
    const auto rep = verify::verify_stretch_exact(
        g, result.spanner, params.stretch_multiplicative(),
        params.stretch_additive());
    ASSERT_TRUE(rep.bound_ok) << "mask=" << mask;
  }
  EXPECT_GT(tested, 300);
}

TEST(Exhaustive, RulingSetOnAllFiveVertexGraphs) {
  // Theorem 2.2 on every connected 5-vertex graph with every W ⊆ V.
  const auto graphs = all_connected_graphs(5);
  for (std::size_t gi = 0; gi < graphs.size(); gi += 7) {
    const auto& g = graphs[gi];
    for (std::uint32_t wmask = 1; wmask < 32; wmask += 3) {
      std::vector<Vertex> w;
      for (Vertex v = 0; v < 5; ++v) {
        if (wmask & (1u << v)) w.push_back(v);
      }
      const auto res = core::compute_ruling_set(g, w, 2, 2, 3);
      // Separation.
      for (Vertex a : res.rulers) {
        const auto bfs = graph::bfs(g, a);
        for (Vertex b : res.rulers) {
          if (b != a && bfs.dist[b] != graph::kInfDist) {
            ASSERT_GE(bfs.dist[b], 3u) << g.summary() << " wmask=" << wmask;
          }
        }
      }
      // Domination (graphs are connected, so always reachable).
      ASSERT_FALSE(res.rulers.empty());
      const auto bfs = graph::multi_source_bfs(g, res.rulers);
      for (Vertex v : w) {
        ASSERT_LE(bfs.dist[v], 4u) << g.summary() << " wmask=" << wmask;
      }
    }
  }
}

}  // namespace
