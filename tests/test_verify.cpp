// Tests for the verification library itself.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using graph::Graph;

TEST(Stretch, IdenticalGraphsHaveStretchOne) {
  const Graph g = graph::make_workload("er", 100, 1);
  const auto rep = verify::verify_stretch_exact(g, g, 1.0, 0.0);
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_DOUBLE_EQ(rep.max_multiplicative, 1.0);
  EXPECT_EQ(rep.max_additive, 0u);
  EXPECT_GT(rep.pairs_checked, 0u);
}

TEST(Stretch, DetectsViolation) {
  // G = cycle(6); H = path(6) obtained by dropping edge (5, 0): the pair
  // (0, 5) goes from distance 1 to 5.
  const Graph g = graph::cycle(6);
  const Graph h = graph::path(6);
  const auto rep = verify::verify_stretch_exact(g, h, 1.0, 2.0);
  EXPECT_FALSE(rep.bound_ok);
  EXPECT_EQ(rep.max_additive, 4u);
  EXPECT_DOUBLE_EQ(rep.max_multiplicative, 5.0);
  // Worst witness is the severed pair.
  EXPECT_EQ(rep.worst_dg, 1u);
  EXPECT_EQ(rep.worst_dh, 5u);
  // A looser bound accepts it.
  EXPECT_TRUE(verify::verify_stretch_exact(g, h, 1.0, 4.0).bound_ok);
  EXPECT_TRUE(verify::verify_stretch_exact(g, h, 5.0, 0.0).bound_ok);
}

TEST(Stretch, DetectsDisconnection) {
  const Graph g = graph::path(4);
  const Graph h = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto rep = verify::verify_stretch_exact(g, h, 10.0, 10.0);
  EXPECT_FALSE(rep.connectivity_ok);
  EXPECT_FALSE(rep.bound_ok);
}

TEST(Stretch, MismatchedSizesThrow) {
  const Graph g = graph::path(4);
  const Graph h = graph::path(5);
  EXPECT_THROW((void)verify::verify_stretch_exact(g, h, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)verify::verify_stretch_sampled(g, h, 1, 0, 2, 1),
               std::invalid_argument);
}

TEST(Stretch, SampledSubsetOfExact) {
  const Graph g = graph::make_workload("er", 200, 3);
  const Graph h = g;  // trivial spanner
  const auto all = verify::verify_stretch_exact(g, h, 1.0, 0.0);
  const auto sampled = verify::verify_stretch_sampled(g, h, 1.0, 0.0, 20, 5);
  EXPECT_TRUE(sampled.bound_ok);
  EXPECT_LT(sampled.pairs_checked, all.pairs_checked);
  // Requesting more sources than vertices degrades to the exact check.
  const auto full = verify::verify_stretch_sampled(g, h, 1.0, 0.0, 10000, 5);
  EXPECT_EQ(full.pairs_checked, all.pairs_checked);
}

TEST(Stretch, SampledDeterministicPerSeed) {
  const Graph g = graph::make_workload("er", 300, 7);
  const Graph h = g;
  const auto a = verify::verify_stretch_sampled(g, h, 1.0, 0.0, 10, 3);
  const auto b = verify::verify_stretch_sampled(g, h, 1.0, 0.0, 10, 3);
  EXPECT_EQ(a.pairs_checked, b.pairs_checked);
}

TEST(Checks, IsSubgraph) {
  const Graph g = graph::cycle(5);
  const Graph h = graph::path(5);
  EXPECT_TRUE(verify::is_subgraph(g, h));
  EXPECT_FALSE(verify::is_subgraph(h, g));  // cycle has the extra closing edge
  EXPECT_FALSE(verify::is_subgraph(g, graph::path(4)));  // size mismatch
}

TEST(Checks, SizeReportRejectsNonPositiveKappa) {
  const Graph g = graph::complete(10);
  const Graph h = graph::star(10);
  EXPECT_THROW((void)verify::size_report(g, h, 2.0, 0), std::invalid_argument);
  EXPECT_THROW((void)verify::size_report(g, h, 2.0, -3), std::invalid_argument);
}

TEST(Checks, SizeReport) {
  const Graph g = graph::complete(10);
  const Graph h = graph::star(10);
  const auto rep = verify::size_report(g, h, /*beta=*/2.0, /*kappa=*/2);
  EXPECT_EQ(rep.spanner_edges, 9u);
  EXPECT_EQ(rep.input_edges, 45u);
  EXPECT_NEAR(rep.compression, 0.2, 1e-9);
  EXPECT_TRUE(rep.within_bound);  // 9 <= 2 * 10^1.5
}

}  // namespace
