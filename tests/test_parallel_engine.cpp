// Tests for the multi-threaded CONGEST round engine: determinism across
// thread counts, bandwidth enforcement under concurrency, and behavioral
// parity with the serial engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "congest/parallel.hpp"
#include "graph/generators.hpp"
#include "substrate_harness.hpp"

namespace {

using namespace nas;
using namespace nas::congest;
using graph::Graph;
using graph::Vertex;

TEST(ParallelEngine, DeliversNextRound) {
  const Graph g = graph::path(3);
  ParallelEngine engine(g, {.threads = 2});
  std::vector<int> received(3, 0);
  engine.run_rounds(3, [&](Vertex v, std::uint64_t round,
                           std::span<const Message> inbox, Mailbox& mbox) {
    for (const auto& m : inbox) received[v] += static_cast<int>(m.a);
    if (round == 0 && v == 0) mbox.send(1, {.a = 7});
  });
  EXPECT_EQ(received[1], 7);
  EXPECT_EQ(received[0], 0);
  EXPECT_EQ(received[2], 0);
}

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  const Graph g = graph::make_workload("er", 200, 17);
  const auto factory = testing_support::mixer_program_factory();

  std::vector<std::uint64_t> reference;
  std::uint64_t reference_messages = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::uint64_t> state;
    const auto program = factory(g, state);
    ParallelEngine engine(g, {.threads = threads});
    engine.run_rounds(5, program);
    if (reference.empty()) {
      reference = state;
      reference_messages = engine.messages_sent();
    } else {
      EXPECT_EQ(state, reference) << "threads=" << threads;
      EXPECT_EQ(engine.messages_sent(), reference_messages)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelEngine, MatchesSerialEngineOnFamilies) {
  for (const std::string family : {"er", "grid", "tree", "dumbbell"}) {
    const Graph g = graph::make_workload(family, 150, 23);
    const auto factory = testing_support::bfs_program_factory();

    std::vector<std::uint64_t> serial_state;
    Engine serial(g);
    serial.run_rounds(20, factory(g, serial_state));

    std::vector<std::uint64_t> parallel_state;
    ParallelEngine parallel(g, {.threads = 8});
    parallel.run_rounds(20, factory(g, parallel_state));

    EXPECT_EQ(parallel_state, serial_state) << family;
    EXPECT_EQ(parallel.messages_sent(), serial.messages_sent()) << family;
  }
}

TEST(ParallelEngine, EnforcesOneMessagePerEdgePerRound) {
  const Graph g = graph::path(2);
  ParallelEngine engine(g, {.threads = 2});
  EXPECT_THROW(
      engine.run_rounds(1, [&](Vertex v, std::uint64_t, std::span<const Message>,
                               Mailbox& mbox) {
        if (v == 0) {
          mbox.send(1, {.a = 1});
          mbox.send(1, {.a = 2});  // second message on the same edge: illegal
        }
      }),
      std::logic_error);
}

TEST(ParallelEngine, DetectsViolationsOnEveryWorker) {
  // Every vertex double-sends concurrently; whichever worker trips first,
  // the engine must drain cleanly and surface a logic_error.
  const Graph g = graph::make_workload("cycle", 64, 1);
  for (const unsigned threads : {2u, 8u}) {
    ParallelEngine engine(g, {.threads = threads});
    EXPECT_THROW(engine.run_rounds(
                     2,
                     [&](Vertex v, std::uint64_t, std::span<const Message>,
                         Mailbox& mbox) {
                       const Vertex u = g.neighbors(v).front();
                       mbox.send(u, {.a = v});
                       mbox.send(u, {.a = v});
                     }),
                 std::logic_error)
        << "threads=" << threads;
  }
}

TEST(ParallelEngine, SendToNonNeighborThrows) {
  const Graph g = graph::path(3);  // 0-1-2; 0 and 2 not adjacent
  ParallelEngine engine(g, {.threads = 3});
  EXPECT_THROW(
      engine.run_rounds(1, [&](Vertex v, std::uint64_t, std::span<const Message>,
                               Mailbox& mbox) {
        if (v == 0) mbox.send(2, {.a = 1});
      }),
      std::invalid_argument);
}

TEST(ParallelEngine, BothDirectionsAllowedInOneRound) {
  const Graph g = graph::path(2);
  ParallelEngine engine(g, {.threads = 2});
  EXPECT_NO_THROW(engine.run_rounds(
      1, [&](Vertex v, std::uint64_t, std::span<const Message>, Mailbox& mbox) {
        mbox.send(v == 0 ? 1 : 0, {.a = 1});
      }));
  EXPECT_EQ(engine.messages_sent(), 2u);
}

TEST(ParallelEngine, InboxSortedBySender) {
  const Graph g = graph::star(9);  // center 0
  ParallelEngine engine(g, {.threads = 4});
  std::vector<Vertex> order;
  engine.run_rounds(2, [&](Vertex v, std::uint64_t round,
                           std::span<const Message> inbox, Mailbox& mbox) {
    if (round == 0 && v != 0) mbox.send(0, {.a = v});
    if (v == 0) {
      for (const auto& m : inbox) order.push_back(m.src);
    }
  });
  ASSERT_EQ(order.size(), 8u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelEngine, QuiescenceStopsEarly) {
  const Graph g = graph::path(4);
  ParallelEngine engine(g, {.threads = 2});
  const auto rounds = engine.run_until_quiescent(
      [&](Vertex v, std::uint64_t round, std::span<const Message>,
          Mailbox& mbox) {
        if (round == 0 && v == 0) mbox.send(1, {.a = 1});
      },
      [] { return true; }, 100);
  EXPECT_LT(rounds, 100u);

  Engine serial(g);
  const auto serial_rounds = serial.run_until_quiescent(
      [&](Vertex v, std::uint64_t round, std::span<const Message>,
          Mailbox& mbox) {
        if (round == 0 && v == 0) mbox.send(1, {.a = 1});
      },
      [] { return true; }, 100);
  EXPECT_EQ(rounds, serial_rounds);
}

TEST(ParallelEngine, LedgerChargesMatchSerial) {
  const Graph g = graph::make_workload("grid", 100, 3);
  const auto factory = testing_support::min_id_program_factory();

  Ledger serial_ledger;
  std::vector<std::uint64_t> s1;
  Engine serial(g, &serial_ledger);
  serial.run_rounds(12, factory(g, s1));

  Ledger parallel_ledger;
  std::vector<std::uint64_t> s2;
  ParallelEngine parallel(g, {.threads = 8}, &parallel_ledger);
  parallel.run_rounds(12, factory(g, s2));

  EXPECT_EQ(parallel_ledger.rounds(), serial_ledger.rounds());
  EXPECT_EQ(parallel_ledger.messages(), serial_ledger.messages());
}

TEST(ParallelEngine, ThreadCountClampedToVertices) {
  const Graph g = graph::path(3);
  ParallelEngine engine(g, {.threads = 64});
  EXPECT_LE(engine.threads(), 3u);
  std::vector<int> seen(3, 0);
  engine.run_rounds(1, [&](Vertex v, std::uint64_t, std::span<const Message>,
                           Mailbox&) { seen[v] = 1; });
  EXPECT_EQ(seen, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelEngine, ZeroRoundsAndEmptyGraph) {
  const Graph g = graph::path(4);
  ParallelEngine engine(g, {.threads = 2});
  const auto program = [](Vertex, std::uint64_t, std::span<const Message>,
                          Mailbox&) {};
  EXPECT_EQ(engine.run_rounds(0, program), 0u);

  const Graph empty = Graph::from_edges(0, {});
  ParallelEngine empty_engine(empty, {.threads = 2});
  EXPECT_EQ(empty_engine.run_rounds(3, program), 3u);
}

TEST(ParallelEngine, BandwidthGuardResetsBetweenRuns) {
  // A program that legally sends in round 1 must not trip the guard on a
  // second run of the same engine (round numbering restarts per run).
  const auto program = [](Vertex v, std::uint64_t round,
                          std::span<const Message>, Mailbox& mbox) {
    if (v == 0 && round == 1) mbox.send(1, {.a = 1});
  };
  const Graph g = graph::path(2);
  ParallelEngine parallel(g, {.threads = 2});
  EXPECT_NO_THROW(parallel.run_rounds(2, program));
  EXPECT_NO_THROW(parallel.run_rounds(2, program));

  Engine serial(g);
  EXPECT_NO_THROW(serial.run_rounds(2, program));
  EXPECT_NO_THROW(serial.run_rounds(2, program));
}

TEST(ParallelEngine, ViolationDetectionSurvivesReuse) {
  // After a violation, the same engine object must still run clean programs.
  const Graph g = graph::path(2);
  ParallelEngine engine(g, {.threads = 2});
  EXPECT_THROW(engine.run_rounds(
                   1,
                   [&](Vertex v, std::uint64_t, std::span<const Message>,
                       Mailbox& mbox) {
                     if (v == 0) {
                       mbox.send(1, {.a = 1});
                       mbox.send(1, {.a = 2});
                     }
                   }),
               std::logic_error);
  EXPECT_NO_THROW(engine.run_rounds(
      2, [](Vertex, std::uint64_t, std::span<const Message>, Mailbox&) {}));
}

}  // namespace
