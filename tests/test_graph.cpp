// Unit tests for the graph core (graph.hpp).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"

namespace {

using namespace nas::graph;

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, FromEdgesBasic) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, ParallelEdgesDeduplicated) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, OutOfRangeEndpointRejected) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), std::invalid_argument);
}

TEST(Graph, NeighborsSorted) {
  const Graph g = Graph::from_edges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, EdgesReturnsCanonicalSorted) {
  const Graph g = Graph::from_edges(4, {{3, 1}, {2, 0}});
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], (Edge{0, 2}));
  EXPECT_EQ(es[1], (Edge{1, 3}));
}

TEST(Graph, MaxAndAverageDegree) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  EXPECT_EQ(g.summary(), "Graph(n=2, m=1)");
}

TEST(EdgeKey, CanonicalAndSymmetric) {
  EXPECT_EQ(edge_key(3, 7), edge_key(7, 3));
  EXPECT_NE(edge_key(3, 7), edge_key(3, 8));
  EXPECT_EQ(canonical(9, 2), (Edge{2, 9}));
}

TEST(EdgeSet, InsertIsIdempotent) {
  EdgeSet h(5);
  EXPECT_TRUE(h.insert(1, 2));
  EXPECT_FALSE(h.insert(2, 1));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.contains(1, 2));
  EXPECT_TRUE(h.contains(2, 1));
  EXPECT_FALSE(h.contains(1, 3));
}

TEST(EdgeSet, RejectsBadEdges) {
  EdgeSet h(3);
  EXPECT_THROW(h.insert(0, 0), std::invalid_argument);
  EXPECT_THROW(h.insert(0, 5), std::invalid_argument);
}

TEST(EdgeSet, ToGraphRoundtrip) {
  EdgeSet h(4);
  h.insert(0, 1);
  h.insert(2, 3);
  const Graph g = h.to_graph();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

}  // namespace
