// nas_lint rule corpus: every rule is driven by a deliberately-bad snippet
// under tests/data/lint_corpus/ and must fire with an exact file:line:rule
// diagnostic.  The corpus lives under tests/data so lint_tree's walk skips
// it (directories named "data" hold golden files, not tree code) while this
// test feeds each file through lint_file with a virtual repo-relative path
// — which is also how the path-scoped rules (unordered-iteration, header
// hygiene, the allowlist) are exercised against paths that do not exist.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

using nas::lint::Diagnostic;
using nas::lint::lint_file;

std::string corpus(const std::string& name) {
  std::string path(NAS_TEST_DATA_DIR);
  path += "/lint_corpus/";
  path += name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// file:line:rule keys — the exact-location contract, with messages checked
// separately where the wording carries information.
std::vector<std::string> keyed(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const auto& d : diags) {
    std::string key = d.file;
    key += ':';
    key += std::to_string(d.line);
    key += ':';
    key += d.rule;
    out.push_back(key);
  }
  return out;
}

TEST(Lint, BannedRandomFiresPerCallSite) {
  const auto diags =
      lint_file("src/x/banned_random.cpp", corpus("banned_random.cpp"));
  EXPECT_EQ(keyed(diags),
            (std::vector<std::string>{
                "src/x/banned_random.cpp:6:banned-random",
                "src/x/banned_random.cpp:7:banned-random",
                "src/x/banned_random.cpp:9:banned-random",
            }));
}

TEST(Lint, BannedClockFiresPerReadSite) {
  const auto diags =
      lint_file("src/x/banned_clock.cpp", corpus("banned_clock.cpp"));
  EXPECT_EQ(keyed(diags), (std::vector<std::string>{
                              "src/x/banned_clock.cpp:7:banned-clock",
                              "src/x/banned_clock.cpp:10:banned-clock",
                              "src/x/banned_clock.cpp:12:banned-clock",
                              "src/x/banned_clock.cpp:13:banned-clock",
                          }));
}

TEST(Lint, KernelHygieneCatchesCycleCountersAndHashOrderFrontiers) {
  // The BFS-kernel determinism contract in corpus form: a kernel-shaped
  // file must carry no clock reads (including the raw cycle counters
  // __rdtsc / __builtin_readcyclecounter) and no hash-order frontier
  // iteration.  Linted at a src/graph/ path, exactly like the real kernels.
  const std::string body = corpus("kernel_hygiene.cpp");
  const auto diags = lint_file("src/graph/kernel_hygiene.cpp", body);
  EXPECT_EQ(keyed(diags),
            (std::vector<std::string>{
                "src/graph/kernel_hygiene.cpp:9:banned-clock",
                "src/graph/kernel_hygiene.cpp:12:banned-clock",
                "src/graph/kernel_hygiene.cpp:14:banned-clock",
                "src/graph/kernel_hygiene.cpp:19:unordered-iteration",
            }));
  // The clock findings name the cycle counters so the fix is obvious.
  EXPECT_NE(diags[1].message.find("__rdtsc"), std::string::npos);
  EXPECT_NE(diags[2].message.find("__builtin_readcyclecounter"),
            std::string::npos);
  // banned-clock is unscoped — the cycle counters stay banned even in
  // bench/ — while the frontier-iteration rule is src/+tools/ scoped.
  const auto bench_diags = lint_file("bench/kernel_hygiene.cpp", body);
  EXPECT_EQ(keyed(bench_diags),
            (std::vector<std::string>{
                "bench/kernel_hygiene.cpp:9:banned-clock",
                "bench/kernel_hygiene.cpp:12:banned-clock",
                "bench/kernel_hygiene.cpp:14:banned-clock",
            }));
}

TEST(Lint, UnorderedIterationFiresInsideSrcScope) {
  const auto diags = lint_file("src/core/unordered_iteration.cpp",
                               corpus("unordered_iteration.cpp"));
  ASSERT_EQ(keyed(diags),
            (std::vector<std::string>{
                "src/core/unordered_iteration.cpp:10:unordered-iteration",
                "src/core/unordered_iteration.cpp:15:unordered-iteration",
                "src/core/unordered_iteration.cpp:15:unordered-iteration",
            }));
  // The messages name the offending container and call form.
  EXPECT_NE(diags[0].message.find("'counts'"), std::string::npos);
  EXPECT_NE(diags[1].message.find("'seen.begin()'"), std::string::npos);
  EXPECT_NE(diags[2].message.find("'seen.end()'"), std::string::npos);
}

TEST(Lint, UnorderedIterationScopedToSrcAndTools) {
  // The same content outside src/ and tools/ (bench, tests) is exempt:
  // hash-order iteration only matters where bytes can reach sinks,
  // digests, or snapshots.
  const std::string body = corpus("unordered_iteration.cpp");
  EXPECT_TRUE(lint_file("bench/unordered_iteration.cpp", body).empty());
  EXPECT_TRUE(lint_file("tests/unordered_iteration.cpp", body).empty());
  EXPECT_FALSE(lint_file("tools/unordered_iteration.cpp", body).empty());
}

TEST(Lint, HeaderHygieneFiresOnHeadersOnly) {
  const std::string body = corpus("header_hygiene.hpp");
  const auto diags = lint_file("src/x/header_hygiene.hpp", body);
  EXPECT_EQ(keyed(diags),
            (std::vector<std::string>{
                "src/x/header_hygiene.hpp:1:header-pragma-once",
                "src/x/header_hygiene.hpp:5:header-using-namespace",
            }));
  // The same content in a .cpp is fine: both rules are header-scoped.
  EXPECT_TRUE(lint_file("src/x/header_hygiene.cpp", body).empty());
}

TEST(Lint, FlagDescriptionFiresOnMissingThirdArgument) {
  const auto diags =
      lint_file("tools/flag_description.cpp", corpus("flag_description.cpp"));
  EXPECT_EQ(keyed(diags), (std::vector<std::string>{
                              "tools/flag_description.cpp:6:flag-description",
                              "tools/flag_description.cpp:7:flag-description",
                          }));
}

TEST(Lint, UncheckedIoFiresOnDiscardedResultsOnly) {
  const auto diags =
      lint_file("src/x/unchecked_io.cpp", corpus("unchecked_io.cpp"));
  // Statement-position calls fire (including one whose argument list spans
  // lines); every consuming form — assignment, condition, the sanctioned
  // rc-discard, unqualified and member calls, expressions — stays silent.
  EXPECT_EQ(keyed(diags), (std::vector<std::string>{
                              "src/x/unchecked_io.cpp:7:unchecked-io",
                              "src/x/unchecked_io.cpp:8:unchecked-io",
                              "src/x/unchecked_io.cpp:10:unchecked-io",
                              "src/x/unchecked_io.cpp:12:unchecked-io",
                          }));
  // The message names the call and spells out the sanctioned discard.
  EXPECT_NE(diags[0].message.find("::close()"), std::string::npos);
  EXPECT_NE(diags[0].message.find("static_cast<void>(rc)"),
            std::string::npos);
}

TEST(Lint, UncheckedIoScopedToSrcAndTools) {
  // Like unordered-iteration, the rule only patrols src/ and tools/ —
  // bench and test code may shortcut IO error handling.
  const std::string body = corpus("unchecked_io.cpp");
  EXPECT_TRUE(lint_file("bench/unchecked_io.cpp", body).empty());
  EXPECT_TRUE(lint_file("tests/unchecked_io.cpp", body).empty());
  EXPECT_FALSE(lint_file("tools/unchecked_io.cpp", body).empty());
}

TEST(Lint, AllowCommentSuppressesExactlyTheNamedRule) {
  const auto diags =
      lint_file("src/x/allow_comment.cpp", corpus("allow_comment.cpp"));
  // Lines 5 (same-line allow) and 7 (previous-line allow) are suppressed;
  // line 8's allow names the wrong rule, so it still fires.
  EXPECT_EQ(keyed(diags), (std::vector<std::string>{
                              "src/x/allow_comment.cpp:8:banned-random",
                              "src/x/allow_comment.cpp:9:banned-random",
                          }));
}

TEST(Lint, AllowlistIsPerRulePerFile) {
  // src/util/timer.hpp is the documented banned-clock opt-in: clock reads
  // are suppressed there, but every other rule still applies (this corpus
  // body has no '#pragma once', and that finding survives).
  const std::string body = corpus("banned_clock.cpp");
  const auto diags = lint_file("src/util/timer.hpp", body);
  EXPECT_EQ(keyed(diags), (std::vector<std::string>{
                              "src/util/timer.hpp:1:header-pragma-once",
                          }));
  // The same content at a non-allowlisted header path keeps all findings.
  EXPECT_EQ(lint_file("src/x/other.hpp", body).size(), 5u);
}

TEST(Lint, CommentsAndStringsAreInvisible) {
  EXPECT_TRUE(lint_file("src/x/clean.cpp", corpus("clean.cpp")).empty());
}

TEST(Lint, RenderFormatsFileLineRuleMessage) {
  const auto diags =
      lint_file("src/x/banned_random.cpp", corpus("banned_random.cpp"));
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(nas::lint::render(diags[0]),
            "src/x/banned_random.cpp:6: banned-random: rand() is "
            "nondeterministic; use util::Xoshiro256 seeded from the scenario "
            "(src/util/rng.hpp)");
}

TEST(Lint, RuleRegistryMatchesDocumentedSet) {
  std::vector<std::string> names;
  names.reserve(nas::lint::rules().size());
  for (const auto& rule : nas::lint::rules()) names.push_back(rule.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "banned-random",
                       "banned-clock",
                       "unordered-iteration",
                       "header-pragma-once",
                       "header-using-namespace",
                       "flag-description",
                       "unchecked-io",
                   }));
  // The allowlist stays tiny and documented: the two opt-in headers.
  EXPECT_EQ(nas::lint::allowlist().size(), 2u);
}

}  // namespace
