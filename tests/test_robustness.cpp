// Robustness properties the paper claims beyond the headline theorem:
// Section 1.3.1's "vertices only need an estimate ñ of n, n ≤ ñ ≤ poly(n)",
// plus stress shapes (adversarial workloads) for the full pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;
using graph::Vertex;

TEST(NEstimate, RejectsUnderestimates) {
  EXPECT_THROW(Params::practical(100, 0.5, 3, 0.4, 50), std::invalid_argument);
  EXPECT_NO_THROW(Params::practical(100, 0.5, 3, 0.4, 100));
  EXPECT_NO_THROW(Params::practical(100, 0.5, 3, 0.4, 10000));
}

TEST(NEstimate, DefaultsToN) {
  const auto p = Params::practical(200, 0.5, 3, 0.4);
  EXPECT_EQ(p.n_estimate(), 200u);
}

TEST(NEstimate, OverestimateRaisesThresholds) {
  const auto exact = Params::practical(256, 0.5, 3, 0.4, 256);
  const auto loose = Params::practical(256, 0.5, 3, 0.4, 256u * 256u);
  // deg_i = ⌈ñ^{2^i/κ}⌉ grows with ñ; the ruling base b too.
  for (std::size_t i = 0; i < exact.phases().size(); ++i) {
    EXPECT_GE(loose.phase(static_cast<int>(i)).deg, exact.phase(static_cast<int>(i)).deg);
  }
  EXPECT_GE(loose.ruling_base(), exact.ruling_base());
  // The distance schedule (δ_i, R_i) depends only on ε and ρ, not ñ.
  for (std::size_t i = 0; i < exact.phases().size(); ++i) {
    EXPECT_EQ(loose.phase(static_cast<int>(i)).delta,
              exact.phase(static_cast<int>(i)).delta);
    EXPECT_EQ(loose.phase(static_cast<int>(i)).radius,
              exact.phase(static_cast<int>(i)).radius);
  }
  // Hence the stretch pair is identical.
  EXPECT_DOUBLE_EQ(loose.stretch_additive(), exact.stretch_additive());
  EXPECT_DOUBLE_EQ(loose.stretch_multiplicative(),
                   exact.stretch_multiplicative());
}

class NEstimateEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NEstimateEndToEnd, GuaranteesSurvivePolyOverestimate) {
  const Graph g = graph::make_workload("er", 250, 3);
  const std::uint64_t factor = GetParam();
  const std::uint64_t estimate =
      static_cast<std::uint64_t>(g.num_vertices()) * factor;
  const auto params =
      Params::practical(g.num_vertices(), 0.5, 3, 0.4, estimate);
  const auto result = core::build_spanner(g, params, {.validate = true});
  EXPECT_TRUE(verify::is_subgraph(g, result.spanner));
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_TRUE(rep.connectivity_ok);
}

INSTANTIATE_TEST_SUITE_P(Factors, NEstimateEndToEnd,
                         ::testing::Values(1, 2, 16, 250, 62500),
                         [](const auto& param_info) {
                           // Assemble via += (GCC 12's -Wrestrict false
                           // positive PR105651 flags `"x" + rvalue string`).
                           std::string name = "x";
                           name += std::to_string(param_info.param);
                           return name;
                         });

TEST(NEstimate, HigherEstimateNeverDensifiesMuch) {
  // With a poly(n) overestimate the popularity thresholds rise, so *fewer*
  // clusters supercluster and more interconnect — the spanner stays within
  // the (now ñ-based) size bound.
  const Graph g = graph::make_workload("er_dense", 300, 5);
  const auto exact = core::build_spanner(
      g, Params::practical(g.num_vertices(), 0.5, 3, 0.4));
  const auto loose = core::build_spanner(
      g, Params::practical(g.num_vertices(), 0.5, 3, 0.4,
                           static_cast<std::uint64_t>(g.num_vertices()) *
                               g.num_vertices()));
  const double nk = std::pow(static_cast<double>(g.num_vertices()) *
                                 g.num_vertices(),
                             1.0 + 1.0 / 3.0);
  EXPECT_LE(static_cast<double>(loose.spanner.num_edges()),
            exact.params.beta_paper() * nk);
}

// --- adversarial stress shapes ----------------------------------------------

TEST(Stress, LongPathWithDenseBlobsAtBothEnds) {
  const Graph g = graph::dumbbell(60, 200);
  const auto params = Params::practical(g.num_vertices(), 0.25, 3, 0.4);
  const auto result = core::build_spanner(g, params, {.validate = true});
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.bound_ok);
  // The bar of the dumbbell is all shortest paths: it must survive whole.
  EXPECT_LE(g.num_edges() - result.spanner.num_edges(),
            g.num_edges());  // sanity
  EXPECT_TRUE(rep.connectivity_ok);
}

TEST(Stress, ManySmallComponents) {
  // 40 disjoint 5-cycles.
  std::vector<graph::Edge> edges;
  for (Vertex c = 0; c < 40; ++c) {
    const Vertex base = c * 5;
    for (Vertex i = 0; i < 5; ++i) {
      edges.emplace_back(base + i, base + (i + 1) % 5);
    }
  }
  const Graph g = Graph::from_edges(200, edges);
  const auto params = Params::practical(200, 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params, {.validate = true});
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_TRUE(rep.connectivity_ok);
}

TEST(Stress, HighDegreeHubs) {
  // Two stars sharing leaves pairwise: a theta-graph-ish hub stress.
  std::vector<graph::Edge> edges;
  const Vertex n = 202;
  for (Vertex v = 2; v < n; ++v) {
    edges.emplace_back(0, v);
    edges.emplace_back(1, v);
  }
  const Graph g = Graph::from_edges(n, edges);
  const auto params = Params::practical(n, 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params, {.validate = true});
  const auto rep = verify::verify_stretch_exact(
      g, result.spanner, params.stretch_multiplicative(),
      params.stretch_additive());
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_LT(result.spanner.num_edges(), g.num_edges());
}

TEST(Stress, EveryEpsilonInSweepHoldsItsOwnBound) {
  const Graph g = graph::make_workload("torus", 225, 7);
  for (const double eps : {0.9, 0.5, 0.3, 0.2, 0.1}) {
    const auto params = Params::practical(g.num_vertices(), eps, 3, 0.45);
    const auto result = core::build_spanner(g, params, {.validate = false});
    const auto rep = verify::verify_stretch_exact(
        g, result.spanner, params.stretch_multiplicative(),
        params.stretch_additive());
    EXPECT_TRUE(rep.bound_ok) << "eps=" << eps;
  }
}

}  // namespace
