// The verification-pipeline determinism contract: the source-sharded
// parallel stretch verifier and APSP oracle return bit-identical results to
// the serial path at every thread count, on every graph family the
// substrate-equivalence harness exercises — plus the hardened edge-list
// reader's error reporting.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/elkin_matar.hpp"
#include "graph/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using graph::Graph;

// Thread counts every parallel result must reproduce bit-for-bit; 0 means
// hardware concurrency, whatever that is on the host.
const unsigned kThreadCounts[] = {1, 2, 8, 0};

struct FamilyCase {
  std::string family;
  graph::Vertex n;
  std::uint64_t seed;
};

std::vector<FamilyCase> family_cases() {
  return {{"er", 120, 5},      {"grid", 100, 7},     {"tree", 127, 9},
          {"cycle", 60, 11},   {"dumbbell", 80, 13}, {"hypercube", 64, 15}};
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// The authoritative check is verify::bit_identical (kept in sync with the
// struct); the per-field EXPECTs below only exist to name the diverging
// field in a failure message.
void expect_bit_identical(const verify::StretchReport& got,
                          const verify::StretchReport& want,
                          const std::string& what) {
  EXPECT_TRUE(verify::bit_identical(got, want)) << what;
  EXPECT_EQ(got.bound_ok, want.bound_ok) << what;
  EXPECT_EQ(got.connectivity_ok, want.connectivity_ok) << what;
  EXPECT_EQ(got.pairs_checked, want.pairs_checked) << what;
  EXPECT_EQ(bits(got.max_multiplicative), bits(want.max_multiplicative))
      << what;
  EXPECT_EQ(bits(got.mean_multiplicative), bits(want.mean_multiplicative))
      << what;
  EXPECT_EQ(got.max_additive, want.max_additive) << what;
  EXPECT_EQ(bits(got.max_excess), bits(want.max_excess)) << what;
  EXPECT_EQ(got.worst_u, want.worst_u) << what;
  EXPECT_EQ(got.worst_v, want.worst_v) << what;
  EXPECT_EQ(got.worst_dg, want.worst_dg) << what;
  EXPECT_EQ(got.worst_dh, want.worst_dh) << what;
}

Graph spanner_of(const Graph& g) {
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  return core::build_spanner(g, params, {.validate = false}).spanner;
}

TEST(VerifyParallel, ExactBitIdenticalAcrossThreadCounts) {
  for (const auto& tc : family_cases()) {
    const Graph g = graph::make_workload(tc.family, tc.n, tc.seed);
    const Graph h = spanner_of(g);
    // m = 1 makes every stretched pair carry positive excess, so the
    // worst-pair witness is live and its tie-breaking is covered too.
    const auto serial = verify::verify_stretch_exact(g, h, 1.0, 1e18);
    for (unsigned threads : kThreadCounts) {
      const auto parallel = verify::verify_stretch_exact(g, h, 1.0, 1e18,
                                                         threads);
      expect_bit_identical(parallel, serial,
                           tc.family + " exact, threads=" +
                               std::to_string(threads));
    }
  }
}

TEST(VerifyParallel, SampledBitIdenticalAcrossThreadCounts) {
  for (const auto& tc : family_cases()) {
    const Graph g = graph::make_workload(tc.family, tc.n, tc.seed);
    const Graph h = spanner_of(g);
    const auto serial =
        verify::verify_stretch_sampled(g, h, 1.0, 1e18, 24, 9);
    for (unsigned threads : kThreadCounts) {
      const auto parallel =
          verify::verify_stretch_sampled(g, h, 1.0, 1e18, 24, 9, threads);
      expect_bit_identical(parallel, serial,
                           tc.family + " sampled, threads=" +
                               std::to_string(threads));
    }
  }
}

TEST(VerifyParallel, ViolationAndWitnessIdenticalUnderSharding) {
  // Severing cycle(6) into path(6) makes (0, 5) the worst pair; every thread
  // count must agree on the violation and on the witness.
  const Graph g = graph::cycle(6);
  const Graph h = graph::path(6);
  for (unsigned threads : kThreadCounts) {
    const auto rep = verify::verify_stretch_exact(g, h, 1.0, 2.0, threads);
    EXPECT_FALSE(rep.bound_ok);
    EXPECT_EQ(rep.worst_u, 0u);
    EXPECT_EQ(rep.worst_v, 5u);
    EXPECT_EQ(rep.worst_dg, 1u);
    EXPECT_EQ(rep.worst_dh, 5u);
  }
}

TEST(VerifyParallel, MoreThreadsThanSourcesIsFine) {
  const Graph g = graph::path(3);
  const auto serial = verify::verify_stretch_exact(g, g, 1.0, 0.0);
  const auto parallel = verify::verify_stretch_exact(g, g, 1.0, 0.0, 64);
  expect_bit_identical(parallel, serial, "threads > n");
}

TEST(VerifyParallel, WitnessStaysSentinelWithoutPositiveExcess) {
  // H = G: no pair has positive excess, so the witness fields must keep
  // their documented sentinel values at every thread count.
  const Graph g = graph::make_workload("er", 150, 3);
  for (unsigned threads : kThreadCounts) {
    const auto rep = verify::verify_stretch_exact(g, g, 1.0, 0.0, threads);
    EXPECT_TRUE(rep.bound_ok);
    EXPECT_DOUBLE_EQ(rep.max_excess, 0.0);
    EXPECT_EQ(rep.worst_u, graph::kInvalidVertex);
    EXPECT_EQ(rep.worst_v, graph::kInvalidVertex);
    EXPECT_EQ(rep.worst_dg, 0u);
    EXPECT_EQ(rep.worst_dh, 0u);
  }
}

TEST(VerifyParallel, MismatchedSizesThrowAtAnyThreadCount) {
  const Graph g = graph::path(4);
  const Graph h = graph::path(5);
  for (unsigned threads : kThreadCounts) {
    EXPECT_THROW((void)verify::verify_stretch_exact(g, h, 1, 0, threads),
                 std::invalid_argument);
  }
}

TEST(ApspParallel, TableIdenticalAcrossThreadCounts) {
  const Graph g = graph::make_workload("er", 150, 17);
  const graph::Apsp serial(g);
  for (unsigned threads : kThreadCounts) {
    const graph::Apsp parallel(g, 20000, threads);
    for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
      for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(parallel.dist(u, v), serial.dist(u, v))
            << "threads=" << threads << " u=" << u << " v=" << v;
      }
    }
    EXPECT_EQ(parallel.max_finite_distance(), serial.max_finite_distance());
  }
}

// ---------------------------------------------------------------------------
// Hardened edge-list reader.

TEST(IoHardening, MalformedEdgeLineThrowsWithLineNumber) {
  std::stringstream in("3 2\n0 1\nnot-an-edge\n");
  try {
    (void)graph::read_edge_list(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(IoHardening, GarbageHeaderThrowsWithLineNumber) {
  std::stringstream in("# comment\nnot a header\n");
  try {
    (void)graph::read_edge_list(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(IoHardening, ShortEdgeListThrows) {
  std::stringstream in("4 3\n0 1\n1 2\n");  // declares 3 edges, has 2
  EXPECT_THROW((void)graph::read_edge_list(in), std::runtime_error);
}

TEST(IoHardening, OverlongEdgeListThrows) {
  std::stringstream in("4 1\n0 1\n1 2\n");  // declares 1 edge, has 2
  EXPECT_THROW((void)graph::read_edge_list(in), std::runtime_error);
}

TEST(IoHardening, TrailingTokensThrow) {
  std::stringstream header("3 1 extra\n0 1\n");
  EXPECT_THROW((void)graph::read_edge_list(header), std::runtime_error);
  std::stringstream edge("3 1\n0 1 9\n");
  EXPECT_THROW((void)graph::read_edge_list(edge), std::runtime_error);
}

TEST(IoHardening, CommentsAndBlankLinesStillAccepted) {
  std::stringstream in(
      "# leading comment\n"
      "\n"
      "4 2  # inline comment\n"
      "   \n"
      "0 1\n"
      "2 3  # another\n");
  const Graph g = graph::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(2, 3));
}

}  // namespace
