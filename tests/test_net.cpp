// Tests for the nas_served network layer (src/net): protocol parsing and
// framing units, then loopback integration against a real Server on an
// ephemeral port — answer bytes identical to a direct cluster.serve across
// shard counts, a malformed-request corpus with the documented keep-open /
// close split, graceful shutdown with a batch in flight, idle timeouts, and
// the max-conns turn-away.  The server runs in a std::thread and the
// BatchBridge worker makes a third; the TSan CI job runs this binary to
// check that handoff.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/query_workload.hpp"
#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/cluster.hpp"

namespace {

using namespace nas;
using net::LineClient;
using net::LineStatus;
using net::ParseOutcome;
using net::Request;
using net::Server;
using net::ServerOptions;
using serve::ShardedCluster;

// --- protocol units ----------------------------------------------------------

TEST(Protocol, NextLineFramesIncrementally) {
  std::string buffer = "Q 1 2";
  std::size_t pos = 0;
  std::string line;
  EXPECT_EQ(net::next_line(buffer, &pos, 64, &line), LineStatus::kNeedMore);
  buffer += "\nQ 3 4\r\n";
  EXPECT_EQ(net::next_line(buffer, &pos, 64, &line), LineStatus::kLine);
  EXPECT_EQ(line, "Q 1 2");
  EXPECT_EQ(net::next_line(buffer, &pos, 64, &line), LineStatus::kLine);
  EXPECT_EQ(line, "Q 3 4");  // \r\n stripped
  EXPECT_EQ(net::next_line(buffer, &pos, 64, &line), LineStatus::kNeedMore);
  EXPECT_EQ(pos, buffer.size());
}

TEST(Protocol, NextLineReportsOverlongOnlyWithoutTerminator) {
  const std::string long_line(100, 'a');
  std::size_t pos = 0;
  std::string line;
  // 100 buffered bytes, no '\n', cap 64: framing is lost.
  EXPECT_EQ(net::next_line(long_line, &pos, 64, &line), LineStatus::kOverlong);
  // The same bytes terminated are just a long (invalid) command line.
  pos = 0;
  const std::string terminated = long_line + "\n";
  EXPECT_EQ(net::next_line(terminated, &pos, 200, &line), LineStatus::kLine);
  EXPECT_EQ(line, long_line);
}

TEST(Protocol, ParseRequestLineAcceptsTheFiveCommands) {
  const auto q = net::parse_request_line("Q 3 17", 100, 1024);
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.request.kind, Request::Kind::kQuery);
  EXPECT_EQ(q.request.query.u, 3u);
  EXPECT_EQ(q.request.query.v, 17u);

  const auto b = net::parse_request_line("BATCH 42", 100, 1024);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(b.request.kind, Request::Kind::kBatch);
  EXPECT_EQ(b.request.batch_size, 42u);

  EXPECT_EQ(net::parse_request_line("STATS", 100, 1024).request.kind,
            Request::Kind::kStats);
  EXPECT_EQ(net::parse_request_line("METRICS", 100, 1024).request.kind,
            Request::Kind::kMetrics);
  EXPECT_EQ(net::parse_request_line("QUIT", 100, 1024).request.kind,
            Request::Kind::kQuit);

  // Argument-free verbs reject trailing tokens (recoverable).
  const auto stats_arg = net::parse_request_line("STATS now", 100, 1024);
  EXPECT_FALSE(stats_arg.ok);
  EXPECT_FALSE(stats_arg.fatal);
  const auto metrics_arg = net::parse_request_line("METRICS now", 100, 1024);
  EXPECT_FALSE(metrics_arg.ok);
  EXPECT_FALSE(metrics_arg.fatal);
  EXPECT_NE(metrics_arg.error.find("METRICS takes no arguments"),
            std::string::npos);
}

TEST(Protocol, RecoverableErrorsKeepFramingFatalOnesDoNot) {
  // Unknown command and bad vertex ids leave the stream position known:
  // the line was consumed, the next line is a fresh command.
  const auto unknown = net::parse_request_line("PING", 100, 1024);
  EXPECT_FALSE(unknown.ok);
  EXPECT_FALSE(unknown.fatal);
  EXPECT_NE(unknown.error.find("unknown command"), std::string::npos);

  const auto range = net::parse_request_line("Q 0 100", 100, 1024);
  EXPECT_FALSE(range.ok);
  EXPECT_FALSE(range.fatal);
  EXPECT_NE(range.error.find("out of range"), std::string::npos);

  EXPECT_FALSE(net::parse_request_line("Q 1", 100, 1024).ok);
  EXPECT_FALSE(net::parse_request_line("Q 1 2 3", 100, 1024).ok);

  // A BATCH header that does not parse leaves the body length unknown —
  // every following line is ambiguous, so the outcome is fatal.
  EXPECT_TRUE(net::parse_request_line("BATCH x", 100, 1024).fatal);
  EXPECT_TRUE(net::parse_request_line("BATCH", 100, 1024).fatal);
  EXPECT_TRUE(net::parse_request_line("BATCH 9999999", 100, 1024).fatal);
}

TEST(Protocol, ParseBatchLineAndBlankLines) {
  const auto ok = net::parse_batch_line("5 6", 100);
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.request.query.u, 5u);
  EXPECT_EQ(ok.request.query.v, 6u);
  EXPECT_FALSE(net::parse_batch_line("5", 100).ok);
  EXPECT_FALSE(net::parse_batch_line("5 100", 100).ok);
  EXPECT_TRUE(net::is_blank_line(""));
  EXPECT_TRUE(net::is_blank_line(" \t "));
  EXPECT_FALSE(net::is_blank_line(" Q"));
}

// --- loopback fixture --------------------------------------------------------

struct Built {
  graph::Graph spanner;
  double mult = 0;
  double add = 0;
  graph::Vertex n = 0;
};

const Built& built() {
  static const Built b = [] {
    const graph::Graph g = graph::make_workload("er", 300, 7);
    const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);
    auto result = core::build_spanner(g, params, {.validate = false});
    return Built{std::move(result.spanner),
                 result.params.stretch_multiplicative(),
                 result.params.stretch_additive(), g.num_vertices()};
  }();
  return b;
}

/// One server on an ephemeral loopback port, run() on its own thread.  The
/// destructor double-stops (graceful, then immediate) so a failing test
/// never wedges the suite.
struct TestServer {
  ShardedCluster cluster;
  Server server;
  std::thread thread;

  explicit TestServer(ServerOptions options = {}, unsigned shards = 2,
                      unsigned replicas = 1,
                      const std::string& route = "round-robin")
      : cluster(built().spanner, built().mult, built().add,
                {.shards = shards,
                 .partition = "hash",
                 .replicas = replicas,
                 .route = route}),
        server(cluster, options),
        thread([this] { server.run(); }) {}

  ~TestServer() {
    server.request_stop();
    server.request_stop();
    if (thread.joinable()) thread.join();
  }

  [[nodiscard]] LineClient connect() const {
    return LineClient("127.0.0.1", server.port());
  }
};

/// The reference bytes: a fresh cluster with the same spec served directly,
/// rendered through the same write_answers the CLIs use.
std::vector<std::string> expected_lines(const std::vector<apps::Query>& batch,
                                        unsigned shards) {
  ShardedCluster cluster(built().spanner, built().mult, built().add,
                         {.shards = shards, .partition = "hash"});
  const auto answers = cluster.serve(batch, 1);
  std::ostringstream out;
  apps::write_answers(batch, answers, out);
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

// --- integration -------------------------------------------------------------

TEST(NetServer, SingleQueriesMatchDirectServe) {
  TestServer ts;
  auto client = ts.connect();
  const auto batch =
      apps::make_query_workload(built().n, {"uniform", 40, 21, 0.99});
  const auto expected = expected_lines(batch, 2);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    client.send("Q " + std::to_string(batch[i].u) + " " +
                std::to_string(batch[i].v) + "\n");
    const auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, expected[i]) << "query " << i;
  }
}

TEST(NetServer, BatchAnswersAreByteIdenticalAcrossShardCounts) {
  const auto batch =
      apps::make_query_workload(built().n, {"zipf", 300, 11, 0.99});
  const auto expected = expected_lines(batch, 1);
  for (const unsigned shards : {1u, 2u, 8u}) {
    TestServer ts({}, shards);
    auto client = ts.connect();
    std::string request = "BATCH " + std::to_string(batch.size()) + "\n";
    for (const auto& q : batch) {
      request += std::to_string(q.u) + " " + std::to_string(q.v) + "\n";
    }
    client.send(request);
    EXPECT_EQ(client.recv_lines(batch.size()), expected)
        << "shards=" << shards;
  }
}

TEST(NetServer, PipelinedCommandsAnswerInOrder) {
  TestServer ts;
  auto client = ts.connect();
  const auto batch =
      apps::make_query_workload(built().n, {"uniform", 6, 5, 0.99});
  const auto expected = expected_lines(batch, 2);
  // Everything in one write: three Q lines, a BATCH, then QUIT.  The server
  // must answer strictly in command order and close after BYE.
  std::string request;
  for (std::size_t i = 0; i < 3; ++i) {
    request += "Q " + std::to_string(batch[i].u) + " " +
               std::to_string(batch[i].v) + "\n";
  }
  request += "BATCH 3\n";
  for (std::size_t i = 3; i < 6; ++i) {
    request += std::to_string(batch[i].u) + " " + std::to_string(batch[i].v) +
               "\n";
  }
  request += "QUIT\n";
  client.send(request);
  EXPECT_EQ(client.recv_lines(6), expected);
  EXPECT_EQ(client.recv_line(), std::optional<std::string>("BYE"));
  EXPECT_EQ(client.recv_line(), std::nullopt);  // closed after BYE
}

TEST(NetServer, StatsIsOneJsonObjectLine) {
  TestServer ts;
  auto client = ts.connect();
  client.send("Q 0 1\nSTATS\n");
  ASSERT_TRUE(client.recv_line().has_value());
  const auto stats = client.recv_line();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->front(), '{');
  EXPECT_EQ(stats->back(), '}');
  for (const char* field : {"\"shards\"", "\"universe\"", "\"requests\"",
                            "\"connections_open\"", "\"served_requests\""}) {
    EXPECT_NE(stats->find(field), std::string::npos) << field;
  }
}

TEST(NetServer, MetricsIsOneJsonObjectLine) {
  TestServer ts({}, 2, 2, "deterministic");
  auto client = ts.connect();
  client.send("Q 0 1\nMETRICS\n");
  ASSERT_TRUE(client.recv_line().has_value());
  const auto metrics = client.recv_line();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->front(), '{');
  EXPECT_EQ(metrics->back(), '}');
  for (const char* field :
       {"\"serve_calls\"", "\"batch_requests_le\"", "\"replica_depth_count\"",
        "\"lifetime_replica_requests\"", "\"metrics_digest\"",
        "\"serve_latency_ms_le\""}) {
    EXPECT_NE(metrics->find(field), std::string::npos) << field;
  }
}

TEST(NetServer, SnapshotsUnderLoadAreRaceFree) {
  // Regression for the STATS-under-load race: snapshots used to read the
  // loop thread's view of cluster counters while the bridge worker was
  // serving a batch into them.  Both now flow through the bridge FIFO, so a
  // client hammering STATS/METRICS while another streams batches must stay
  // clean — the TSan CI lane runs this test to prove it.
  const auto batch =
      apps::make_query_workload(built().n, {"zipf", 64, 17, 0.99});
  std::string request = "BATCH " + std::to_string(batch.size()) + "\n";
  for (const auto& q : batch) {
    request += std::to_string(q.u) + " " + std::to_string(q.v) + "\n";
  }
  TestServer ts({}, 2, 2, "round-robin");
  std::thread streamer([&] {
    auto client = ts.connect();
    for (int pass = 0; pass < 20; ++pass) {
      client.send(request);
      (void)client.recv_lines(batch.size());
    }
    client.send("QUIT\n");
    (void)client.recv_line();
  });
  {
    auto poller = ts.connect();
    for (int pass = 0; pass < 40; ++pass) {
      poller.send(pass % 2 == 0 ? "STATS\n" : "METRICS\n");
      const auto snapshot = poller.recv_line();
      ASSERT_TRUE(snapshot.has_value());
      EXPECT_EQ(snapshot->front(), '{');
      EXPECT_EQ(snapshot->back(), '}');
    }
  }
  streamer.join();
  // The drained totals agree with what the streamer sent.
  ts.server.request_stop();
  ts.thread.join();
  EXPECT_EQ(ts.server.totals().requests, 20 * batch.size());
  EXPECT_EQ(ts.server.totals().stats_requests, 20u);
  EXPECT_EQ(ts.server.totals().metrics_requests, 20u);
}

TEST(NetServer, MalformedRequestCorpus) {
  TestServer ts;
  auto client = ts.connect();

  // Recoverable: each gets one ERR line and the connection stays usable.
  const struct {
    const char* line;
    const char* needle;
  } kRecoverable[] = {
      {"PING\n", "unknown command"},
      {"Q 1\n", "expects"},
      {"Q 0 999999\n", "out of range"},
      {"Q a b\n", "vertex"},
  };
  for (const auto& bad : kRecoverable) {
    client.send(bad.line);
    const auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value()) << bad.line;
    EXPECT_EQ(reply->rfind("ERR ", 0), 0u) << *reply;
    EXPECT_NE(reply->find(bad.needle), std::string::npos) << *reply;
  }
  // Still open: a well-formed query answers normally.
  client.send("Q 0 0\n");
  EXPECT_EQ(client.recv_line(), std::optional<std::string>("0 0 0"));

  // A bad batch body line poisons that batch only: one ERR for the batch,
  // then the connection keeps serving.
  client.send("BATCH 2\n1 2\nnot a pair\nQ 0 0\n");
  auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR ", 0), 0u) << *reply;
  EXPECT_EQ(client.recv_line(), std::optional<std::string>("0 0 0"));

  // Fatal: an unparseable BATCH header loses framing — ERR, then close.
  client.send("BATCH nope\n");
  reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR ", 0), 0u) << *reply;
  EXPECT_EQ(client.recv_line(), std::nullopt);
}

TEST(NetServer, OverlongLineClosesAfterError) {
  ServerOptions options;
  options.max_line_bytes = 64;
  TestServer ts(options);
  auto client = ts.connect();
  client.send(std::string(100, 'a'));  // no terminator, over the cap
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("exceeds"), std::string::npos) << *reply;
  EXPECT_EQ(client.recv_line(), std::nullopt);
}

TEST(NetServer, TruncatedBatchIsDiagnosedOnEof) {
  TestServer ts;
  auto client = ts.connect();
  client.send("BATCH 3\n1 2\n");
  client.shutdown_write();  // EOF with 2 body lines missing
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("truncated BATCH"), std::string::npos) << *reply;
  EXPECT_NE(reply->find("2 body line"), std::string::npos) << *reply;
  EXPECT_EQ(client.recv_line(), std::nullopt);
}

TEST(NetServer, GracefulShutdownDeliversInFlightBatch) {
  const auto batch =
      apps::make_query_workload(built().n, {"zipf", 400, 31, 0.99});
  const auto expected = expected_lines(batch, 2);
  TestServer ts;
  auto client = ts.connect();
  std::string request = "BATCH " + std::to_string(batch.size()) + "\n";
  for (const auto& q : batch) {
    request += std::to_string(q.u) + " " + std::to_string(q.v) + "\n";
  }
  client.send(request);
  // A send() that returned only means the bytes left the client; stop now
  // and the server may close before ever reading them.  Poll STATS on a
  // probe connection until the server has accepted the batch — from then on
  // it is in flight (or already flushed) and the drain contract applies.
  {
    auto probe = ts.connect();
    for (;;) {
      probe.send("STATS\n");
      const auto stats = probe.recv_line();
      ASSERT_TRUE(stats.has_value());
      if (stats->find("\"served_batches\": 1") != std::string::npos) break;
      std::this_thread::yield();
    }
  }
  // Stop while the batch is in the bridge: the drain must still deliver
  // every answer, then close the connection, then run() returns.
  ts.server.request_stop();
  EXPECT_EQ(client.recv_lines(batch.size()), expected);
  EXPECT_EQ(client.recv_line(), std::nullopt);
  ts.thread.join();
  EXPECT_EQ(ts.server.totals().requests, batch.size());
}

TEST(NetServer, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 50;
  TestServer ts(options);
  auto client = ts.connect();
  // No request: the server closes the connection after the idle window.
  EXPECT_EQ(client.recv_line(), std::nullopt);
}

TEST(NetServer, ConnectionsBeyondMaxAreTurnedAway) {
  ServerOptions options;
  options.max_conns = 1;
  TestServer ts(options);
  auto first = ts.connect();
  first.send("Q 0 0\n");
  ASSERT_TRUE(first.recv_line().has_value());  // slot is genuinely held
  auto second = ts.connect();
  EXPECT_EQ(second.recv_line(), std::optional<std::string>("ERR server busy"));
  EXPECT_EQ(second.recv_line(), std::nullopt);
  // The surviving connection is unaffected.
  first.send("Q 0 0\n");
  EXPECT_TRUE(first.recv_line().has_value());
}

TEST(NetServer, EmptyBatchIsVacuouslyAccepted) {
  TestServer ts;
  auto client = ts.connect();
  client.send("BATCH 0\nQ 0 0\n");  // no reply for the empty batch
  EXPECT_EQ(client.recv_line(), std::optional<std::string>("0 0 0"));
}

}  // namespace
