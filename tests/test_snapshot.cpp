// Tests for the NAS-ORACLE v2 binary snapshot: round-trips against the v1
// text golden baseline, format auto-detection, zero-copy cluster warmup
// (every shard viewing one mapping), the offset-numbered corruption corpus
// (the binary mirror of v1's 17-case line-numbered corpus), and the scenario
// runner's snapshot-format axis digest-independence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "apps/snapshot.hpp"
#include "core/elkin_matar.hpp"
#include "graph/generators.hpp"
#include "run/runner.hpp"
#include "run/scenario.hpp"
#include "serve/cluster.hpp"

namespace {

using namespace nas;
using apps::SnapshotFormat;
using apps::SpannerDistanceOracle;
using core::Params;
using graph::Graph;
using graph::Vertex;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::byte> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<char> chars{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  const auto* bytes = reinterpret_cast<const std::byte*>(chars.data());
  return {bytes, bytes + chars.size()};
}

void spit(const std::string& path, const std::vector<std::byte>& image) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
}

template <typename T>
void put(std::vector<std::byte>& image, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof value, image.size());
  std::memcpy(image.data() + offset, &value, sizeof value);
}

/// Recomputes and stores the integrity checksum so a crafted snapshot's
/// *only* defect is the one under test (the checksum gate runs before the
/// semantic validators).
void restamp(std::vector<std::byte>& image) {
  const auto sum = apps::snapshot_v2_checksum(image);
  std::memcpy(image.data() + 80, &sum, sizeof sum);
}

void expect_v2_error(const std::vector<std::byte>& image,
                     const std::string& expected) {
  const std::string path = temp_path("corrupt.naso2");
  spit(path, image);
  try {
    (void)apps::load_snapshot_v2(path);
    FAIL() << "expected rejection for: " << expected;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << "got: " << e.what();
  }
}

core::SpannerResult build_result(const Graph& g) {
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  return core::build_spanner(g, params, {.validate = false});
}

// --- format plumbing ---------------------------------------------------------

TEST(SnapshotFormat, ParseAndName) {
  EXPECT_EQ(apps::parse_snapshot_format("v1"), SnapshotFormat::kV1);
  EXPECT_EQ(apps::parse_snapshot_format("v2"), SnapshotFormat::kV2);
  EXPECT_THROW((void)apps::parse_snapshot_format("v3"), std::invalid_argument);
  EXPECT_THROW((void)apps::parse_snapshot_format(""), std::invalid_argument);
  EXPECT_STREQ(apps::snapshot_format_name(SnapshotFormat::kV1), "v1");
  EXPECT_STREQ(apps::snapshot_format_name(SnapshotFormat::kV2), "v2");
}

TEST(SnapshotFormat, DetectionSniffsMagic) {
  const Graph g = graph::make_workload("er", 60, 1);
  const SpannerDistanceOracle oracle(build_result(g));
  const std::string v1 = temp_path("detect.naso");
  const std::string v2 = temp_path("detect.naso2");
  oracle.save_file(v1, SnapshotFormat::kV1);
  oracle.save_file(v2, SnapshotFormat::kV2);
  EXPECT_EQ(apps::detect_snapshot_format(v1), SnapshotFormat::kV1);
  EXPECT_EQ(apps::detect_snapshot_format(v2), SnapshotFormat::kV2);
  EXPECT_THROW((void)apps::detect_snapshot_format(temp_path("missing.naso")),
               std::runtime_error);
  // Short or unrecognized files fall through to v1, whose reader owns the
  // detailed text diagnostics.
  const std::string stub = temp_path("stub.naso");
  spit(stub, {});
  EXPECT_EQ(apps::detect_snapshot_format(stub), SnapshotFormat::kV1);
}

// --- round-trips -------------------------------------------------------------

TEST(SnapshotV2, RoundTripPreservesAnswersParamsAndGuarantee) {
  const Graph g = graph::make_workload("ba", 250, 7);
  const SpannerDistanceOracle original(build_result(g));
  ASSERT_TRUE(original.params().has_value());

  const std::string path = temp_path("roundtrip.naso2");
  original.save_file(path, SnapshotFormat::kV2);
  const auto loaded = SpannerDistanceOracle::load_file(path);  // auto-detects

  EXPECT_EQ(loaded.spanner_edges(), original.spanner_edges());
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.multiplicative(), original.multiplicative());
  EXPECT_EQ(loaded.additive(), original.additive());
  ASSERT_TRUE(loaded.params().has_value());
  EXPECT_EQ(loaded.params()->kappa(), original.params()->kappa());
  EXPECT_EQ(loaded.params()->ell(), original.params()->ell());

  const auto queries =
      apps::make_query_workload(g.num_vertices(), {"zipf", 400, 13, 1.1});
  EXPECT_EQ(loaded.batch_query(queries, 2), original.batch_query(queries, 2));
}

TEST(SnapshotV2, V1ToV2ToV1IsByteIdenticalText) {
  const Graph g = graph::make_workload("grid", 144, 3);
  const auto params = Params::paper(g.num_vertices(), 0.5, 3, 0.4);
  const SpannerDistanceOracle original(g, params);

  const std::string a = temp_path("ident_a.naso");
  const std::string b = temp_path("ident_b.naso2");
  const std::string c = temp_path("ident_c.naso");
  original.save_file(a, SnapshotFormat::kV1);
  const auto via_v2 = SpannerDistanceOracle::load_file(a);
  via_v2.save_file(b, SnapshotFormat::kV2);
  SpannerDistanceOracle::load_file(b).save_file(c, SnapshotFormat::kV1);
  EXPECT_EQ(slurp(a), slurp(c));
}

TEST(SnapshotV2, BaselineWithoutParamsAndEdgelessGraphRoundTrip) {
  const SpannerDistanceOracle external(graph::make_workload("path", 40, 1),
                                       3.0, 2.0);  // externally proven
  const std::string path = temp_path("noparams.naso2");
  external.save_file(path, SnapshotFormat::kV2);
  const auto loaded = SpannerDistanceOracle::load_file(path);
  EXPECT_FALSE(loaded.params().has_value());
  EXPECT_EQ(loaded.multiplicative(), 3.0);
  EXPECT_EQ(loaded.additive(), 2.0);
  EXPECT_EQ(loaded.spanner_edges(), external.spanner_edges());

  const SpannerDistanceOracle edgeless(Graph::from_edges(5, {}), 1.0, 0.0);
  const std::string empty = temp_path("edgeless.naso2");
  edgeless.save_file(empty, SnapshotFormat::kV2);
  const auto back = SpannerDistanceOracle::load_file(empty);
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.spanner_edges(), 0u);
  EXPECT_EQ(back.query(0, 4), graph::kInfDist);
}

// --- zero-copy cluster warmup ------------------------------------------------

TEST(SnapshotV2, ClusterWarmupSharesOneMappingAcrossShards) {
  const Graph g = graph::make_workload("er", 300, 5);
  auto result = build_result(g);
  const double mult = result.params.stretch_multiplicative();
  const double add = result.params.stretch_additive();
  const SpannerDistanceOracle original(std::move(result));
  const std::string path = temp_path("cluster.naso2");
  original.save_file(path, SnapshotFormat::kV2);

  const auto cluster = serve::ShardedCluster::from_snapshot_files(
      {path}, {.shards = 4, .partition = "hash"});
  ASSERT_EQ(cluster.num_shards(), 4u);
  EXPECT_EQ(cluster.multiplicative(), mult);
  EXPECT_EQ(cluster.additive(), add);
  for (unsigned s = 1; s < cluster.num_shards(); ++s) {
    EXPECT_TRUE(
        cluster.shard(s).csr().shares_storage_with(cluster.shard(0).csr()))
        << "shard " << s << " replicated the structure instead of sharing it";
  }

  auto mutable_cluster = serve::ShardedCluster::from_snapshot_files(
      {path}, {.shards = 4, .partition = "hash"});
  const auto queries =
      apps::make_query_workload(g.num_vertices(), {"zipf", 500, 17, 0.99});
  EXPECT_EQ(mutable_cluster.serve(queries, 2),
            original.batch_query(queries, 1));
}

TEST(SnapshotV2, DirectlyBuiltClusterSharesStorageToo) {
  const Graph g = graph::make_workload("er", 200, 9);
  const serve::ShardedCluster cluster(g, 3.0, 4.0, {.shards = 3});
  for (unsigned s = 1; s < cluster.num_shards(); ++s) {
    EXPECT_TRUE(
        cluster.shard(s).csr().shares_storage_with(cluster.shard(0).csr()));
  }
}

// --- corruption corpus -------------------------------------------------------

// Crafted over a 4-vertex path (edges 0-1, 1-2, 2-3): header 96 bytes,
// offsets [0,1,3,5,6] at 96, entries [1, 0,2, 1,3, 2] at 136, 160 total.
std::vector<std::byte> path_image() {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const SpannerDistanceOracle oracle(g, 1.0, 2.0);
  const std::string path = temp_path("corpus_base.naso2");
  oracle.save_file(path, SnapshotFormat::kV2);
  auto image = slurp(path);
  EXPECT_EQ(image.size(), 96u + 8 * 5 + 4 * 6);
  return image;
}

TEST(SnapshotV2Corpus, RejectsMalformedImagesWithByteOffsets) {
  const auto base = path_image();

  expect_v2_error({}, "truncated header");
  expect_v2_error(std::vector<std::byte>(base.begin(), base.begin() + 50),
                  "truncated header (file holds 50 of 96 bytes)");

  auto image = base;
  put(image, 0, static_cast<std::uint8_t>('X'));
  expect_v2_error(image, "bad magic");

  image = base;
  put(image, 8, std::uint32_t{7});
  restamp(image);
  expect_v2_error(image, "unsupported version 7");

  image = base;
  put(image, 8, std::uint32_t{0x02000000});  // version 2, byte-swapped
  restamp(image);
  expect_v2_error(image, "byte-swapped version field");

  image = base;
  put(image, 12, std::uint32_t{64});
  restamp(image);
  expect_v2_error(image, "unexpected header size 64");

  image = base;
  put(image, 16, std::uint64_t{0xFFFFFFFFull});  // n = kInvalidVertex
  restamp(image);
  expect_v2_error(image, "exceeds the 32-bit ID universe");

  image = base;
  put(image, 24, std::uint64_t{1} << 59);
  restamp(image);
  expect_v2_error(image, "implausible edge count");

  image = base;
  image.resize(image.size() + 4);  // trailing garbage
  expect_v2_error(image, "size mismatch");

  // Integrity: a single flipped bit anywhere fails the checksum gate.
  image = base;
  image[150] ^= std::byte{0x01};  // payload (entry section)
  expect_v2_error(image, "checksum mismatch");
  image = base;
  image[65] ^= std::byte{0x01};  // header (guarantee field)
  expect_v2_error(image, "checksum mismatch");

  image = base;
  put(image, 32, std::uint32_t{7});
  restamp(image);
  expect_v2_error(image, "unknown params mode 7");

  // CSR invariants, each named with the offending byte offset.
  image = base;
  put(image, 96, std::uint64_t{5});  // offsets[0]
  restamp(image);
  expect_v2_error(image, "offset array must start at 0 (found 5)");
  expect_v2_error(image, "at offset 96");

  image = base;
  put(image, 96 + 16, std::uint64_t{0});  // offsets[2] < offsets[1]
  restamp(image);
  expect_v2_error(image, "offset array not nondecreasing at vertex 2");

  image = base;
  put(image, 96 + 24, std::uint64_t{4});  // offsets become [0,1,3,4,4]:
  put(image, 96 + 32, std::uint64_t{4});  // monotone but ending short of 2m
  restamp(image);
  expect_v2_error(image, "offset array ends at 4");

  image = base;
  put(image, 136, std::uint32_t{99});  // vertex 0's neighbor
  restamp(image);
  expect_v2_error(image, "neighbor 99 out of range for n=4");
  expect_v2_error(image, "at offset 136");

  image = base;
  put(image, 136, std::uint32_t{0});  // vertex 0 adjacent to itself
  restamp(image);
  expect_v2_error(image, "self-loop at vertex 0");

  image = base;
  put(image, 140, std::uint32_t{2});  // vertex 1's list becomes [2, 2]
  put(image, 144, std::uint32_t{2});
  restamp(image);
  expect_v2_error(image, "adjacency list of vertex 1 not strictly ascending");
}

TEST(SnapshotV2Corpus, ParamsAndGuaranteeGuardsKeepOffsetContract) {
  const Graph g = graph::make_workload("er", 50, 2);
  const SpannerDistanceOracle oracle(build_result(g));
  const std::string path = temp_path("corpus_params.naso2");
  oracle.save_file(path, SnapshotFormat::kV2);
  const auto base = slurp(path);

  // Semantically out-of-range constructor arguments (kappa < 2).
  auto image = base;
  put(image, 36, std::int32_t{1});
  restamp(image);
  expect_v2_error(image, "invalid params at offset 32");

  // A recorded guarantee the recomputed schedule cannot reproduce.
  image = base;
  put(image, 64, 999.0);
  restamp(image);
  expect_v2_error(image, "disagrees with the recorded pair");
}

// --- scenario-runner axis ----------------------------------------------------

TEST(SnapshotAxis, MatrixExpandsInnermostAndIdsNameTheFormat) {
  run::ScenarioMatrix m;
  m.ns = {256};
  m.workloads = {"uniform"};
  m.cluster_shards = {0, 2};
  m.snapshot_formats = {"none", "v1", "v2"};
  ASSERT_EQ(m.size(), 6u);
  const auto specs = m.expand();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].snapshot_format, "none");
  EXPECT_EQ(specs[1].snapshot_format, "v1");
  EXPECT_EQ(specs[2].snapshot_format, "v2");
  EXPECT_EQ(specs[2].cluster_shards, 0u);
  EXPECT_EQ(specs[3].cluster_shards, 2u);
  EXPECT_EQ(specs[0].id().find("/sf="), std::string::npos);
  EXPECT_NE(specs[1].id().find("/sf=v1"), std::string::npos);
  EXPECT_NE(specs[5].id().find("/sf=v2"), std::string::npos);
  EXPECT_THROW(m.set("snapshot-format", "v9"), std::invalid_argument);
}

TEST(SnapshotAxis, RunnerAnswersAreFormatIndependent) {
  run::ScenarioMatrix m;
  m.ns = {200};
  m.workloads = {"uniform"};
  m.queries = 300;
  m.cluster_shards = {0, 2};
  m.snapshot_formats = {"none", "v1", "v2"};

  run::Runner runner;
  const auto rows = runner.run(m.expand());
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    ASSERT_TRUE(row.ok) << row.spec.id() << ": " << row.error;
    EXPECT_EQ(row.oracle_digest, rows.front().oracle_digest) << row.spec.id();
    if (row.spec.snapshot_format == "none") {
      EXPECT_EQ(row.snapshot_bytes, 0u);
    } else {
      EXPECT_GT(row.snapshot_bytes, 0u) << row.spec.id();
    }
  }
  // The binary image stores the same structure in fixed-width fields; both
  // formats must agree per (shards) point on what they serialized.
  EXPECT_EQ(rows[1].spanner_edges, rows[2].spanner_edges);
}

}  // namespace
