// Tests for the declarative scenario-runner subsystem (src/run): matrix
// expansion order, scenario-file parsing, GraphCache build-once semantics,
// Runner bit-identity across worker counts, and the unified sinks.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "run/graph_cache.hpp"
#include "run/runner.hpp"
#include "run/scenario.hpp"
#include "run/sinks.hpp"
#include "util/json.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;

// ---------------------------------------------------------------------------
// ScenarioMatrix

TEST(ScenarioMatrix, ExpandsCrossProductInFixedOrder) {
  run::ScenarioMatrix m;
  m.families = {"er", "grid"};
  m.ns = {128, 256};
  m.epss = {0.5, 0.25};
  const auto specs = m.expand();
  ASSERT_EQ(specs.size(), 8u);
  ASSERT_EQ(m.size(), 8u);
  // family outermost, then n, then eps (seed/algo/kappa/rho are singleton).
  EXPECT_EQ(specs[0].family, "er");
  EXPECT_EQ(specs[0].n, 128u);
  EXPECT_EQ(specs[0].eps, 0.5);
  EXPECT_EQ(specs[1].eps, 0.25);
  EXPECT_EQ(specs[2].n, 256u);
  EXPECT_EQ(specs[4].family, "grid");
  EXPECT_EQ(specs[7].family, "grid");
  EXPECT_EQ(specs[7].n, 256u);
  EXPECT_EQ(specs[7].eps, 0.25);
  // Scalars are copied into every spec.
  for (const auto& s : specs) {
    EXPECT_EQ(s.mode, "practical");
    EXPECT_EQ(s.verify_mode, "off");
  }
}

TEST(ScenarioMatrix, ExpansionIsDeterministic) {
  run::ScenarioMatrix m;
  m.families = {"er", "ba", "grid"};
  m.ns = {64, 128};
  m.kappas = {3, 4};
  const auto a = m.expand();
  const auto b = m.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
  }
}

TEST(ScenarioMatrix, SetParsesListsAndScalars) {
  run::ScenarioMatrix m;
  m.set("family", "er, grid , ba");
  m.set("n", "128,256");
  m.set("eps", "0.5, 0.25");
  m.set("verify", "8");
  EXPECT_EQ(m.families, (std::vector<std::string>{"er", "grid", "ba"}));
  EXPECT_EQ(m.ns, (std::vector<graph::Vertex>{128, 256}));
  EXPECT_EQ(m.epss, (std::vector<double>{0.5, 0.25}));
  EXPECT_EQ(m.verify_mode, "sampled");
  EXPECT_EQ(m.verify_sources, 8u);
}

TEST(ScenarioMatrix, VerifySourcesDoNotDowngradeExplicitExactMode) {
  run::ScenarioMatrix m;
  m.set("verify-mode", "exact");
  m.set("verify", "32");  // refine the source count, keep exact
  EXPECT_EQ(m.verify_mode, "exact");
  EXPECT_EQ(m.verify_sources, 32u);
  m.set("verify", "0");  // 0 always means off
  EXPECT_EQ(m.verify_mode, "off");
  m.set("verify", "8");  // off -> sampled
  EXPECT_EQ(m.verify_mode, "sampled");
}

TEST(ScenarioMatrix, OracleAxesExpandParseAndTagIds) {
  run::ScenarioMatrix m;
  m.set("workload", "uniform, zipf");
  m.set("cache-budget", "0, 4096");
  m.set("query-threads", "1,8");
  m.set("queries", "64");
  m.set("workload-seed", "9");
  m.set("zipf-theta", "1.2");
  ASSERT_EQ(m.size(), 8u);  // 2 workloads x 2 budgets x 2 thread counts
  const auto specs = m.expand();
  // workload above cache_budget above query_threads, innermost axes.
  EXPECT_EQ(specs[0].workload, "uniform");
  EXPECT_EQ(specs[0].cache_budget, 0u);
  EXPECT_EQ(specs[0].query_threads, 1u);
  EXPECT_EQ(specs[1].query_threads, 8u);
  EXPECT_EQ(specs[2].cache_budget, 4096u);
  EXPECT_EQ(specs[4].workload, "zipf");
  for (const auto& s : specs) {
    EXPECT_EQ(s.queries, 64u);
    EXPECT_EQ(s.workload_seed, 9u);
    EXPECT_EQ(s.zipf_theta, 1.2);
  }
  // Serving scenarios tag the id with every serving axis; non-serving ids
  // keep the PR-3 shape.
  EXPECT_EQ(specs[0].id(),
            "er/n=1024/seed=1/em/eps=0.25/kappa=3/rho=0.4"
            "/w=uniform/q=64/cb=0/qt=1");
  EXPECT_NE(specs[0].id(), specs[1].id());  // query-threads sweep stays unique
  run::ScenarioSpec off;
  EXPECT_EQ(off.id(), "er/n=1024/seed=1/em/eps=0.25/kappa=3/rho=0.4");
  EXPECT_THROW(m.set("workload", "pareto"), std::invalid_argument);
  EXPECT_THROW(m.set("queries", "-1"), std::invalid_argument);
  EXPECT_THROW(m.set("cache-budget", "-4096"), std::invalid_argument);
  EXPECT_THROW(m.set("query-threads", "1,-2"), std::invalid_argument);
}

TEST(ScenarioMatrix, SetRejectsUnknownKeysAndBadValues) {
  run::ScenarioMatrix m;
  EXPECT_THROW(m.set("bogus", "1"), std::invalid_argument);
  EXPECT_THROW(m.set("n", "12,abc"), std::invalid_argument);
  EXPECT_THROW(m.set("eps", "0.5x"), std::invalid_argument);
  EXPECT_THROW(m.set("verify-mode", "sometimes"), std::invalid_argument);
  try {
    m.set("n", "abc");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the key and the offending value (the Flags bugfix).
    EXPECT_NE(std::string(e.what()).find("n"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(ScenarioMatrix, FromFileParsesKeysCommentsAndReportsLines) {
  const std::string path = ::testing::TempDir() + "nas_run_scenario_test.txt";
  {
    std::ofstream out(path);
    out << "# smoke matrix\n"
        << "family = er, grid\n"
        << "\n"
        << "n = 128   # trailing comment\n"
        << "eps = 0.5,0.25\n"
        << "verify = 4\n";
  }
  const auto m = run::ScenarioMatrix::from_file(path);
  EXPECT_EQ(m.families, (std::vector<std::string>{"er", "grid"}));
  EXPECT_EQ(m.ns, (std::vector<graph::Vertex>{128}));
  EXPECT_EQ(m.epss, (std::vector<double>{0.5, 0.25}));
  EXPECT_EQ(m.verify_sources, 4u);

  {
    std::ofstream out(path);
    out << "family = er\n" << "not a key-value line\n";
  }
  try {
    (void)run::ScenarioMatrix::from_file(path);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
  EXPECT_THROW((void)run::ScenarioMatrix::from_file("/nonexistent/zzz"),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// GraphCache

TEST(GraphCache, BuildsOncePerKeyAndSharesTheInstance) {
  run::GraphCache cache;
  bool hit = true;
  const auto a = cache.get("er", 128, 7, &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.get("er", 128, 7, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());  // literally the same graph object
  const auto c = cache.get("er", 128, 8, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(GraphCache, CachedGraphIsBitIdenticalToDirectBuild) {
  run::GraphCache cache;
  const auto cached = cache.get("ba", 200, 3);
  const auto direct = graph::make_workload("ba", 200, 3);
  EXPECT_EQ(cached->num_vertices(), direct.num_vertices());
  EXPECT_EQ(cached->edges(), direct.edges());
}

TEST(GraphCache, FailedBuildRethrowsToEveryCaller) {
  run::GraphCache cache;
  EXPECT_THROW((void)cache.get("no_such_family", 64, 1),
               std::invalid_argument);
  // The failure is remembered, not retried into a success.
  EXPECT_THROW((void)cache.get("no_such_family", 64, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Runner

run::ScenarioMatrix small_matrix() {
  run::ScenarioMatrix m;
  m.families = {"er", "grid", "ba"};
  m.ns = {96, 160};
  m.epss = {0.5, 0.25};
  m.verify_mode = "sampled";
  m.verify_sources = 6;
  return m;
}

TEST(Runner, RowsComeBackInSpecOrder) {
  const auto specs = small_matrix().expand();
  run::Runner runner;
  const auto rows = runner.run(specs, {.threads = 4});
  ASSERT_EQ(rows.size(), specs.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].index, i);
    EXPECT_EQ(rows[i].spec.id(), specs[i].id());
    EXPECT_TRUE(rows[i].passed()) << rows[i].spec.id() << ": " << rows[i].error;
  }
}

TEST(Runner, BitIdenticalRowsAndSinksAtThreadCounts_1_2_8) {
  const auto specs = small_matrix().expand();  // 3 families x 2 n x 2 eps
  ASSERT_GE(specs.size(), 12u);
  run::Runner base_runner;
  const auto base = base_runner.run(specs, {.threads = 1});
  const auto base_json = run::render_json(base);
  const auto base_csv = run::render_csv(base);
  for (const unsigned threads : {2u, 8u}) {
    run::Runner runner;
    const auto rows = runner.run(specs, {.threads = threads});
    ASSERT_EQ(rows.size(), base.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].spanner_edges, base[i].spanner_edges);
      EXPECT_EQ(rows[i].rounds, base[i].rounds);
      EXPECT_TRUE(verify::bit_identical(rows[i].report, base[i].report))
          << "report diverged at threads=" << threads << " row " << i;
    }
    // The deterministic sinks are byte-identical, not just field-identical.
    EXPECT_EQ(run::render_json(rows), base_json) << "threads=" << threads;
    EXPECT_EQ(run::render_csv(rows), base_csv) << "threads=" << threads;
  }
}

TEST(Runner, GraphCacheDeduplicatesAcrossSpecs) {
  const auto specs = small_matrix().expand();
  run::Runner runner;
  const auto rows = runner.run(specs, {.threads = 8});
  // 3 families x 2 sizes = 6 distinct graphs for 12 scenarios.
  EXPECT_EQ(runner.cache().size(), 6u);
  EXPECT_EQ(runner.cache().stats().misses, 6u);
  std::size_t hits = 0;
  for (const auto& row : rows) hits += row.graph_cache_hit ? 1 : 0;
  EXPECT_EQ(hits + runner.cache().stats().misses, rows.size());
}

TEST(Runner, FailedScenarioIsReportedNotThrown) {
  run::ScenarioSpec bad;
  bad.family = "no_such_family";
  run::ScenarioSpec good;
  good.family = "er";
  good.n = 96;
  run::Runner runner;
  const auto rows = runner.run({bad, good});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].ok);
  EXPECT_FALSE(rows[0].passed());
  EXPECT_NE(rows[0].error.find("no_such_family"), std::string::npos);
  EXPECT_TRUE(rows[1].passed());
}

TEST(Runner, AlgoAxisCoversBaselinesAndIdentity) {
  run::ScenarioMatrix m;
  m.families = {"er"};
  m.ns = {128};
  m.algos = {"em", "en17", "identity"};
  run::Runner runner;
  const auto rows = runner.run(m.expand());
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_TRUE(row.ok) << row.error;
  }
  // identity returns the input graph itself.
  EXPECT_EQ(rows[2].spanner_edges, rows[2].m);
  EXPECT_EQ(rows[2].guarantee_mult, 1.0);
  // en17 with algo_seed 0 reuses the graph seed; a different algo_seed can
  // change the sampled spanner.
  run::ScenarioSpec en = m.expand()[1];
  en.algo_seed = 99;
  const auto reseeded = runner.run_one(en, 0, {});
  EXPECT_TRUE(reseeded.ok) << reseeded.error;
}

TEST(Runner, KeepGraphsRetainsGraphAndSpanner) {
  run::ScenarioSpec spec;
  spec.family = "grid";
  spec.n = 100;
  run::Runner runner;
  const auto row = runner.run_one(spec, 0, {.keep_graphs = true});
  ASSERT_TRUE(row.ok) << row.error;
  ASSERT_NE(row.graph, nullptr);
  ASSERT_NE(row.spanner, nullptr);
  EXPECT_EQ(row.graph->num_vertices(), row.n);
  EXPECT_EQ(row.spanner->num_edges(), row.spanner_edges);
  const auto bare = runner.run_one(spec, 0, {});
  EXPECT_EQ(bare.graph, nullptr);
  EXPECT_EQ(bare.spanner, nullptr);
}

// ---------------------------------------------------------------------------
// Sinks

TEST(Sinks, JsonEscapesStringsViaCentralEscaper) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(util::json_escape(std::string("\x01", 1)), "\\u0001");

  run::ResultRow row;
  row.spec.family = "fam\"ily";
  row.error = "bad \\ value\n";
  row.ok = false;
  const auto json = run::render_json({row});
  EXPECT_NE(json.find("\"fam\\\"ily"), std::string::npos);
  EXPECT_NE(json.find("bad \\\\ value\\n"), std::string::npos);
  // No raw quote or newline survives inside the emitted strings.
  EXPECT_EQ(json.find("fam\"ily"), std::string::npos);
}

TEST(Sinks, CsvQuotesCellsWithSeparators) {
  run::ResultRow row;
  row.spec.family = "fam,ily";
  const auto csv = run::render_csv({row});
  EXPECT_NE(csv.find("\"fam,ily"), std::string::npos);
}

TEST(Sinks, TimingColumnsAreOptIn) {
  run::ResultRow row;
  const auto plain = run::render_json({row});
  EXPECT_EQ(plain.find("build_ms"), std::string::npos);
  run::SinkOptions options;
  options.timing = true;
  const auto timed = run::render_json({row}, options);
  EXPECT_NE(timed.find("build_ms"), std::string::npos);
  EXPECT_NE(timed.find("verify_ms"), std::string::npos);
}

TEST(Sinks, ExtraFieldsAppendAfterSchema) {
  run::ResultRow row;
  run::SinkOptions options;
  options.extra = [](const run::ResultRow&) {
    return util::JsonObject{
        {"custom", util::JsonValue::str("va\"lue")}};
  };
  const auto json = run::render_json({row}, options);
  EXPECT_NE(json.find("\"custom\": \"va\\\"lue\""), std::string::npos);
  const auto csv = run::render_csv({row}, options);
  EXPECT_NE(csv.find("custom"), std::string::npos);
}

}  // namespace
