// The substrate-equivalence contract: the serial engine, the multi-threaded
// engine (thread counts 1, 2, 8), and synchronizer α must execute the same
// NodeProgram to bit-identical per-vertex state, with identical payload
// message counts, on every graph family.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/elkin_matar.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "substrate_harness.hpp"

namespace {

using namespace nas;
using testing_support::all_substrate_specs;
using testing_support::ProgramFactory;
using testing_support::RunOutcome;
using testing_support::run_on;

struct EquivalenceCase {
  std::string family;
  graph::Vertex n;
  std::uint64_t seed;
};

class SubstrateEquivalence
    : public ::testing::TestWithParam<EquivalenceCase> {};

void expect_all_substrates_match(const graph::Graph& g, std::uint64_t rounds,
                                 const ProgramFactory& factory,
                                 const std::string& what) {
  const auto specs = all_substrate_specs();
  const RunOutcome reference = run_on(g, rounds, factory, specs.front());
  for (std::size_t i = 1; i < specs.size(); ++i) {
    const RunOutcome outcome = run_on(g, rounds, factory, specs[i]);
    EXPECT_EQ(outcome.state, reference.state)
        << what << " diverged on substrate " << specs[i].label;
    EXPECT_EQ(outcome.messages, reference.messages)
        << what << " message count diverged on substrate " << specs[i].label;
    EXPECT_EQ(outcome.rounds, reference.rounds)
        << what << " round count diverged on substrate " << specs[i].label;
  }
}

TEST_P(SubstrateEquivalence, BfsBitIdentical) {
  const auto& tc = GetParam();
  const auto g = graph::make_workload(tc.family, tc.n, tc.seed);
  const auto rounds = static_cast<std::uint64_t>(
      graph::diameter_largest_component(g) + 2);
  expect_all_substrates_match(g, rounds, testing_support::bfs_program_factory(),
                              "bfs");
}

TEST_P(SubstrateEquivalence, MinIdFloodBitIdentical) {
  const auto& tc = GetParam();
  const auto g = graph::make_workload(tc.family, tc.n, tc.seed);
  const auto rounds = static_cast<std::uint64_t>(
      graph::diameter_largest_component(g) + 2);
  expect_all_substrates_match(g, rounds,
                              testing_support::min_id_program_factory(),
                              "min-id flood");
}

TEST_P(SubstrateEquivalence, MixerBitIdentical) {
  const auto& tc = GetParam();
  const auto g = graph::make_workload(tc.family, tc.n, tc.seed);
  // All-to-all traffic every round; a handful of rounds is plenty for any
  // ordering discrepancy to snowball through the hash chain.
  expect_all_substrates_match(g, 6, testing_support::mixer_program_factory(),
                              "mixer");
}

INSTANTIATE_TEST_SUITE_P(
    Families, SubstrateEquivalence,
    ::testing::Values(EquivalenceCase{"er", 120, 5},
                      EquivalenceCase{"grid", 100, 7},
                      EquivalenceCase{"tree", 127, 9},
                      EquivalenceCase{"cycle", 60, 11},
                      EquivalenceCase{"dumbbell", 80, 13},
                      EquivalenceCase{"hypercube", 64, 15}),
    [](const auto& param_info) { return param_info.param.family; });

TEST(SubstrateEquivalence, CrossCheckedSpannerBuildAgreesOnAllSubstrates) {
  // End-to-end: build_spanner's Algorithm 1 cross-check passes — i.e. the
  // event-driven run matches the engine-backed reference bit-for-bit — on
  // each substrate, and the spanners are identical.
  const auto g = graph::make_workload("er", 150, 21);
  const auto params = core::Params::practical(g.num_vertices(), 0.5, 3, 0.4);

  std::vector<graph::Edge> reference_edges;
  for (const auto& spec : all_substrate_specs()) {
    core::BuildOptions options;
    options.cross_check_alg1 = true;
    options.substrate = spec.options;
    const auto result = core::build_spanner(g, params, options);
    if (reference_edges.empty()) {
      reference_edges = result.spanner.edges();
    } else {
      EXPECT_EQ(result.spanner.edges(), reference_edges)
          << "spanner diverged on substrate " << spec.label;
    }
  }
}

}  // namespace
