// Shared substrate-equivalence harness.
//
// The library guarantees that a synchronous NodeProgram touching only its
// own vertex's state produces bit-identical results on every execution
// substrate: the serial round engine, the multi-threaded round engine at any
// thread count, and synchronizer α over the asynchronous engine.  This
// header provides the pieces the substrate tests share:
//
//   * a roster of substrate specs (serial, parallel × thread counts, alpha),
//   * reference node programs with externally comparable per-vertex state,
//   * a runner that executes a program on a spec and snapshots the state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "congest/engine.hpp"
#include "congest/substrate.hpp"
#include "graph/graph.hpp"

namespace nas::testing_support {

/// One execution substrate configuration under test.
struct SubstrateSpec {
  congest::SubstrateOptions options;
  std::string label;  // for gtest parameter names / failure messages
};

/// Serial reference first, then every variant that must match it.
inline std::vector<SubstrateSpec> all_substrate_specs() {
  using congest::Substrate;
  return {
      {{.substrate = Substrate::kSerial}, "serial"},
      {{.substrate = Substrate::kParallel, .threads = 1}, "parallel_t1"},
      {{.substrate = Substrate::kParallel, .threads = 2}, "parallel_t2"},
      {{.substrate = Substrate::kParallel, .threads = 8}, "parallel_t8"},
      {{.substrate = Substrate::kAlpha, .alpha_seed = 7, .alpha_max_delay = 5},
       "alpha"},
  };
}

/// Builds a NodeProgram writing per-vertex results into `state` (resized and
/// initialized by the factory).  The program must be vertex-local: v's call
/// only touches state[v].
using ProgramFactory = std::function<congest::Engine::NodeProgram(
    const graph::Graph& g, std::vector<std::uint64_t>& state)>;

/// BFS layer flood from vertex 0: state[v] becomes d(0, v) (or ~0 if
/// unreached within the round budget).
inline ProgramFactory bfs_program_factory() {
  return [](const graph::Graph& g, std::vector<std::uint64_t>& state) {
    state.assign(g.num_vertices(), static_cast<std::uint64_t>(-1));
    if (g.num_vertices() > 0) state[0] = 0;
    return [&g, &state](graph::Vertex v, std::uint64_t round,
                        std::span<const congest::Message> inbox,
                        congest::Mailbox& mbox) {
      for (const auto& m : inbox) {
        if (state[v] == static_cast<std::uint64_t>(-1)) state[v] = m.b + 1;
      }
      if (state[v] == round) {
        for (graph::Vertex u : g.neighbors(v)) mbox.send(u, {.b = state[v]});
      }
    };
  };
}

/// Min-ID flood: state[v] converges to the smallest vertex ID in v's
/// component; a vertex re-announces whenever its minimum improves.
inline ProgramFactory min_id_program_factory() {
  return [](const graph::Graph& g, std::vector<std::uint64_t>& state) {
    state.resize(g.num_vertices());
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v) state[v] = v;
    return [&g, &state](graph::Vertex v, std::uint64_t round,
                        std::span<const congest::Message> inbox,
                        congest::Mailbox& mbox) {
      bool improved = round == 0;
      for (const auto& m : inbox) {
        if (m.a < state[v]) {
          state[v] = m.a;
          improved = true;
        }
      }
      if (improved) {
        for (graph::Vertex u : g.neighbors(v)) mbox.send(u, {.a = state[v]});
      }
    };
  };
}

/// Order-sensitive mixer: every round each vertex hashes its (sorted) inbox
/// into its state and re-broadcasts.  Any difference in inbox ordering or
/// message content between substrates snowballs, so this is the sharpest
/// bit-identity probe of the three.
inline ProgramFactory mixer_program_factory() {
  return [](const graph::Graph& g, std::vector<std::uint64_t>& state) {
    state.resize(g.num_vertices());
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
      state[v] = 0x9e3779b97f4a7c15ULL * (v + 1);
    }
    return [&g, &state](graph::Vertex v, std::uint64_t /*round*/,
                        std::span<const congest::Message> inbox,
                        congest::Mailbox& mbox) {
      for (const auto& m : inbox) {
        std::uint64_t h = state[v] ^ (m.a + 0x9e3779b97f4a7c15ULL +
                                      (static_cast<std::uint64_t>(m.src) << 17));
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        state[v] = h;
      }
      // Alpha reserves message field c, so only a and b are exercised.
      for (graph::Vertex u : g.neighbors(v)) {
        mbox.send(u, {.a = state[v], .b = v});
      }
    };
  };
}

struct RunOutcome {
  std::vector<std::uint64_t> state;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Runs `factory`'s program for `rounds` rounds on the given substrate.
inline RunOutcome run_on(const graph::Graph& g, std::uint64_t rounds,
                         const ProgramFactory& factory,
                         const SubstrateSpec& spec) {
  RunOutcome out;
  const auto program = factory(g, out.state);
  const congest::SubstrateRun run =
      congest::run_on_substrate(g, rounds, program, spec.options);
  out.rounds = run.rounds;
  out.messages = run.messages;
  return out;
}

}  // namespace nas::testing_support
