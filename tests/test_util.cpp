// Unit tests for src/util: deterministic RNG, tables, CSV, flags, pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/mapped_file.hpp"
#include "util/temp_file.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nas::util;

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", ""});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
  // All rendered lines have equal width.
  std::istringstream iss(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::sci(12345.0, 1), "1.2e+04");
}

TEST(Csv, DisabledWriterIsNoop) {
  CsvWriter w("", {"a", "b"});
  EXPECT_FALSE(w.enabled());
  EXPECT_NO_THROW(w.row({"1", "2"}));
}

TEST(Csv, WritesHeaderAndEscapes) {
  const std::string path = "/tmp/nas_test_csv.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row({"plain", "with,comma"});
    w.row({"with\"quote", "ok"});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "x,y");
  EXPECT_EQ(l2, "plain,\"with,comma\"");
  EXPECT_EQ(l3, "\"with\"\"quote\",ok");
  std::remove(path.c_str());
}

TEST(Flags, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "42", "--eps=0.5", "--verbose"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.integer("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.real("eps", 0.0), 0.5);
  EXPECT_TRUE(f.boolean("verbose", false));
  EXPECT_EQ(f.str("missing", "dflt"), "dflt");
  EXPECT_NO_THROW(f.reject_unknown());
}

TEST(Flags, RejectUnknownThrowsOnTypos) {
  const char* argv[] = {"prog", "--kapa=3"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EQ(f.integer("kappa", 7), 7);
  EXPECT_THROW(f.reject_unknown(), std::invalid_argument);
}

TEST(Flags, PositionalArgumentRejected) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Flags(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Flags, BadNumericValueNamesFlagAndValue) {
  const char* argv[] = {"prog", "--n", "abc", "--eps", "0.5zzz"};
  Flags f(5, const_cast<char**>(argv));
  try {
    (void)f.integer("n", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--n"), std::string::npos) << what;
    EXPECT_NE(what.find("abc"), std::string::npos) << what;
  }
  try {
    (void)f.real("eps", 0.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--eps"), std::string::npos) << what;
    EXPECT_NE(what.find("0.5zzz"), std::string::npos) << what;
  }
  // Trailing garbage is rejected, not silently truncated.
  EXPECT_THROW((void)Flags::parse_integer("n", "12abc"),
               std::invalid_argument);
  EXPECT_THROW((void)Flags::parse_integer("n", ""), std::invalid_argument);
  EXPECT_EQ(Flags::parse_integer("n", "-7"), -7);
  EXPECT_DOUBLE_EQ(Flags::parse_real("eps", "2.5e-1"), 0.25);
}

TEST(Flags, HelpListsRegisteredFlagsWithDefaults) {
  const char* argv[] = {"prog", "--help"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_TRUE(f.help_requested());
  const auto n = f.integer("n", 42, "vertex count");
  EXPECT_EQ(n, 42);
  (void)f.str("family", "er", "workload family");
  std::ostringstream out;
  EXPECT_TRUE(f.handle_help("my_bench — what it does", out));
  const std::string help = out.str();
  EXPECT_NE(help.find("my_bench"), std::string::npos);
  EXPECT_NE(help.find("--n [42]"), std::string::npos) << help;
  EXPECT_NE(help.find("vertex count"), std::string::npos);
  EXPECT_NE(help.find("--family [er]"), std::string::npos) << help;
  EXPECT_NE(help.find("--help"), std::string::npos);
  // --help itself never trips reject_unknown.
  EXPECT_NO_THROW(f.reject_unknown());
}

TEST(Flags, HelpSuppressesValueParsing) {
  // `--help` alongside a malformed value must still print help, not throw.
  const char* argv[] = {"prog", "--n", "abc", "--help"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.integer("n", 5), 5);
  std::ostringstream out;
  EXPECT_TRUE(f.handle_help("", out));
}

TEST(Flags, HandleHelpIsNoopWithoutHelpFlag) {
  const char* argv[] = {"prog", "--n", "3"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_FALSE(f.help_requested());
  EXPECT_TRUE(f.provided("n"));
  EXPECT_FALSE(f.provided("family"));
  std::ostringstream out;
  EXPECT_FALSE(f.handle_help("anything", out));
  EXPECT_TRUE(out.str().empty());
}

TEST(ThreadPool, RunsEverySlotExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](unsigned slot) { ++hits[slot]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRunsAndPartialCounts) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    const unsigned count = 1 + static_cast<unsigned>(round % 4);
    pool.run(count, [&](unsigned) { ++total; });
  }
  // Rounds of 1+2+3+4 slots, repeated 50/4 times plus remainder 1+2.
  EXPECT_EQ(total.load(), 50 / 4 * 10 + 1 + 2);
}

TEST(ThreadPool, ShardsCoverRangeInOrder) {
  for (unsigned shards : {1u, 3u, 8u}) {
    std::size_t expect_begin = 0;
    for (unsigned i = 0; i < shards; ++i) {
      const auto [begin, end] = ThreadPool::shard(10, shards, i);
      EXPECT_EQ(begin, expect_begin);
      EXPECT_LE(begin, end);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, 10u);
  }
  const auto [b, e] = ThreadPool::shard(2, 8, 5);  // more shards than items
  EXPECT_LE(b, e);
}

TEST(ThreadPool, SlotExceptionIsRethrownOnCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run(3,
                        [](unsigned slot) {
                          if (slot == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a throwing run.
  std::atomic<int> total{0};
  pool.run(3, [&](unsigned) { ++total; });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, CountBeyondPoolSizeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(3, [](unsigned) {}), std::invalid_argument);
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> total{0};
  pool.run(pool.size(), [&](unsigned) { ++total; });
  EXPECT_EQ(total.load(), static_cast<int>(pool.size()));
}

// --- MappedFile error reporting ---------------------------------------------
//
// Regression coverage for the errno-clobbering bug: the stat/mmap failure
// paths ran ::close(fd) before building the error message, and a close that
// touches errno (POSIX permits this even on success) would replace the real
// cause with nonsense like "Success".  The message must name the failing
// operation and the errno captured *at that call*.

TEST(MappedFile, OpenFailureNamesPathAndRealCause) {
  const std::string missing = "/nonexistent/nas-mapped-file-test";
  try {
    auto file = MappedFile::map(missing);
    FAIL() << "mapping a missing path should throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cannot open"), std::string::npos) << msg;
    EXPECT_NE(msg.find(missing), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::strerror(ENOENT)), std::string::npos) << msg;
  }
}

// --- temp-file exclusive creation -------------------------------------------

TEST(TempFile, CreatesDistinctExistingFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "nas_tf_distinct";
  std::filesystem::create_directories(dir);
  const std::string a = create_temp_file_in(dir.string(), "snap_", ".naso");
  const std::string b = create_temp_file_in(dir.string(), "snap_", ".naso");
  EXPECT_NE(a, b);
  EXPECT_TRUE(std::filesystem::exists(a));
  EXPECT_TRUE(std::filesystem::exists(b));
  std::filesystem::remove_all(dir);
}

TEST(TempFile, SkipsAnOccupiedCandidate) {
  // Occupy the exact path the next call would mint (the <prefix><pid>_<k>
  // naming is part of the contract) — the pre-created file simulates a
  // recycled pid or a stale crash leftover.  The call must come back with a
  // different path and must NOT have touched the squatter's contents.
  const auto dir = std::filesystem::temp_directory_path() / "nas_tf_occupied";
  std::filesystem::create_directories(dir);
  const std::string first = create_temp_file_in(dir.string(), "coll_", ".tmp");
  // Parse "<...>coll_<pid>_<k>.tmp" and squat on k+1.
  const std::size_t us = first.rfind('_');
  const std::size_t dot = first.rfind('.');
  ASSERT_NE(us, std::string::npos);
  ASSERT_NE(dot, std::string::npos);
  const auto k = std::stoull(first.substr(us + 1, dot - us - 1));
  const std::string squatted = first.substr(0, us + 1) +
                               std::to_string(k + 1) + ".tmp";
  {
    std::ofstream out(squatted);
    out << "precious bytes";
  }
  const std::string second = create_temp_file_in(dir.string(), "coll_", ".tmp");
  EXPECT_NE(second, squatted);
  EXPECT_TRUE(std::filesystem::exists(second));
  std::ifstream in(squatted);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "precious bytes");
  std::filesystem::remove_all(dir);
}

TEST(TempFile, ConcurrentCreatorsNeverCollide) {
  const auto dir = std::filesystem::temp_directory_path() / "nas_tf_threads";
  std::filesystem::create_directories(dir);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::vector<std::string>> made(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        made[t].push_back(create_temp_file_in(dir.string(), "race_", ".tmp"));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::string> distinct;
  for (const auto& per_thread : made) {
    for (const auto& path : per_thread) {
      EXPECT_TRUE(std::filesystem::exists(path));
      distinct.insert(path);
    }
  }
  EXPECT_EQ(distinct.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  std::filesystem::remove_all(dir);
}

#if defined(__linux__)
TEST(MappedFile, MmapFailureSurvivesDescriptorCleanup) {
  // A directory passes open+fstat but fails at mmap (ENODEV), which is
  // exactly the path that closes the descriptor before throwing.
  try {
    auto file = MappedFile::map("/");
    GTEST_SKIP() << "directory mmap unexpectedly succeeded on this kernel";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cannot mmap"), std::string::npos) << msg;
    // The clobbered-errno symptom: strerror(0) leaking into the message.
    EXPECT_EQ(msg.find(std::strerror(0)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::strerror(ENODEV)), std::string::npos) << msg;
  }
}
#endif

}  // namespace
