// Tests for the asynchronous engine and synchronizer α: the synchronized
// execution of a synchronous NodeProgram must be bit-identical to the exact
// synchronous engine, under arbitrary (seeded) message delays.
#include <gtest/gtest.h>

#include <string>

#include "congest/async.hpp"
#include "congest/engine.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using namespace nas::congest;
using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

TEST(AsyncEngine, DeliversWithDelayAndFifo) {
  const Graph g = graph::path(2);
  AsyncEngine engine(g, {.seed = 3, .max_delay = 5});
  std::vector<std::uint64_t> seen;
  engine.inject(0, 1, {.a = 1});
  engine.inject(0, 1, {.a = 2});
  engine.inject(0, 1, {.a = 3});
  const auto t = engine.run([&](Vertex v, std::uint64_t, const Message& m,
                                AsyncEngine::Port&) {
    if (v == 1) seen.push_back(m.a);
  });
  // FIFO: order preserved regardless of drawn delays.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_GE(t, 3u);  // three FIFO deliveries need three distinct times
  EXPECT_EQ(engine.messages_delivered(), 3u);
}

TEST(AsyncEngine, HandlerCanReply) {
  const Graph g = graph::path(2);
  AsyncEngine engine(g, {.seed = 1, .max_delay = 3});
  int pongs = 0;
  engine.inject(0, 1, {.a = 7});
  engine.run([&](Vertex v, std::uint64_t, const Message& m,
                 AsyncEngine::Port& port) {
    if (v == 1 && m.a == 7) port.send(0, {.a = 8});
    if (v == 0 && m.a == 8) ++pongs;
  });
  EXPECT_EQ(pongs, 1);
}

TEST(AsyncEngine, ValidatesInputs) {
  const Graph g = graph::path(3);
  EXPECT_THROW(AsyncEngine(g, {.seed = 1, .max_delay = 0}),
               std::invalid_argument);
  AsyncEngine engine(g, {});
  EXPECT_THROW(engine.inject(0, 2, {}), std::invalid_argument);  // not adjacent
}

TEST(AsyncEngine, EventBudgetGuard) {
  const Graph g = graph::path(2);
  AsyncEngine engine(g, {});
  engine.inject(0, 1, {.a = 1});
  // Infinite ping-pong must hit the budget, not hang.
  EXPECT_THROW(engine.run(
                   [&](Vertex v, std::uint64_t, const Message&,
                       AsyncEngine::Port& port) {
                     port.send(v == 0 ? 1 : 0, {.a = 1});
                   },
                   1000),
               std::runtime_error);
}

// --- synchronizer α ----------------------------------------------------------

/// BFS as a synchronous node program writing into `dist`.
Engine::NodeProgram bfs_program(const Graph& g, Vertex source,
                                std::vector<std::uint32_t>& dist) {
  dist.assign(g.num_vertices(), kInfDist);
  dist[source] = 0;
  return [&g, &dist](Vertex v, std::uint64_t round,
                     std::span<const Message> inbox, Engine::Mailbox& mbox) {
    for (const auto& m : inbox) {
      if (dist[v] == kInfDist) dist[v] = static_cast<std::uint32_t>(m.b) + 1;
    }
    if (dist[v] == round) {
      for (Vertex u : g.neighbors(v)) mbox.send(u, {.b = dist[v]});
    }
  };
}

class AlphaFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(AlphaFamilies, BfsMatchesSynchronousExecution) {
  const Graph g = graph::make_workload(GetParam(), 120, 5);
  const auto rounds = static_cast<std::uint64_t>(
      graph::diameter_largest_component(g) + 2);

  std::vector<std::uint32_t> sync_dist;
  Engine engine(g);
  engine.run_rounds(rounds, bfs_program(g, 0, sync_dist));

  for (const std::uint64_t seed : {1ull, 99ull}) {
    std::vector<std::uint32_t> async_dist;
    const auto rep = run_alpha_synchronized(
        g, rounds, bfs_program(g, 0, async_dist),
        {.seed = seed, .max_delay = 7});
    EXPECT_EQ(async_dist, sync_dist) << GetParam() << " seed " << seed;
    EXPECT_GT(rep.virtual_time, 0u);
    EXPECT_GT(rep.control_messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, AlphaFamilies,
                         ::testing::Values("er", "grid", "tree", "cycle",
                                           "dumbbell", "hypercube"),
                         [](const auto& param_info) { return param_info.param; });

TEST(Alpha, ControlOverheadScalesWithEdges) {
  // Per executed round, α exchanges SAFE on every edge-direction plus one
  // ack per payload: control >= 2m * rounds once every node participates.
  const Graph g = graph::make_workload("er", 150, 7);
  std::vector<std::uint32_t> dist;
  const auto rep =
      run_alpha_synchronized(g, 5, bfs_program(g, 0, dist), {.seed = 2});
  EXPECT_GE(rep.control_messages,
            2 * g.num_edges() * 4u);  // SAFE both directions, most rounds
  EXPECT_GT(rep.virtual_time, 5u);    // latency exceeds the round count
}

TEST(Alpha, SparseOverlayReducesControlTraffic) {
  // The reason spanners exist ([Awe85]): synchronizing over a sparse
  // subgraph costs proportionally fewer control messages per round.
  const Graph dense = graph::make_workload("er_dense", 300, 9);
  const Graph sparse = graph::make_workload("er", 300, 9);
  std::vector<std::uint32_t> d1, d2;
  const auto rep_dense =
      run_alpha_synchronized(dense, 4, bfs_program(dense, 0, d1), {.seed = 3});
  const auto rep_sparse =
      run_alpha_synchronized(sparse, 4, bfs_program(sparse, 0, d2), {.seed = 3});
  EXPECT_GT(rep_dense.control_messages, rep_sparse.control_messages);
}

TEST(Alpha, ZeroRoundsIsNoop) {
  const Graph g = graph::path(4);
  std::vector<std::uint32_t> dist;
  const auto rep = run_alpha_synchronized(g, 0, bfs_program(g, 0, dist), {});
  EXPECT_EQ(rep.virtual_time, 0u);
  EXPECT_EQ(rep.payload_messages, 0u);
}

TEST(Alpha, RejectsProgramsUsingFieldC) {
  const Graph g = graph::path(3);
  EXPECT_THROW(
      run_alpha_synchronized(
          g, 2,
          [&](Vertex v, std::uint64_t, std::span<const Message>,
              Engine::Mailbox& mbox) {
            if (v == 0) mbox.send(1, {.c = std::uint64_t{1} << 60});
          },
          {}),
      std::invalid_argument);
}

TEST(Alpha, EnforcesCongestPerRound) {
  const Graph g = graph::path(2);
  EXPECT_THROW(run_alpha_synchronized(
                   g, 1,
                   [&](Vertex v, std::uint64_t, std::span<const Message>,
                       Engine::Mailbox& mbox) {
                     if (v == 0) {
                       mbox.send(1, {.a = 1});
                       mbox.send(1, {.a = 2});
                     }
                   },
                   {}),
               std::logic_error);
}

TEST(Alpha, DeterministicPerSeed) {
  const Graph g = graph::make_workload("er", 100, 11);
  std::vector<std::uint32_t> d1, d2;
  const auto a =
      run_alpha_synchronized(g, 4, bfs_program(g, 0, d1), {.seed = 5});
  const auto b =
      run_alpha_synchronized(g, 4, bfs_program(g, 0, d2), {.seed = 5});
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(d1, d2);
}

}  // namespace
