// Tests for the workload generators.
#include <gtest/gtest.h>

#include <string>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas::graph;

TEST(Generators, PathShape) {
  const Graph g = path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, CycleShape) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(cycle(2), std::invalid_argument);
}

TEST(Generators, StarShape) {
  const Graph g = star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
}

TEST(Generators, CompleteShape) {
  const Graph g = complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Generators, BinaryTreeShape) {
  const Graph g = binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);  // root has children 1, 2
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3 rows x 3 horizontal edges + 2 x 4 vertical edges
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2 * 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = torus(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW(torus(2, 5), std::invalid_argument);
}

TEST(Generators, HypercubeShape) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n * dim / 2
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, DumbbellShape) {
  const Graph g = dumbbell(4, 3);
  EXPECT_EQ(g.num_vertices(), 11u);
  EXPECT_TRUE(is_connected(g));
  // Two K4's (6 edges each) + bar path of 4 edges.
  EXPECT_EQ(g.num_edges(), 6u + 6 + 4);
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  const Graph a = erdos_renyi(300, 0.02, 5);
  const Graph b = erdos_renyi(300, 0.02, 5);
  const Graph c = erdos_renyi(300, 0.02, 6);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, ErdosRenyiDensityRoughlyRight) {
  const Graph g = erdos_renyi(500, 0.02, 11);
  const double expected = 0.02 * 500 * 499 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST(Generators, ErdosRenyiExtremes) {
  EXPECT_EQ(erdos_renyi(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(10, 1.0, 1).num_edges(), 45u);
  EXPECT_THROW(erdos_renyi(10, 1.5, 1), std::invalid_argument);
}

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = gnm(100, 250, 3);
  EXPECT_EQ(g.num_edges(), 250u);
  // Request more edges than possible: capped at the complete graph.
  const Graph full = gnm(6, 1000, 3);
  EXPECT_EQ(full.num_edges(), 15u);
}

TEST(Generators, GeometricDeterministicAndPlanarish) {
  const Graph a = random_geometric(200, 0.12, 9);
  const Graph b = random_geometric(200, 0.12, 9);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_GT(a.num_edges(), 0u);
}

TEST(Generators, BarabasiAlbertShape) {
  const Graph g = barabasi_albert(200, 3, 17);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Every vertex beyond the seed clique has degree >= attach.
  for (Vertex v = 3; v < 200; ++v) EXPECT_GE(g.degree(v), 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(barabasi_albert(3, 3, 1), std::invalid_argument);
}

TEST(Generators, CavemanConnected) {
  const Graph g = caveman(8, 6, 4, 23);
  EXPECT_EQ(g.num_vertices(), 48u);
  EXPECT_TRUE(is_connected(g));
  // Intra-cave cliques present.
  EXPECT_TRUE(g.has_edge(0, 5));
}

TEST(Generators, RegularishDeterministic) {
  const Graph a = random_regularish(150, 3, 2);
  const Graph b = random_regularish(150, 3, 2);
  EXPECT_EQ(a.edges(), b.edges());
}

class WorkloadFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadFamilies, ProducesConnectedGraphNearRequestedSize) {
  const auto family = GetParam();
  const Graph g = make_workload(family, 300, 7);
  EXPECT_GT(g.num_vertices(), 100u) << family;
  EXPECT_TRUE(is_connected(g)) << family;
}

TEST_P(WorkloadFamilies, DeterministicPerSeed) {
  const auto family = GetParam();
  const Graph a = make_workload(family, 200, 3);
  const Graph b = make_workload(family, 200, 3);
  EXPECT_EQ(a.edges(), b.edges()) << family;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, WorkloadFamilies,
    ::testing::Values("er", "er_dense", "gnm", "regular", "grid", "torus",
                      "hypercube", "geometric", "ba", "caveman", "path",
                      "cycle", "star", "tree", "dumbbell"),
    [](const auto& param_info) { return param_info.param; });

TEST(Workload, UnknownFamilyThrows) {
  EXPECT_THROW(make_workload("nope", 100, 1), std::invalid_argument);
}

// Regression guard for the scenario-runner's GraphCache and for every
// seeded experiment: a generator invoked twice with the same seed must
// produce the identical edge list, and a different seed must not silently
// alias the same randomness.
TEST(Workload, SameSeedSameEdgeListAcrossFamilies) {
  for (const std::string family :
       {"er", "er_dense", "gnm", "regular", "geometric", "ba", "caveman"}) {
    const Graph a = make_workload(family, 300, 11);
    const Graph b = make_workload(family, 300, 11);
    EXPECT_EQ(a.num_vertices(), b.num_vertices()) << family;
    EXPECT_EQ(a.edges(), b.edges()) << family << ": same seed diverged";
    const Graph c = make_workload(family, 300, 12);
    EXPECT_NE(a.edges(), c.edges()) << family << ": seed ignored";
  }
}

}  // namespace
