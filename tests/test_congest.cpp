// Tests for the CONGEST simulator: the exact round engine, its bandwidth
// enforcement, and the standard protocols.
#include <gtest/gtest.h>

#include <string>

#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "congest/protocols.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

namespace {

using namespace nas;
using namespace nas::congest;
using graph::Graph;
using graph::Vertex;

TEST(Ledger, SectionsAccumulate) {
  Ledger ledger;
  ledger.begin_section("a");
  ledger.charge_rounds(10);
  ledger.charge_messages(5);
  ledger.begin_section("b");
  ledger.charge_rounds(1);
  EXPECT_EQ(ledger.rounds(), 11u);
  EXPECT_EQ(ledger.messages(), 5u);
  ASSERT_EQ(ledger.sections().size(), 2u);
  EXPECT_EQ(ledger.sections()[0].rounds, 10u);
  EXPECT_EQ(ledger.sections()[1].rounds, 1u);
}

TEST(Ledger, WindowCapacityCheck) {
  Ledger ledger;
  EXPECT_NO_THROW(ledger.check_window_capacity(5, 5, "ok"));
  EXPECT_THROW(ledger.check_window_capacity(6, 5, "bad"), std::logic_error);
}

TEST(Engine, DeliversNextRound) {
  const Graph g = graph::path(3);
  Engine engine(g);
  std::vector<int> received(3, 0);
  engine.run_rounds(3, [&](Vertex v, std::uint64_t round,
                           std::span<const Message> inbox,
                           Engine::Mailbox& mbox) {
    for (const auto& m : inbox) received[v] += static_cast<int>(m.a);
    if (round == 0 && v == 0) mbox.send(1, {.a = 7});
  });
  EXPECT_EQ(received[1], 7);
  EXPECT_EQ(received[0], 0);
  EXPECT_EQ(received[2], 0);
}

TEST(Engine, EnforcesOneMessagePerEdgePerRound) {
  const Graph g = graph::path(2);
  Engine engine(g);
  EXPECT_THROW(
      engine.run_rounds(1, [&](Vertex v, std::uint64_t, std::span<const Message>,
                               Engine::Mailbox& mbox) {
        if (v == 0) {
          mbox.send(1, {.a = 1});
          mbox.send(1, {.a = 2});  // second message on the same edge: illegal
        }
      }),
      std::logic_error);
}

TEST(Engine, BothDirectionsAllowedInOneRound) {
  const Graph g = graph::path(2);
  Engine engine(g);
  EXPECT_NO_THROW(engine.run_rounds(
      1, [&](Vertex v, std::uint64_t, std::span<const Message>,
             Engine::Mailbox& mbox) { mbox.send(v == 0 ? 1 : 0, {.a = 1}); }));
  EXPECT_EQ(engine.messages_sent(), 2u);
}

TEST(Engine, SendToNonNeighborThrows) {
  const Graph g = graph::path(3);  // 0-1-2; 0 and 2 not adjacent
  Engine engine(g);
  EXPECT_THROW(
      engine.run_rounds(1, [&](Vertex v, std::uint64_t, std::span<const Message>,
                               Engine::Mailbox& mbox) {
        if (v == 0) mbox.send(2, {.a = 1});
      }),
      std::invalid_argument);
}

TEST(Engine, InboxSortedBySender) {
  const Graph g = graph::star(5);  // center 0
  Engine engine(g);
  std::vector<Vertex> order;
  engine.run_rounds(2, [&](Vertex v, std::uint64_t round,
                           std::span<const Message> inbox,
                           Engine::Mailbox& mbox) {
    if (round == 0 && v != 0) mbox.send(0, {.a = v});
    if (v == 0) {
      for (const auto& m : inbox) order.push_back(m.src);
    }
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Engine, QuiescenceStopsEarly) {
  const Graph g = graph::path(4);
  Engine engine(g);
  const auto rounds = engine.run_until_quiescent(
      [&](Vertex v, std::uint64_t round, std::span<const Message>,
          Engine::Mailbox& mbox) {
        if (round == 0 && v == 0) mbox.send(1, {.a = 1});
      },
      [] { return true; }, 100);
  EXPECT_LT(rounds, 100u);
}

// --- protocols --------------------------------------------------------------

class CongestBfsFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(CongestBfsFamilies, MatchesCentralizedDistances) {
  const Graph g = graph::make_workload(GetParam(), 150, 11);
  const auto oracle = graph::bfs(g, 0);
  Ledger ledger;
  const auto res = congest_bfs(g, {0}, g.num_vertices(), &ledger);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(res.tree.dist[v], oracle.dist[v]) << "vertex " << v;
  }
  EXPECT_GT(ledger.rounds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, CongestBfsFamilies,
                         ::testing::Values("er", "grid", "hypercube", "tree",
                                           "dumbbell", "cycle"),
                         [](const auto& param_info) { return param_info.param; });

TEST(CongestBfs, DepthBounded) {
  const Graph g = graph::path(10);
  const auto res = congest_bfs(g, {0}, 4);
  EXPECT_EQ(res.tree.dist[4], 4u);
  EXPECT_EQ(res.tree.dist[5], graph::kInfDist);
  EXPECT_EQ(res.rounds, 5u);
}

TEST(CongestBfs, MultiSourceRoots) {
  const Graph g = graph::path(9);
  const auto res = congest_bfs(g, {0, 8}, 10);
  const auto oracle = graph::multi_source_bfs(g, {0, 8});
  for (Vertex v = 0; v < 9; ++v) EXPECT_EQ(res.tree.dist[v], oracle.dist[v]);
  EXPECT_EQ(res.tree.root[1], 0u);
  EXPECT_EQ(res.tree.root[7], 8u);
}

TEST(CongestBfs, ParentsFormValidTree) {
  const Graph g = graph::make_workload("er", 200, 13);
  const auto res = congest_bfs(g, {0}, g.num_vertices());
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    if (res.tree.dist[v] == graph::kInfDist) continue;
    const Vertex p = res.tree.parent[v];
    ASSERT_NE(p, graph::kInvalidVertex);
    EXPECT_TRUE(g.has_edge(v, p));
    EXPECT_EQ(res.tree.dist[v], res.tree.dist[p] + 1);
  }
}

TEST(Broadcast, EveryoneLearnsValue) {
  const Graph g = graph::make_workload("grid", 100, 1);
  const auto res = broadcast(g, 0, 99);
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(res.value[v], 99u);
}

TEST(Broadcast, RoundsNearDiameter) {
  const Graph g = graph::path(20);
  const auto res = broadcast(g, 0, 1);
  EXPECT_GE(res.rounds, 19u);
  EXPECT_LE(res.rounds, 22u);
}

TEST(LeaderElection, FindsMinIdPerComponent) {
  const Graph g = graph::Graph::from_edges(6, {{5, 3}, {3, 4}, {1, 2}});
  const auto res = elect_min_id_leader(g);
  EXPECT_EQ(res.leader[5], 3u);
  EXPECT_EQ(res.leader[4], 3u);
  EXPECT_EQ(res.leader[2], 1u);
  EXPECT_EQ(res.leader[0], 0u);
}

TEST(Convergecast, SumsUpTree) {
  const Graph g = graph::binary_tree(7);
  const auto tree = graph::bfs(g, 0);
  std::vector<std::uint64_t> values(7, 1);
  const auto total = convergecast_sum(g, tree.parent, 0, values);
  EXPECT_EQ(total, 7u);
}

TEST(Convergecast, SizeMismatchThrows) {
  const Graph g = graph::path(3);
  EXPECT_THROW((void)convergecast_sum(g, {0}, 0, {1, 1, 1}),
               std::invalid_argument);
}

}  // namespace
