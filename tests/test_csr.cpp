// Tests for graph::Csr, the flat serving-time adjacency: structural
// equivalence with Graph across generator families, byte-identical BFS
// between the CSR and adjacency-list hot paths, O(1) shared-storage copies
// with keep-alive lifetime, and the to_graph round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace {

using namespace nas;
using graph::Csr;
using graph::Graph;
using graph::Vertex;

void expect_structurally_equal(const Graph& g, const Csr& c) {
  ASSERT_EQ(c.num_vertices(), g.num_vertices());
  ASSERT_EQ(c.num_edges(), g.num_edges());
  ASSERT_EQ(c.offsets().size(), static_cast<std::size_t>(g.num_vertices()) + 1);
  ASSERT_EQ(c.entries().size(), 2 * g.num_edges());
  EXPECT_EQ(c.offsets().front(), 0u);
  EXPECT_EQ(c.offsets().back(), c.entries().size());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto ga = g.neighbors(v);
    const auto ca = c.neighbors(v);
    ASSERT_EQ(ca.size(), ga.size()) << "vertex " << v;
    ASSERT_EQ(c.degree(v), ga.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
      ASSERT_EQ(ca[i], ga[i]) << "vertex " << v << " slot " << i;
    }
  }
}

TEST(Csr, FromGraphMatchesAdjacencyAcrossFamilies) {
  for (const char* family : {"er", "grid", "ba", "path", "complete"}) {
    const Graph g = graph::make_workload(family, 120, 3);
    const Csr c = Csr::from_graph(g);
    SCOPED_TRACE(family);
    expect_structurally_equal(g, c);
    EXPECT_EQ(c.summary(), g.summary());
  }
}

TEST(Csr, HandcraftedAndEmptyGraphs) {
  const Csr empty;
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);
  EXPECT_TRUE(empty.offsets().empty());
  EXPECT_TRUE(empty.entries().empty());

  const Csr zero = Csr::from_graph(Graph::from_edges(0, {}));
  EXPECT_EQ(zero.num_vertices(), 0u);

  // Isolated vertices get empty, valid neighbor ranges.
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 3}, {3, 0}});
  const Csr c = Csr::from_graph(g);
  expect_structurally_equal(g, c);
  EXPECT_EQ(c.degree(2), 0u);
  EXPECT_EQ(c.degree(4), 0u);
  EXPECT_TRUE(c.neighbors(2).empty());
}

TEST(Csr, BfsByteIdenticalToAdjacencyList) {
  for (const char* family : {"er", "grid", "ba", "path", "complete"}) {
    const Graph g = graph::make_workload(family, 200, 7);
    const Csr c = Csr::from_graph(g);
    const auto n = g.num_vertices();
    std::vector<std::uint32_t> dist_g, dist_c;
    std::vector<Vertex> frontier;
    for (const Vertex s : {Vertex{0}, static_cast<Vertex>(n / 2),
                           static_cast<Vertex>(n - 1)}) {
      graph::bfs_into(g, s, dist_g, frontier);
      graph::bfs_into(c, s, dist_c, frontier);
      ASSERT_EQ(dist_c, dist_g) << family << " source " << s;
    }
  }
}

TEST(Csr, BfsHandlesDisconnectedComponents) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}});
  const Csr c = Csr::from_graph(g);
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  graph::bfs_into(c, 0, dist, frontier);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], graph::kInfDist);
  EXPECT_EQ(dist[5], graph::kInfDist);
}

TEST(Csr, CopiesShareStorageAndKeepAliveHoldsViews) {
  const Graph g = graph::make_workload("er", 80, 1);
  const Csr a = Csr::from_graph(g);
  const Csr b = a;  // O(1): same spans, shared keep-alive
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_TRUE(b.shares_storage_with(a));

  // Independent builds over the same graph own distinct arrays.
  const Csr c = Csr::from_graph(g);
  EXPECT_FALSE(a.shares_storage_with(c));

  // Empty Csrs never claim to share (no arrays to share).
  EXPECT_FALSE(Csr().shares_storage_with(Csr()));

  // A view stays valid while any copy holds the keep-alive, even after the
  // handle the caller supplied is gone.
  auto owned = std::make_shared<std::vector<std::uint64_t>>(
      std::vector<std::uint64_t>{0, 1, 2});
  auto entries = std::make_shared<std::vector<Vertex>>(std::vector<Vertex>{1, 0});
  struct Bundle {
    std::shared_ptr<std::vector<std::uint64_t>> offsets;
    std::shared_ptr<std::vector<Vertex>> entries;
  };
  auto bundle = std::make_shared<Bundle>(Bundle{owned, entries});
  Csr view = Csr::view({owned->data(), owned->size()},
                       {entries->data(), entries->size()}, bundle);
  owned.reset();
  entries.reset();
  bundle.reset();
  EXPECT_EQ(view.num_vertices(), 2u);
  EXPECT_EQ(view.neighbors(0).front(), 1u);
  EXPECT_EQ(view.neighbors(1).front(), 0u);
}

TEST(Csr, AdoptAndToGraphRoundTrip) {
  const Graph g = graph::make_workload("ba", 90, 5);
  const Csr c = Csr::from_graph(g);
  const Graph back = c.to_graph();
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  expect_structurally_equal(back, c);

  const Csr adopted = Csr::adopt({0, 1, 2}, {1, 0});
  EXPECT_EQ(adopted.num_vertices(), 2u);
  EXPECT_EQ(adopted.num_edges(), 1u);
  const Graph tiny = adopted.to_graph();
  EXPECT_EQ(tiny.num_edges(), 1u);
  EXPECT_EQ(tiny.neighbors(0).front(), 1u);
}

}  // namespace
