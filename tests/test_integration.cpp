// Cross-module integration tests: head-to-head algorithm comparisons and
// composed pipelines.
#include <gtest/gtest.h>

#include "baselines/baswana_sen.hpp"
#include "baselines/elkin_peleg.hpp"
#include "baselines/en17.hpp"
#include "core/elkin_matar.hpp"
#include "graph/apsp.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;
using graph::Vertex;

TEST(Integration, AllAlgorithmsPreserveConnectivity) {
  const Graph g = graph::make_workload("caveman", 250, 1);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto em = core::build_spanner(g, params);
  const auto en = baselines::build_en17_spanner(g, params, 3);
  const auto bs = baselines::build_baswana_sen_spanner(g, 3, 3);
  const auto ep = baselines::build_elkin_peleg_spanner(g, params);
  for (const Graph* h : {&em.spanner, &en.spanner, &bs.spanner, &ep.spanner}) {
    const auto rep = verify::verify_stretch_exact(g, *h, 1e9, 1e9);
    EXPECT_TRUE(rep.connectivity_ok);
  }
}

TEST(Integration, NearAdditiveBeatsMultiplicativeOnLongDistances) {
  // The paper's motivation: on large distances, (1+eps, beta) spanners track
  // d_G much more closely than a (2kappa-1) multiplicative spanner can be
  // *guaranteed* to.  Compare measured worst-case additive error growth on a
  // torus (large diameter).
  const Graph g = graph::make_workload("torus", 400, 2);
  const auto params = Params::practical(g.num_vertices(), 0.25, 3, 0.4);
  const auto em = core::build_spanner(g, params);
  const auto rep = verify::verify_stretch_exact(g, em.spanner, 1.0, 1e18);
  // Measured additive error of the near-additive spanner.
  const double em_additive = static_cast<double>(rep.max_additive);
  // The multiplicative guarantee allows error (2k-2)*d, which at the torus
  // diameter is far beyond em's measured additive error.
  const double diam = graph::diameter_largest_component(g);
  EXPECT_LT(em_additive, (2 * 3 - 2) * diam);
}

TEST(Integration, SpannerOfSpannerStillWorks) {
  // Idempotence-ish: running the construction on its own output yields a
  // subgraph with composed stretch.
  const Graph g = graph::make_workload("er_dense", 200, 3);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto first = core::build_spanner(g, params);
  const auto second = core::build_spanner(first.spanner, params);
  EXPECT_LE(second.spanner.num_edges(), first.spanner.num_edges());
  const double m = params.stretch_multiplicative();
  const double a = params.stretch_additive();
  const auto rep =
      verify::verify_stretch_exact(g, second.spanner, m * m, m * a + a);
  EXPECT_TRUE(rep.bound_ok);
}

TEST(Integration, RoundCountsOrderedAsTheoryPredicts) {
  // The deterministic algorithm pays the ruling-set overhead; EN17 does not.
  // Baswana-Sen is O(kappa^2) rounds, far below both.
  const Graph g = graph::make_workload("er", 400, 4);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto em = core::build_spanner(g, params);
  const auto bs = baselines::build_baswana_sen_spanner(g, 3, 5);
  EXPECT_LT(bs.ledger.rounds(), em.ledger.rounds());
  EXPECT_GT(em.ledger.rounds(), 0u);
}

TEST(Integration, ApproxShortestPathsViaSpanner) {
  // The classic application: answer distance queries from the sparse
  // spanner; every answer obeys the proven bound.
  const Graph g = graph::make_workload("er", 300, 5);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params);
  const graph::Apsp exact(g);
  const graph::Apsp approx(result.spanner);
  for (Vertex u = 0; u < g.num_vertices(); u += 13) {
    for (Vertex v = u + 1; v < g.num_vertices(); v += 13) {
      if (exact.dist(u, v) == graph::kInfDist) continue;
      EXPECT_GE(approx.dist(u, v), exact.dist(u, v));
      EXPECT_LE(approx.dist(u, v),
                params.stretch_multiplicative() * exact.dist(u, v) +
                    params.stretch_additive());
    }
  }
}

TEST(Integration, TraceEdgesMatchSpannerSize) {
  const Graph g = graph::make_workload("er", 300, 7);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto result = core::build_spanner(g, params);
  EXPECT_EQ(result.trace.total_edges(), result.spanner.num_edges());
}

TEST(Integration, DenserInputSameOrderSpanner) {
  // Spanner size is governed by n (and beta), not m: doubling density must
  // not double the spanner.
  const Graph sparse = graph::make_workload("er", 400, 8);
  const Graph dense = graph::make_workload("er_dense", 400, 8);
  const auto params_s =
      Params::practical(sparse.num_vertices(), 0.5, 3, 0.4);
  const auto params_d = Params::practical(dense.num_vertices(), 0.5, 3, 0.4);
  const auto hs = core::build_spanner(sparse, params_s);
  const auto hd = core::build_spanner(dense, params_d);
  const double ratio_input = static_cast<double>(dense.num_edges()) /
                             static_cast<double>(sparse.num_edges());
  const double ratio_spanner = static_cast<double>(hd.spanner.num_edges()) /
                               static_cast<double>(hs.spanner.num_edges());
  EXPECT_LT(ratio_spanner, ratio_input);
}

}  // namespace
