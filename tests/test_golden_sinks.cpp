// Golden-file regression for the unified sinks: a checked-in scenario file
// (tests/data/golden.scenario) runs through the real Runner and its JSON/CSV
// renderings are byte-compared against checked-in corpus files, so sink
// schema drift (added/renamed/reordered columns, changed formatting) fails
// ctest instead of surviving until CI's cross-thread cmp gate.
//
// Everything in the matrix is deterministic with timing off: generated
// graphs, the construction, the exact verifier (bit-identical at any shard
// count), and the oracle serving digest.  The uniform workload keeps even
// the request stream libm-free, so the bytes are stable across toolchains.
//
// Regenerating after an *intentional* schema change:
//   NAS_UPDATE_GOLDEN=1 ./build/tests/test_golden_sinks
// then review the diff of tests/data/golden_rows.{json,csv} like any other
// code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "run/runner.hpp"
#include "run/scenario.hpp"
#include "run/sinks.hpp"

namespace {

using namespace nas;

std::string data_path(const std::string& name) {
  return std::string(NAS_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(GoldenSinks, RunnerOutputMatchesCheckedInCorpus) {
  const auto matrix =
      run::ScenarioMatrix::from_file(data_path("golden.scenario"));
  const auto specs = matrix.expand();
  ASSERT_FALSE(specs.empty());

  run::Runner runner;
  run::RunOptions options;
  options.threads = 2;
  const auto rows = runner.run(specs, options);
  for (const auto& row : rows) {
    ASSERT_TRUE(row.passed()) << row.spec.id() << ": " << row.error;
  }

  const auto json = run::render_json(rows);
  const auto csv = run::render_csv(rows);

  if (std::getenv("NAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream(data_path("golden_rows.json"), std::ios::binary) << json;
    std::ofstream(data_path("golden_rows.csv"), std::ios::binary) << csv;
    GTEST_SKIP() << "golden corpus regenerated; review the diff";
  }

  EXPECT_EQ(json, slurp(data_path("golden_rows.json")))
      << "JSON sink output drifted from tests/data/golden_rows.json; if the "
         "schema change is intentional, regenerate with NAS_UPDATE_GOLDEN=1";
  EXPECT_EQ(csv, slurp(data_path("golden_rows.csv")))
      << "CSV sink output drifted from tests/data/golden_rows.csv; if the "
         "schema change is intentional, regenerate with NAS_UPDATE_GOLDEN=1";
}

TEST(GoldenSinks, RenderingIsPureOverRows) {
  // The corpus guards bytes; this guards the contract the corpus relies on:
  // rendering the same rows twice is byte-identical (no hidden state).
  const auto matrix =
      run::ScenarioMatrix::from_file(data_path("golden.scenario"));
  run::Runner runner;
  const auto rows = runner.run(matrix.expand());
  EXPECT_EQ(run::render_json(rows), run::render_json(rows));
  EXPECT_EQ(run::render_csv(rows), run::render_csv(rows));
}

}  // namespace
