// Tests for the baseline spanner constructions.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baselines/baswana_sen.hpp"
#include "baselines/elkin_peleg.hpp"
#include "baselines/en17.hpp"
#include "baselines/greedy.hpp"
#include "graph/generators.hpp"
#include "verify/checks.hpp"
#include "verify/stretch.hpp"

namespace {

using namespace nas;
using core::Params;
using graph::Graph;

struct BaselineCase {
  std::string family;
  graph::Vertex n;
  std::uint64_t seed;
};

class BaselineFamilies : public ::testing::TestWithParam<BaselineCase> {
 protected:
  static Graph make(const BaselineCase& tc) {
    return graph::make_workload(tc.family, tc.n, tc.seed);
  }
};

TEST_P(BaselineFamilies, BaswanaSenStretchWithinTwoKappaMinusOne) {
  const Graph g = make(GetParam());
  for (int kappa : {2, 3}) {
    const auto res = baselines::build_baswana_sen_spanner(g, kappa, 99);
    EXPECT_TRUE(verify::is_subgraph(g, res.spanner));
    const auto rep =
        verify::verify_stretch_exact(g, res.spanner, 2.0 * kappa - 1.0, 0.0);
    EXPECT_TRUE(rep.bound_ok) << "kappa=" << kappa << " worst ("
                              << rep.worst_u << "," << rep.worst_v << ") dG="
                              << rep.worst_dg << " dH=" << rep.worst_dh;
    EXPECT_TRUE(rep.connectivity_ok);
  }
}

TEST_P(BaselineFamilies, GreedyStretchAndSubgraph) {
  const Graph g = make(GetParam());
  for (int kappa : {2, 3}) {
    const auto res = baselines::build_greedy_spanner(g, kappa);
    EXPECT_TRUE(verify::is_subgraph(g, res.spanner));
    const auto rep =
        verify::verify_stretch_exact(g, res.spanner, 2.0 * kappa - 1.0, 0.0);
    EXPECT_TRUE(rep.bound_ok) << "kappa=" << kappa;
  }
}

TEST_P(BaselineFamilies, En17StretchBoundHolds) {
  const Graph g = make(GetParam());
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto res = baselines::build_en17_spanner(g, params, 7);
  EXPECT_TRUE(verify::is_subgraph(g, res.spanner));
  const auto rep = verify::verify_stretch_exact(
      g, res.spanner, res.stretch_multiplicative, res.stretch_additive);
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_TRUE(rep.connectivity_ok);
}

TEST_P(BaselineFamilies, ElkinPelegStretchBoundHolds) {
  const Graph g = make(GetParam());
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto res = baselines::build_elkin_peleg_spanner(g, params);
  EXPECT_TRUE(verify::is_subgraph(g, res.spanner));
  const auto rep = verify::verify_stretch_exact(
      g, res.spanner, res.stretch_multiplicative, res.stretch_additive);
  EXPECT_TRUE(rep.bound_ok);
  EXPECT_TRUE(rep.connectivity_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineFamilies,
    ::testing::Values(BaselineCase{"er", 200, 1}, BaselineCase{"grid", 169, 2},
                      BaselineCase{"ba", 200, 3},
                      BaselineCase{"hypercube", 128, 4},
                      BaselineCase{"caveman", 180, 5},
                      BaselineCase{"dumbbell", 120, 6},
                      BaselineCase{"cycle", 90, 7},
                      BaselineCase{"er_dense", 180, 8}),
    [](const auto& param_info) {
      return param_info.param.family + "_n" + std::to_string(param_info.param.n);
    });

TEST(BaswanaSen, DeterministicPerSeed) {
  const Graph g = graph::make_workload("er", 250, 9);
  const auto a = baselines::build_baswana_sen_spanner(g, 3, 42);
  const auto b = baselines::build_baswana_sen_spanner(g, 3, 42);
  const auto c = baselines::build_baswana_sen_spanner(g, 3, 43);
  EXPECT_EQ(a.spanner.edges(), b.spanner.edges());
  // A different seed almost surely samples differently.
  EXPECT_NE(c.spanner.edges(), a.spanner.edges());
}

TEST(BaswanaSen, KappaOneKeepsEverything) {
  const Graph g = graph::make_workload("er", 100, 11);
  const auto res = baselines::build_baswana_sen_spanner(g, 1, 1);
  // kappa = 1: stretch 1 requires every edge.
  EXPECT_EQ(res.spanner.num_edges(), g.num_edges());
  EXPECT_THROW(baselines::build_baswana_sen_spanner(g, 0, 1),
               std::invalid_argument);
}

TEST(BaswanaSen, CompressesDenseGraphs) {
  const Graph g = graph::make_workload("er_dense", 400, 13);
  const auto res = baselines::build_baswana_sen_spanner(g, 3, 17);
  EXPECT_LT(res.spanner.num_edges(), g.num_edges());
}

TEST(Greedy, SizeRespectsGirthBound) {
  // The greedy (2κ-1)-spanner has girth > 2κ, hence O(n^{1+1/κ}) edges;
  // check the concrete Moore-type bound m <= n^{1+1/κ} + n.
  for (const char* family : {"er_dense", "complete"}) {
    const Graph g = graph::make_workload(family, 150, 15);
    for (int kappa : {2, 3}) {
      const auto res = baselines::build_greedy_spanner(g, kappa);
      const double bound =
          std::pow(g.num_vertices(), 1.0 + 1.0 / kappa) + g.num_vertices();
      EXPECT_LE(static_cast<double>(res.spanner.num_edges()), bound)
          << family << " kappa=" << kappa;
    }
  }
}

TEST(Greedy, KeepsTreeEntirely) {
  const Graph g = graph::binary_tree(63);
  const auto res = baselines::build_greedy_spanner(g, 3);
  EXPECT_EQ(res.spanner.num_edges(), g.num_edges());
}

TEST(En17, UsuallySmallerAdditiveTermThanDeterministic) {
  // The EN17 schedule's radii grow like R+δ vs the deterministic R+2δc:
  // its proven additive term must be no larger.
  const auto params = Params::practical(1000, 0.25, 3, 0.4);
  const Graph g = graph::make_workload("er", 300, 17);
  const auto en = baselines::build_en17_spanner(g, params, 5);
  EXPECT_LE(en.stretch_additive, params.stretch_additive());
}

TEST(ElkinPeleg, AdditiveTermNoWorseThanDeterministic) {
  // EP's radii grow like R+2δ vs the deterministic R+2δc, so its proven
  // additive term can only be sharper.  (Both baselines may also truncate
  // the recursion when the cluster hierarchy empties early, which only
  // sharpens the reported pair further — the guarantees stay valid because
  // later phases would have been no-ops.)
  const auto params = Params::practical(1000, 0.25, 3, 0.4);
  const Graph g = graph::make_workload("er", 300, 19);
  const auto ep = baselines::build_elkin_peleg_spanner(g, params);
  EXPECT_LE(ep.stretch_additive, params.stretch_additive());
  // Centralized baseline reports no CONGEST rounds.
  EXPECT_EQ(ep.ledger.rounds(), 0u);
}

TEST(ElkinPeleg, DeterministicAcrossRuns) {
  const Graph g = graph::make_workload("er", 200, 21);
  const auto params = Params::practical(g.num_vertices(), 0.5, 3, 0.4);
  const auto a = baselines::build_elkin_peleg_spanner(g, params);
  const auto b = baselines::build_elkin_peleg_spanner(g, params);
  EXPECT_EQ(a.spanner.edges(), b.spanner.edges());
}

}  // namespace
