#include "core/interconnect.hpp"

#include <stdexcept>
#include <unordered_set>

namespace nas::core {

using graph::Graph;
using graph::Vertex;

InterconnectResult interconnect(const Graph& g,
                                const std::vector<Vertex>& u_centers,
                                const Algorithm1Result& alg1,
                                std::uint64_t delta, std::uint64_t cap,
                                graph::EdgeSet& H, congest::Ledger* ledger) {
  InterconnectResult res;
  // (vertex << 32 | origin) pairs whose upward trace is already installed.
  std::unordered_set<std::uint64_t> traced;

  for (Vertex rc : u_centers) {
    if (rc >= g.num_vertices()) {
      throw std::invalid_argument("interconnect: center out of range");
    }
    for (const Knowledge& k : alg1.knowledge[rc]) {
      ++res.paths_installed;
      res.max_path_length = std::max<std::uint64_t>(res.max_path_length, k.dist);
      // Walk from rc towards k.origin along stored parent pointers.
      Vertex x = rc;
      const Knowledge* cur = &k;
      while (true) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(x) << 32) | cur->origin;
        if (!traced.insert(key).second) break;  // suffix already installed
        const Vertex p = cur->parent;
        if (H.insert(x, p)) ++res.edges_added;
        ++res.messages;  // one trace-token hop
        if (cur->dist == 1) {
          if (p != cur->origin) {
            throw std::logic_error(
                "interconnect: trace did not terminate at its origin");
          }
          break;
        }
        const Knowledge* next = find_knowledge(alg1.knowledge[p], cur->origin);
        if (next == nullptr || next->dist != cur->dist - 1) {
          throw std::logic_error(
              "interconnect: broken parent chain (Algorithm 1 violated "
              "Theorem 2.1(2))");
        }
        x = p;
        cur = next;
      }
    }
  }

  res.rounds_charged = delta * cap;
  if (ledger != nullptr) {
    ledger->charge_rounds(res.rounds_charged);
    ledger->charge_messages(res.messages);
    // Per (vertex, origin) dedup bounds the per-edge token load by the
    // knowledge cap, which fits the δ·cap window.
    ledger->check_window_capacity(cap, delta * cap, "interconnect trace-back");
  }
  return res;
}

}  // namespace nas::core
