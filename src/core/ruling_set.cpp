#include "core/ruling_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::core {

using graph::Graph;
using graph::Vertex;

namespace {

/// digit_t(v): the t-th base-b digit of v, counting position 0 as the MOST
/// significant of the c digits.
std::uint64_t digit_at(Vertex v, int t, int c, std::uint64_t b) {
  std::uint64_t x = v;
  // Position c-1 is the least significant; shift away (c-1-t) lower digits.
  for (int k = 0; k < c - 1 - t; ++k) x /= b;
  return x % b;
}

}  // namespace

RulingSetResult compute_ruling_set(const Graph& g, const std::vector<Vertex>& w,
                                   std::uint64_t q, int c, std::uint64_t b,
                                   congest::Ledger* ledger) {
  if (q == 0) throw std::invalid_argument("ruling set: q == 0");
  if (c < 1) throw std::invalid_argument("ruling set: c < 1");
  if (b < 2) throw std::invalid_argument("ruling set: base < 2");
  // b^c must cover the ID space so that distinct vertices have distinct
  // digit strings (required by the separation argument).
  {
    long double span = 1.0L;
    for (int t = 0; t < c; ++t) span *= static_cast<long double>(b);
    if (span < static_cast<long double>(g.num_vertices())) {
      throw std::invalid_argument("ruling set: b^c < n, digits not unique");
    }
  }
  const Vertex n = g.num_vertices();
  for (Vertex v : w) {
    if (v >= n) throw std::invalid_argument("ruling set: vertex out of range");
  }

  RulingSetResult res;
  std::vector<Vertex> active = w;
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());

  // covered[v] == position_stamp  <=>  v is within q of some joiner of an
  // earlier (or the current) sub-step of the current digit position.
  // visited[v] == substep_stamp   <=>  the current sub-step's covering BFS
  // already relayed its token through v.  These must be distinct: a vertex
  // covered at sub-step d still *relays* the covering token at sub-steps
  // d' > d (in CONGEST it forwards the flood regardless of its own state).
  std::vector<std::uint64_t> covered(n, 0);
  std::vector<std::uint64_t> visited(n, 0);
  std::uint64_t position_stamp = 0;
  std::uint64_t substep_stamp = 0;
  std::vector<Vertex> bfs_cur, bfs_next;

  for (int t = 0; t < c; ++t) {
    ++position_stamp;
    std::vector<Vertex> survivors;
    for (std::uint64_t d = 0; d < b; ++d) {
      ++substep_stamp;
      // Joiners: active, right digit, not yet covered at this position.
      std::vector<Vertex> joiners;
      for (Vertex v : active) {
        if (digit_at(v, t, c, b) == d && covered[v] != position_stamp) {
          joiners.push_back(v);
        }
      }
      survivors.insert(survivors.end(), joiners.begin(), joiners.end());

      // Covering BFS to depth q from the joiners.  Event-driven, but the
      // charged cost below is the full (q+1)-round sub-step window; each
      // vertex forwards the token at most once per sub-step, so the load is
      // 1 message per edge-direction per round.
      bfs_cur.clear();
      for (Vertex v : joiners) {
        visited[v] = substep_stamp;
        covered[v] = position_stamp;
        bfs_cur.push_back(v);
      }
      for (std::uint64_t depth = 0; depth < q && !bfs_cur.empty(); ++depth) {
        bfs_next.clear();
        for (Vertex u : bfs_cur) {
          res.messages += g.degree(u);
          for (Vertex x : g.neighbors(u)) {
            if (visited[x] != substep_stamp) {
              visited[x] = substep_stamp;
              covered[x] = position_stamp;
              bfs_next.push_back(x);
            }
          }
        }
        bfs_cur.swap(bfs_next);
      }
    }
    active = std::move(survivors);
  }

  std::sort(active.begin(), active.end());
  res.rulers = std::move(active);
  res.rounds_charged =
      static_cast<std::uint64_t>(c) * b * (q + 1);
  if (ledger != nullptr) {
    ledger->charge_rounds(res.rounds_charged);
    ledger->charge_messages(res.messages);
    // Each sub-step forwards the covering token once per vertex: the window
    // capacity is trivially respected (1 <= q+1).
    ledger->check_window_capacity(1, q + 1, "ruling set covering BFS");
  }
  return res;
}

}  // namespace nas::core
