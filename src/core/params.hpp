// Parameter schedule for the Elkin-Matar construction (Section 2 of the
// paper), computed with explicit integer rounding.
//
// Paper quantities and our exact-integer counterparts:
//
//   number of phases     ℓ  = ⌊log₂ κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1          (paper)
//   exponential stage    i ∈ [0, i₀ = ⌊log₂ κρ⌋],  deg_i = ⌈n^{2^i/κ}⌉
//   fixed growth stage   i ∈ [i₀+1, ℓ−1],          deg_i = ⌈n^ρ⌉
//   concluding phase     i = ℓ (no superclustering), deg_ℓ = ⌈n^ρ⌉
//
//   segment length       L_i = max(1, ⌊ε⁻ⁱ⌋)            (paper: ε⁻ⁱ, real)
//   radius bound         R₀ = 0, R_{i+1} = R_i + D_i     (Lemma 2.3)
//   distance threshold   δ_i = L_i + 2·R_i               (paper eq. (3))
//   ruling set           (q_i+1, q_i·c)-ruling set, q_i = 2δ_i, c = ⌈1/ρ⌉
//   forest depth         D_i = q_i · c                   (superclustering BFS)
//
// Stretch: instead of the paper's closed form (which assumes ε ≤ 1/10 and
// ρ ≥ 10ε and is therefore vacuous at laptop scale), we evaluate the
// recursion of Lemma 2.16 exactly on the integer schedule:
//
//   A₀ = 0,  A_i = 2·A_{i−1} + 6·R_i                 (additive error)
//   M₀ = 1,  M_i = M_{i−1} + A_i / L_i               (multiplicative factor)
//
// and guarantee d_H(u,v) ≤ M_ℓ·d_G(u,v) + A_ℓ for *all* valid (ε, κ, ρ).
// The paper-mode constructor additionally performs the Section 2.4.4
// rescaling: given the user-facing ε′ it derives the internal
// ε = ε′·ρ/(30·ℓ) and reports the paper's additive term β = ε^{−ℓ}
// (eq. (17)) next to the exact A_ℓ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace nas::core {

/// Per-phase schedule entry.  All quantities are exact integers.
struct PhaseSchedule {
  int index = 0;            ///< phase number i in [0, ℓ]
  std::uint64_t L = 1;      ///< segment length max(1, ⌊ε⁻ⁱ⌋)
  std::uint64_t radius = 0; ///< R_i — upper bound on Rad(P_i)
  std::uint64_t delta = 1;  ///< δ_i = L_i + 2 R_i
  std::uint64_t deg = 1;    ///< deg_i — popularity / knowledge cap
  std::uint64_t q = 2;      ///< ruling-set separation parameter 2 δ_i
  std::uint64_t forest_depth = 0;  ///< D_i = q_i·c (0 in the concluding phase)
  std::uint64_t radius_next = 0;   ///< R_{i+1} = R_i + D_i
  bool concluding = false;         ///< i == ℓ
  /// Additive stretch accumulator A_i of Lemma 2.16 (exact recursion).
  double additive = 0.0;
  /// Multiplicative stretch accumulator M_i of Lemma 2.16.
  double multiplicative = 1.0;
};

/// Validated parameter set for one spanner construction.
class Params {
 public:
  /// Paper mode (Section 2.4.4 rescaling): takes the *user-facing* ε′ and
  /// derives the internal ε = ε′ρ/(30ℓ).  Produces a (1+ε′, β)-spanner with
  /// the paper's β = ε^{−ℓ}; the exact pair (M_ℓ, A_ℓ) is also computed and
  /// is always at least as sharp.
  ///
  /// Requirements (paper, Corollary 2.18): 0 < ε′ ≤ 1, κ ≥ 2 integer,
  /// 1/κ ≤ ρ < 1/2, n ≥ 2.  Violations throw std::invalid_argument.
  ///
  /// `n_estimate`: the paper (Section 1.3.1) only requires vertices to know
  /// an estimate ñ with n ≤ ñ ≤ poly(n); all n-dependent schedule values
  /// (deg_i, the ruling-set base b) are computed from ñ.  Pass 0 (default)
  /// for ñ = n.  Larger ñ raises the popularity thresholds — fewer popular
  /// clusters, same correctness, size bounds in terms of ñ.
  static Params paper(graph::Vertex n, double eps_prime, int kappa, double rho,
                      std::uint64_t n_estimate = 0);

  /// Practical mode: ε is used directly as the internal schedule parameter.
  /// All structural guarantees (cluster radii, partition, popularity
  /// accounting, edge-count bounds) are identical; the stretch guarantee is
  /// the exact pair (M_ℓ, A_ℓ).  This mode keeps δ_i small enough to make
  /// non-vacuous stretch experiments possible at laptop scale.
  static Params practical(graph::Vertex n, double eps_internal, int kappa,
                          double rho, std::uint64_t n_estimate = 0);

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] graph::Vertex n() const { return n_; }
  [[nodiscard]] std::uint64_t n_estimate() const { return n_estimate_; }
  [[nodiscard]] double eps_internal() const { return eps_internal_; }
  [[nodiscard]] double eps_user() const { return eps_user_; }
  [[nodiscard]] int kappa() const { return kappa_; }
  [[nodiscard]] double rho() const { return rho_; }
  [[nodiscard]] bool is_paper_mode() const { return paper_mode_; }

  [[nodiscard]] int ell() const { return ell_; }       ///< last phase index ℓ
  [[nodiscard]] int i0() const { return i0_; }         ///< end of exp. stage
  [[nodiscard]] int c() const { return c_; }           ///< ruling-set c = ⌈1/ρ⌉
  [[nodiscard]] std::uint64_t ruling_base() const { return b_; }  ///< b = ⌈n^{1/c}⌉

  [[nodiscard]] const std::vector<PhaseSchedule>& phases() const { return phases_; }
  [[nodiscard]] const PhaseSchedule& phase(int i) const { return phases_.at(i); }

  /// Exact stretch guarantee: d_H ≤ multiplicative()·d_G + additive().
  [[nodiscard]] double stretch_multiplicative() const { return m_final_; }
  [[nodiscard]] double stretch_additive() const { return a_final_; }

  /// The paper's additive term β = ε_internal^{−ℓ} (eq. (17)); equals the
  /// eq. (18) expression after the Section 2.4.4 substitution.
  [[nodiscard]] double beta_paper() const { return beta_paper_; }

  /// Closed-form β of eq. (18) evaluated literally (with the O(1) constants
  /// set to their paper values), for the β-surface bench.
  static double beta_formula_eq18(double eps_prime, int kappa, double rho);

  /// Paper bounds for headline reporting.
  [[nodiscard]] double size_bound() const;    ///< O(β·n^{1+1/κ}) with unit constant
  [[nodiscard]] double rounds_bound() const;  ///< O(β·n^ρ/ρ) with unit constant

  [[nodiscard]] std::string describe() const;

 private:
  Params() = default;
  static Params build(graph::Vertex n, double eps_internal, double eps_user,
                      int kappa, double rho, bool paper_mode,
                      std::uint64_t n_estimate);

  graph::Vertex n_ = 0;
  std::uint64_t n_estimate_ = 0;
  double eps_internal_ = 0, eps_user_ = 0, rho_ = 0;
  int kappa_ = 0, ell_ = 0, i0_ = 0, c_ = 0;
  std::uint64_t b_ = 0;
  bool paper_mode_ = false;
  std::vector<PhaseSchedule> phases_;
  double m_final_ = 1.0, a_final_ = 0.0, beta_paper_ = 0.0;
};

}  // namespace nas::core
