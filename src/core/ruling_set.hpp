// Deterministic distributed ruling sets (the paper's Theorem 2.2, citing
// Schneider-Elkin-Wattenhofer '13 / Kuhn-Maus-Weidner '18).
//
// Contract: given W ⊆ V and parameters q ≥ 1, c ≥ 2, compute A ⊆ W with
//   * separation: every distinct u, v ∈ A have d_G(u, v) ≥ q + 1,
//   * domination: every w ∈ W has some a ∈ A with d_G(w, a) ≤ q·c,
//   * round cost O(q · c · n^{1/c}), one message per edge-direction per round.
//
// Algorithm (digit elimination; a self-contained instance of the
// SEW13/KMW18 technique).  Write each vertex ID in base b = ⌈n^{1/c}⌉ using
// c digits.  Maintain an active set, initially W.  For each digit position
// t = 0..c−1 (most significant first):
//
//   reset the "covered" marks;
//   for each digit value d = 0..b−1 (sequential sub-steps):
//     J := { v active : digit_t(v) = d and v not covered };   // joiners
//     survivors of this position += J;
//     run a depth-q covering BFS from J (1 msg/edge/round, q rounds),
//     marking every vertex within distance q as covered;
//   active := survivors of this position.
//
// Why it meets the contract (proof sketch, verified by property tests):
//   * Separation: suppose distinct u, v survive all positions with
//     d(u,v) ≤ q.  Their IDs differ at some position t, say
//     digit_t(u) < digit_t(v).  Both are active at position t.  At u's
//     sub-step u joins (it survived, so it was uncovered) and its covering
//     BFS marks v (distance ≤ q), so v cannot join at its later sub-step —
//     contradiction.  Hence distinct survivors are ≥ q+1 apart.
//   * Domination: a vertex dropped at position t is covered by a joiner of
//     position t at distance ≤ q.  That joiner either survives to the end or
//     is dropped at a *later* position, forming a chain of ≤ c hops of
//     length ≤ q each, ending at a final survivor: distance ≤ q·c.
//   * Rounds: c positions × b sub-steps × (q+1) rounds; the covering BFS
//     forwards each "covered" token at most once per vertex per sub-step, so
//     each edge-direction carries ≤ 1 message per round.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"

namespace nas::core {

struct RulingSetResult {
  std::vector<graph::Vertex> rulers;  // the ruling set A, sorted
  /// For every vertex of W: the number of digit positions it survived
  /// (== c for rulers); diagnostic only.
  std::uint64_t rounds_charged = 0;
  std::uint64_t messages = 0;
};

/// Computes a (q+1, q·c)-ruling set for `w` in G.  `b` is the digit base;
/// callers normally pass Params::ruling_base() = ⌈n^{1/c}⌉.  Charges
/// c · b · (q+1) rounds.
[[nodiscard]] RulingSetResult compute_ruling_set(const graph::Graph& g,
                                                 const std::vector<graph::Vertex>& w,
                                                 std::uint64_t q, int c,
                                                 std::uint64_t b,
                                                 congest::Ledger* ledger = nullptr);

}  // namespace nas::core
