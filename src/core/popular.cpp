#include "core/popular.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <unordered_set>

#include "congest/engine.hpp"

namespace nas::core {

using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

std::uint64_t pair_key(Vertex v, Vertex origin) {
  return (static_cast<std::uint64_t>(v) << 32) | origin;
}

void validate(const Graph& g, const std::vector<Vertex>& sources,
              std::uint64_t delta, std::uint64_t cap) {
  if (delta == 0) throw std::invalid_argument("algorithm1: delta == 0");
  if (cap == 0) throw std::invalid_argument("algorithm1: cap == 0");
  for (Vertex s : sources) {
    if (s >= g.num_vertices()) {
      throw std::invalid_argument("algorithm1: source out of range");
    }
  }
}

}  // namespace

const Knowledge* find_knowledge(const std::vector<Knowledge>& list,
                                Vertex origin) {
  for (const Knowledge& k : list) {
    if (k.origin == origin) return &k;
  }
  return nullptr;
}

Algorithm1Result run_algorithm1(const Graph& g,
                                const std::vector<Vertex>& sources,
                                std::uint64_t delta, std::uint64_t cap,
                                congest::Ledger* ledger) {
  validate(g, sources, delta, cap);
  const Vertex n = g.num_vertices();

  Algorithm1Result res;
  res.knowledge.resize(n);
  res.popular.assign(n, 0);

  // (vertex, origin) pairs already accepted (or origin == vertex).
  std::unordered_set<std::uint64_t> known;
  known.reserve(sources.size() * 4);

  // Frontier: per vertex, the origins accepted in the previous layer that
  // must be forwarded in this layer.  Layer 0: every source announces itself.
  std::vector<std::pair<Vertex, std::vector<Vertex>>> frontier;
  {
    std::vector<Vertex> sorted_sources = sources;
    std::sort(sorted_sources.begin(), sorted_sources.end());
    for (Vertex s : sorted_sources) {
      known.insert(pair_key(s, s));
      frontier.push_back({s, {s}});
    }
  }

  // arrival = (receiver, origin, sender); sorted per layer for determinism.
  std::vector<std::tuple<Vertex, Vertex, Vertex>> arrivals;

  for (std::uint64_t layer = 1; layer <= delta && !frontier.empty(); ++layer) {
    arrivals.clear();
    for (const auto& [u, origins] : frontier) {
      // Broadcasting k origins over a cap-round layer puts k <= cap messages
      // on each incident edge-direction: the CONGEST window invariant.
      res.max_edge_layer_load =
          std::max<std::uint64_t>(res.max_edge_layer_load, origins.size());
      for (Vertex w : g.neighbors(u)) {
        for (Vertex o : origins) arrivals.emplace_back(w, o, u);
      }
      res.messages += origins.size() * g.degree(u);
    }
    std::sort(arrivals.begin(), arrivals.end());

    std::vector<std::pair<Vertex, std::vector<Vertex>>> next;
    Vertex current = kInvalidVertex;
    std::vector<Vertex>* bucket = nullptr;
    for (const auto& [w, o, u] : arrivals) {
      if (res.knowledge[w].size() >= cap) continue;  // list full: discard
      if (!known.insert(pair_key(w, o)).second) continue;  // already known
      res.knowledge[w].push_back(
          {.origin = o, .dist = static_cast<std::uint32_t>(layer), .parent = u});
      if (w != current) {
        next.push_back({w, {}});
        bucket = &next.back().second;
        current = w;
      }
      bucket->push_back(o);
    }
    frontier = std::move(next);
  }

  for (Vertex s : sources) {
    res.popular[s] = res.knowledge[s].size() >= cap ? 1 : 0;
  }

  res.rounds_charged = 1 + delta * cap;
  if (ledger != nullptr) {
    ledger->charge_rounds(res.rounds_charged);
    ledger->charge_messages(res.messages);
    ledger->check_window_capacity(res.max_edge_layer_load, cap, "algorithm1");
  }
  return res;
}

Algorithm1Result run_algorithm1_exact(const Graph& g,
                                      const std::vector<Vertex>& sources,
                                      std::uint64_t delta, std::uint64_t cap,
                                      congest::Ledger* ledger,
                                      const congest::SubstrateOptions& substrate) {
  validate(g, sources, delta, cap);
  const Vertex n = g.num_vertices();

  Algorithm1Result res;
  res.knowledge.resize(n);
  res.popular.assign(n, 0);

  std::vector<std::uint8_t> is_source(n, 0);
  for (Vertex s : sources) is_source[s] = 1;

  // Per-vertex state for the round-exact execution.  Everything below is
  // indexed by the executing vertex and touched by no one else, so the
  // program is safe on every substrate, including the multi-threaded engine.
  // known[v]: origins v has accepted (plus itself for sources).
  std::vector<std::unordered_set<Vertex>> known(n);
  for (Vertex s : sources) known[s].insert(s);
  // buffered arrivals of the current layer: (origin, sender, dist)
  std::vector<std::vector<std::tuple<Vertex, Vertex, std::uint32_t>>> buffer(n);
  // origins accepted at the previous layer boundary, to broadcast this layer
  std::vector<std::vector<Vertex>> pending(n);

  const auto program = [&](Vertex v, std::uint64_t round,
                           std::span<const congest::Message> inbox,
                           congest::Mailbox& mbox) {
    for (const auto& m : inbox) {
      buffer[v].emplace_back(static_cast<Vertex>(m.a), m.src,
                             static_cast<std::uint32_t>(m.b) + 1);
    }
    if (round == 0) {
      if (is_source[v]) {
        for (Vertex u : g.neighbors(v)) mbox.send(u, {.a = v, .b = 0});
      }
      return;
    }
    // Rounds 1 .. delta*cap are grouped into layers of `cap` rounds; the
    // first round of each layer processes the arrivals buffered during the
    // previous layer.
    const std::uint64_t layer_pos = (round - 1) % cap;
    if (layer_pos == 0) {
      auto& buf = buffer[v];
      std::sort(buf.begin(), buf.end(),
                [](const auto& x, const auto& y) {
                  return std::tie(std::get<0>(x), std::get<1>(x)) <
                         std::tie(std::get<0>(y), std::get<1>(y));
                });
      pending[v].clear();
      for (const auto& [o, u, d] : buf) {
        if (d > delta) continue;  // exploration is depth-bounded by δ
        if (res.knowledge[v].size() >= cap) break;
        if (!known[v].insert(o).second) continue;
        res.knowledge[v].push_back({.origin = o, .dist = d, .parent = u});
        pending[v].push_back(o);
      }
      buf.clear();
    }
    if (layer_pos < pending[v].size()) {
      const Vertex o = pending[v][layer_pos];
      const std::uint32_t d = find_knowledge(res.knowledge[v], o)->dist;
      for (Vertex u : g.neighbors(v)) mbox.send(u, {.a = o, .b = d});
    }
  };
  // 1 announcement round + delta layers of cap rounds + 1 boundary round to
  // process the final layer's arrivals.
  const congest::SubstrateRun run =
      congest::run_on_substrate(g, delta * cap + 2, program, substrate, ledger);
  res.rounds_charged = run.rounds;
  // Flush the final boundary (the engine already ran it as the last round's
  // layer_pos == 0 processing only if (delta*cap+1 - 1) % cap == 0, which it
  // is: round delta*cap+1 begins layer delta+1).
  res.messages = run.messages;

  for (Vertex s : sources) {
    res.popular[s] = res.knowledge[s].size() >= cap ? 1 : 0;
  }
  return res;
}

}  // namespace nas::core
