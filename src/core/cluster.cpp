#include "core/cluster.hpp"

#include <stdexcept>

namespace nas::core {

using graph::kInvalidVertex;
using graph::Vertex;

void ClusterState::merge_cluster_into(Vertex old_center, Vertex new_center) {
  if (old_center >= n() || new_center >= n()) {
    throw std::invalid_argument("merge_cluster_into: center out of range");
  }
  if (!is_center(old_center) || !is_center(new_center)) {
    throw std::logic_error("merge_cluster_into: argument is not a live center");
  }
  if (old_center == new_center) return;
  auto& from = members_[old_center];
  auto& to = members_[new_center];
  for (Vertex v : from) {
    center_[v] = new_center;
    to.push_back(v);
  }
  from.clear();
  from.shrink_to_fit();
}

void ClusterState::settle_cluster(Vertex c, int phase) {
  if (c >= n()) throw std::invalid_argument("settle_cluster: out of range");
  if (!is_center(c)) {
    throw std::logic_error("settle_cluster: argument is not a live center");
  }
  for (Vertex v : members_[c]) {
    center_[v] = kInvalidVertex;
    settled_phase_[v] = phase;
    settled_center_[v] = c;
  }
  members_[c].clear();
  members_[c].shrink_to_fit();
}

std::size_t ClusterState::active_count() const {
  std::size_t count = 0;
  for (Vertex v = 0; v < n(); ++v) {
    if (is_active(v)) ++count;
  }
  return count;
}

}  // namespace nas::core
