// Interconnection step (paper Section 2.3).
//
// Every cluster C ∈ U_i (not superclustered in this phase) adds to H a
// shortest path to the center of every cluster C' ∈ P_i with
// d_G(r_C, r_C') ≤ δ_i.  Because C is unpopular, Algorithm 1 left r_C with
// *complete* knowledge of those centers, including a parent pointer per
// learned center; the path is installed by tracing those pointers back to
// the origin (Theorem 2.1(2)).
//
// Trace tokens are deduplicated per (vertex, origin): the union of traced
// paths towards one origin is a subtree of that origin's BFS tree, so each
// tree edge is installed once.  This keeps the per-edge token load at most
// `cap` within the charged δ·cap-round window.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "core/popular.hpp"
#include "graph/graph.hpp"

namespace nas::core {

struct InterconnectResult {
  std::uint64_t paths_installed = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t rounds_charged = 0;
  std::uint64_t messages = 0;
  /// Longest installed path (≤ δ_i by Theorem 2.1).
  std::uint64_t max_path_length = 0;
};

/// Installs, for every center in `u_centers`, the shortest path to every
/// origin in its Algorithm-1 knowledge list.  `alg1` must be the result of
/// run_algorithm1 on the same graph and phase.
[[nodiscard]] InterconnectResult interconnect(
    const graph::Graph& g, const std::vector<graph::Vertex>& u_centers,
    const Algorithm1Result& alg1, std::uint64_t delta, std::uint64_t cap,
    graph::EdgeSet& H, congest::Ledger* ledger = nullptr);

}  // namespace nas::core
