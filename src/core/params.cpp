#include "core/params.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nas::core {

namespace {

// ⌊log₂ x⌋ for x ≥ 1, robust to floating point dust at powers of two.
int floor_log2(double x) {
  if (x < 1.0) throw std::invalid_argument("floor_log2: x < 1");
  int t = 0;
  double pow2 = 2.0;
  while (pow2 <= x * (1.0 + 1e-12)) {
    ++t;
    pow2 *= 2.0;
  }
  return t;
}

// ⌈x⌉ robust to floating point dust just above integers.
std::uint64_t ceil_robust(double x) {
  if (x < 0) throw std::invalid_argument("ceil_robust: negative");
  const double r = std::nearbyint(x);
  if (std::abs(x - r) < 1e-9) return static_cast<std::uint64_t>(r);
  return static_cast<std::uint64_t>(std::ceil(x));
}

std::uint64_t checked_u64(double x, const char* what) {
  if (!(x < 9.0e18)) {
    throw std::invalid_argument(std::string("parameter schedule overflow in ") +
                                what +
                                " — this (ε, κ, ρ) combination is infeasible "
                                "to execute; use it only for formula benches");
  }
  return static_cast<std::uint64_t>(x);
}

}  // namespace

Params Params::build(graph::Vertex n, double eps_internal, double eps_user,
                     int kappa, double rho, bool paper_mode,
                     std::uint64_t n_estimate) {
  if (n < 2) throw std::invalid_argument("Params: n must be >= 2");
  if (n_estimate == 0) n_estimate = n;
  if (n_estimate < n) {
    throw std::invalid_argument("Params: n_estimate must satisfy n <= ñ");
  }
  if (kappa < 2) throw std::invalid_argument("Params: kappa must be >= 2");
  if (!(rho >= 1.0 / kappa) || !(rho < 0.5)) {
    throw std::invalid_argument("Params: need 1/kappa <= rho < 1/2");
  }
  if (static_cast<double>(kappa) * rho < 1.0) {
    // 1/kappa <= rho already implies kappa*rho >= 1 mathematically, but
    // floating point can land just below; also gives a clear message for
    // kappa == 2, where the valid rho range [1/2, 1/2) is empty.
    throw std::invalid_argument(
        "Params: kappa*rho must be >= 1 (note kappa == 2 admits no valid rho)");
  }
  if (!(eps_internal > 0.0) || !(eps_internal < 1.0)) {
    throw std::invalid_argument("Params: internal eps must be in (0, 1)");
  }

  Params p;
  p.n_ = n;
  p.n_estimate_ = n_estimate;
  p.eps_internal_ = eps_internal;
  p.eps_user_ = eps_user;
  p.kappa_ = kappa;
  p.rho_ = rho;
  p.paper_mode_ = paper_mode;

  const double kr = static_cast<double>(kappa) * rho;  // κρ ≥ 1
  p.i0_ = floor_log2(kr);
  const auto fixed_phases =
      static_cast<int>(ceil_robust((kappa + 1.0) / kr));
  p.ell_ = p.i0_ + fixed_phases - 1;
  if (p.ell_ < 1) throw std::logic_error("Params: ell < 1 (unreachable)");

  // All n-dependent schedule values use the estimate ñ (Section 1.3.1:
  // vertices need only know some ñ with n <= ñ <= poly(n)).
  const auto nd = static_cast<double>(n_estimate);
  p.c_ = std::max<int>(2, static_cast<int>(ceil_robust(1.0 / rho)));
  p.b_ = std::max<std::uint64_t>(2, ceil_robust(std::pow(nd, 1.0 / p.c_)));

  // Per-phase schedule with the exact integer recurrences.
  std::uint64_t radius = 0;  // R_0 = 0
  double add = 0.0;          // A_0 = 0
  double mul = 1.0;          // M_0 = 1
  for (int i = 0; i <= p.ell_; ++i) {
    PhaseSchedule ph;
    ph.index = i;
    ph.concluding = (i == p.ell_);

    const double Lreal = std::pow(1.0 / eps_internal, i);
    ph.L = std::max<std::uint64_t>(1, checked_u64(Lreal, "L_i"));
    ph.radius = radius;
    ph.delta = checked_u64(static_cast<double>(ph.L) + 2.0 * static_cast<double>(radius),
                           "delta_i");
    ph.q = 2 * ph.delta;

    const double exponent =
        (i <= p.i0_) ? std::ldexp(1.0, i) / kappa : rho;  // 2^i/κ or ρ
    ph.deg = std::max<std::uint64_t>(1, ceil_robust(std::pow(nd, exponent)));

    if (!ph.concluding) {
      ph.forest_depth = checked_u64(
          static_cast<double>(ph.q) * static_cast<double>(p.c_), "D_i");
      ph.radius_next = checked_u64(
          static_cast<double>(radius) + static_cast<double>(ph.forest_depth),
          "R_{i+1}");
    } else {
      ph.forest_depth = 0;
      ph.radius_next = radius;
    }

    // Lemma 2.16 recursion on the *entering* radius bound of this phase's
    // cluster collection P_i.  For i = 0 the base case (M, A) = (1, 0) holds
    // because phase-0 interconnection keeps every edge incident to an
    // unpopular vertex.
    if (i >= 1) {
      add = 2.0 * add + 6.0 * static_cast<double>(ph.radius);
      mul = mul + add / static_cast<double>(ph.L);
    }
    ph.additive = add;
    ph.multiplicative = mul;

    p.phases_.push_back(ph);
    radius = ph.radius_next;
  }
  p.m_final_ = mul;
  p.a_final_ = add;
  p.beta_paper_ = std::pow(1.0 / eps_internal, p.ell_);
  return p;
}

Params Params::paper(graph::Vertex n, double eps_prime, int kappa, double rho,
                     std::uint64_t n_estimate) {
  if (!(eps_prime > 0.0) || !(eps_prime <= 1.0)) {
    throw std::invalid_argument("Params::paper: need 0 < eps' <= 1");
  }
  // ℓ depends only on (κ, ρ); compute it first for the rescaling.
  if (kappa < 2 || !(rho >= 1.0 / kappa) || !(rho < 0.5)) {
    throw std::invalid_argument("Params::paper: need kappa >= 2, 1/kappa <= rho < 1/2");
  }
  const double kr = static_cast<double>(kappa) * rho;
  if (kr < 1.0) {
    throw std::invalid_argument("Params::paper: kappa*rho must be >= 1");
  }
  const int i0 = floor_log2(kr);
  const int ell = i0 + static_cast<int>(ceil_robust((kappa + 1.0) / kr)) - 1;
  // Section 2.4.4: ε_internal = ε'ρ / (30ℓ).
  const double eps_internal = eps_prime * rho / (30.0 * ell);
  return build(n, eps_internal, eps_prime, kappa, rho, /*paper_mode=*/true,
               n_estimate);
}

Params Params::practical(graph::Vertex n, double eps_internal, int kappa,
                         double rho, std::uint64_t n_estimate) {
  return build(n, eps_internal, eps_internal, kappa, rho, /*paper_mode=*/false,
               n_estimate);
}

double Params::beta_formula_eq18(double eps_prime, int kappa, double rho) {
  // eq. (18): β = ( O(log κρ + ρ⁻¹) / (ρ ε) )^{log κρ + ρ⁻¹ + O(1)}
  // with the constants instantiated from the derivation: the numerator
  // constant is 30·ℓ and the exponent is ℓ (Section 2.4.4, eq. (17)).
  const double kr = static_cast<double>(kappa) * rho;
  const int i0 = floor_log2(kr);
  const int ell = i0 + static_cast<int>(ceil_robust((kappa + 1.0) / kr)) - 1;
  return std::pow(30.0 * ell / (rho * eps_prime), ell);
}

double Params::size_bound() const {
  return beta_paper_ *
         std::pow(static_cast<double>(n_), 1.0 + 1.0 / kappa_);
}

double Params::rounds_bound() const {
  return beta_paper_ * std::pow(static_cast<double>(n_), rho_) / rho_;
}

std::string Params::describe() const {
  std::ostringstream oss;
  oss << (paper_mode_ ? "paper" : "practical") << " mode: n=" << n_
      << " eps_user=" << eps_user_ << " eps_internal=" << eps_internal_
      << " kappa=" << kappa_ << " rho=" << rho_ << " ell=" << ell_
      << " i0=" << i0_ << " c=" << c_ << " b=" << b_
      << " stretch=(" << m_final_ << ", " << a_final_ << ")"
      << " beta_paper=" << beta_paper_;
  return oss.str();
}

}  // namespace nas::core
