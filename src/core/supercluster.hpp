// Superclustering step (paper Section 2.2).
//
// Given the ruling set RS_i ⊆ W_i, a BFS forest F_i of depth D_i = 2δ_i·c is
// grown from RS_i.  Every cluster whose center is spanned by F_i is merged
// into the supercluster of its tree root, and the root-to-center forest path
// is added to the spanner H.  The ruling set's domination radius (q·c = D_i)
// guarantees every popular center is spanned (Lemma 2.4); its separation
// (q+1 = 2δ_i+1) makes the δ_i-neighborhoods of distinct roots disjoint,
// which drives the cluster-counting Lemmas 2.10/2.11.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "core/cluster.hpp"
#include "graph/graph.hpp"

namespace nas::core {

struct SuperclusterResult {
  /// BFS forest: parent/root/dist per vertex (kInvalidVertex / kInfDist when
  /// out of range of every root).
  std::vector<graph::Vertex> forest_parent;
  std::vector<graph::Vertex> forest_root;
  std::vector<std::uint32_t> forest_dist;
  /// Centers of S_i that were superclustered (spanned by the forest),
  /// including the roots themselves.
  std::vector<graph::Vertex> superclustered_centers;
  std::uint64_t edges_added = 0;
  std::uint64_t rounds_charged = 0;
  std::uint64_t messages = 0;
};

/// Grows the BFS forest from `rulers` to depth `depth`, merges every spanned
/// center's cluster into its root's cluster (mutating `clusters`), and
/// installs the root-to-center forest paths into `H`.
///
/// Round accounting: (depth+1) for the forest BFS (1 message per edge),
/// (depth+1) for the path installation sweep, and `membership_radius` for
/// the intra-cluster membership broadcast — all charged to `ledger`.
[[nodiscard]] SuperclusterResult build_superclusters(
    const graph::Graph& g, ClusterState& clusters,
    const std::vector<graph::Vertex>& rulers, std::uint64_t depth,
    std::uint64_t membership_radius, graph::EdgeSet& H,
    congest::Ledger* ledger = nullptr);

}  // namespace nas::core
