// The Elkin-Matar deterministic CONGEST near-additive spanner (the paper's
// primary contribution, Section 2).
//
// Usage:
//   auto params  = nas::core::Params::practical(g.num_vertices(), 0.25, 3, 0.4);
//   auto result  = nas::core::build_spanner(g, params);
//   // result.spanner is (V, H); result.params.stretch_multiplicative() /
//   // stretch_additive() give the proven stretch; result.ledger.rounds()
//   // is the simulated CONGEST round count.
#pragma once

#include <cstdint>

#include "congest/ledger.hpp"
#include "congest/substrate.hpp"
#include "core/cluster.hpp"
#include "core/params.hpp"
#include "core/trace.hpp"
#include "graph/graph.hpp"

namespace nas::core {

struct BuildOptions {
  /// Verify the paper's structural lemmas during the run (Lemma 2.3 radii,
  /// Lemma 2.4 coverage, Theorem 2.2 separation/domination).  Violations
  /// throw std::logic_error.  Costs extra centralized BFS work; disable for
  /// large-scale benches.
  bool validate = true;

  /// Re-run each phase's Algorithm 1 on an exact round engine and require
  /// the event-driven result to match bit-for-bit (knowledge lists and
  /// popularity).  Mismatches throw std::logic_error.  Expensive — the
  /// reference simulates every round — so large-n runs should select the
  /// parallel substrate below.
  bool cross_check_alg1 = false;

  /// Substrate for the engine-backed reference executions: the serial round
  /// engine (default), the multi-threaded round engine, or synchronizer α
  /// over the asynchronous engine.  All three are bit-identical.
  congest::SubstrateOptions substrate{};
};

struct SpannerResult {
  graph::EdgeSet edges;     ///< the spanner edge set H
  graph::Graph spanner;     ///< (V, H) as an adjacency structure
  Params params;            ///< the schedule the run used
  congest::Ledger ledger;   ///< simulated CONGEST cost, per-section breakdown
  Trace trace;              ///< per-phase structure/cost instrumentation
  ClusterState clusters;    ///< final settle assignment (U_i partition)

  SpannerResult(graph::Vertex n, Params p)
      : edges(n), params(std::move(p)), clusters(n) {}
};

/// Runs the full construction on `g` with schedule `params`.
/// `params.n()` must equal `g.num_vertices()`.
[[nodiscard]] SpannerResult build_spanner(const graph::Graph& g,
                                          const Params& params,
                                          const BuildOptions& options = {});

}  // namespace nas::core
