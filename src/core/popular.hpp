// Algorithm 1 (paper, Appendix A): detecting popular clusters.
//
// A modified multi-source BFS from every cluster center r_C ∈ S_i, running
// for δ_i distance-layers of deg_i rounds each.  Every vertex maintains a
// list of the first `cap = deg_i` centers it learns about, together with the
// exact distance and the neighbor that delivered the message (so shortest
// paths can be traced back later).  Per layer, a vertex forwards the (at
// most cap) newly accepted origins to all its neighbors; origins that do not
// fit in the list are discarded and never forwarded — this is the paper's
// "arbitrarily choose deg_i" rule made deterministic by preferring smaller
// origin IDs.
//
// Contract (Theorem 2.1 / Lemma A.1), verified by the test suite:
//   1. After the run each vertex u knows at least
//      min(cap, |Γ^(δ)(u) ∩ S|) centers, at exact shortest distances.
//   2. A center is *popular* iff it learned about ≥ cap other centers;
//      an unpopular center knows ALL centers within δ and, for each, every
//      vertex on a shortest path towards it knows its own distance and
//      parent (trace-back property).
//   3. Round cost: 1 + δ·cap (layer 0 is a single round; each of the δ
//      forwarding layers takes cap rounds).  Each edge-direction carries at
//      most `cap` messages per layer — the CONGEST capacity invariant for
//      the cap-round window, checked against the ledger.
//
// Two implementations:
//   * run_algorithm1       — event-driven (layered), fast; charges rounds per
//                            the schedule above.
//   * run_algorithm1_exact — executes on the exact per-round CONGEST engine;
//                            used by the tests to cross-validate the
//                            event-driven result bit-for-bit on small inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/substrate.hpp"
#include "graph/graph.hpp"

namespace nas::core {

/// One learned (origin, distance, parent) record at a vertex.
struct Knowledge {
  graph::Vertex origin = graph::kInvalidVertex;
  std::uint32_t dist = 0;
  graph::Vertex parent = graph::kInvalidVertex;  // neighbor towards origin
};

struct Algorithm1Result {
  /// knowledge[v]: accepted records, in acceptance order (layer, then origin
  /// ID).  Size is at most `cap`.  A center never records itself.
  std::vector<std::vector<Knowledge>> knowledge;
  /// popular[v] is meaningful only for v ∈ sources: true iff v accepted
  /// `cap` records (i.e. learned ≥ cap other centers within δ).
  std::vector<std::uint8_t> popular;
  std::uint64_t rounds_charged = 0;
  std::uint64_t messages = 0;
  /// Worst per-edge-direction message count within one layer (must be ≤ cap).
  std::uint64_t max_edge_layer_load = 0;
};

/// Event-driven execution.  `sources` are the cluster centers S_i; `delta`
/// and `cap` are δ_i and deg_i.  Rounds are charged to `ledger` if non-null.
[[nodiscard]] Algorithm1Result run_algorithm1(
    const graph::Graph& g, const std::vector<graph::Vertex>& sources,
    std::uint64_t delta, std::uint64_t cap,
    congest::Ledger* ledger = nullptr);

/// Exact engine-backed reference (δ·cap+2 real simulated rounds); used by
/// the tests and by build_spanner's cross-check mode.  `substrate` selects
/// the execution substrate — the serial engine, the multi-threaded engine
/// (for large n), or the α-synchronizer; the result is bit-identical on all
/// three.
[[nodiscard]] Algorithm1Result run_algorithm1_exact(
    const graph::Graph& g, const std::vector<graph::Vertex>& sources,
    std::uint64_t delta, std::uint64_t cap,
    congest::Ledger* ledger = nullptr,
    const congest::SubstrateOptions& substrate = {});

/// Convenience: looks up `origin` in knowledge[v]; returns nullptr if absent.
[[nodiscard]] const Knowledge* find_knowledge(
    const std::vector<Knowledge>& list, graph::Vertex origin);

}  // namespace nas::core
