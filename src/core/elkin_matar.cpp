#include "core/elkin_matar.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/interconnect.hpp"
#include "core/popular.hpp"
#include "core/ruling_set.hpp"
#include "core/supercluster.hpp"
#include "graph/bfs.hpp"

namespace nas::core {

using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

/// Theorem 2.2 validation: rulers pairwise ≥ q+1 apart, and every vertex of
/// `w` within q·c of some ruler.  Uses one multi-source BFS (O(m)) — two
/// rulers closer than q+1 force an edge whose endpoints' BFS regions meet
/// "too early".
void check_ruling_contract(const Graph& g, const std::vector<Vertex>& w,
                           const std::vector<Vertex>& rulers, std::uint64_t q,
                           int c, PhaseTrace& pt) {
  if (rulers.empty()) {
    pt.separation_ok = true;
    pt.domination_ok = w.empty();
    return;
  }
  const auto bfs = graph::multi_source_bfs(g, rulers);
  // Separation: if d(r1, r2) <= q for distinct rulers, some edge (u, v) on a
  // shortest r1-r2 path has root[u] != root[v] and dist[u]+dist[v]+1 <= q.
  pt.separation_ok = true;
  for (Vertex u = 0; u < g.num_vertices() && pt.separation_ok; ++u) {
    if (bfs.dist[u] == kInfDist) continue;
    for (Vertex v : g.neighbors(u)) {
      if (v < u || bfs.dist[v] == kInfDist) continue;
      if (bfs.root[u] != bfs.root[v] &&
          static_cast<std::uint64_t>(bfs.dist[u]) + bfs.dist[v] + 1 <= q) {
        pt.separation_ok = false;
        break;
      }
    }
  }
  pt.domination_ok = true;
  const std::uint64_t radius = q * static_cast<std::uint64_t>(c);
  for (Vertex x : w) {
    if (bfs.dist[x] == kInfDist || bfs.dist[x] > radius) {
      pt.domination_ok = false;
      break;
    }
  }
}

/// BuildOptions::cross_check_alg1: the event-driven Algorithm 1 must match
/// an exact engine-backed reference execution bit-for-bit, on whichever
/// substrate the caller selected.  The reference is verification work, so it
/// is not charged to the run's ledger.
void check_alg1_reference(const Graph& g, const std::vector<Vertex>& centers,
                          std::uint64_t delta, std::uint64_t cap,
                          const Algorithm1Result& fast,
                          const congest::SubstrateOptions& substrate,
                          int phase) {
  const Algorithm1Result exact =
      run_algorithm1_exact(g, centers, delta, cap, nullptr, substrate);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool ok = fast.knowledge[v].size() == exact.knowledge[v].size() &&
              fast.popular[v] == exact.popular[v];
    for (std::size_t i = 0; ok && i < fast.knowledge[v].size(); ++i) {
      ok = fast.knowledge[v][i].origin == exact.knowledge[v][i].origin &&
           fast.knowledge[v][i].dist == exact.knowledge[v][i].dist &&
           fast.knowledge[v][i].parent == exact.knowledge[v][i].parent;
    }
    if (!ok) {
      throw std::logic_error(
          "Algorithm 1 cross-check failed in phase " + std::to_string(phase) +
          " at vertex " + std::to_string(v) + " (substrate " +
          std::string(congest::substrate_name(substrate.substrate)) + ")");
    }
  }
}

/// Lemma 2.3 validation: every member of a live cluster is within R_{i+1}
/// of its center *inside the spanner built so far*.
void check_radius(const graph::EdgeSet& H, const ClusterState& clusters,
                  std::uint64_t bound, PhaseTrace& pt) {
  const Graph h = H.to_graph();
  pt.measured_max_radius = 0;
  pt.radius_ok = true;
  for (Vertex c : clusters.centers()) {
    const auto res = graph::bfs(h, c);
    for (Vertex v : clusters.members(c)) {
      if (res.dist[v] == kInfDist) {
        pt.radius_ok = false;
        return;
      }
      pt.measured_max_radius =
          std::max<std::uint64_t>(pt.measured_max_radius, res.dist[v]);
    }
  }
  if (pt.measured_max_radius > bound) pt.radius_ok = false;
}

}  // namespace

SpannerResult build_spanner(const Graph& g, const Params& params,
                            const BuildOptions& options) {
  if (params.n() != g.num_vertices()) {
    throw std::invalid_argument("build_spanner: params built for different n");
  }
  SpannerResult result(g.num_vertices(), params);
  ClusterState& clusters = result.clusters;
  congest::Ledger& ledger = result.ledger;

  const int ell = params.ell();
  for (int i = 0; i <= ell; ++i) {
    const PhaseSchedule& sched = params.phase(i);
    PhaseTrace pt;
    pt.index = i;
    pt.delta = sched.delta;
    pt.forest_depth = sched.forest_depth;
    pt.radius_bound = sched.radius;
    pt.radius_bound_next = sched.radius_next;

    const std::vector<Vertex> centers = clusters.centers();
    pt.num_clusters = centers.size();

    // Concluding phase: the knowledge cap must cover every center, so that
    // Lemma 2.14 (complete interconnection) holds even when rounding makes
    // |P_ell| exceed n^rho (see DESIGN.md deviation #3).  The centers can
    // compute |P_ell| with one O(diameter)-round aggregation, charged here.
    std::uint64_t cap = sched.deg;
    if (sched.concluding) {
      cap = std::max<std::uint64_t>(cap, centers.size());
      // One broadcast + one convergecast over a BFS tree of G; depth is at
      // most n, so 2n rounds is a safe (and cheap relative to δ_ℓ·deg_ℓ)
      // charge for letting the centers learn |P_ℓ|.
      ledger.begin_section("phase " + std::to_string(i) + " count clusters");
      ledger.charge_rounds(2 * static_cast<std::uint64_t>(g.num_vertices()));
    }
    pt.deg = cap;

    // --- Algorithm 1: detect popular clusters -----------------------------
    ledger.begin_section("phase " + std::to_string(i) + " algorithm1");
    const Algorithm1Result alg1 =
        run_algorithm1(g, centers, sched.delta, cap, &ledger);
    pt.rounds_alg1 = alg1.rounds_charged;

    if (options.cross_check_alg1) {
      check_alg1_reference(g, centers, sched.delta, cap, alg1,
                           options.substrate, i);
    }

    std::vector<Vertex> popular;
    for (Vertex rc : centers) {
      if (alg1.popular[rc]) popular.push_back(rc);
    }
    pt.num_popular = popular.size();

    std::vector<Vertex> u_centers;
    if (!sched.concluding) {
      // --- Ruling set over the popular centers ---------------------------
      ledger.begin_section("phase " + std::to_string(i) + " ruling set");
      const RulingSetResult ruling = compute_ruling_set(
          g, popular, sched.q, params.c(), params.ruling_base(), &ledger);
      pt.num_rulers = ruling.rulers.size();
      pt.rounds_ruling = ruling.rounds_charged;

      if (options.validate) {
        check_ruling_contract(g, popular, ruling.rulers, sched.q, params.c(), pt);
        if (!pt.separation_ok || !pt.domination_ok) {
          throw std::logic_error("Theorem 2.2 violated in phase " +
                                 std::to_string(i));
        }
      }

      // --- Superclustering ------------------------------------------------
      ledger.begin_section("phase " + std::to_string(i) + " superclustering");
      const SuperclusterResult super =
          build_superclusters(g, clusters, ruling.rulers, sched.forest_depth,
                              sched.radius, result.edges, &ledger);
      pt.num_superclustered = super.superclustered_centers.size();
      pt.edges_super = super.edges_added;
      pt.rounds_super = super.rounds_charged;

      // Lemma 2.4: every popular center must have been spanned.
      pt.popular_covered_ok = true;
      for (Vertex rc : popular) {
        if (super.forest_root[rc] == kInvalidVertex) {
          pt.popular_covered_ok = false;
        }
      }
      if (!pt.popular_covered_ok) {
        throw std::logic_error("Lemma 2.4 violated in phase " +
                               std::to_string(i));
      }

      // U_i: centers of P_i that were not superclustered.
      for (Vertex rc : centers) {
        if (super.forest_root[rc] == kInvalidVertex) u_centers.push_back(rc);
      }

      if (options.validate) {
        check_radius(result.edges, clusters, sched.radius_next, pt);
        if (!pt.radius_ok) {
          throw std::logic_error("Lemma 2.3 violated in phase " +
                                 std::to_string(i));
        }
      }
    } else {
      // Concluding phase: no superclustering; every cluster interconnects.
      u_centers = centers;
      pt.num_rulers = 0;
      pt.num_superclustered = 0;
    }
    pt.num_settled = u_centers.size();

    // --- Interconnection ---------------------------------------------------
    ledger.begin_section("phase " + std::to_string(i) + " interconnection");
    const InterconnectResult inter = interconnect(
        g, u_centers, alg1, sched.delta, cap, result.edges, &ledger);
    pt.edges_inter = inter.edges_added;
    pt.paths_inter = inter.paths_installed;
    pt.max_inter_path = inter.max_path_length;
    pt.rounds_inter = inter.rounds_charged;

    // Clusters of U_i settle: they leave the active collection for good
    // (Lemma 2.6: the U_i form a partition of the settled vertices).
    for (Vertex rc : u_centers) clusters.settle_cluster(rc, i);

    result.trace.phases.push_back(pt);
  }

  // Corollary 2.5: after the concluding phase every vertex is settled.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (clusters.is_active(v) || clusters.settled_phase(v) < 0) {
      throw std::logic_error("Corollary 2.5 violated: vertex " +
                             std::to_string(v) + " not settled");
    }
  }

  result.spanner = result.edges.to_graph();
  return result;
}

}  // namespace nas::core
