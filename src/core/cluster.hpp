// Cluster bookkeeping for the superclustering-and-interconnection pipeline.
//
// At phase i the algorithm works on a collection P_i of disjoint clusters,
// each centered at a vertex r_C.  Vertices not covered by P_i were "settled"
// in an earlier phase: their cluster joined U_j for some j < i (Lemma 2.6:
// the U_j sets partition the settled vertices; Corollary 2.5: after phase ℓ
// they partition all of V).
//
// Member lists are maintained incrementally so that a whole phase of merges
// and settles costs O(n) rather than O(n · #clusters).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace nas::core {

class ClusterState {
 public:
  explicit ClusterState(graph::Vertex n)
      : center_(n), members_(n), settled_phase_(n, -1),
        settled_center_(n, graph::kInvalidVertex) {
    // P_0 = {{v} : v ∈ V}: every vertex is the center of its own cluster.
    for (graph::Vertex v = 0; v < n; ++v) {
      center_[v] = v;
      members_[v] = {v};
    }
  }

  [[nodiscard]] graph::Vertex n() const {
    return static_cast<graph::Vertex>(center_.size());
  }

  /// Center of v's current cluster, or kInvalidVertex if v is settled.
  [[nodiscard]] graph::Vertex center(graph::Vertex v) const { return center_[v]; }

  [[nodiscard]] bool is_active(graph::Vertex v) const {
    return center_[v] != graph::kInvalidVertex;
  }
  [[nodiscard]] bool is_center(graph::Vertex v) const { return center_[v] == v; }

  /// Phase at which v's cluster joined U_i (-1 while still active).
  [[nodiscard]] int settled_phase(graph::Vertex v) const {
    return settled_phase_[v];
  }
  [[nodiscard]] graph::Vertex settled_center(graph::Vertex v) const {
    return settled_center_[v];
  }

  /// Sorted list of current cluster centers (S_i).
  [[nodiscard]] std::vector<graph::Vertex> centers() const {
    std::vector<graph::Vertex> out;
    for (graph::Vertex v = 0; v < n(); ++v) {
      if (is_active(v) && is_center(v)) out.push_back(v);
    }
    return out;
  }

  /// Members of the live cluster centered at `c`.
  [[nodiscard]] const std::vector<graph::Vertex>& members(graph::Vertex c) const {
    return members_[c];
  }

  /// Moves every member of the cluster centered at `old_center` into the
  /// cluster centered at `new_center` (superclustering).
  void merge_cluster_into(graph::Vertex old_center, graph::Vertex new_center);

  /// Marks the cluster centered at `c` as settled in phase `phase` (it joins
  /// U_phase); its members leave the active collection.
  void settle_cluster(graph::Vertex c, int phase);

  /// Number of active (non-settled) vertices.
  [[nodiscard]] std::size_t active_count() const;

 private:
  std::vector<graph::Vertex> center_;
  std::vector<std::vector<graph::Vertex>> members_;  // nonempty only at centers
  std::vector<int> settled_phase_;
  std::vector<graph::Vertex> settled_center_;
};

}  // namespace nas::core
