#include "core/supercluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::core {

using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

SuperclusterResult build_superclusters(const Graph& g, ClusterState& clusters,
                                       const std::vector<Vertex>& rulers,
                                       std::uint64_t depth,
                                       std::uint64_t membership_radius,
                                       graph::EdgeSet& H,
                                       congest::Ledger* ledger) {
  const Vertex n = g.num_vertices();
  SuperclusterResult res;
  res.forest_parent.assign(n, kInvalidVertex);
  res.forest_root.assign(n, kInvalidVertex);
  res.forest_dist.assign(n, kInfDist);

  // Layered BFS from all rulers; processing each layer in ascending vertex
  // order makes parent/root adoption deterministic (smallest-ID discoverer
  // of the previous layer wins).
  std::vector<Vertex> frontier = rulers;
  std::sort(frontier.begin(), frontier.end());
  for (Vertex r : frontier) {
    if (r >= n) throw std::invalid_argument("build_superclusters: bad ruler");
    if (!clusters.is_center(r)) {
      throw std::logic_error("build_superclusters: ruler is not a live center");
    }
    res.forest_dist[r] = 0;
    res.forest_root[r] = r;
  }
  std::vector<Vertex> next;
  for (std::uint64_t d = 0; d < depth && !frontier.empty(); ++d) {
    next.clear();
    for (Vertex u : frontier) {
      res.messages += g.degree(u);
      for (Vertex v : g.neighbors(u)) {
        if (res.forest_dist[v] == kInfDist) {
          res.forest_dist[v] = static_cast<std::uint32_t>(d) + 1;
          res.forest_parent[v] = u;
          res.forest_root[v] = res.forest_root[u];
          next.push_back(v);
        }
      }
    }
    std::sort(next.begin(), next.end());
    frontier.swap(next);
  }

  // Merge spanned centers into their roots and install the forest paths.
  // `installed` marks vertices whose upward path to the root is already in
  // H (paths in one forest tree share suffixes, so each forest edge is
  // added at most once).
  std::vector<std::uint8_t> installed(n, 0);
  for (Vertex c : clusters.centers()) {
    if (res.forest_root[c] == kInvalidVertex) continue;  // out of range
    res.superclustered_centers.push_back(c);
    // Walk up to the root.
    Vertex x = c;
    while (res.forest_parent[x] != kInvalidVertex && !installed[x]) {
      installed[x] = 1;
      const Vertex p = res.forest_parent[x];
      if (H.insert(x, p)) ++res.edges_added;
      res.messages += 1;  // one trace token hop
      x = p;
    }
  }
  for (Vertex c : res.superclustered_centers) {
    const Vertex root = res.forest_root[c];
    if (c != root) clusters.merge_cluster_into(c, root);
  }

  res.rounds_charged = 2 * (depth + 1) + membership_radius;
  if (ledger != nullptr) {
    ledger->charge_rounds(res.rounds_charged);
    ledger->charge_messages(res.messages);
    // BFS and path install both put at most one message per edge-direction
    // per round within their (depth+1)-round windows.
    ledger->check_window_capacity(1, depth + 1, "supercluster forest");
  }
  return res;
}

}  // namespace nas::core
