// Structured per-phase instrumentation of a spanner construction.
//
// The paper's Figures 1-5 illustrate what each phase does (popular centers,
// ruling sets, supercluster forests, interconnection paths); the benches
// regenerate them from this trace instead of scraping logs.
#pragma once

#include <cstdint>
#include <vector>

namespace nas::core {

struct PhaseTrace {
  int index = 0;

  // Schedule (copied from PhaseSchedule for self-contained reporting).
  std::uint64_t delta = 0;
  std::uint64_t deg = 0;
  std::uint64_t forest_depth = 0;
  std::uint64_t radius_bound = 0;       ///< R_i (bound on Rad(P_i))
  std::uint64_t radius_bound_next = 0;  ///< R_{i+1}

  // Structure counts.
  std::uint64_t num_clusters = 0;        ///< |P_i|
  std::uint64_t num_popular = 0;         ///< |W_i|
  std::uint64_t num_rulers = 0;          ///< |RS_i| = |P_{i+1}|
  std::uint64_t num_superclustered = 0;  ///< centers spanned by F_i
  std::uint64_t num_settled = 0;         ///< |U_i|

  // Spanner growth.
  std::uint64_t edges_super = 0;
  std::uint64_t edges_inter = 0;
  std::uint64_t paths_inter = 0;
  std::uint64_t max_inter_path = 0;

  // Cost.
  std::uint64_t rounds_alg1 = 0;
  std::uint64_t rounds_ruling = 0;
  std::uint64_t rounds_super = 0;
  std::uint64_t rounds_inter = 0;
  [[nodiscard]] std::uint64_t rounds_total() const {
    return rounds_alg1 + rounds_ruling + rounds_super + rounds_inter;
  }

  // Validation measurements (filled when BuildOptions::validate is set).
  std::uint64_t measured_max_radius = 0;  ///< max Rad over new superclusters
  bool radius_ok = true;                  ///< measured ≤ R_{i+1} (Lemma 2.3)
  bool popular_covered_ok = true;         ///< W_i ⊆ spanned (Lemma 2.4)
  bool separation_ok = true;              ///< RS_i pairwise ≥ q+1 (Thm 2.2)
  bool domination_ok = true;              ///< W_i within q·c of RS_i (Thm 2.2)
};

struct Trace {
  std::vector<PhaseTrace> phases;

  [[nodiscard]] std::uint64_t total_rounds() const {
    std::uint64_t total = 0;
    for (const auto& ph : phases) total += ph.rounds_total();
    return total;
  }
  [[nodiscard]] std::uint64_t total_edges() const {
    std::uint64_t total = 0;
    for (const auto& ph : phases) total += ph.edges_super + ph.edges_inter;
    return total;
  }
  [[nodiscard]] bool all_invariants_ok() const {
    for (const auto& ph : phases) {
      if (!ph.radius_ok || !ph.popular_covered_ok || !ph.separation_ok ||
          !ph.domination_ok) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace nas::core
