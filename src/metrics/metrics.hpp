// First-class metrics primitives for the serving stack.
//
// The serving layer's observability used to be ad-hoc counters threaded
// through ClusterStats.  This subsystem gives it real building blocks with
// the same discipline the rest of the repo enforces: every metric a CI gate
// compares is a pure function of the request history, never of wall-clock
// or thread scheduling.
//
//   * Counter       — a monotonic uint64 (cache hits, sheds, ...).
//   * HighWater     — a monotonic maximum (queue-depth high-water marks).
//   * Histogram     — fixed upper-bound buckets over uint64 samples.  Fed
//                     *work* values (batch sizes, per-replica queue depths)
//                     the bucket counts are byte-identical across runs and
//                     thread counts, so tests assert on them directly.  Fed
//                     wall-clock values (serve latency) the counts are
//                     timing-only: exported for humans, excluded from every
//                     digest a gate compares.
//   * Digest        — an order-sensitive mix64 fold over uint64 words, the
//                     cluster-counter analogue of apps::digest_answers.
//
// Rendering goes through util::JsonObject so the METRICS verb, the STATS
// endpoint, and the bench sinks can never drift on field shape: a histogram
// renders as two parallel arrays, `<name>_le` (upper bounds, "inf" last)
// and `<name>_count` (per-bucket counts), plus `<name>_total`/`<name>_sum`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace nas::metrics {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Monotonic maximum — records the largest value ever observed.
class HighWater {
 public:
  void observe(std::uint64_t value) {
    if (value > value_) value_ = value;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram over uint64 samples.  Bucket i counts samples
/// <= bounds[i]; one implicit overflow bucket counts the rest, so
/// counts().size() == bounds().size() + 1.  Bounds are fixed at
/// construction (strictly ascending), which is what makes two histograms
/// comparable and mergeable: operator+= requires identical bounds.
class Histogram {
 public:
  /// A histogram with no finite buckets: every sample lands in overflow.
  Histogram() : counts_(1, 0) {}

  /// Strictly ascending finite upper bounds; throws std::invalid_argument
  /// otherwise.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  /// Power-of-two bounds 1, 2, 4, ..., 2^(buckets-1): the standard shape
  /// for batch sizes and queue depths, where ratios matter and exact
  /// magnitudes do not.
  [[nodiscard]] static Histogram pow2(unsigned buckets);

  void record(std::uint64_t value);

  /// Merges `other` into this histogram.  Bounds must match exactly
  /// (std::invalid_argument otherwise) — a mismatch means two different
  /// metric definitions were conflated, which must never pass silently.
  Histogram& operator+=(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries
  std::uint64_t total_ = 0;            ///< samples recorded
  std::uint64_t sum_ = 0;              ///< sum of sample values
};

/// Order-sensitive digest over uint64 words (SplitMix64 finalizer chain,
/// same construction as apps::digest_answers).  CI compares these instead
/// of full counter dumps: one hex64 word per configuration.
class Digest {
 public:
  void add(std::uint64_t word);
  /// Folds a histogram's deterministic state (bounds, counts, total, sum)
  /// into the digest.
  void add(const Histogram& histogram);
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Appends the canonical four-field rendering of `histogram` under `name`:
/// `<name>_le` (finite bounds then "inf"), `<name>_count` (parallel bucket
/// counts), `<name>_total`, `<name>_sum`.
void append_histogram_fields(util::JsonObject* fields, const std::string& name,
                             const Histogram& histogram);

}  // namespace nas::metrics
