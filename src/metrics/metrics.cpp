#include "metrics/metrics.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace nas::metrics {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly ascending");
    }
  }
}

Histogram Histogram::pow2(unsigned buckets) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(buckets);
  for (unsigned i = 0; i < buckets && i < 64; ++i) {
    bounds.push_back(std::uint64_t{1} << i);
  }
  return Histogram(std::move(bounds));
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++total_;
  sum_ += value;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram: merging mismatched bounds");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  return *this;
}

void Digest::add(std::uint64_t word) { value_ = util::mix64(value_ ^ word); }

void Digest::add(const Histogram& histogram) {
  add(histogram.bounds().size());
  for (const auto b : histogram.bounds()) add(b);
  for (const auto c : histogram.counts()) add(c);
  add(histogram.total());
  add(histogram.sum());
}

void append_histogram_fields(util::JsonObject* fields, const std::string& name,
                             const Histogram& histogram) {
  std::string les = "[";
  for (const auto b : histogram.bounds()) {
    if (les.size() > 1) les += ",";
    les += std::to_string(b);
  }
  if (les.size() > 1) les += ",";
  les += "\"inf\"]";
  std::string counts = "[";
  for (std::size_t i = 0; i < histogram.counts().size(); ++i) {
    if (i) counts += ",";
    counts += std::to_string(histogram.counts()[i]);
  }
  counts += "]";
  fields->emplace_back(name + "_le", util::JsonValue::literal(std::move(les)));
  fields->emplace_back(name + "_count",
                       util::JsonValue::literal(std::move(counts)));
  fields->emplace_back(name + "_total",
                       util::JsonValue::number(histogram.total()));
  fields->emplace_back(name + "_sum", util::JsonValue::number(histogram.sum()));
}

}  // namespace nas::metrics
