// nas_lint: the repo-invariant checker behind the `nas_lint` CLI and the
// `nas_lint_tree` ctest.
//
// The serving stack's one contract is byte-identical answers and sink rows at
// any thread/shard/snapshot-format combination.  The compiler cannot see that
// contract: a stray `rand()`, a wall-clock read, or an iteration over a hash
// container feeding a digest compiles cleanly and only shows up — sometimes —
// as a cmp-gate failure long after the fact.  This module enforces those
// invariants statically, line by line, with exact file:line diagnostics:
//
//   banned-random           rand()/srand()/rand_r()/std::random_device/
//                           std::random_shuffle anywhere (the sanctioned
//                           seeded RNG lives in src/util/rng.hpp)
//   banned-clock            wall-clock and CPU-clock reads (system_clock,
//                           steady_clock, high_resolution_clock, time(),
//                           clock(), clock_gettime, gettimeofday) outside the
//                           timing opt-in (src/util/timer.hpp)
//   unordered-iteration     iterating a std::unordered_{map,set} (range-for
//                           or .begin()/.end() family) in src/ or tools/ —
//                           the code that feeds sinks, digests, and
//                           snapshots.  Membership tests stay fine.
//   header-pragma-once      every header carries `#pragma once`
//   header-using-namespace  no `using namespace` in headers
//   flag-description        every util::Flags accessor on the conventional
//                           `flags` receiver passes a description (the
//                           third argument), so --help stays complete
//
// Escape hatch: a `// nas-lint: allow(rule-a, rule-b)` comment on the same
// line or the line directly above suppresses those rules for that line.
// A small built-in allowlist (see `allowlist()`) exempts the files whose
// whole purpose is the banned construct; both are part of the documented
// contract, not per-call-site judgment.
//
// Matching is lexical (comments and string/char literals are stripped
// first), so the checker is fast, dependency-free, and deterministic — but
// it is a linter, not a compiler: names it tracks are per-file, and novel
// spellings can evade it.  It errs on the side of firing; allow() is the
// answer for deliberate exceptions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nas::lint {

struct Diagnostic {
  std::string file;     ///< repo-relative path, forward slashes
  std::size_t line = 0; ///< 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

struct RuleInfo {
  std::string name;
  std::string description;
};

/// The rule set, in stable (diagnostic-sorting) order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// The documented file allowlist as (rule, repo-relative path) pairs.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
allowlist();

/// Lints one file.  `path` must be repo-relative (it selects which rules
/// apply and is echoed into diagnostics verbatim).
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& path,
                                                const std::string& contents);

/// Walks src/ tools/ bench/ examples/ tests/ under `root` (skipping the
/// tests/data corpus, which contains deliberately-bad snippets) and lints
/// every .cpp/.hpp/.h.  Diagnostics come back sorted by (file, line, rule);
/// the walk itself is sorted, so output is deterministic.
[[nodiscard]] std::vector<Diagnostic> lint_tree(const std::string& root);

/// "file:line: rule: message" — the one rendering ctest and CI grep for.
[[nodiscard]] std::string render(const Diagnostic& d);

}  // namespace nas::lint
