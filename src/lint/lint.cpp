#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace nas::lint {

namespace {

// Rule names — one spelling, used by diagnostics, allow() comments, and
// --list-rules alike.
constexpr const char* kBannedRandom = "banned-random";
constexpr const char* kBannedClock = "banned-clock";
constexpr const char* kUnorderedIteration = "unordered-iteration";
constexpr const char* kHeaderPragmaOnce = "header-pragma-once";
constexpr const char* kHeaderUsingNamespace = "header-using-namespace";
constexpr const char* kFlagDescription = "flag-description";
constexpr const char* kUncheckedIo = "unchecked-io";

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

[[nodiscard]] bool is_header_path(const std::string& path) {
  return has_suffix(path, ".hpp") || has_suffix(path, ".h");
}

// --- comment/string stripping ------------------------------------------------

/// The linted view of a file: `code` is the original text with comments,
/// string literals, and char literals blanked to spaces (line structure and
/// column positions preserved); `raw` keeps the original lines so allow()
/// comments stay visible after stripping.
struct Stripped {
  std::vector<std::string> code;
  std::vector<std::string> raw;
};

[[nodiscard]] Stripped strip(const std::string& contents) {
  Stripped out;
  std::istringstream in(contents);
  std::string line;
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  while (std::getline(in, line)) {
    out.raw.push_back(line);
    std::string code = line;
    for (std::size_t i = 0; i < code.size();) {
      switch (state) {
        case State::kCode: {
          const char c = code[i];
          if (c == '/' && i + 1 < code.size() && code[i + 1] == '/') {
            for (std::size_t j = i; j < code.size(); ++j) code[j] = ' ';
            i = code.size();
          } else if (c == '/' && i + 1 < code.size() && code[i + 1] == '*') {
            code[i] = ' ';
            code[i + 1] = ' ';
            i += 2;
            state = State::kBlockComment;
          } else if (c == 'R' && i + 1 < code.size() && code[i + 1] == '"' &&
                     (i == 0 || !is_ident_char(code[i - 1]))) {
            std::size_t j = i + 2;
            while (j < code.size() && code[j] != '(') ++j;
            // Assemble via += (GCC 12's -Wrestrict false positive PR105651
            // flags `"x" + rvalue string`).
            raw_delim = ")";
            raw_delim += code.substr(i + 2, j - (i + 2));
            raw_delim += '"';
            for (std::size_t k = i; k < code.size() && k <= j; ++k) {
              code[k] = ' ';
            }
            i = j + 1;
            state = State::kRawString;
          } else if (c == '"') {
            code[i] = ' ';
            ++i;
            state = State::kString;
          } else if (c == '\'') {
            code[i] = ' ';
            ++i;
            state = State::kChar;
          } else {
            ++i;
          }
          break;
        }
        case State::kBlockComment: {
          if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
            code[i] = ' ';
            code[i + 1] = ' ';
            i += 2;
            state = State::kCode;
          } else {
            code[i] = ' ';
            ++i;
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (code[i] == '\\' && i + 1 < code.size()) {
            code[i] = ' ';
            code[i + 1] = ' ';
            i += 2;
          } else if (code[i] == quote) {
            code[i] = ' ';
            ++i;
            state = State::kCode;
          } else {
            code[i] = ' ';
            ++i;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t hit = code.find(raw_delim, i);
          if (hit == std::string::npos) {
            for (std::size_t j = i; j < code.size(); ++j) code[j] = ' ';
            i = code.size();
          } else {
            for (std::size_t j = i; j < hit + raw_delim.size(); ++j) {
              code[j] = ' ';
            }
            i = hit + raw_delim.size();
            state = State::kCode;
          }
          break;
        }
      }
    }
    // Ordinary string/char literals do not span lines; an unterminated one
    // (or a trailing backslash continuation) resets at EOL rather than
    // swallowing the rest of the file.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.code.push_back(std::move(code));
  }
  return out;
}

// --- allow() comments --------------------------------------------------------

/// Rules suppressed on `line_index` (0-based) by a `nas-lint: allow(...)`
/// comment on that line or the one directly above.
[[nodiscard]] std::set<std::string> allowed_rules(
    const std::vector<std::string>& raw, std::size_t line_index) {
  std::set<std::string> allowed;
  const auto scan = [&allowed](const std::string& line) {
    constexpr const char* kTag = "nas-lint: allow(";
    std::size_t pos = line.find(kTag);
    if (pos == std::string::npos) return;
    pos += std::string(kTag).size();
    const std::size_t close = line.find(')', pos);
    if (close == std::string::npos) return;
    std::string inside = line.substr(pos, close - pos);
    std::istringstream items(inside);
    std::string item;
    while (std::getline(items, item, ',')) {
      const auto begin = item.find_first_not_of(" \t");
      const auto end = item.find_last_not_of(" \t");
      if (begin != std::string::npos) {
        allowed.insert(item.substr(begin, end - begin + 1));
      }
    }
  };
  scan(raw[line_index]);
  if (line_index > 0) scan(raw[line_index - 1]);
  return allowed;
}

// --- token scanning helpers --------------------------------------------------

/// First position at or after `from` where `word` appears with non-identifier
/// characters (or line edges) on both sides; npos when absent.
[[nodiscard]] std::size_t find_word(const std::string& line,
                                    const std::string& word,
                                    std::size_t from) {
  for (std::size_t pos = line.find(word, from); pos != std::string::npos;
       pos = line.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

/// True when the first non-space character after `pos` is `expected`.
[[nodiscard]] bool next_nonspace_is(const std::string& line, std::size_t pos,
                                    char expected) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
  return pos < line.size() && line[pos] == expected;
}

/// The leading identifier of `text` (after optional whitespace, `*`, `&`,
/// and a `const ` qualifier); empty when `text` starts with anything else.
[[nodiscard]] std::string leading_identifier(std::string text) {
  std::size_t begin = text.find_first_not_of(" \t*&");
  if (begin == std::string::npos) return "";
  text = text.substr(begin);
  if (has_prefix(text, "const ")) {
    return leading_identifier(text.substr(6));
  }
  std::size_t end = 0;
  while (end < text.size() && is_ident_char(text[end])) ++end;
  return text.substr(0, end);
}

// --- per-rule context --------------------------------------------------------

struct FileContext {
  std::string path;
  Stripped stripped;
  std::vector<Diagnostic> diagnostics;

  void report(std::size_t line_index, const std::string& rule,
              const std::string& message) {
    if (allowed_rules(stripped.raw, line_index).count(rule) != 0) return;
    diagnostics.push_back({path, line_index + 1, rule, message});
  }
};

[[nodiscard]] bool file_allowlisted(const std::string& rule,
                                    const std::string& path) {
  for (const auto& [allowed_rule, allowed_path] : allowlist()) {
    if (allowed_rule == rule && allowed_path == path) return true;
  }
  return false;
}

// banned-random: the sanctioned randomness is the seeded Xoshiro in
// src/util/rng.hpp; everything else makes a run irreproducible.
void check_banned_random(FileContext& ctx) {
  if (file_allowlisted(kBannedRandom, ctx.path)) return;
  static const std::vector<std::string> kCalls = {"rand", "srand", "rand_r"};
  static const std::vector<std::string> kWords = {"random_device",
                                                  "random_shuffle"};
  for (std::size_t i = 0; i < ctx.stripped.code.size(); ++i) {
    const auto& line = ctx.stripped.code[i];
    for (const auto& call : kCalls) {
      for (std::size_t pos = find_word(line, call, 0);
           pos != std::string::npos;
           pos = find_word(line, call, pos + 1)) {
        if (pos > 0 && line[pos - 1] == '.') continue;  // member of another
        if (!next_nonspace_is(line, pos + call.size(), '(')) continue;
        ctx.report(i, kBannedRandom,
                   call + "() is nondeterministic; use util::Xoshiro256 "
                          "seeded from the scenario (src/util/rng.hpp)");
      }
    }
    for (const auto& word : kWords) {
      if (find_word(line, word, 0) != std::string::npos) {
        ctx.report(i, kBannedRandom,
                   "std::" + word + " is nondeterministic; use "
                                    "util::Xoshiro256 seeded from the "
                                    "scenario (src/util/rng.hpp)");
      }
    }
  }
}

// banned-clock: wall-clock reads belong behind the timing opt-in
// (util::Timer); anywhere else they leak run-dependent values into output.
void check_banned_clock(FileContext& ctx) {
  if (file_allowlisted(kBannedClock, ctx.path)) return;
  static const std::vector<std::string> kWords = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "__rdtsc",
      "__builtin_readcyclecounter"};
  static const std::vector<std::string> kCalls = {"time", "clock"};
  for (std::size_t i = 0; i < ctx.stripped.code.size(); ++i) {
    const auto& line = ctx.stripped.code[i];
    for (const auto& word : kWords) {
      if (find_word(line, word, 0) != std::string::npos) {
        ctx.report(i, kBannedClock,
                   word + " reads the clock; route timing through "
                          "util::Timer (src/util/timer.hpp) so it stays a "
                          "timing-only column");
      }
    }
    for (const auto& call : kCalls) {
      for (std::size_t pos = find_word(line, call, 0);
           pos != std::string::npos;
           pos = find_word(line, call, pos + 1)) {
        if (pos > 0 && line[pos - 1] == '.') continue;  // member call
        if (!next_nonspace_is(line, pos + call.size(), '(')) continue;
        ctx.report(i, kBannedClock,
                   call + "() reads the clock; route timing through "
                          "util::Timer (src/util/timer.hpp)");
      }
    }
  }
}

// unordered-iteration: collect names declared as std::unordered_{map,set}
// in this file, then flag range-for loops over them and .begin()/.end()
// family calls on them.  Scope: src/ and tools/ — the code that feeds
// sinks, digests, and snapshots.
void check_unordered_iteration(FileContext& ctx) {
  if (!has_prefix(ctx.path, "src/") && !has_prefix(ctx.path, "tools/")) {
    return;
  }
  if (file_allowlisted(kUnorderedIteration, ctx.path)) return;
  const auto& code = ctx.stripped.code;

  // Pass 1: declared names.  After `unordered_map<...>` / `unordered_set<...>`
  // (angle brackets balanced, possibly across lines) the next identifier —
  // past `>`, `&`, `*`, whitespace — is the declared name.
  std::set<std::string> unordered_names;
  static const std::vector<std::string> kContainers = {"unordered_map",
                                                       "unordered_set"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const std::string& container : kContainers) {
      for (std::size_t pos = find_word(code[i], container, 0);
           pos != std::string::npos;
           pos = find_word(code[i], container, pos + 1)) {
        std::size_t line_no = i;
        std::size_t at = pos + container.size();
        if (at >= code[line_no].size() || code[line_no][at] != '<') continue;
        int depth = 0;
        bool closed = false;
        // Balance <> across at most a handful of lines — declarations are
        // short; a runaway scan means a parse the linter cannot follow.
        for (std::size_t scanned = 0; scanned < 8 && !closed; ++scanned) {
          const auto& l = code[line_no];
          for (; at < l.size(); ++at) {
            if (l[at] == '<') ++depth;
            if (l[at] == '>') {
              --depth;
              if (depth == 0) {
                closed = true;
                ++at;
                break;
              }
            }
          }
          if (!closed) {
            if (line_no + 1 >= code.size()) break;
            ++line_no;
            at = 0;
          }
        }
        if (!closed) continue;
        // Skip reference/pointer markers and whitespace; a second `>` means
        // we were a nested template argument (vector<unordered_set<V>>) —
        // step past it and keep going: the outer declaration still names a
        // container whose elements are unordered.
        std::string tail = code[line_no].substr(at);
        std::size_t skip = 0;
        while (skip < tail.size() &&
               (tail[skip] == ' ' || tail[skip] == '>' || tail[skip] == '&' ||
                tail[skip] == '*')) {
          ++skip;
        }
        const std::string name = leading_identifier(tail.substr(skip));
        if (!name.empty()) unordered_names.insert(name);
      }
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2a: range-for over a tracked name.
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::size_t pos = find_word(code[i], "for", 0);
         pos != std::string::npos; pos = find_word(code[i], "for", pos + 1)) {
      // Join the for-header across lines up to the matching ')'.
      std::string header;
      std::size_t line_no = i;
      std::size_t at = pos + 3;
      int depth = 0;
      bool closed = false;
      for (std::size_t scanned = 0; scanned < 8 && !closed; ++scanned) {
        const auto& l = code[line_no];
        for (; at < l.size(); ++at) {
          if (l[at] == '(') ++depth;
          if (l[at] == ')') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
          if (depth >= 1) header += l[at];
        }
        if (!closed) {
          header += ' ';
          if (line_no + 1 >= code.size()) break;
          ++line_no;
          at = 0;
        }
      }
      if (!closed) continue;
      // Range-for: a single `:` at top level that is not part of `::`.
      std::size_t colon = std::string::npos;
      for (std::size_t j = 1; j + 1 < header.size() + 1 && j < header.size();
           ++j) {
        if (header[j] != ':') continue;
        if (header[j - 1] == ':' || (j + 1 < header.size() &&
                                     header[j + 1] == ':')) {
          continue;
        }
        colon = j;
        break;
      }
      if (colon == std::string::npos) continue;
      const std::string name = leading_identifier(header.substr(colon + 1));
      if (unordered_names.count(name) != 0) {
        ctx.report(i, kUnorderedIteration,
                   "range-for over unordered container '" + name +
                       "' has hash-layout order; iterate a sorted/"
                       "first-appearance sequence instead");
      }
    }
  }

  // Pass 2b: .begin()/.end() family on a tracked name.
  static const std::vector<std::string> kIters = {
      "begin", "end", "cbegin", "cend", "rbegin", "rend"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const auto& line = code[i];
    for (const auto& name : unordered_names) {
      for (std::size_t pos = find_word(line, name, 0);
           pos != std::string::npos;
           pos = find_word(line, name, pos + 1)) {
        if (pos > 0 && line[pos - 1] == '.') continue;  // other.name.begin()
        std::size_t at = pos + name.size();
        if (at >= line.size() || line[at] != '.') continue;
        ++at;
        for (const auto& iter : kIters) {
          if (line.compare(at, iter.size(), iter) == 0 &&
              next_nonspace_is(line, at + iter.size(), '(')) {
            // Assemble via += (GCC 12's -Wrestrict false positive PR105651
            // flags `"x" + rvalue string`).
            std::string message = "'";
            message += name;
            message += ".";
            message += iter;
            message +=
                "()' iterates an unordered container in hash-layout order; "
                "iterate a sorted/first-appearance sequence instead";
            ctx.report(i, kUnorderedIteration, message);
          }
        }
      }
    }
  }
}

// header-pragma-once + header-using-namespace.
void check_header_hygiene(FileContext& ctx) {
  if (!is_header_path(ctx.path)) return;
  bool has_pragma = false;
  for (const auto& line : ctx.stripped.code) {
    if (line.find("#pragma once") != std::string::npos) {
      has_pragma = true;
      break;
    }
  }
  if (!has_pragma && !ctx.stripped.code.empty()) {
    ctx.report(0, kHeaderPragmaOnce, "header is missing '#pragma once'");
  }
  for (std::size_t i = 0; i < ctx.stripped.code.size(); ++i) {
    if (find_word(ctx.stripped.code[i], "using", 0) != std::string::npos) {
      const auto pos = find_word(ctx.stripped.code[i], "using", 0);
      const auto rest = ctx.stripped.code[i].substr(pos + 5);
      if (leading_identifier(rest) == "namespace") {
        ctx.report(i, kHeaderUsingNamespace,
                   "'using namespace' in a header leaks into every includer; "
                   "qualify names or alias instead");
      }
    }
  }
}

// flag-description: `flags.str/integer/real/boolean(...)` must pass a
// description (the third argument) so `--help` stays complete.  Keyed on the
// conventional `flags` receiver used by every CLI/bench/example binary.
void check_flag_description(FileContext& ctx) {
  static const std::vector<std::string> kAccessors = {"str", "integer", "real",
                                                      "boolean"};
  const auto& code = ctx.stripped.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const auto& line = code[i];
    for (std::size_t pos = find_word(line, "flags", 0);
         pos != std::string::npos; pos = find_word(line, "flags", pos + 1)) {
      if (pos > 0 && line[pos - 1] == '.') continue;
      std::size_t at = pos + 5;
      if (at >= line.size() || line[at] != '.') continue;
      ++at;
      std::string accessor;
      for (const auto& candidate : kAccessors) {
        if (line.compare(at, candidate.size(), candidate) == 0 &&
            at + candidate.size() < line.size() &&
            line[at + candidate.size()] == '(') {
          accessor = candidate;
        }
      }
      if (accessor.empty()) continue;
      // Count top-level commas in the balanced argument list (it may span
      // lines); fewer than two means the description was dropped.
      std::size_t line_no = i;
      std::size_t scan = at + accessor.size();
      int depth = 0;
      std::size_t commas = 0;
      bool closed = false;
      bool empty_args = true;
      for (std::size_t scanned = 0; scanned < 16 && !closed; ++scanned) {
        const auto& l = code[line_no];
        for (; scan < l.size(); ++scan) {
          const char c = l[scan];
          if (c == '(' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == ']' || c == '}') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
          if (depth == 1 && c == ',') ++commas;
          if (depth >= 1 && std::isspace(static_cast<unsigned char>(c)) == 0 &&
              c != '(') {
            empty_args = false;
          }
        }
        if (!closed) {
          if (line_no + 1 >= code.size()) break;
          ++line_no;
          scan = 0;
        }
      }
      if (!closed || empty_args) continue;
      if (commas < 2) {
        ctx.report(i, kFlagDescription,
                   "flags." + accessor +
                       "() without a description; pass the third argument "
                       "so --help lists this flag");
      }
    }
  }
}

// unchecked-io: a raw POSIX transfer call (`::read`, `::write`, ...) whose
// result is discarded loses short transfers and EINTR silently, and a bare
// `::close` before error reporting is the classic errno clobber.  The rule
// flags these calls in *statement position* — the last code character
// before the `::` (looking across lines) is `{`, `}`, `;`, or nothing —
// which is exactly a discarded result; assignments, conditions, and returns
// all consume the value and pass.  Scope: src/ and tools/, like the other
// determinism rules.  Deliberate discards use the reviewed pattern
// `const int rc = ::close(fd); static_cast<void>(rc);`.
void check_unchecked_io(FileContext& ctx) {
  if (!has_prefix(ctx.path, "src/") && !has_prefix(ctx.path, "tools/")) {
    return;
  }
  if (file_allowlisted(kUncheckedIo, ctx.path)) return;
  static const std::vector<std::string> kCalls = {
      "read", "write", "send", "recv", "pread", "pwrite", "close"};
  const auto& code = ctx.stripped.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const auto& line = code[i];
    for (const auto& call : kCalls) {
      for (std::size_t pos = find_word(line, call, 0);
           pos != std::string::npos;
           pos = find_word(line, call, pos + 1)) {
        // Only the global-namespace spelling `::call(` — member functions
        // and same-named locals are someone else's API.
        if (pos < 2 || line[pos - 1] != ':' || line[pos - 2] != ':') continue;
        if (pos >= 3 && (line[pos - 3] == ':' || is_ident_char(line[pos - 3]))) {
          continue;  // a::b::read — qualified, not the global namespace
        }
        if (!next_nonspace_is(line, pos + call.size(), '(')) continue;
        // Statement position: walk back past whitespace (across lines) to
        // the last code character before the `::`.
        char before = '\0';
        std::size_t line_no = i;
        std::size_t at = pos - 2;
        for (;;) {
          const auto& l = code[line_no];
          const std::size_t last = l.find_last_not_of(" \t", at > 0 ? at - 1
                                                                    : 0);
          if (at > 0 && last != std::string::npos && last < at) {
            before = l[last];
            break;
          }
          if (line_no == 0) break;
          --line_no;
          at = code[line_no].size();
        }
        if (before != '\0' && before != '{' && before != '}' && before != ';') {
          continue;  // result consumed (assignment/condition/return/cast)
        }
        ctx.report(i, kUncheckedIo,
                   "::" + call +
                       "() result discarded: short transfers, EINTR, and the "
                       "failing call's errno get lost; consume the result "
                       "(or for a deliberate discard: `const int rc = ::" +
                       call + "(...); static_cast<void>(rc);`)");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kBannedRandom,
       "rand()/srand()/rand_r()/std::random_device/std::random_shuffle "
       "anywhere; seeded util::Xoshiro256 is the one randomness source"},
      {kBannedClock,
       "system_clock/steady_clock/high_resolution_clock/time()/clock()/"
       "clock_gettime/gettimeofday/__rdtsc/__builtin_readcyclecounter "
       "outside the timing opt-in (src/util/timer.hpp)"},
      {kUnorderedIteration,
       "range-for or .begin()/.end() over a std::unordered_{map,set} in "
       "src/ or tools/ (hash-layout order feeds sinks/digests/snapshots); "
       "membership tests are fine"},
      {kHeaderPragmaOnce, "every header starts with '#pragma once'"},
      {kHeaderUsingNamespace, "no 'using namespace' in headers"},
      {kFlagDescription,
       "every util::Flags accessor on the conventional 'flags' receiver "
       "passes a description (third argument)"},
      {kUncheckedIo,
       "::read/::write/::send/::recv/::pread/::pwrite/::close in statement "
       "position in src/ or tools/ (result discarded: short transfers, "
       "EINTR, and errno are lost); deliberate discards use "
       "`const int rc = ::close(fd); static_cast<void>(rc);`"},
  };
  return kRules;
}

const std::vector<std::pair<std::string, std::string>>& allowlist() {
  // The two files whose whole purpose is the banned construct.  Everything
  // else goes through them — or carries an inline, reviewed allow().
  static const std::vector<std::pair<std::string, std::string>> kAllow = {
      {kBannedClock, "src/util/timer.hpp"},
      {kBannedRandom, "src/util/rng.hpp"},
  };
  return kAllow;
}

std::vector<Diagnostic> lint_file(const std::string& path,
                                  const std::string& contents) {
  FileContext ctx{path, strip(contents), {}};
  check_banned_random(ctx);
  check_banned_clock(ctx);
  check_unordered_iteration(ctx);
  check_header_hygiene(ctx);
  check_flag_description(ctx);
  check_unchecked_io(ctx);

  // Stable order: by line, then rule-set order, independent of check order.
  std::map<std::string, std::size_t> rule_rank;
  for (std::size_t r = 0; r < rules().size(); ++r) {
    rule_rank[rules()[r].name] = r;
  }
  std::sort(ctx.diagnostics.begin(), ctx.diagnostics.end(),
            [&rule_rank](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return rule_rank.at(a.rule) < rule_rank.at(b.rule);
            });
  return ctx.diagnostics;
}

std::vector<Diagnostic> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  static const std::vector<std::string> kDirs = {"src", "tools", "bench",
                                                 "examples", "tests"};
  const fs::path base(root);
  std::vector<std::string> files;
  for (const auto& dir : kDirs) {
    const fs::path top = base / dir;
    if (!fs::exists(top)) continue;
    for (auto it = fs::recursive_directory_iterator(top);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "data") {
        // tests/data holds golden files and the deliberately-bad lint
        // corpus; neither is tree code.
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string rel =
          fs::relative(it->path(), base).generic_string();
      if (has_suffix(rel, ".cpp") || has_suffix(rel, ".hpp") ||
          has_suffix(rel, ".h")) {
        files.push_back(rel);
      }
    }
  }
  // Directory iteration order is unspecified; the linter itself obeys the
  // determinism contract.
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> all;
  for (const auto& rel : files) {
    std::ifstream in(base / rel, std::ios::binary);
    if (!in) {
      throw std::runtime_error("nas_lint: cannot read " + rel);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto diags = lint_file(rel, buf.str());
    all.insert(all.end(), diags.begin(), diags.end());
  }
  return all;
}

std::string render(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": " + d.rule + ": " +
         d.message;
}

}  // namespace nas::lint
