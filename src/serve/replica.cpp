#include "serve/replica.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::serve {

RoutePolicy parse_route_policy(const std::string& name) {
  if (name == "round-robin") return RoutePolicy::kRoundRobin;
  if (name == "least-loaded") return RoutePolicy::kLeastLoaded;
  if (name == "deterministic") return RoutePolicy::kDeterministic;
  throw std::invalid_argument(
      "unknown route policy \"" + name +
      "\" (expected round-robin, least-loaded, or deterministic)");
}

std::string route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kLeastLoaded: return "least-loaded";
    case RoutePolicy::kDeterministic: return "deterministic";
  }
  return "unknown";
}

ReplicaGroup::ReplicaGroup(graph::Csr spanner, double multiplicative,
                           double additive,
                           const apps::OracleOptions& oracle_options,
                           const ReplicaGroupOptions& options)
    : policy_(options.policy), queue_depth_(options.queue_depth) {
  if (options.replicas == 0) {
    throw std::invalid_argument("ReplicaGroup: need at least one replica");
  }
  replicas_.reserve(options.replicas);
  for (unsigned r = 0; r < options.replicas; ++r) {
    replicas_.emplace_back(spanner, multiplicative, additive, oracle_options);
  }
  counters_.resize(options.replicas);
}

unsigned ReplicaGroup::least_loaded(
    const std::vector<std::uint64_t>& depth) const {
  unsigned best = 0;
  for (unsigned r = 1; r < size(); ++r) {
    if (depth[r] < depth[best] ||
        (depth[r] == depth[best] &&
         counters_[r].requests < counters_[best].requests)) {
      best = r;
    }
  }
  return best;
}

ReplicaPlan ReplicaGroup::plan(std::span<const apps::Query> sub_batch) {
  const unsigned replicas = size();
  ReplicaPlan out;
  out.queries.resize(replicas);
  out.slots.resize(replicas);
  out.sheds.assign(replicas, 0);
  std::vector<std::uint64_t> depth(replicas, 0);
  for (std::size_t i = 0; i < sub_batch.size(); ++i) {
    unsigned chosen = 0;
    switch (policy_) {
      case RoutePolicy::kRoundRobin:
        chosen = static_cast<unsigned>(cursor_++ % replicas);
        break;
      case RoutePolicy::kDeterministic:
        chosen = static_cast<unsigned>(i % replicas);
        break;
      case RoutePolicy::kLeastLoaded:
        chosen = least_loaded(depth);
        break;
    }
    if (queue_depth_ > 0 && depth[chosen] >= queue_depth_ && replicas > 1) {
      // Admission control: the overloaded replica sheds to its group.  When
      // the whole group is at the cap, least_loaded still names the
      // shallowest queue and the request is absorbed — the group never
      // drops work; real turn-away lives in src/net.
      ++out.sheds[chosen];
      chosen = least_loaded(depth);
    }
    out.queries[chosen].push_back(sub_batch[i]);
    out.slots[chosen].push_back(i);
    ++depth[chosen];
  }
  return out;
}

void ReplicaGroup::execute(const ReplicaPlan& plan, unsigned r,
                           std::vector<std::uint32_t>* answers,
                           apps::BatchStats* stats) {
  *answers = replicas_[r].batch_query(plan.queries[r], 1, stats);
}

std::vector<std::uint32_t> ReplicaGroup::merge(
    const ReplicaPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& replica_answers,
    std::size_t sub_batch_size) {
  std::vector<std::uint32_t> merged(sub_batch_size, 0);
  for (std::size_t r = 0; r < plan.slots.size(); ++r) {
    for (std::size_t i = 0; i < plan.slots[r].size(); ++i) {
      merged[plan.slots[r][i]] = replica_answers[r][i];
    }
  }
  return merged;
}

void ReplicaGroup::absorb(const ReplicaPlan& plan,
                          const std::vector<apps::BatchStats>& replica_stats,
                          std::vector<ReplicaCounters>* per_call) {
  if (per_call != nullptr) {
    per_call->assign(size(), ReplicaCounters{});
  }
  for (unsigned r = 0; r < size(); ++r) {
    ReplicaCounters call;
    call.requests = plan.queries[r].size();
    call.sheds = plan.sheds[r];
    call.distinct_sources = replica_stats[r].distinct_sources;
    call.cache_hits = replica_stats[r].cache_hits;
    call.bfs_passes = replica_stats[r].bfs_passes;
    call.evictions = replica_stats[r].evictions;
    call.queue_high_water = plan.queries[r].size();

    auto& life = counters_[r];
    life.requests += call.requests;
    life.sheds += call.sheds;
    life.distinct_sources += call.distinct_sources;
    life.cache_hits += call.cache_hits;
    life.bfs_passes += call.bfs_passes;
    life.evictions += call.evictions;
    life.queue_high_water =
        std::max(life.queue_high_water, call.queue_high_water);
    if (per_call != nullptr) (*per_call)[r] = call;
  }
}

}  // namespace nas::serve
