// R-way replica groups: the unit of replication inside a shard.
//
// A hot shard is a single point of both failure and latency.  The
// linear-size spanner is what makes replication affordable: every replica
// shares one immutable graph::Csr view (O(1) copies onto the same arrays),
// so R replicas cost R cache budgets, never R structures.  A ReplicaGroup
// wraps R shard oracles plus a routing policy that assigns each sub-batch
// request to one replica:
//
//   * round-robin    — a persistent cursor advances once per request, so the
//                      assignment is a pure function of the request sequence
//                      the group has ever seen.
//   * least-loaded   — each request goes to the replica with the smallest
//                      outstanding sub-batch depth in the current pass; ties
//                      break by smallest lifetime request count, then lowest
//                      replica id.  Deterministic, because depth is planned
//                      serially before any oracle runs.
//   * deterministic  — test mode: replica = index % R, a pure function of
//                      the request's position in its sub-batch.  Under this
//                      policy both answers *and per-replica counters* are
//                      byte-identical across runs, which is what CI diffs.
//
// Admission control reuses the park-FIFO idea from src/net: a replica whose
// planned depth reaches `queue_depth` sheds the request to the least-loaded
// group member instead of turning it away — arrival order is preserved, the
// overflow just queues on a sibling.  If every replica is at the cap the
// least-loaded one absorbs the request anyway; the true backpressure
// (bounded bridge queue, connection parking, max-conns turn-away) lives one
// layer up in src/net, and a group must never drop work it was handed.
//
// Answers are byte-identical under every policy: all replicas serve the
// same CSR, and an answer is d_H(u, v), which no replica's cache state can
// change.  Only the *counters* depend on routing, and they depend on it
// deterministically.
//
// Execution protocol (ShardedCluster drives this): plan() serially, then
// execute() each non-empty replica from any thread (replica r's oracle and
// output slots are touched by exactly one call), then merge() + absorb()
// serially.  One plan/execute/absorb cycle at a time per group.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"

namespace nas::serve {

enum class RoutePolicy { kRoundRobin, kLeastLoaded, kDeterministic };

/// Parses "round-robin" | "least-loaded" | "deterministic"
/// (std::invalid_argument otherwise).
[[nodiscard]] RoutePolicy parse_route_policy(const std::string& name);
[[nodiscard]] std::string route_policy_name(RoutePolicy policy);

/// Deterministic per-replica serving counters (per call or lifetime).
struct ReplicaCounters {
  std::uint64_t requests = 0;  ///< sub-batch requests executed here
  std::uint64_t sheds = 0;     ///< requests rerouted away by admission control
  std::uint64_t distinct_sources = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t bfs_passes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t queue_high_water = 0;  ///< max planned depth in one pass
};

struct ReplicaGroupOptions {
  unsigned replicas = 1;
  RoutePolicy policy = RoutePolicy::kRoundRobin;
  /// Admission cap: planned per-replica depth at which further requests
  /// shed to the least-loaded group member.  0 = unbounded.
  std::uint64_t queue_depth = 0;
};

/// One pass's routing decision: per-replica sub-batches plus the sub-batch
/// slot each query came from (the merge scatter map), and per-replica shed
/// counts.
struct ReplicaPlan {
  std::vector<std::vector<apps::Query>> queries;  ///< [replica]
  std::vector<std::vector<std::size_t>> slots;    ///< [replica] -> sub-batch slot
  std::vector<std::uint64_t> sheds;               ///< [replica] shed away from
};

class ReplicaGroup {
 public:
  /// R replicas over one shared CSR view; per-replica marginal memory is
  /// one cache budget.
  ReplicaGroup(graph::Csr spanner, double multiplicative, double additive,
               const apps::OracleOptions& oracle_options,
               const ReplicaGroupOptions& options);

  /// Serially assigns each sub-batch request to a replica (see the file
  /// comment for the policy semantics).  Mutates only routing state (the
  /// round-robin cursor); counters move in absorb().
  [[nodiscard]] ReplicaPlan plan(std::span<const apps::Query> sub_batch);

  /// Executes replica r's planned sub-batch.  Touches only replica r's
  /// oracle and the two output slots, so distinct replicas execute
  /// concurrently from different threads.
  void execute(const ReplicaPlan& plan, unsigned r,
               std::vector<std::uint32_t>* answers, apps::BatchStats* stats);

  /// Scatters per-replica answers back into sub-batch order.
  [[nodiscard]] static std::vector<std::uint32_t> merge(
      const ReplicaPlan& plan,
      const std::vector<std::vector<std::uint32_t>>& replica_answers,
      std::size_t sub_batch_size);

  /// Serially folds one pass's plan + execution stats into the lifetime
  /// counters; `per_call`, when non-null, receives this pass's counters.
  void absorb(const ReplicaPlan& plan,
              const std::vector<apps::BatchStats>& replica_stats,
              std::vector<ReplicaCounters>* per_call);

  // --- introspection --------------------------------------------------------

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(replicas_.size());
  }
  [[nodiscard]] RoutePolicy policy() const { return policy_; }
  [[nodiscard]] std::uint64_t queue_depth() const { return queue_depth_; }
  [[nodiscard]] const apps::SpannerDistanceOracle& replica(unsigned r) const {
    return replicas_.at(r);
  }
  /// Lifetime counters, one entry per replica.
  [[nodiscard]] const std::vector<ReplicaCounters>& counters() const {
    return counters_;
  }

 private:
  [[nodiscard]] unsigned least_loaded(
      const std::vector<std::uint64_t>& depth) const;

  RoutePolicy policy_;
  std::uint64_t queue_depth_;
  std::uint64_t cursor_ = 0;  ///< round-robin position (lifetime-persistent)
  std::vector<apps::SpannerDistanceOracle> replicas_;
  std::vector<ReplicaCounters> counters_;  ///< lifetime, absorb()-updated
};

}  // namespace nas::serve
