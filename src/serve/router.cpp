#include "serve/router.hpp"

#include <stdexcept>

namespace nas::serve {

std::uint64_t RoutePlan::shards_used() const {
  std::uint64_t used = 0;
  for (const auto& q : queries) used += q.empty() ? 0 : 1;
  return used;
}

RoutePlan Router::plan(std::span<const apps::Query> batch) const {
  // Validate the whole batch first so a bad request never leaves a partial
  // plan behind (shard_of throws on out-of-range vertices).
  const auto n = partitioner_.universe();
  for (const auto& q : batch) {
    if (q.u >= n || q.v >= n) {
      throw std::invalid_argument("Router: query vertex out of range");
    }
  }
  RoutePlan plan;
  plan.queries.resize(partitioner_.shards());
  plan.slots.resize(partitioner_.shards());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto s = partitioner_.shard_of_pair(batch[i].u, batch[i].v);
    plan.queries[s].push_back(batch[i]);
    plan.slots[s].push_back(i);
  }
  return plan;
}

std::vector<std::uint32_t> Router::merge(
    const RoutePlan& plan,
    const std::vector<std::vector<std::uint32_t>>& shard_answers,
    std::size_t batch_size) {
  if (shard_answers.size() != plan.queries.size()) {
    throw std::invalid_argument("Router::merge: shard count mismatch");
  }
  std::vector<std::uint32_t> answers(batch_size, 0);
  for (std::size_t s = 0; s < shard_answers.size(); ++s) {
    if (shard_answers[s].size() != plan.slots[s].size()) {
      throw std::invalid_argument("Router::merge: sub-batch size mismatch");
    }
    for (std::size_t i = 0; i < shard_answers[s].size(); ++i) {
      answers[plan.slots[s][i]] = shard_answers[s][i];
    }
  }
  return answers;
}

}  // namespace nas::serve
