#include "serve/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace nas::serve {

namespace {

std::vector<apps::SpannerDistanceOracle> replicate(
    const graph::Csr& spanner, double multiplicative, double additive,
    const ClusterOptions& options) {
  const apps::OracleOptions oracle_options{
      .cache_budget_bytes = options.shard_cache_budget_bytes,
      .bfs_kernel = options.bfs_kernel};
  std::vector<apps::SpannerDistanceOracle> shards;
  shards.reserve(options.shards);
  for (unsigned s = 0; s < options.shards; ++s) {
    // Csr copies are O(1) views onto the same arrays: every shard serves
    // the identical immutable structure, only the caches are per-shard.
    shards.emplace_back(spanner, multiplicative, additive, oracle_options);
  }
  return shards;
}

}  // namespace

ShardedCluster::ShardedCluster(std::vector<apps::SpannerDistanceOracle> shards,
                               const ClusterOptions& options)
    : partitioner_(parse_partition(options.partition), options.shards,
                   shards.empty() ? 0 : shards.front().num_vertices()),
      shards_(std::move(shards)) {
  if (shards_.size() != options.shards) {
    throw std::invalid_argument("ShardedCluster: shard count mismatch");
  }
}

ShardedCluster::ShardedCluster(const graph::Graph& spanner,
                               double multiplicative, double additive,
                               const ClusterOptions& options)
    : ShardedCluster(graph::Csr::from_graph(spanner), multiplicative, additive,
                     options) {}

ShardedCluster::ShardedCluster(graph::Csr spanner, double multiplicative,
                               double additive, const ClusterOptions& options)
    : ShardedCluster(replicate(spanner, multiplicative, additive, options),
                     options) {}

ShardedCluster ShardedCluster::from_snapshot_files(
    const std::vector<std::string>& paths, const ClusterOptions& options) {
  if (paths.empty()) {
    throw std::runtime_error(
        "ShardedCluster: need at least one snapshot path");
  }
  if (paths.size() != 1 && paths.size() != options.shards) {
    throw std::runtime_error(
        "ShardedCluster: pass one snapshot for every shard (got " +
        std::to_string(paths.size()) + " paths for " +
        std::to_string(options.shards) + " shards) or one to replicate");
  }
  const apps::OracleOptions oracle_options{
      .cache_budget_bytes = options.shard_cache_budget_bytes,
      .bfs_kernel = options.bfs_kernel};

  if (paths.size() == 1) {
    // One snapshot, loaded/mapped once: every shard views the same CSR
    // arrays (for a v2 snapshot that is the mmap handoff — the file is
    // mapped a single time and the mapping is shared across all shards).
    const auto loaded =
        apps::SpannerDistanceOracle::load_file(paths.front(), oracle_options);
    return ShardedCluster(loaded.csr(), loaded.multiplicative(),
                          loaded.additive(), options);
  }

  std::vector<apps::SpannerDistanceOracle> shards;
  shards.reserve(paths.size());
  for (const auto& path : paths) {
    shards.push_back(
        apps::SpannerDistanceOracle::load_file(path, oracle_options));
  }
  // Every shard must serve the same structure; %.17g snapshot rendering
  // round-trips doubles exactly, so guarantee agreement is bit-exact, and
  // the edge count catches snapshots from different builds that happen to
  // share the universe and the schedule (a drift guard, not a full
  // edge-set comparison).
  const auto& first = shards.front();
  for (std::size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].num_vertices() != first.num_vertices()) {
      throw std::runtime_error("ShardedCluster: snapshot " + paths[s] +
                               " disagrees on the vertex universe");
    }
    if (shards[s].spanner_edges() != first.spanner_edges()) {
      throw std::runtime_error("ShardedCluster: snapshot " + paths[s] +
                               " disagrees on the spanner edge count");
    }
    if (shards[s].multiplicative() != first.multiplicative() ||
        shards[s].additive() != first.additive()) {
      throw std::runtime_error("ShardedCluster: snapshot " + paths[s] +
                               " disagrees on the guarantee pair");
    }
  }
  return ShardedCluster(std::move(shards), options);
}

std::vector<std::uint32_t> ShardedCluster::serve(
    std::span<const apps::Query> batch, unsigned threads, ClusterStats* stats) {
  const Router router(partitioner_);
  const auto plan = router.plan(batch);

  // Execute the sub-batches: each ThreadPool slot owns a contiguous block of
  // shards and touches only those shards' oracles, answer slots, and stats
  // slots, so the shard results are independent of the slot count.  Empty
  // shards are skipped (their cache state and counters stay untouched).
  std::vector<std::vector<std::uint32_t>> shard_answers(shards_.size());
  std::vector<apps::BatchStats> shard_stats(shards_.size());
  util::ThreadPool::run_sharded(
      shards_.size(), threads, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          if (plan.queries[s].empty()) continue;
          shard_answers[s] =
              shards_[s].batch_query(plan.queries[s], 1, &shard_stats[s]);
        }
      });

  if (stats != nullptr) {
    *stats = ClusterStats{};
    stats->requests = batch.size();
    stats->shards_used = plan.shards_used();
    stats->per_shard.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto& c = stats->per_shard[s];
      c.requests = plan.queries[s].size();
      c.distinct_sources = shard_stats[s].distinct_sources;
      c.cache_hits = shard_stats[s].cache_hits;
      c.bfs_passes = shard_stats[s].bfs_passes;
      c.evictions = shard_stats[s].evictions;
      stats->distinct_sources += c.distinct_sources;
      stats->cache_hits += c.cache_hits;
      stats->bfs_passes += c.bfs_passes;
      stats->evictions += c.evictions;
    }
  }
  return Router::merge(plan, shard_answers, batch.size());
}

ClusterStats& ClusterStats::operator+=(const ClusterStats& other) {
  requests += other.requests;
  distinct_sources += other.distinct_sources;
  cache_hits += other.cache_hits;
  bfs_passes += other.bfs_passes;
  evictions += other.evictions;
  if (per_shard.size() < other.per_shard.size()) {
    per_shard.resize(other.per_shard.size());
  }
  for (std::size_t s = 0; s < other.per_shard.size(); ++s) {
    per_shard[s].requests += other.per_shard[s].requests;
    per_shard[s].distinct_sources += other.per_shard[s].distinct_sources;
    per_shard[s].cache_hits += other.per_shard[s].cache_hits;
    per_shard[s].bfs_passes += other.per_shard[s].bfs_passes;
    per_shard[s].evictions += other.per_shard[s].evictions;
  }
  shards_used = 0;
  for (const auto& c : per_shard) {
    if (c.requests > 0) ++shards_used;
  }
  return *this;
}

util::JsonObject cluster_stats_fields(const ShardedCluster& cluster,
                                      const ClusterStats& stats) {
  util::JsonObject fields{
      {"shards", util::JsonValue::number(
                     static_cast<std::uint64_t>(cluster.num_shards()))},
      {"partition", util::JsonValue::str(cluster.partitioner().name())},
      {"shard_cache_capacity",
       util::JsonValue::number(cluster.shard(0).cache_capacity())},
      {"universe", util::JsonValue::number(
                       static_cast<std::uint64_t>(cluster.universe()))},
      {"requests", util::JsonValue::number(stats.requests)},
      {"shards_used", util::JsonValue::number(stats.shards_used)},
      {"distinct_sources", util::JsonValue::number(stats.distinct_sources)},
      {"cache_hits", util::JsonValue::number(stats.cache_hits)},
      {"bfs_passes", util::JsonValue::number(stats.bfs_passes)},
      {"evictions", util::JsonValue::number(stats.evictions)},
  };
  // Per-shard request/hit/BFS counters as parallel arrays: deterministic,
  // so a stats diff localizes a routing or cache regression to its shard.
  const auto joined = [&](auto field) {
    std::string list = "[";
    for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
      if (s) list += ",";
      list += std::to_string(field(stats.per_shard[s]));
    }
    return list + "]";
  };
  fields.emplace_back(
      "shard_requests",
      util::JsonValue::literal(
          joined([](const ShardCounters& c) { return c.requests; })));
  fields.emplace_back(
      "shard_bfs", util::JsonValue::literal(joined([](const ShardCounters& c) {
        return c.bfs_passes;
      })));
  fields.emplace_back(
      "shard_hits", util::JsonValue::literal(joined([](const ShardCounters& c) {
        return c.cache_hits;
      })));
  return fields;
}

}  // namespace nas::serve
