#include "serve/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace nas::serve {

namespace {

ReplicaGroupOptions group_options(const ClusterOptions& options) {
  return ReplicaGroupOptions{.replicas = options.replicas,
                             .policy = parse_route_policy(options.route),
                             .queue_depth = options.replica_queue_depth};
}

std::vector<ReplicaGroup> make_groups(const graph::Csr& spanner,
                                      double multiplicative, double additive,
                                      const ClusterOptions& options) {
  const apps::OracleOptions oracle_options{
      .cache_budget_bytes = options.shard_cache_budget_bytes,
      .bfs_kernel = options.bfs_kernel};
  const ReplicaGroupOptions replica_options = group_options(options);
  std::vector<ReplicaGroup> groups;
  groups.reserve(options.shards);
  for (unsigned s = 0; s < options.shards; ++s) {
    // Csr copies are O(1) views onto the same arrays: every oracle in every
    // group serves the identical immutable structure, only the caches are
    // per-replica.
    groups.emplace_back(spanner, multiplicative, additive, oracle_options,
                        replica_options);
  }
  return groups;
}

}  // namespace

ShardedCluster::ShardedCluster(std::vector<ReplicaGroup> groups,
                               const ClusterOptions& options)
    : partitioner_(parse_partition(options.partition), options.shards,
                   groups.empty() ? 0 : groups.front().replica(0).num_vertices()),
      groups_(std::move(groups)) {
  if (groups_.size() != options.shards) {
    throw std::invalid_argument("ShardedCluster: shard count mismatch");
  }
}

ShardedCluster::ShardedCluster(const graph::Graph& spanner,
                               double multiplicative, double additive,
                               const ClusterOptions& options)
    : ShardedCluster(graph::Csr::from_graph(spanner), multiplicative, additive,
                     options) {}

ShardedCluster::ShardedCluster(graph::Csr spanner, double multiplicative,
                               double additive, const ClusterOptions& options)
    : ShardedCluster(make_groups(spanner, multiplicative, additive, options),
                     options) {}

ShardedCluster ShardedCluster::from_snapshot_files(
    const std::vector<std::string>& paths, const ClusterOptions& options) {
  if (paths.empty()) {
    throw std::runtime_error(
        "ShardedCluster: need at least one snapshot path");
  }
  if (paths.size() != 1 && paths.size() != options.shards) {
    throw std::runtime_error(
        "ShardedCluster: pass one snapshot for every shard (got " +
        std::to_string(paths.size()) + " paths for " +
        std::to_string(options.shards) + " shards) or one to replicate");
  }
  const apps::OracleOptions oracle_options{
      .cache_budget_bytes = options.shard_cache_budget_bytes,
      .bfs_kernel = options.bfs_kernel};

  if (paths.size() == 1) {
    // One snapshot, loaded/mapped once: every oracle views the same CSR
    // arrays (for a v2 snapshot that is the mmap handoff — the file is
    // mapped a single time and the mapping is shared across all shards and
    // replicas).
    const auto loaded =
        apps::SpannerDistanceOracle::load_file(paths.front(), oracle_options);
    return ShardedCluster(loaded.csr(), loaded.multiplicative(),
                          loaded.additive(), options);
  }

  std::vector<apps::SpannerDistanceOracle> loaded;
  loaded.reserve(paths.size());
  for (const auto& path : paths) {
    loaded.push_back(
        apps::SpannerDistanceOracle::load_file(path, oracle_options));
  }
  // Every shard must serve the same structure; %.17g snapshot rendering
  // round-trips doubles exactly, so guarantee agreement is bit-exact, and
  // the edge count catches snapshots from different builds that happen to
  // share the universe and the schedule (a drift guard, not a full
  // edge-set comparison).
  const auto& first = loaded.front();
  for (std::size_t s = 1; s < loaded.size(); ++s) {
    if (loaded[s].num_vertices() != first.num_vertices()) {
      throw std::runtime_error("ShardedCluster: snapshot " + paths[s] +
                               " disagrees on the vertex universe");
    }
    if (loaded[s].spanner_edges() != first.spanner_edges()) {
      throw std::runtime_error("ShardedCluster: snapshot " + paths[s] +
                               " disagrees on the spanner edge count");
    }
    if (loaded[s].multiplicative() != first.multiplicative() ||
        loaded[s].additive() != first.additive()) {
      throw std::runtime_error("ShardedCluster: snapshot " + paths[s] +
                               " disagrees on the guarantee pair");
    }
  }
  // Each shard's group replicates over its own snapshot's CSR (the Csr view
  // keeps the underlying arrays/mapping alive past `loaded`).
  const ReplicaGroupOptions replica_options = group_options(options);
  std::vector<ReplicaGroup> groups;
  groups.reserve(loaded.size());
  for (const auto& oracle : loaded) {
    groups.emplace_back(oracle.csr(), oracle.multiplicative(),
                        oracle.additive(), oracle_options, replica_options);
  }
  return ShardedCluster(std::move(groups), options);
}

std::vector<std::uint32_t> ShardedCluster::serve(
    std::span<const apps::Query> batch, unsigned threads, ClusterStats* stats) {
  const util::Timer timer;
  const Router router(partitioner_);
  const auto plan = router.plan(batch);
  const std::size_t shard_count = groups_.size();

  // Phase 1 (serial): route each shard's sub-batch across its replicas.
  // Planning before execution is what makes least-loaded deterministic —
  // "outstanding depth" is a property of the plan, not of thread timing.
  std::vector<ReplicaPlan> replica_plans(shard_count);
  struct Unit {
    std::size_t shard;
    unsigned replica;
  };
  std::vector<Unit> units;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (plan.queries[s].empty()) continue;
    replica_plans[s] = groups_[s].plan(plan.queries[s]);
    for (unsigned r = 0; r < groups_[s].size(); ++r) {
      if (!replica_plans[s].queries[r].empty()) {
        units.push_back(Unit{s, r});
      }
    }
  }

  // Phase 2 (parallel): each ThreadPool slot owns a contiguous block of
  // (shard, replica) units and touches only those oracles, answer slots,
  // and stats slots, so the results are independent of the slot count.
  // Empty units were skipped above (their cache state stays untouched).
  std::vector<std::vector<std::vector<std::uint32_t>>> replica_answers(
      shard_count);
  std::vector<std::vector<apps::BatchStats>> replica_stats(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    replica_answers[s].resize(groups_[s].size());
    replica_stats[s].resize(groups_[s].size());
  }
  util::ThreadPool::run_sharded(
      units.size(), threads, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto [s, r] = units[i];
          groups_[s].execute(replica_plans[s], r, &replica_answers[s][r],
                             &replica_stats[s][r]);
        }
      });

  // Phase 3 (serial): merge replica answers to sub-batch order, fold the
  // pass into lifetime counters and work metrics, assemble per-call stats.
  std::vector<std::vector<std::uint32_t>> shard_answers(shard_count);
  std::vector<std::vector<ReplicaCounters>> per_replica(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (plan.queries[s].empty()) {
      per_replica[s].assign(groups_[s].size(), ReplicaCounters{});
      continue;
    }
    shard_answers[s] = ReplicaGroup::merge(replica_plans[s], replica_answers[s],
                                           plan.queries[s].size());
    groups_[s].absorb(replica_plans[s], replica_stats[s], &per_replica[s]);
  }

  ++metrics_.serve_calls;
  metrics_.batch_requests.record(batch.size());
  for (const auto& unit : units) {
    const auto depth = replica_plans[unit.shard].queries[unit.replica].size();
    metrics_.replica_depth.record(depth);
    metrics_.queue_depth_high_water.observe(depth);
  }
  metrics_.serve_latency_ms.record(
      static_cast<std::uint64_t>(timer.millis()));

  if (stats != nullptr) {
    *stats = ClusterStats{};
    stats->requests = batch.size();
    stats->shards_used = plan.shards_used();
    stats->per_shard.resize(shard_count);
    stats->per_replica = std::move(per_replica);
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto& c = stats->per_shard[s];
      c.requests = plan.queries[s].size();
      for (const auto& rc : stats->per_replica[s]) {
        c.distinct_sources += rc.distinct_sources;
        c.cache_hits += rc.cache_hits;
        c.bfs_passes += rc.bfs_passes;
        c.evictions += rc.evictions;
        stats->sheds += rc.sheds;
        stats->queue_depth_high_water =
            std::max(stats->queue_depth_high_water, rc.queue_high_water);
      }
      stats->distinct_sources += c.distinct_sources;
      stats->cache_hits += c.cache_hits;
      stats->bfs_passes += c.bfs_passes;
      stats->evictions += c.evictions;
    }
  }
  return Router::merge(plan, shard_answers, batch.size());
}

ClusterStats& ClusterStats::operator+=(const ClusterStats& other) {
  requests += other.requests;
  distinct_sources += other.distinct_sources;
  cache_hits += other.cache_hits;
  bfs_passes += other.bfs_passes;
  evictions += other.evictions;
  sheds += other.sheds;
  queue_depth_high_water =
      std::max(queue_depth_high_water, other.queue_depth_high_water);
  if (per_shard.size() < other.per_shard.size()) {
    per_shard.resize(other.per_shard.size());
  }
  for (std::size_t s = 0; s < other.per_shard.size(); ++s) {
    per_shard[s].requests += other.per_shard[s].requests;
    per_shard[s].distinct_sources += other.per_shard[s].distinct_sources;
    per_shard[s].cache_hits += other.per_shard[s].cache_hits;
    per_shard[s].bfs_passes += other.per_shard[s].bfs_passes;
    per_shard[s].evictions += other.per_shard[s].evictions;
  }
  if (per_replica.size() < other.per_replica.size()) {
    per_replica.resize(other.per_replica.size());
  }
  for (std::size_t s = 0; s < other.per_replica.size(); ++s) {
    if (per_replica[s].size() < other.per_replica[s].size()) {
      per_replica[s].resize(other.per_replica[s].size());
    }
    for (std::size_t r = 0; r < other.per_replica[s].size(); ++r) {
      auto& mine = per_replica[s][r];
      const auto& theirs = other.per_replica[s][r];
      mine.requests += theirs.requests;
      mine.sheds += theirs.sheds;
      mine.distinct_sources += theirs.distinct_sources;
      mine.cache_hits += theirs.cache_hits;
      mine.bfs_passes += theirs.bfs_passes;
      mine.evictions += theirs.evictions;
      mine.queue_high_water =
          std::max(mine.queue_high_water, theirs.queue_high_water);
    }
  }
  shards_used = 0;
  for (const auto& c : per_shard) {
    if (c.requests > 0) ++shards_used;
  }
  return *this;
}

std::uint64_t ClusterStats::digest() const {
  metrics::Digest d;
  d.add(requests);
  d.add(shards_used);
  d.add(distinct_sources);
  d.add(cache_hits);
  d.add(bfs_passes);
  d.add(evictions);
  d.add(sheds);
  d.add(queue_depth_high_water);
  d.add(per_shard.size());
  for (const auto& c : per_shard) {
    d.add(c.requests);
    d.add(c.distinct_sources);
    d.add(c.cache_hits);
    d.add(c.bfs_passes);
    d.add(c.evictions);
  }
  d.add(per_replica.size());
  for (const auto& shard : per_replica) {
    d.add(shard.size());
    for (const auto& rc : shard) {
      d.add(rc.requests);
      d.add(rc.sheds);
      d.add(rc.distinct_sources);
      d.add(rc.cache_hits);
      d.add(rc.bfs_passes);
      d.add(rc.evictions);
      d.add(rc.queue_high_water);
    }
  }
  return d.value();
}

std::uint64_t ClusterMetrics::work_digest() const {
  metrics::Digest d;
  d.add(serve_calls);
  d.add(batch_requests);
  d.add(replica_depth);
  d.add(queue_depth_high_water.value());
  // serve_latency_ms is wall-clock and deliberately excluded.
  return d.value();
}

namespace {

/// Renders [shard][replica] counters as one nested JSON array literal,
/// e.g. "[[3,2],[4,1]]".
template <typename Field>
std::string nested(const std::vector<std::vector<ReplicaCounters>>& per_replica,
                   Field field) {
  std::string out = "[";
  for (std::size_t s = 0; s < per_replica.size(); ++s) {
    if (s) out += ",";
    out += "[";
    for (std::size_t r = 0; r < per_replica[s].size(); ++r) {
      if (r) out += ",";
      out += std::to_string(field(per_replica[s][r]));
    }
    out += "]";
  }
  return out + "]";
}

}  // namespace

util::JsonObject cluster_stats_fields(const ShardedCluster& cluster,
                                      const ClusterStats& stats) {
  util::JsonObject fields{
      {"shards", util::JsonValue::number(
                     static_cast<std::uint64_t>(cluster.num_shards()))},
      {"partition", util::JsonValue::str(cluster.partitioner().name())},
      {"replicas", util::JsonValue::number(
                       static_cast<std::uint64_t>(cluster.num_replicas()))},
      {"route", util::JsonValue::str(route_policy_name(cluster.route_policy()))},
      {"replica_queue_depth",
       util::JsonValue::number(cluster.replica_queue_depth())},
      {"shard_cache_capacity",
       util::JsonValue::number(cluster.shard(0).cache_capacity())},
      {"universe", util::JsonValue::number(
                       static_cast<std::uint64_t>(cluster.universe()))},
      {"requests", util::JsonValue::number(stats.requests)},
      {"shards_used", util::JsonValue::number(stats.shards_used)},
      {"distinct_sources", util::JsonValue::number(stats.distinct_sources)},
      {"cache_hits", util::JsonValue::number(stats.cache_hits)},
      {"bfs_passes", util::JsonValue::number(stats.bfs_passes)},
      {"evictions", util::JsonValue::number(stats.evictions)},
      {"sheds", util::JsonValue::number(stats.sheds)},
      {"queue_high_water",
       util::JsonValue::number(stats.queue_depth_high_water)},
  };
  // Per-shard request/hit/BFS counters as parallel arrays: deterministic,
  // so a stats diff localizes a routing or cache regression to its shard.
  const auto joined = [&](auto field) {
    std::string list = "[";
    for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
      if (s) list += ",";
      list += std::to_string(field(stats.per_shard[s]));
    }
    return list + "]";
  };
  fields.emplace_back(
      "shard_requests",
      util::JsonValue::literal(
          joined([](const ShardCounters& c) { return c.requests; })));
  fields.emplace_back(
      "shard_bfs", util::JsonValue::literal(joined([](const ShardCounters& c) {
        return c.bfs_passes;
      })));
  fields.emplace_back(
      "shard_hits", util::JsonValue::literal(joined([](const ShardCounters& c) {
        return c.cache_hits;
      })));
  // Per-replica counters as nested arrays (one inner array per shard), so a
  // routing-policy regression localizes to its (shard, replica) cell.
  fields.emplace_back(
      "replica_requests",
      util::JsonValue::literal(nested(
          stats.per_replica,
          [](const ReplicaCounters& c) { return c.requests; })));
  fields.emplace_back(
      "replica_sheds",
      util::JsonValue::literal(nested(
          stats.per_replica, [](const ReplicaCounters& c) { return c.sheds; })));
  fields.emplace_back(
      "replica_bfs",
      util::JsonValue::literal(nested(
          stats.per_replica,
          [](const ReplicaCounters& c) { return c.bfs_passes; })));
  fields.emplace_back(
      "replica_hits",
      util::JsonValue::literal(nested(
          stats.per_replica,
          [](const ReplicaCounters& c) { return c.cache_hits; })));
  fields.emplace_back("counter_digest", util::JsonValue::hex64(stats.digest()));
  return fields;
}

util::JsonObject cluster_metrics_fields(const ShardedCluster& cluster) {
  const ClusterMetrics& m = cluster.metrics();
  util::JsonObject fields{
      {"shards", util::JsonValue::number(
                     static_cast<std::uint64_t>(cluster.num_shards()))},
      {"replicas", util::JsonValue::number(
                       static_cast<std::uint64_t>(cluster.num_replicas()))},
      {"route", util::JsonValue::str(route_policy_name(cluster.route_policy()))},
      {"serve_calls", util::JsonValue::number(m.serve_calls)},
      {"queue_depth_high_water",
       util::JsonValue::number(m.queue_depth_high_water.value())},
  };
  metrics::append_histogram_fields(&fields, "batch_requests",
                                   m.batch_requests);
  metrics::append_histogram_fields(&fields, "replica_depth", m.replica_depth);
  // Lifetime per-replica counters, nested as [shard][replica].
  std::vector<std::vector<ReplicaCounters>> lifetime;
  lifetime.reserve(cluster.num_shards());
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    lifetime.push_back(cluster.group(s).counters());
  }
  fields.emplace_back(
      "lifetime_replica_requests",
      util::JsonValue::literal(nested(
          lifetime, [](const ReplicaCounters& c) { return c.requests; })));
  fields.emplace_back(
      "lifetime_replica_sheds",
      util::JsonValue::literal(
          nested(lifetime, [](const ReplicaCounters& c) { return c.sheds; })));
  fields.emplace_back(
      "lifetime_replica_high_water",
      util::JsonValue::literal(nested(lifetime, [](const ReplicaCounters& c) {
        return c.queue_high_water;
      })));
  metrics::Digest digest;
  digest.add(cluster.metrics().work_digest());
  for (const auto& shard : lifetime) {
    digest.add(shard.size());
    for (const auto& rc : shard) {
      digest.add(rc.requests);
      digest.add(rc.sheds);
      digest.add(rc.distinct_sources);
      digest.add(rc.cache_hits);
      digest.add(rc.bfs_passes);
      digest.add(rc.evictions);
      digest.add(rc.queue_high_water);
    }
  }
  fields.emplace_back("metrics_digest", util::JsonValue::hex64(digest.value()));
  // Wall-clock latency last: timing-only, excluded from metrics_digest.
  metrics::append_histogram_fields(&fields, "serve_latency_ms",
                                   m.serve_latency_ms);
  return fields;
}

}  // namespace nas::serve
