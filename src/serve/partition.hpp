// Deterministic vertex partitioning for the sharded serving cluster.
//
// A Partitioner maps every vertex of the serving universe [0, n) to one of
// `shards` shard IDs, as a pure function of (kind, shards, n, vertex) — no
// RNG state, no platform-dependent hashing — so a routing decision made on
// one machine is the routing decision made on every machine, and a request
// log replays onto the same shards forever.  Two strategies:
//
//   * "hash":  shard_of(v) = mix64(v) % shards.  The SplitMix finalizer
//     scatters consecutive IDs, so hot vertex ranges (low IDs in generated
//     graphs, BFS-ordered IDs in real ones) spread across the cluster.
//   * "range": contiguous blocks, the same near-equal split
//     util::ThreadPool::shard uses — shard i owns
//     [n·i/shards, n·(i+1)/shards).  Keeps locality (a crawl of one region
//     hits one shard) at the price of skew under hot ranges.
//
// Queries are routed by their *routing key*: min(u, v).  Both orientations
// of a pair land on the same shard, so that shard's bounded cache sees every
// repetition of the pair — the same endpoint-canonicalization the
// single-oracle planner uses.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace nas::serve {

enum class PartitionKind { kHash, kRange };

/// Parses "hash" | "range"; throws std::invalid_argument otherwise.
[[nodiscard]] PartitionKind parse_partition(const std::string& name);

/// The canonical name ("hash" | "range") for a kind.
[[nodiscard]] std::string partition_name(PartitionKind kind);

class Partitioner {
 public:
  /// A partitioner over vertex universe [0, n) with `shards` shards.
  /// Throws std::invalid_argument when shards == 0 or n == 0.
  Partitioner(PartitionKind kind, unsigned shards, graph::Vertex n);

  [[nodiscard]] unsigned shards() const { return shards_; }
  [[nodiscard]] graph::Vertex universe() const { return n_; }
  [[nodiscard]] PartitionKind kind() const { return kind_; }
  [[nodiscard]] std::string name() const { return partition_name(kind_); }

  /// The owning shard of `v`; requires v < universe().
  [[nodiscard]] unsigned shard_of(graph::Vertex v) const;

  /// The shard serving the pair (u, v): shard_of(min(u, v)).
  [[nodiscard]] unsigned shard_of_pair(graph::Vertex u, graph::Vertex v) const {
    return shard_of(u < v ? u : v);
  }

 private:
  PartitionKind kind_;
  unsigned shards_;
  graph::Vertex n_;
};

}  // namespace nas::serve
