// Request routing for the sharded serving cluster.
//
// `Router::plan` splits one request batch into per-shard sub-batches: every
// request goes to the shard owning its routing key (see
// Partitioner::shard_of_pair), sub-batches preserve arrival order, and the
// plan records each sub-request's slot in the original batch so
// `Router::merge` can scatter the per-shard answer vectors back into request
// order.  A plan is a pure function of (partitioner, batch) — no cache
// state, no thread count — which is the first half of the cluster's
// determinism contract (the second half is the per-shard oracle's own
// answers-never-depend-on-threads guarantee).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "serve/partition.hpp"

namespace nas::serve {

/// One batch split into per-shard sub-batches, arrival order preserved.
struct RoutePlan {
  /// queries[s] is shard s's sub-batch.
  std::vector<std::vector<apps::Query>> queries;
  /// slots[s][i] is the original batch index of queries[s][i].
  std::vector<std::vector<std::size_t>> slots;

  /// Shards with at least one request in this plan.
  [[nodiscard]] std::uint64_t shards_used() const;
};

class Router {
 public:
  explicit Router(const Partitioner& partitioner) : partitioner_(partitioner) {}

  [[nodiscard]] const Partitioner& partitioner() const { return partitioner_; }

  /// Splits `batch` across the partitioner's shards.  Throws
  /// std::invalid_argument when a request names a vertex outside the
  /// universe (no partial plan is returned).
  [[nodiscard]] RoutePlan plan(std::span<const apps::Query> batch) const;

  /// Scatters per-shard answer vectors back into one batch-order vector.
  /// `shard_answers[s]` must parallel `plan.queries[s]`.
  [[nodiscard]] static std::vector<std::uint32_t> merge(
      const RoutePlan& plan,
      const std::vector<std::vector<std::uint32_t>>& shard_answers,
      std::size_t batch_size);

 private:
  const Partitioner& partitioner_;
};

}  // namespace nas::serve
