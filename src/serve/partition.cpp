#include "serve/partition.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace nas::serve {

PartitionKind parse_partition(const std::string& name) {
  if (name == "hash") return PartitionKind::kHash;
  if (name == "range") return PartitionKind::kRange;
  throw std::invalid_argument("unknown partition \"" + name +
                              "\" (expected hash|range)");
}

std::string partition_name(PartitionKind kind) {
  return kind == PartitionKind::kHash ? "hash" : "range";
}

Partitioner::Partitioner(PartitionKind kind, unsigned shards, graph::Vertex n)
    : kind_(kind), shards_(shards), n_(n) {
  if (shards == 0) {
    throw std::invalid_argument("Partitioner: shards must be >= 1");
  }
  if (n == 0) {
    throw std::invalid_argument("Partitioner: empty vertex universe");
  }
}

unsigned Partitioner::shard_of(graph::Vertex v) const {
  if (v >= n_) {
    throw std::invalid_argument("Partitioner: vertex out of range");
  }
  if (kind_ == PartitionKind::kHash) {
    return static_cast<unsigned>(util::mix64(v) % shards_);
  }
  // Inverse of the ThreadPool::shard block split [⌊n·i/s⌋, ⌊n·(i+1)/s⌋):
  // the owner of v is the largest i with ⌊n·i/s⌋ <= v, which is
  // ⌊((v+1)·s − 1)/n⌋.
  return static_cast<unsigned>(
      ((static_cast<std::uint64_t>(v) + 1) * shards_ - 1) / n_);
}

}  // namespace nas::serve
