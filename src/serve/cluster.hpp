// Sharded, replicated distance-oracle serving cluster.
//
// PR 4's serving layer stopped at one DistanceOracle per process — one
// snapshot, one bounded cache, one batch loop.  Memory per node is exactly
// the constraint that motivates partitioned deployments, and the
// linear-size spanner is what makes partitioning viable: every shard can
// afford the whole structure (O(β·n^{1+1/κ}) edges), so only the *cache* —
// the 4·n-bytes-per-source part that actually grows with traffic — needs
// partitioning.  A ShardedCluster is N ReplicaGroups (R shard oracles each)
// sharing one immutable CSR spanner (graph::Csr copies are O(1) views onto
// the same arrays; for a v2 binary snapshot those arrays live in a shared
// file mapping), each oracle with its own byte-budgeted source cache,
// fronted by a Router that assigns every request to the shard owning its
// routing key and a per-shard routing policy that assigns it to a replica
// (see serve/replica.hpp for the policy and admission-control semantics).
//
// Determinism contract (the repo's signature guarantee, extended to the
// replicated cluster): the answer vector returned by `serve` is
// byte-identical
//   * at every `threads` value (execution units are disjoint
//     (shard, replica) oracles),
//   * at every shard count, replica count, and routing policy (each answer
//     is d_H(u,v), which no oracle's cache state can change), and
//   * to a single SpannerDistanceOracle::batch_query over the same batch.
// The served counters (requests, sheds, cache hits, BFS passes, evictions
// per shard and per replica, queue-depth high-water marks, work-metric
// histogram buckets) are pure functions of (partitioner, routing policy,
// batch history) — never of thread scheduling — so tests and CI compare
// counters and digests, not wall-clock, which is meaningless on shared
// runners.  The one exception is the serve-latency histogram in
// ClusterMetrics, which is wall-clock by definition and therefore excluded
// from work_digest().
//
// Thread-safety: one serve() at a time per cluster; the concurrency happens
// inside, across disjoint (shard, replica) oracles.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "metrics/metrics.hpp"
#include "serve/partition.hpp"
#include "serve/replica.hpp"
#include "serve/router.hpp"
#include "util/json.hpp"

namespace nas::serve {

struct ClusterOptions {
  unsigned shards = 1;
  std::string partition = "hash";  ///< "hash" | "range"
  /// Replicas per shard and the policy that routes sub-batch requests
  /// across them ("round-robin" | "least-loaded" | "deterministic").
  unsigned replicas = 1;
  std::string route = "round-robin";
  /// Per-replica admission cap (planned sub-batch depth) at which a replica
  /// sheds to its group; 0 = unbounded.  See ReplicaGroupOptions.
  std::uint64_t replica_queue_depth = 0;
  /// Source-cache budget *per replica* in bytes (each oracle resolves it to
  /// a source count exactly like OracleOptions::cache_budget_bytes).
  std::uint64_t shard_cache_budget_bytes = 64ull << 20;
  /// BFS traversal strategy handed to every shard oracle (see
  /// OracleOptions::bfs_kernel — answers are byte-identical regardless).
  graph::BfsKernel bfs_kernel = graph::BfsKernel::kAuto;
};

/// Deterministic per-shard serving counters (replica counters summed).
struct ShardCounters {
  std::uint64_t requests = 0;         ///< sub-batch requests routed here
  std::uint64_t distinct_sources = 0; ///< deduplicated BFS sources (per replica)
  std::uint64_t cache_hits = 0;
  std::uint64_t bfs_passes = 0;
  std::uint64_t evictions = 0;
};

/// One serve() call's diagnostics: per-shard and per-replica counters plus
/// their totals.  Every field is deterministic (see the file comment).
struct ClusterStats {
  std::uint64_t requests = 0;
  std::uint64_t shards_used = 0;  ///< shards that received >= 1 request
  std::uint64_t distinct_sources = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t bfs_passes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t sheds = 0;  ///< admission-control reroutes, all groups
  std::uint64_t queue_depth_high_water = 0;  ///< max planned replica depth
  std::vector<ShardCounters> per_shard;
  std::vector<std::vector<ReplicaCounters>> per_replica;  ///< [shard][replica]

  /// Accumulates another serve() call's counters (the long-running daemon
  /// sums per-batch stats into lifetime totals).  `shards_used` is
  /// recomputed from the merged per-shard requests, so it stays "shards
  /// that ever received a request", not a sum of per-call counts;
  /// `queue_depth_high_water` merges by max.
  ClusterStats& operator+=(const ClusterStats& other);

  /// Order-sensitive mix64 digest over every counter above, in declaration
  /// order.  Under the deterministic routing policy this is byte-stable
  /// across runs and thread counts, so CI compares one hex64 word per
  /// configuration instead of full dumps.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Lifetime work metrics owned by the cluster, updated serially at the end
/// of every serve() pass.  All fields except `serve_latency_ms` are pure
/// functions of the batch history; `work_digest()` covers exactly those.
struct ClusterMetrics {
  std::uint64_t serve_calls = 0;
  /// Requests per serve() call (pow2 buckets 1..2^16).
  metrics::Histogram batch_requests = metrics::Histogram::pow2(17);
  /// Planned depth per non-empty (shard, replica) execution unit.
  metrics::Histogram replica_depth = metrics::Histogram::pow2(17);
  metrics::HighWater queue_depth_high_water;
  /// Wall-clock serve() latency in ms (pow2 buckets 1..2^15) — timing-only:
  /// exported for humans, excluded from work_digest() and every CI gate.
  metrics::Histogram serve_latency_ms = metrics::Histogram::pow2(16);

  [[nodiscard]] std::uint64_t work_digest() const;
};

class ShardedCluster {
 public:
  /// Partitions serving of `spanner` (guarantee d_H <= multiplicative·d_G +
  /// additive) across options.shards replica groups of options.replicas
  /// oracles each.  The adjacency is converted to CSR once and shared by
  /// every oracle; per-oracle marginal memory is just its cache budget.
  ShardedCluster(const graph::Graph& spanner, double multiplicative,
                 double additive, const ClusterOptions& options = {});

  /// Same, from a CSR view (shared as-is, no conversion or copy).
  ShardedCluster(graph::Csr spanner, double multiplicative, double additive,
                 const ClusterOptions& options = {});

  /// Warm-starts every shard from one NAS-ORACLE snapshot — loaded/mapped
  /// ONCE, with all oracles serving the same structure (a v2 snapshot hands
  /// each one a view into one shared mmap) — or from per-shard snapshot
  /// paths: `paths` must then have exactly options.shards entries, and
  /// every snapshot must agree on the vertex universe and the guarantee
  /// pair (std::runtime_error names the first disagreeing shard otherwise).
  /// Formats are auto-detected per file (v1 text or v2 binary).
  [[nodiscard]] static ShardedCluster from_snapshot_files(
      const std::vector<std::string>& paths, const ClusterOptions& options = {});

  /// Routes `batch` to its shards, routes each shard's sub-batch across its
  /// replicas (serially, so routing is deterministic), executes the
  /// non-empty (shard, replica) units across `threads` util::ThreadPool
  /// slots (0 = hardware concurrency; each slot serves a contiguous block
  /// of units, each oracle's batch_query runs serially), and merges the
  /// answers back into batch order.  See the file comment for the
  /// byte-identity contract.  `stats`, when non-null, receives the
  /// deterministic serving counters.
  [[nodiscard]] std::vector<std::uint32_t> serve(
      std::span<const apps::Query> batch, unsigned threads = 1,
      ClusterStats* stats = nullptr);

  // --- introspection --------------------------------------------------------

  [[nodiscard]] unsigned num_shards() const {
    return static_cast<unsigned>(groups_.size());
  }
  [[nodiscard]] unsigned num_replicas() const {
    return groups_.front().size();
  }
  [[nodiscard]] RoutePolicy route_policy() const {
    return groups_.front().policy();
  }
  [[nodiscard]] std::uint64_t replica_queue_depth() const {
    return groups_.front().queue_depth();
  }
  [[nodiscard]] const Partitioner& partitioner() const { return partitioner_; }
  [[nodiscard]] const ReplicaGroup& group(unsigned s) const {
    return groups_.at(s);
  }
  /// Shard s's first replica (the representative oracle for capacity and
  /// guarantee introspection — all replicas are configured identically).
  [[nodiscard]] const apps::SpannerDistanceOracle& shard(unsigned s) const {
    return groups_.at(s).replica(0);
  }
  [[nodiscard]] double multiplicative() const {
    return shard(0).multiplicative();
  }
  [[nodiscard]] double additive() const { return shard(0).additive(); }
  [[nodiscard]] graph::Vertex universe() const {
    return partitioner_.universe();
  }
  /// Lifetime work metrics.  Read from the thread that calls serve() (or
  /// after it has quiesced): serve() updates these in place.
  [[nodiscard]] const ClusterMetrics& metrics() const { return metrics_; }

 private:
  ShardedCluster(std::vector<ReplicaGroup> groups,
                 const ClusterOptions& options);

  Partitioner partitioner_;
  std::vector<ReplicaGroup> groups_;
  ClusterMetrics metrics_;
};

/// The shared stats-JSON schema for cluster serving: configuration (shards,
/// partition, replicas, route, replica_queue_depth, shard_cache_capacity,
/// universe) + the counters in `stats` + per-shard parallel arrays
/// (shard_requests/shard_bfs/shard_hits) + per-replica nested arrays
/// (replica_requests/replica_sheds/replica_bfs/replica_hits, one inner
/// array per shard) + `counter_digest` (hex64 of stats.digest()).
/// nas_serve appends its one-shot extras (digest, timings) and nas_served
/// appends its connection counters; both share this core so the two tools
/// can never drift on field semantics.
[[nodiscard]] util::JsonObject cluster_stats_fields(
    const ShardedCluster& cluster, const ClusterStats& stats);

/// The METRICS-verb schema: serve_calls, the work histograms
/// (batch_requests/replica_depth as `<name>_le`/`<name>_count`/... fields),
/// queue_depth_high_water, lifetime per-replica counters (nested arrays),
/// `metrics_digest` (hex64 of deterministic state only), and the
/// timing-only serve_latency_ms histogram last.  Must be called from the
/// thread that owns serve() (the net bridge worker routes METRICS requests
/// there for exactly this reason).
[[nodiscard]] util::JsonObject cluster_metrics_fields(
    const ShardedCluster& cluster);

}  // namespace nas::serve
