// Sharded distance-oracle serving cluster.
//
// PR 4's serving layer stopped at one DistanceOracle per process — one
// snapshot, one bounded cache, one batch loop.  Memory per node is exactly
// the constraint that motivates partitioned deployments, and the
// linear-size spanner is what makes partitioning viable: every shard can
// afford the whole structure (O(β·n^{1+1/κ}) edges), so only the *cache* —
// the 4·n-bytes-per-source part that actually grows with traffic — needs
// partitioning.  A ShardedCluster is N shard oracles sharing one immutable
// CSR spanner (graph::Csr copies are O(1) views onto the same arrays; for a
// v2 binary snapshot those arrays live in a shared file mapping), each with
// its own byte-budgeted source cache, fronted by a Router that assigns
// every request to the shard owning its routing key.
//
// Determinism contract (the repo's signature guarantee, extended to the
// cluster): the answer vector returned by `serve` is byte-identical
//   * at every `threads` value (shards execute on disjoint oracles),
//   * at every shard count (each answer is d_H(u,v), which no oracle's
//     cache state can change), and
//   * to a single SpannerDistanceOracle::batch_query over the same batch.
// The served counters (requests, cache hits, BFS passes, evictions per
// shard) are pure functions of (partitioner, batch history) — never of
// thread scheduling — so tests and CI compare counters and digests, not
// wall-clock, which is meaningless on shared runners.
//
// Thread-safety: one serve() at a time per cluster; the concurrency happens
// inside, across disjoint shard oracles.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "serve/partition.hpp"
#include "serve/router.hpp"
#include "util/json.hpp"

namespace nas::serve {

struct ClusterOptions {
  unsigned shards = 1;
  std::string partition = "hash";  ///< "hash" | "range"
  /// Source-cache budget *per shard* in bytes (each shard resolves it to a
  /// source count exactly like OracleOptions::cache_budget_bytes).
  std::uint64_t shard_cache_budget_bytes = 64ull << 20;
  /// BFS traversal strategy handed to every shard oracle (see
  /// OracleOptions::bfs_kernel — answers are byte-identical regardless).
  graph::BfsKernel bfs_kernel = graph::BfsKernel::kAuto;
};

/// Deterministic per-shard serving counters.
struct ShardCounters {
  std::uint64_t requests = 0;         ///< sub-batch requests routed here
  std::uint64_t distinct_sources = 0; ///< deduplicated BFS sources
  std::uint64_t cache_hits = 0;
  std::uint64_t bfs_passes = 0;
  std::uint64_t evictions = 0;
};

/// One serve() call's diagnostics: per-shard counters plus their totals.
struct ClusterStats {
  std::uint64_t requests = 0;
  std::uint64_t shards_used = 0;  ///< shards that received >= 1 request
  std::uint64_t distinct_sources = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t bfs_passes = 0;
  std::uint64_t evictions = 0;
  std::vector<ShardCounters> per_shard;

  /// Accumulates another serve() call's counters (the long-running daemon
  /// sums per-batch stats into lifetime totals).  `shards_used` is
  /// recomputed from the merged per-shard requests, so it stays "shards
  /// that ever received a request", not a sum of per-call counts.
  ClusterStats& operator+=(const ClusterStats& other);
};

class ShardedCluster {
 public:
  /// Partitions serving of `spanner` (guarantee d_H <= multiplicative·d_G +
  /// additive) across options.shards oracles.  The adjacency is converted
  /// to CSR once and shared by every shard; per-shard marginal memory is
  /// just the shard's cache budget.
  ShardedCluster(const graph::Graph& spanner, double multiplicative,
                 double additive, const ClusterOptions& options = {});

  /// Same, from a CSR view (shared as-is, no conversion or copy).
  ShardedCluster(graph::Csr spanner, double multiplicative, double additive,
                 const ClusterOptions& options = {});

  /// Warm-starts every shard from one NAS-ORACLE snapshot — loaded/mapped
  /// ONCE, with all shards serving the same structure (a v2 snapshot hands
  /// each shard a view into one shared mmap) — or from per-shard snapshot
  /// paths: `paths` must then have exactly options.shards entries, and
  /// every snapshot must agree on the vertex universe and the guarantee
  /// pair (std::runtime_error names the first disagreeing shard otherwise).
  /// Formats are auto-detected per file (v1 text or v2 binary).
  [[nodiscard]] static ShardedCluster from_snapshot_files(
      const std::vector<std::string>& paths, const ClusterOptions& options = {});

  /// Routes `batch` to its shards, executes the sub-batches across `threads`
  /// util::ThreadPool slots (0 = hardware concurrency; each slot serves a
  /// contiguous block of shards, each shard's batch_query runs serially),
  /// and merges the answers back into batch order.  See the file comment
  /// for the byte-identity contract.  `stats`, when non-null, receives the
  /// deterministic serving counters.
  [[nodiscard]] std::vector<std::uint32_t> serve(
      std::span<const apps::Query> batch, unsigned threads = 1,
      ClusterStats* stats = nullptr);

  // --- introspection --------------------------------------------------------

  [[nodiscard]] unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] const Partitioner& partitioner() const { return partitioner_; }
  [[nodiscard]] const apps::SpannerDistanceOracle& shard(unsigned s) const {
    return shards_.at(s);
  }
  [[nodiscard]] double multiplicative() const {
    return shards_.front().multiplicative();
  }
  [[nodiscard]] double additive() const { return shards_.front().additive(); }
  [[nodiscard]] graph::Vertex universe() const {
    return partitioner_.universe();
  }

 private:
  ShardedCluster(std::vector<apps::SpannerDistanceOracle> shards,
                 const ClusterOptions& options);

  Partitioner partitioner_;
  std::vector<apps::SpannerDistanceOracle> shards_;
};

/// The shared stats-JSON schema for cluster serving: configuration
/// (shards, partition, shard_cache_capacity, universe) + the counters in
/// `stats` + per-shard parallel arrays (shard_requests/shard_bfs/
/// shard_hits).  nas_serve appends its one-shot extras (digest, timings)
/// and nas_served appends its connection counters; both share this core so
/// the two tools can never drift on field semantics.
[[nodiscard]] util::JsonObject cluster_stats_fields(
    const ShardedCluster& cluster, const ClusterStats& stats);

}  // namespace nas::serve
