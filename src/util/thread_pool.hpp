// Reusable fixed-size worker pool.
//
// One pool owns `size() - 1` parked threads; `run(count, job)` executes
// job(0) .. job(count-1) concurrently — slot 0 on the calling thread, the
// rest one-per-worker — and blocks until every slot returns.  Slots are
// genuinely concurrent (not queued), so jobs may synchronize with each other
// (the multi-threaded CONGEST engine runs its barrier-stepped worker loops
// through one of these).  The pool is reusable across run() calls without
// respawning threads, which is what makes per-round and per-verification
// dispatch cheap.
//
// Exactly one thread may call run() at a time; the first exception thrown by
// any slot is rethrown on the calling thread after all slots finish.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace nas::util {

class ThreadPool {
 public:
  /// A pool with `threads` slots; 0 resolves to hardware_concurrency()
  /// (at least 1).  Spawns `threads - 1` worker threads.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total slots (worker threads + the caller of run()).
  [[nodiscard]] unsigned size() const { return threads_; }

  /// The one thread-count policy shared by every sharded consumer (stretch
  /// verifier, APSP, the CONGEST ParallelEngine): 0 requests hardware
  /// concurrency, and the result is clamped to [1, max(items, 1)] — no
  /// point in more workers than work items.
  [[nodiscard]] static unsigned resolve(unsigned requested, std::size_t items);

  /// Runs job(i) for i in [0, count) concurrently and returns when all are
  /// done.  Requires count <= size().  Rethrows the first slot exception.
  void run(unsigned count, const std::function<void(unsigned)>& job);

  /// One-shot sharded dispatch, the pattern every sharded consumer shares:
  /// resolves `threads` against `total` items (see resolve), splits
  /// [0, total) into that many contiguous blocks (see shard), and runs
  /// fn(begin, end) for each block on a transient pool — on the calling
  /// thread alone when one shard suffices.  Blocks until every shard
  /// returns; rethrows the first shard exception.
  static void run_sharded(std::size_t total, unsigned threads,
                          const std::function<void(std::size_t, std::size_t)>& fn);

  /// Contiguous shard `index` of [0, total) split into `shards` near-equal
  /// blocks: returns [begin, end).  Deterministic; shards cover the range
  /// exactly, in order, and may be empty when total < shards.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> shard(
      std::size_t total, unsigned shards, unsigned index) {
    const auto t = static_cast<std::uint64_t>(total);
    return {static_cast<std::size_t>(t * index / shards),
            static_cast<std::size_t>(t * (index + 1) / shards)};
  }

 private:
  void worker_main(unsigned slot);
  void run_slot(unsigned slot) noexcept;

  unsigned threads_;
  std::vector<std::thread> workers_;

  // Dispatch state, guarded by m_: a run() bumps generation_ and publishes
  // the job; workers execute their slot and count themselves done.
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  unsigned active_count_ = 0;  // slots participating in the current run
  unsigned done_ = 0;          // workers finished with the current run
  const std::function<void(unsigned)>* job_ = nullptr;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace nas::util
