#include "util/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define NAS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace nas::util {

namespace {

/// `saved_errno` must be captured immediately after the failing call —
/// cleanup such as ::close runs before the throw and may overwrite errno,
/// which used to turn "No space left on device" into "Success" here.
[[noreturn]] void fail(const std::string& path, const char* what,
                       int saved_errno) {
  throw std::runtime_error("MappedFile: cannot " + std::string(what) + " " +
                           path + ": " + std::strerror(saved_errno));
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::map(const std::string& path) {
  std::shared_ptr<MappedFile> file(new MappedFile());
#if NAS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "open", errno);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved_errno = errno;
    const int rc = ::close(fd);
    static_cast<void>(rc);
    fail(path, "stat", saved_errno);
  }
  file->size_ = static_cast<std::size_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved_errno = errno;
      const int rc = ::close(fd);
      static_cast<void>(rc);
      fail(path, "mmap", saved_errno);
    }
    file->data_ = static_cast<const std::byte*>(addr);
    file->mmapped_ = true;
  }
  const int rc = ::close(fd);  // the mapping survives the descriptor
  static_cast<void>(rc);
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("MappedFile: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  if (size > 0) {
    auto* buffer = new std::byte[size];
    if (!in.read(reinterpret_cast<char*>(buffer), size)) {
      delete[] buffer;
      throw std::runtime_error("MappedFile: short read from " + path);
    }
    file->data_ = buffer;
    file->size_ = size;
  }
#endif
  return file;
}

MappedFile::~MappedFile() {
#if NAS_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#else
  delete[] data_;
#endif
}

}  // namespace nas::util
