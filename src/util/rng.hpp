// Deterministic pseudo-random number generation.
//
// The paper's algorithm is deterministic; randomness appears only in
// (a) workload generation and (b) the randomized baselines (EN17,
// Baswana-Sen).  Both must be reproducible bit-for-bit across runs and
// platforms, so we avoid std::mt19937 seeding subtleties and ship a
// self-contained SplitMix64/xoshiro256** pair with explicit semantics.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nas::util {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream.  Used for
/// seeding and for cheap per-key hashing (hash(id) -> pseudo-random word).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing function — deterministic "random" value for a key.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256**: general-purpose engine for workload generation and the
/// randomized baselines.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method: unbiased, no division in the
    // common path.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nas::util
