// Collision-free scratch-file creation.
//
// A "unique" temp name built from pid + counter is only unique until a pid
// is recycled, a stale file survives a crash, or two hosts share one
// network temp dir — then two writers open the same path and the later one
// silently corrupts the earlier one's bytes.  The fix is to make the
// *kernel* arbitrate: each candidate is created with O_CREAT|O_EXCL, which
// atomically either mints a brand-new file or fails with EEXIST, in which
// case the next candidate is tried.  The returned path therefore names a
// file this call created and nothing else is writing.
//
// Callers own the file and remove it when done (see run::ScopedRemove).
#pragma once

#include <string>

namespace nas::util {

/// Creates a fresh file `<prefix><pid>_<counter><suffix>` in `dir` with
/// exclusive-create semantics and returns its path.  Candidates that
/// already exist are skipped; any other creation failure throws
/// std::runtime_error naming the path and the errno captured at the failing
/// call.
[[nodiscard]] std::string create_temp_file_in(const std::string& dir,
                                              const std::string& prefix,
                                              const std::string& suffix);

/// Same, in std::filesystem::temp_directory_path().
[[nodiscard]] std::string create_temp_file(const std::string& prefix,
                                           const std::string& suffix);

}  // namespace nas::util
