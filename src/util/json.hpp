// Minimal JSON emission helpers for the machine-readable bench artifacts.
//
// The repo's JSON needs are write-only and flat (arrays of one-level
// objects), so this is not a JSON library: `json_escape` is the one
// authoritative string escaper every row writer must go through (strings
// used to be interpolated raw, so a family named `ba"x` would corrupt the
// artifact), and `JsonValue` tags a pre-rendered cell as string vs literal
// so object writers know which cells to quote.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace nas::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): backslash, double quote, and control characters, the latter as
/// \uNNNN (with the common \n \t \r \b \f short forms).
[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One pre-rendered JSON scalar: either a string (quoted + escaped on
/// emission) or a literal rendered verbatim (numbers, true/false, null).
struct JsonValue {
  enum class Kind { kString, kLiteral };
  Kind kind = Kind::kLiteral;
  std::string text = "null";

  [[nodiscard]] static JsonValue str(std::string s) {
    return {Kind::kString, std::move(s)};
  }
  [[nodiscard]] static JsonValue literal(std::string s) {
    return {Kind::kLiteral, std::move(s)};
  }
  [[nodiscard]] static JsonValue number(std::int64_t v) {
    return literal(std::to_string(v));
  }
  [[nodiscard]] static JsonValue number(std::uint64_t v) {
    return literal(std::to_string(v));
  }
  [[nodiscard]] static JsonValue boolean(bool v) {
    return literal(v ? "true" : "false");
  }
  /// A 64-bit value as a fixed-width lowercase hex *string*: bare JSON
  /// numbers above 2^53 are silently rounded by double-based consumers
  /// (jq, JavaScript), which would defeat digest comparisons.
  [[nodiscard]] static JsonValue hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return str(buf);
  }

  /// Renders the value as it appears inside a JSON document.
  [[nodiscard]] std::string render() const {
    if (kind != Kind::kString) return text;
    std::string out = "\"";
    out += json_escape(text);
    out += "\"";
    return out;
  }
};

/// An ordered flat JSON object, rendered as one line.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

[[nodiscard]] inline std::string render_json_object(const JsonObject& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    out += json_escape(fields[i].first);
    out += "\": ";
    out += fields[i].second.render();
  }
  out += "}";
  return out;
}

}  // namespace nas::util
