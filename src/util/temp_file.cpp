#include "util/temp_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define NAS_HAVE_O_EXCL 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace nas::util {

std::string create_temp_file_in(const std::string& dir,
                                const std::string& prefix,
                                const std::string& suffix) {
  // One process-wide counter across all prefixes: simpler, and uniqueness
  // never depends on it anyway — the exclusive create is the arbiter.
  static std::atomic<std::uint64_t> counter{0};
#if NAS_HAVE_O_EXCL
  const auto pid = static_cast<std::uint64_t>(::getpid());
#else
  const std::uint64_t pid = 0;
#endif
  // 1000 tries means 1000 occupied candidates in a row; at that point the
  // directory is wedged (a crashed sweep, a full disk masquerading via
  // EEXIST never happens) and failing loudly beats spinning.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto name = prefix + std::to_string(pid) + "_" +
                      std::to_string(counter.fetch_add(1)) + suffix;
    const std::string path = (std::filesystem::path(dir) / name).string();
#if NAS_HAVE_O_EXCL
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0600);
    if (fd >= 0) {
      const int rc = ::close(fd);
      static_cast<void>(rc);
      return path;
    }
    const int saved_errno = errno;
    if (saved_errno == EEXIST) continue;  // taken (pid reuse, stale file)
    throw std::runtime_error("temp_file: cannot create " + path + ": " +
                             std::strerror(saved_errno));
#else
    // Non-POSIX fallback: exists-then-create is not atomic, but the counter
    // still separates threads within this process.
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) continue;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      throw std::runtime_error("temp_file: cannot create " + path);
    }
    return path;
#endif
  }
  throw std::runtime_error(
      "temp_file: exhausted 1000 candidate names under " + dir);
}

std::string create_temp_file(const std::string& prefix,
                             const std::string& suffix) {
  return create_temp_file_in(std::filesystem::temp_directory_path().string(),
                             prefix, suffix);
}

}  // namespace nas::util
