// Read-only memory-mapped files.
//
// The v2 binary snapshot path serves CSR arrays straight out of the page
// cache: a MappedFile pins one read-only mapping of the file, and every
// structure that points into it (graph::Csr views, the oracles of a whole
// serving cluster) keeps the mapping alive through a shared_ptr.  On POSIX
// this is a real mmap — warmup is O(1) page-table work plus whatever the
// kernel faults in on demand; elsewhere the file is read into one heap
// buffer with the same interface, so callers never branch on platform.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace nas::util {

class MappedFile {
 public:
  /// Maps `path` read-only.  Throws std::runtime_error naming the path on
  /// open/stat/map failure.  An empty file maps to {nullptr, 0}.
  [[nodiscard]] static std::shared_ptr<const MappedFile> map(
      const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;  ///< true: munmap on destroy; false: delete[] buffer
};

}  // namespace nas::util
