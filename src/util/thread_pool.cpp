#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::util {

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned slot = 1; slot < threads_; ++slot) {
    workers_.emplace_back([this, slot] { worker_main(slot); });
  }
}

void ThreadPool::run_sharded(
    std::size_t total, unsigned threads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const unsigned shards = resolve(threads, total);
  ThreadPool pool(shards);  // shards == 1 spawns nothing: fn runs inline
  pool.run(shards, [&](unsigned w) {
    const auto [begin, end] = shard(total, shards, w);
    fn(begin, end);
  });
}

unsigned ThreadPool::resolve(unsigned requested, std::size_t items) {
  const unsigned threads =
      requested == 0 ? std::max(1u, std::thread::hardware_concurrency())
                     : requested;
  return static_cast<unsigned>(std::min<std::uint64_t>(
      threads, std::max<std::size_t>(items, 1)));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_slot(unsigned slot) noexcept {
  try {
    (*job_)(slot);
  } catch (...) {
    std::lock_guard<std::mutex> lock(m_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_main(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    unsigned active = 0;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      active = active_count_;
    }
    if (slot < active) {
      run_slot(slot);
      std::lock_guard<std::mutex> lock(m_);
      if (++done_ == active - 1) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run(unsigned count, const std::function<void(unsigned)>& job) {
  if (count == 0) return;
  if (count > threads_) {
    throw std::invalid_argument("ThreadPool::run: count exceeds pool size");
  }
  {
    std::lock_guard<std::mutex> lock(m_);
    job_ = &job;
    active_count_ = count;
    done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  if (count > 1) cv_start_.notify_all();
  run_slot(0);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return done_ == active_count_ - 1; });
    err = std::exchange(first_error_, nullptr);
    job_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace nas::util
