// ASCII table rendering for the benchmark harness.
//
// Every bench binary prints paper-style rows; this widget keeps them aligned
// and consistent.  Cells are strings; numeric helpers format with fixed
// precision so columns of measurements line up.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nas::util {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders with box-drawing rules to `out`.
  void print(std::ostream& out) const;

  /// Renders to a string (convenience for logging/tests).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  // Formatting helpers used pervasively by the bench binaries.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nas::util
