// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value`.  Unknown flags raise, so typos
// in experiment scripts fail loudly instead of silently running the default
// configuration.  Every accessor optionally registers a one-line description;
// `handle_help()` prints the registered flags (with their defaults) when the
// user passed `--help`, before any real work runs:
//
//   util::Flags flags(argc, argv);
//   const auto n = flags.integer("n", 1024, "vertex count");
//   ...
//   if (flags.handle_help("my_bench — what it measures")) return 0;
//   flags.reject_unknown();
#pragma once

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace nas::util {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument: " + arg);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // bare boolean flag
      }
    }
    help_ = values_.count("help") > 0;
  }

  [[nodiscard]] std::string str(const std::string& name,
                                const std::string& fallback,
                                const std::string& desc = "") const {
    describe(name, fallback.empty() ? "\"\"" : fallback, desc);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t integer(const std::string& name,
                                     std::int64_t fallback,
                                     const std::string& desc = "") const {
    describe(name, std::to_string(fallback), desc);
    const auto it = values_.find(name);
    if (it == values_.end() || help_) return fallback;
    return parse_integer(name, it->second);
  }

  [[nodiscard]] double real(const std::string& name, double fallback,
                            const std::string& desc = "") const {
    describe(name, std::to_string(fallback), desc);
    const auto it = values_.find(name);
    if (it == values_.end() || help_) return fallback;
    return parse_real(name, it->second);
  }

  [[nodiscard]] bool boolean(const std::string& name, bool fallback,
                             const std::string& desc = "") const {
    describe(name, fallback ? "true" : "false", desc);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return parse_boolean(it->second);
  }

  /// The one truthy-token list, shared with scenario-file values.
  [[nodiscard]] static bool parse_boolean(const std::string& text) {
    return text == "true" || text == "1" || text == "yes";
  }

  /// Strict parse helpers shared with list-valued flags: the whole string
  /// must be consumed, and failures name the flag and the offending value
  /// instead of surfacing a bare std::invalid_argument("stoll").
  [[nodiscard]] static std::int64_t parse_integer(const std::string& name,
                                                  const std::string& text) {
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
      v = std::stoll(text, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != text.size() || text.empty()) {
      throw std::invalid_argument("flag --" + name +
                                  " expects an integer, got \"" + text + "\"");
    }
    return v;
  }

  [[nodiscard]] static double parse_real(const std::string& name,
                                         const std::string& text) {
    std::size_t pos = 0;
    double v = 0;
    try {
      v = std::stod(text, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != text.size() || text.empty()) {
      throw std::invalid_argument("flag --" + name +
                                  " expects a number, got \"" + text + "\"");
    }
    return v;
  }

  /// True iff the user passed --name (with or without a value).
  [[nodiscard]] bool provided(const std::string& name) const {
    return values_.count(name) > 0;
  }

  [[nodiscard]] bool help_requested() const { return help_; }

  /// The registered flags (in first-read order) as an aligned usage listing.
  [[nodiscard]] std::string help_text(const std::string& about) const {
    std::string out = about.empty() ? "" : about + "\n";
    out += "flags:\n";
    std::size_t width = std::string("--help").size();
    for (const auto& d : descriptions_) {
      width = std::max(width, d.name.size() + d.fallback.size() + 5);
    }
    for (const auto& d : descriptions_) {
      std::string head = "--" + d.name + " [" + d.fallback + "]";
      head.resize(std::max(width, head.size()), ' ');
      out += "  " + head + "  " + d.desc + "\n";
    }
    std::string head = "--help";
    head.resize(width, ' ');
    out += "  " + head + "  print this listing and exit\n";
    return out;
  }

  /// Call after all flags were read: prints the usage listing and returns
  /// true iff the user passed --help (the binary should then exit 0).
  [[nodiscard]] bool handle_help(const std::string& about,
                                 std::ostream& out = std::cout) const {
    if (!help_) return false;
    out << help_text(about);
    return true;
  }

  /// Call after all flags were read; throws on flags the binary never asked
  /// about (catches typos like --kapa).
  void reject_unknown() const {
    for (const auto& [name, value] : values_) {
      if (name != "help" && !known_.count(name)) {
        throw std::invalid_argument("unknown flag --" + name + "=" + value);
      }
    }
  }

 private:
  struct Description {
    std::string name, fallback, desc;
  };

  void describe(const std::string& name, const std::string& fallback,
                const std::string& desc) const {
    if (known_.insert(name).second) {
      descriptions_.push_back({name, fallback, desc});
    }
  }

  std::map<std::string, std::string> values_;
  bool help_ = false;
  mutable std::set<std::string> known_;
  mutable std::vector<Description> descriptions_;
};

}  // namespace nas::util
