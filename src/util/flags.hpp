// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value`.  Unknown flags raise, so typos
// in experiment scripts fail loudly instead of silently running the default
// configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

namespace nas::util {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument: " + arg);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // bare boolean flag
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& name,
                                const std::string& fallback) const {
    touch(name);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::int64_t integer(const std::string& name,
                                     std::int64_t fallback) const {
    touch(name);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

  [[nodiscard]] double real(const std::string& name, double fallback) const {
    touch(name);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] bool boolean(const std::string& name, bool fallback) const {
    touch(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  /// Call after all flags were read; throws on flags the binary never asked
  /// about (catches typos like --kapa).
  void reject_unknown() const {
    for (const auto& [name, value] : values_) {
      if (!known_.count(name)) {
        throw std::invalid_argument("unknown flag --" + name + "=" + value);
      }
    }
  }

 private:
  void touch(const std::string& name) const { known_.insert(name); }

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> known_;
};

}  // namespace nas::util
