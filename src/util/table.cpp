#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace nas::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

void print_rule(std::ostream& out, const std::vector<std::size_t>& widths) {
  out << '+';
  for (std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) out << '-';
    out << '+';
  }
  out << '\n';
}

void print_cells(std::ostream& out, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string{};
    out << ' ' << cell;
    for (std::size_t i = cell.size(); i < widths[c]; ++i) out << ' ';
    out << " |";
  }
  out << '\n';
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  print_rule(out, widths);
  print_cells(out, headers_, widths);
  print_rule(out, widths);
  for (const auto& row : rows_) print_cells(out, row, widths);
  print_rule(out, widths);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::sci(double v, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace nas::util
