// Minimal CSV writer for machine-readable bench output (`--csv <file>`).
#pragma once

#include <fstream>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace nas::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  Pass an empty path
  /// to create a disabled writer (all writes become no-ops), which lets bench
  /// code call `row(...)` unconditionally.
  CsvWriter(const std::string& path, const std::vector<std::string>& header) {
    if (path.empty()) return;
    out_.open(path);
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    row(header);
  }

  [[nodiscard]] bool enabled() const { return out_.is_open(); }

  void row(const std::vector<std::string>& cells) {
    if (!out_.is_open()) return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << escape(cells[i]);
    }
    out_ << '\n';
  }

  /// RFC-4180 cell escaping (quote iff the cell contains , " or newline);
  /// shared with the unified scenario-runner CSV sink.
  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  }

 private:
  std::ofstream out_;
};

}  // namespace nas::util
