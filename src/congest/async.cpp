#include "congest/async.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace nas::congest {

using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

AsyncEngine::AsyncEngine(const Graph& g, Options options)
    : g_(&g), options_(options), dir_index_(g) {
  if (options_.max_delay == 0) {
    throw std::invalid_argument("AsyncEngine: max_delay must be >= 1");
  }
  last_delivery_.assign(dir_index_.size(), 0);
}

std::uint64_t AsyncEngine::delay(Vertex from, Vertex to) {
  // Deterministic per (edge, sequence) delay: adversarial-ish jitter that
  // is reproducible for a fixed seed.
  const std::uint64_t key = util::mix64(
      options_.seed ^ ((static_cast<std::uint64_t>(from) << 32) | to) ^
      (seq_ * 0x9e3779b97f4a7c15ULL));
  return 1 + key % options_.max_delay;
}

void AsyncEngine::enqueue(Vertex from, Vertex to, Message m) {
  const std::size_t slot = dir_index_.slot(*g_, from, to, "AsyncEngine");
  m.src = from;
  std::uint64_t when = now_ + delay(from, to);
  when = std::max(when, last_delivery_[slot] + 1);  // FIFO links
  last_delivery_[slot] = when;
  queue_.push(Event{when, seq_++, to, m});
}

void AsyncEngine::Port::send(Vertex to, Message m) {
  engine_->enqueue(from_, to, m);
}

void AsyncEngine::inject(Vertex from, Vertex to, Message m) {
  enqueue(from, to, m);
}

std::uint64_t AsyncEngine::run(const Handler& handler, std::uint64_t max_events) {
  Port port;
  port.engine_ = this;
  while (!queue_.empty()) {
    if (delivered_ >= max_events) {
      throw std::runtime_error("AsyncEngine: event budget exhausted");
    }
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++delivered_;
    port.from_ = ev.to;
    handler(ev.to, now_, ev.msg, port);
  }
  return now_;
}

// ---------------------------------------------------------------------------
// Synchronizer α.
// ---------------------------------------------------------------------------

namespace {

// Wire format: the program's (a, b) ride along; `c` carries (type, round).
enum MsgType : std::uint64_t { kPayload = 1, kAck = 2, kSafe = 3 };

std::uint64_t pack(MsgType type, std::uint64_t round) {
  return (static_cast<std::uint64_t>(type) << 48) | round;
}
MsgType type_of(const Message& m) { return static_cast<MsgType>(m.c >> 48); }
std::uint64_t round_of(const Message& m) {
  return m.c & ((std::uint64_t{1} << 48) - 1);
}

struct NodeState {
  std::uint64_t round = 0;    // round currently being executed
  bool is_safe = false;       // safe for `round` (all payloads acked)
  std::uint64_t pending_acks = 0;
  std::map<std::uint64_t, std::vector<Message>> inbox;     // per future round
  std::map<std::uint64_t, std::uint32_t> safe_count;       // SAFE(r) received
  std::vector<std::uint8_t> sent_this_round;               // per-edge guard
};

}  // namespace

AlphaResult run_alpha_synchronized(const Graph& g, std::uint64_t rounds,
                                   const Engine::NodeProgram& program,
                                   AsyncEngine::Options options) {
  AlphaResult result;
  result.rounds = rounds;
  const Vertex n = g.num_vertices();
  if (rounds == 0 || n == 0) return result;

  AsyncEngine engine(g, options);
  std::vector<NodeState> state(n);
  for (Vertex v = 0; v < n; ++v) {
    state[v].sent_this_round.assign(g.degree(v), 0);
  }

  /// The program's sending surface: tags payloads with the sender's round,
  /// counts them for the ack protocol, and enforces the one-payload-per-
  /// edge-per-round CONGEST constraint.
  class AlphaMailbox final : public Mailbox {
   public:
    AlphaMailbox(AsyncEngine& engine, std::vector<NodeState>& state,
                 const Graph& g, AlphaResult& result)
        : engine_(engine), state_(state), g_(g), result_(result) {}

    void send(Vertex to, Message m) override {
      auto& st = state_[from_];
      const auto nb = g_.neighbors(from_);
      const auto it = std::lower_bound(nb.begin(), nb.end(), to);
      if (it == nb.end() || *it != to) {
        throw std::invalid_argument("alpha: send to non-neighbor");
      }
      const auto idx = static_cast<std::size_t>(it - nb.begin());
      if (st.sent_this_round[idx]) {
        throw std::logic_error(
            "CONGEST violation: two payloads on one edge in one round");
      }
      st.sent_this_round[idx] = 1;
      if ((m.c >> 48) != 0) {
        throw std::invalid_argument(
            "alpha: programs may only use message fields a and b");
      }
      m.c = pack(kPayload, st.round);
      ++st.pending_acks;
      ++result_.payload_messages;
      engine_.inject(from_, to, m);
    }

    Vertex from_ = kInvalidVertex;

   private:
    AsyncEngine& engine_;
    std::vector<NodeState>& state_;
    const Graph& g_;
    AlphaResult& result_;
  } mbox(engine, state, g, result);

  std::function<void(Vertex)> execute_round, become_safe, try_advance;

  execute_round = [&](Vertex v) {
    auto& st = state[v];
    std::fill(st.sent_this_round.begin(), st.sent_this_round.end(), 0);
    st.is_safe = false;
    st.pending_acks = 0;

    std::vector<Message> inbox;
    if (const auto it = st.inbox.find(st.round); it != st.inbox.end()) {
      inbox = std::move(it->second);
      st.inbox.erase(it);
    }
    std::sort(inbox.begin(), inbox.end(),
              [](const Message& x, const Message& y) { return x.src < y.src; });
    for (auto& m : inbox) m.c = 0;  // strip the synchronizer tag

    mbox.from_ = v;
    program(v, st.round, std::span<const Message>(inbox.data(), inbox.size()),
            mbox);
    if (state[v].pending_acks == 0) become_safe(v);
  };

  become_safe = [&](Vertex v) {
    auto& st = state[v];
    st.is_safe = true;
    for (Vertex u : g.neighbors(v)) {
      engine.inject(v, u, Message{.c = pack(kSafe, st.round)});
      ++result.control_messages;
    }
    try_advance(v);  // isolated vertices advance without any SAFE traffic
  };

  try_advance = [&](Vertex v) {
    auto& st = state[v];
    while (st.is_safe && st.round + 1 < rounds &&
           st.safe_count[st.round] == g.degree(v)) {
      st.safe_count.erase(st.round);
      ++st.round;
      execute_round(v);
    }
  };

  const AsyncEngine::Handler handler = [&](Vertex v, std::uint64_t /*now*/,
                                           const Message& msg,
                                           AsyncEngine::Port& /*port*/) {
    auto& st = state[v];
    switch (type_of(msg)) {
      case kPayload: {
        st.inbox[round_of(msg) + 1].push_back(msg);
        engine.inject(v, msg.src, Message{.c = pack(kAck, round_of(msg))});
        ++result.control_messages;
        break;
      }
      case kAck: {
        if (round_of(msg) == st.round && !st.is_safe &&
            st.pending_acks > 0 && --st.pending_acks == 0) {
          become_safe(v);
        }
        break;
      }
      case kSafe: {
        ++st.safe_count[round_of(msg)];
        try_advance(v);
        break;
      }
      default:
        throw std::logic_error("alpha: unknown message type");
    }
  };

  // Round 0 starts everywhere unconditionally.
  for (Vertex v = 0; v < n; ++v) execute_round(v);
  // Legitimate traffic is bounded per round: one payload + one ack per
  // edge-direction plus one SAFE per edge-direction.  Budget that (with
  // headroom) instead of a flat cap, so large synchronized executions
  // complete while runaway loops still trip the guard.
  const std::uint64_t per_round =
      6 * static_cast<std::uint64_t>(g.num_edges()) + n;
  const std::uint64_t budget =
      std::max<std::uint64_t>(50'000'000, 2 * rounds * per_round);
  result.virtual_time = engine.run(handler, budget);

  // Every node must have completed all rounds; anything else is a deadlock
  // in the synchronizer (a bug, not a user error).
  for (Vertex v = 0; v < n; ++v) {
    if (state[v].round != rounds - 1) {
      throw std::logic_error("alpha synchronizer deadlocked");
    }
  }
  return result;
}

}  // namespace nas::congest
