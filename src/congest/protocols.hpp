// Standard CONGEST protocols implemented on the exact round engine.
//
// These serve three purposes: (1) substrate the paper implicitly assumes
// (BFS trees, floods, convergecasts), (2) reference executions against which
// the event-driven core protocols are cross-validated, (3) runnable examples
// of the simulator's public API.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace nas::congest {

/// Distributed BFS from a source set: floods layer by layer; each vertex
/// adopts the first (smallest-sender-ID) token it hears.  Takes depth+1
/// rounds for depth-bounded exploration.  Returns the same structure as the
/// centralized oracle so tests can compare directly.
struct DistributedBfsResult {
  graph::BfsResult tree;
  std::uint64_t rounds = 0;
};
[[nodiscard]] DistributedBfsResult congest_bfs(
    const graph::Graph& g, const std::vector<graph::Vertex>& sources,
    std::uint32_t depth, Ledger* ledger = nullptr);

/// Flood a value from `root`; every reachable vertex learns it.  Returns the
/// per-vertex value (kNoValue where unreached) and the rounds used.
inline constexpr std::uint64_t kNoValue = static_cast<std::uint64_t>(-1);
struct BroadcastResult {
  std::vector<std::uint64_t> value;
  std::uint64_t rounds = 0;
};
[[nodiscard]] BroadcastResult broadcast(const graph::Graph& g,
                                        graph::Vertex root, std::uint64_t value,
                                        Ledger* ledger = nullptr);

/// Leader election by min-ID flooding; O(diameter) rounds.  Every vertex in a
/// connected component learns the smallest vertex ID of the component.
struct LeaderResult {
  std::vector<graph::Vertex> leader;
  std::uint64_t rounds = 0;
};
[[nodiscard]] LeaderResult elect_min_id_leader(const graph::Graph& g,
                                               Ledger* ledger = nullptr);

/// Convergecast: sums `value[v]` up a BFS tree (given by parent pointers)
/// towards the root; returns the total received at the root.
[[nodiscard]] std::uint64_t convergecast_sum(
    const graph::Graph& g, const std::vector<graph::Vertex>& parent,
    graph::Vertex root, const std::vector<std::uint64_t>& value,
    Ledger* ledger = nullptr);

}  // namespace nas::congest
