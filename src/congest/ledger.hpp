// Round / message accounting for simulated CONGEST executions.
//
// The CONGEST model charges one synchronous round for every node to exchange
// at most one O(1)-word message per incident edge (per direction).  All
// protocols in this library report their cost through a `Ledger`:
//
//   * `rounds`   — the number of synchronous rounds consumed,
//   * `messages` — total messages sent (each O(1) words by construction:
//                  message payloads in this library are <= 3 machine words),
//   * per-section breakdown, so that per-phase / per-step costs of the
//     spanner construction can be reported against the paper's bounds.
//
// The exact engine (engine.hpp) enforces the <=1 message per edge-direction
// per round invariant itself.  The event-driven protocol executions in
// src/core charge rounds according to the paper's schedules and *verify* the
// aggregated form of the invariant (<= R messages per edge-direction within a
// charged R-round window) by calling `check_window_capacity`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace nas::congest {

class Ledger {
 public:
  /// Opens a named accounting section (e.g. "phase 2 / ruling set").
  /// Sections may not nest; opening a new one closes the previous.
  void begin_section(std::string label) {
    sections_.push_back({std::move(label), 0, 0});
  }

  /// Charges `r` synchronous rounds to the current section.
  void charge_rounds(std::uint64_t r) {
    rounds_ += r;
    if (!sections_.empty()) sections_.back().rounds += r;
  }

  /// Records `count` sent messages.
  void charge_messages(std::uint64_t count) {
    messages_ += count;
    if (!sections_.empty()) sections_.back().messages += count;
  }

  /// Asserts that a charged window of `window_rounds` rounds can carry the
  /// observed worst per-edge-direction load `max_edge_load`.  This is the
  /// aggregate CONGEST-capacity invariant for the event-driven executions.
  void check_window_capacity(std::uint64_t max_edge_load,
                             std::uint64_t window_rounds,
                             const std::string& what) {
    if (max_edge_load > window_rounds) {
      throw std::logic_error("CONGEST capacity violated in " + what + ": " +
                             std::to_string(max_edge_load) +
                             " messages on one edge-direction in a window of " +
                             std::to_string(window_rounds) + " rounds");
    }
  }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

  struct Section {
    std::string label;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
  };
  [[nodiscard]] const std::vector<Section>& sections() const { return sections_; }

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::vector<Section> sections_;
};

}  // namespace nas::congest
