#include "congest/parallel.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::congest {

using graph::Graph;
using graph::Vertex;

/// Per-worker mailbox: the bandwidth guard touches only the sending vertex's
/// edge slots and the staging buffers belong to one worker, so sends are
/// lock-free and race-free by construction.
class ParallelEngine::WorkerMailbox final : public congest::Mailbox {
 public:
  WorkerMailbox(ParallelEngine& engine, unsigned worker)
      : engine_(engine), worker_(worker) {}

  void send(Vertex to, Message m) override {
    ParallelEngine& e = engine_;
    const std::size_t slot =
        e.dir_index_.slot(*e.g_, from_, to, "ParallelEngine");
    if (e.edge_used_round_[slot] == e.current_round_) {
      throw std::logic_error(
          "CONGEST violation: two messages on one edge-direction in one round");
    }
    e.edge_used_round_[slot] = e.current_round_;
    m.src = from_;
    const unsigned dest = e.owner_[to];
    e.outbox_[worker_ * e.threads_ + dest].emplace_back(to, m);
    ++e.worker_sent_[worker_];
  }

  Vertex from_ = graph::kInvalidVertex;

 private:
  ParallelEngine& engine_;
  unsigned worker_;
};

ParallelEngine::ParallelEngine(const Graph& g, Options options, Ledger* ledger)
    // No point in more workers than vertices (and block_begin needs n >= T to
    // hand every worker a distinct range; empty ranges are fine, n == 0 is
    // not) — exactly ThreadPool::resolve's clamp.
    : g_(&g), ledger_(ledger),
      threads_(util::ThreadPool::resolve(options.threads, g.num_vertices())),
      pool_(threads_), dir_index_(g) {
  const Vertex n = g.num_vertices();
  inbox_.resize(n);
  edge_used_round_.assign(dir_index_.size(), static_cast<std::uint64_t>(-1));
  outbox_.resize(static_cast<std::size_t>(threads_) * threads_);
  worker_sent_.assign(threads_, 0);
  worker_pending_.assign(threads_, 0);
  owner_.resize(n);
  for (unsigned w = 0; w < threads_; ++w) {
    for (Vertex v = block_begin(w); v < block_begin(w + 1); ++v) owner_[v] = w;
  }
  barrier_.reset(threads_);
}

void ParallelEngine::record_exception() noexcept {
  std::lock_guard<std::mutex> lock(error_m_);
  if (!first_error_) first_error_ = std::current_exception();
  aborted_.store(true, std::memory_order_relaxed);
}

void ParallelEngine::end_of_round() {
  pending_count_ = 0;
  std::uint64_t sent = 0;
  for (unsigned w = 0; w < threads_; ++w) {
    sent += worker_sent_[w];
    pending_count_ += worker_pending_[w];
    worker_sent_[w] = 0;
    worker_pending_[w] = 0;
  }
  messages_sent_ += sent;
  if (ledger_ != nullptr) {
    ledger_->charge_messages(sent);
    ledger_->charge_rounds(1);
  }
  rounds_executed_ = current_round_ + 1;

  if (aborted_.load(std::memory_order_relaxed)) {
    stop_ = true;
    return;
  }
  if (quiescent_ != nullptr && pending_count_ == 0) {
    try {
      if ((*quiescent_)()) {
        stop_ = true;
        return;
      }
    } catch (...) {
      record_exception();
      stop_ = true;
      return;
    }
  }
  ++current_round_;
  if (current_round_ >= max_rounds_) stop_ = true;
}

void ParallelEngine::worker_loop(unsigned w, const NodeProgram& program) {
  const Vertex begin = block_begin(w);
  const Vertex end = block_begin(w + 1);
  WorkerMailbox mbox(*this, w);
  const std::function<void()> completion = [this] { end_of_round(); };
  const std::function<void()> no_completion;

  for (;;) {
    // Compute: the program runs for this worker's vertices, staging sends.
    if (!aborted_.load(std::memory_order_relaxed)) {
      try {
        const std::uint64_t round = current_round_;
        for (Vertex v = begin; v < end; ++v) {
          mbox.from_ = v;
          auto& in = inbox_[v];
          program(v, round, std::span<const Message>(in.data(), in.size()),
                  mbox);
        }
      } catch (...) {
        record_exception();
      }
    }
    barrier_.arrive_and_wait(no_completion);

    // Delivery: gather this block's messages, sort inboxes by sender.
    if (!aborted_.load(std::memory_order_relaxed)) {
      try {
        for (Vertex v = begin; v < end; ++v) inbox_[v].clear();
        for (unsigned u = 0; u < threads_; ++u) {
          auto& box = outbox_[static_cast<std::size_t>(u) * threads_ + w];
          for (auto& [to, m] : box) inbox_[to].push_back(m);
          box.clear();
        }
        std::uint64_t pending = 0;
        for (Vertex v = begin; v < end; ++v) {
          auto& in = inbox_[v];
          std::sort(in.begin(), in.end(), [](const Message& x, const Message& y) {
            return x.src < y.src;
          });
          pending += in.size();
        }
        worker_pending_[w] = pending;
      } catch (...) {
        record_exception();
      }
    }
    barrier_.arrive_and_wait(completion);
    if (stop_) return;
  }
}

std::uint64_t ParallelEngine::run(const NodeProgram& program,
                                  const std::function<bool()>* quiescent,
                                  std::uint64_t max_rounds) {
  if (max_rounds == 0) return 0;
  if (g_->num_vertices() == 0) {
    // Vertex-free rounds still tick, exactly like the serial engine.
    for (std::uint64_t r = 0; r < max_rounds; ++r) {
      if (ledger_ != nullptr) ledger_->charge_rounds(1);
      if (quiescent != nullptr && (*quiescent)()) return r + 1;
    }
    return max_rounds;
  }

  // Reset round state; inboxes may carry messages across run() calls, matching
  // the serial engine, so they are left alone.  Round numbering restarts, so
  // the bandwidth-guard stamps must not (Engine::begin_run does the same);
  // staging buffers may hold leftovers from an aborted run — drop them.
  std::fill(edge_used_round_.begin(), edge_used_round_.end(),
            static_cast<std::uint64_t>(-1));
  for (auto& box : outbox_) box.clear();
  for (unsigned w = 0; w < threads_; ++w) {
    worker_sent_[w] = 0;
    worker_pending_[w] = 0;
  }
  current_round_ = 0;
  rounds_executed_ = 0;
  max_rounds_ = max_rounds;
  quiescent_ = quiescent;
  stop_ = false;
  aborted_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  // The persistent pool runs one barrier-stepped worker loop per slot; the
  // calling thread is slot 0, exactly as when the engine spawned threads
  // itself, but without per-run() spawn/join cost.
  pool_.run(threads_, [this, &program](unsigned w) { worker_loop(w, program); });

  if (first_error_) std::rethrow_exception(first_error_);
  return rounds_executed_;
}

std::uint64_t ParallelEngine::run_rounds(std::uint64_t rounds,
                                         const NodeProgram& program) {
  return run(program, nullptr, rounds);
}

std::uint64_t ParallelEngine::run_until_quiescent(
    const NodeProgram& program, const std::function<bool()>& quiescent,
    std::uint64_t max_rounds) {
  return run(program, &quiescent, max_rounds);
}

}  // namespace nas::congest
