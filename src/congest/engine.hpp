// Exact synchronous CONGEST round engine.
//
// Executes an arbitrary node program round by round:
//   * at the beginning of round r every vertex receives the messages its
//     neighbors sent during round r-1 (in ascending sender-ID order, so
//     executions are deterministic),
//   * during round r every vertex may send at most ONE message per incident
//     edge per direction; a second send on the same edge in the same round
//     throws std::logic_error (that is the CONGEST bandwidth constraint),
//   * message payloads are at most `Message::kWords` machine words = O(1)
//     words = O(log n) bits, as the model requires.
//
// This engine favors clarity over speed; the intricate spanner protocols in
// src/core use event-driven executions for performance and are cross-checked
// against engine-based references in the test suite.
//
// `Mailbox` is an abstract sending surface so the same NodeProgram can also
// be executed by other substrates — in particular the α-synchronizer over
// the asynchronous engine (congest/async.hpp), which must produce
// bit-identical program state.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"

namespace nas::congest {

struct Message {
  static constexpr int kWords = 3;
  graph::Vertex src = graph::kInvalidVertex;  // filled in by the engine
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Abstract per-round sending surface handed to node programs.
class Mailbox {
 public:
  /// Sends `m` to neighbor `to` this round.  Implementations throw
  /// std::logic_error on a second send over the same edge in one round
  /// (CONGEST violation) and std::invalid_argument for non-neighbors.
  virtual void send(graph::Vertex to, Message m) = 0;

 protected:
  ~Mailbox() = default;
};

/// Shared CSR indexing of directed edges for the execution engines: the
/// slot of (from, to) is offsets[from] + the rank of `to` in from's sorted
/// neighbor list, giving each engine a dense per-edge-direction array for
/// its bandwidth guard / FIFO bookkeeping.
class DirectedEdgeIndex {
 public:
  DirectedEdgeIndex() = default;
  explicit DirectedEdgeIndex(const graph::Graph& g);

  /// Throws std::invalid_argument (prefixed with `who`) for non-neighbors.
  [[nodiscard]] std::size_t slot(const graph::Graph& g, graph::Vertex from,
                                 graph::Vertex to, const char* who) const;

  /// Total number of directed-edge slots (2|E|).
  [[nodiscard]] std::size_t size() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

 private:
  std::vector<std::size_t> offsets_;  // size n+1
};

class Engine {
 public:
  using Mailbox = congest::Mailbox;

  /// Node program: called once per vertex per round with the messages that
  /// arrived this round.  `round` is 0-based.
  using NodeProgram = std::function<void(graph::Vertex v, std::uint64_t round,
                                         std::span<const Message> inbox,
                                         Mailbox& out)>;

  explicit Engine(const graph::Graph& g, Ledger* ledger = nullptr);

  /// Runs exactly `rounds` rounds.  Returns the number of rounds executed.
  std::uint64_t run_rounds(std::uint64_t rounds, const NodeProgram& program);

  /// Runs until a round in which no messages are in flight and `quiescent`
  /// returns true, or until `max_rounds`.  Returns rounds executed.
  std::uint64_t run_until_quiescent(const NodeProgram& program,
                                    const std::function<bool()>& quiescent,
                                    std::uint64_t max_rounds);

  [[nodiscard]] const graph::Graph& graph() const { return *g_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  class RoundMailbox;

  void begin_run();  // per-run reset of the bandwidth guard
  void do_round(std::uint64_t round, const NodeProgram& program);
  bool in_flight() const { return pending_count_ > 0; }

  const graph::Graph* g_;
  Ledger* ledger_;
  // outgoing[v]: messages v sent this round; delivered at next round start.
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> next_inbox_;
  // Per-round used-edge guard: (sender, receiver) pairs already used.
  std::vector<std::uint64_t> edge_used_round_;  // per directed-edge slot
  DirectedEdgeIndex dir_index_;
  std::uint64_t current_round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::size_t pending_count_ = 0;
};

}  // namespace nas::congest
