// Asynchronous message-passing engine and Awerbuch's synchronizer α.
//
// Spanners entered distributed computing through synchronizers ([Awe85],
// [PU87] — the first two citations of the paper): structures that let a
// synchronous algorithm run on an asynchronous network.  This module
// provides the asynchronous substrate:
//
//  * `AsyncEngine` — discrete-event simulator: every sent message is
//    delivered after an adversarially-seeded delay in [1, max_delay];
//    virtual time advances event by event.  (FIFO per edge-direction, as
//    the classic model assumes.)
//
//  * `run_alpha_synchronized` — the α synchronizer: each node executes
//    rounds of an Engine::NodeProgram; round-r payload messages are
//    acknowledged, a node that has all its payloads acked is *safe* for r
//    and announces this to its neighbors, and a node enters round r+1 once
//    all neighbors are safe for r.  Message overhead is O(|E|) per round —
//    the overhead a sparse spanner overlay was invented to reduce.
//
// Executing a synchronous program through the synchronizer must produce
// bit-identical results to the synchronous engine; the test suite asserts
// this for BFS and flood programs, which is also a strong cross-check of
// both engines.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "congest/engine.hpp"
#include "graph/graph.hpp"

namespace nas::congest {

class AsyncEngine {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::uint32_t max_delay = 8;  ///< delays drawn uniformly from [1, max_delay]
  };

  /// Handler invoked on each delivery; may send further messages.
  class Port {
   public:
    void send(graph::Vertex to, Message m);

   private:
    friend class AsyncEngine;
    AsyncEngine* engine_ = nullptr;
    graph::Vertex from_ = graph::kInvalidVertex;
  };
  using Handler =
      std::function<void(graph::Vertex v, std::uint64_t now,
                         const Message& msg, Port& out)>;

  AsyncEngine(const graph::Graph& g, Options options);

  /// Queues an initial message from `from` to `to` at time 0.
  void inject(graph::Vertex from, graph::Vertex to, Message m);

  /// Runs until no events remain (or `max_events`).  Returns the virtual
  /// completion time (time of the last delivered message).
  std::uint64_t run(const Handler& handler, std::uint64_t max_events = 50'000'000);

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] const graph::Graph& graph() const { return *g_; }

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // tie-break: FIFO / determinism
    graph::Vertex to;
    Message msg;
    bool operator>(const Event& o) const {
      return std::tie(time, seq) > std::tie(o.time, o.seq);
    }
  };

  std::uint64_t delay(graph::Vertex from, graph::Vertex to);
  void enqueue(graph::Vertex from, graph::Vertex to, Message m);

  const graph::Graph* g_;
  Options options_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Per directed edge: the delivery time of the last message sent on it;
  // later sends deliver no earlier (FIFO links).
  std::vector<std::uint64_t> last_delivery_;
  DirectedEdgeIndex dir_index_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Result of an α-synchronized execution.
struct AlphaResult {
  std::uint64_t virtual_time = 0;       ///< async completion time
  std::uint64_t payload_messages = 0;   ///< synchronous algorithm's messages
  std::uint64_t control_messages = 0;   ///< acks + safety announcements
  std::uint64_t rounds = 0;             ///< synchronous rounds simulated
};

/// Runs `rounds` rounds of the synchronous `program` over the asynchronous
/// network, coordinated by synchronizer α.  The program observes exactly
/// the semantics of Engine::run_rounds (same inboxes, same order), so any
/// state it writes is identical to a synchronous execution.
AlphaResult run_alpha_synchronized(const graph::Graph& g,
                                   std::uint64_t rounds,
                                   const Engine::NodeProgram& program,
                                   AsyncEngine::Options options = {});

}  // namespace nas::congest
