#include "congest/substrate.hpp"

#include <stdexcept>

#include "congest/async.hpp"
#include "congest/parallel.hpp"

namespace nas::congest {

Substrate parse_substrate(std::string_view name) {
  if (name == "serial") return Substrate::kSerial;
  if (name == "parallel") return Substrate::kParallel;
  if (name == "alpha") return Substrate::kAlpha;
  throw std::invalid_argument("unknown substrate '" + std::string(name) +
                              "' (expected serial, parallel, or alpha)");
}

std::string_view substrate_name(Substrate substrate) {
  switch (substrate) {
    case Substrate::kSerial:
      return "serial";
    case Substrate::kParallel:
      return "parallel";
    case Substrate::kAlpha:
      return "alpha";
  }
  throw std::invalid_argument("substrate_name: bad enum value");
}

SubstrateRun run_on_substrate(const graph::Graph& g, std::uint64_t rounds,
                              const Engine::NodeProgram& program,
                              const SubstrateOptions& options, Ledger* ledger) {
  SubstrateRun run;
  switch (options.substrate) {
    case Substrate::kSerial: {
      Engine engine(g, ledger);
      run.rounds = engine.run_rounds(rounds, program);
      run.messages = engine.messages_sent();
      return run;
    }
    case Substrate::kParallel: {
      ParallelEngine engine(g, {.threads = options.threads}, ledger);
      run.rounds = engine.run_rounds(rounds, program);
      run.messages = engine.messages_sent();
      return run;
    }
    case Substrate::kAlpha: {
      const AlphaResult alpha = run_alpha_synchronized(
          g, rounds, program,
          {.seed = options.alpha_seed, .max_delay = options.alpha_max_delay});
      run.rounds = alpha.rounds;
      run.messages = alpha.payload_messages;
      // The synchronizer charges nothing itself; account the synchronous
      // cost here so all three substrates agree on the ledger.
      if (ledger != nullptr) {
        ledger->charge_rounds(run.rounds);
        ledger->charge_messages(run.messages);
      }
      return run;
    }
  }
  throw std::invalid_argument("run_on_substrate: bad substrate enum");
}

}  // namespace nas::congest
