#include "congest/protocols.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::congest {

using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

DistributedBfsResult congest_bfs(const Graph& g,
                                 const std::vector<Vertex>& sources,
                                 std::uint32_t depth, Ledger* ledger) {
  DistributedBfsResult out;
  const Vertex n = g.num_vertices();
  out.tree.dist.assign(n, kInfDist);
  out.tree.parent.assign(n, kInvalidVertex);
  out.tree.root.assign(n, kInvalidVertex);
  for (Vertex s : sources) {
    if (s >= n) throw std::invalid_argument("congest_bfs: bad source");
    out.tree.dist[s] = 0;
    out.tree.root[s] = s;
  }

  Engine engine(g, ledger);
  // Message: a = root id, b = distance of the sender.
  const auto program = [&](Vertex v, std::uint64_t round,
                           std::span<const Message> inbox,
                           Engine::Mailbox& mbox) {
    // Adopt the first token (inbox is sorted by sender, so smallest parent
    // ID wins deterministically).
    for (const Message& m : inbox) {
      if (out.tree.dist[v] == kInfDist) {
        out.tree.dist[v] = static_cast<std::uint32_t>(m.b) + 1;
        out.tree.parent[v] = m.src;
        out.tree.root[v] = static_cast<Vertex>(m.a);
      }
    }
    // A vertex whose distance equals the current round joined this round
    // (or is a source at round 0) and announces itself to all neighbors.
    if (out.tree.dist[v] == round && round < depth) {
      for (Vertex u : g.neighbors(v)) {
        mbox.send(u, Message{.a = out.tree.root[v], .b = out.tree.dist[v]});
      }
    }
  };
  // depth announcement rounds + 1 final delivery round.
  out.rounds = engine.run_rounds(static_cast<std::uint64_t>(depth) + 1, program);
  return out;
}

BroadcastResult broadcast(const Graph& g, Vertex root, std::uint64_t value,
                          Ledger* ledger) {
  BroadcastResult out;
  const Vertex n = g.num_vertices();
  if (root >= n) throw std::invalid_argument("broadcast: bad root");
  out.value.assign(n, kNoValue);
  out.value[root] = value;

  Engine engine(g, ledger);
  std::vector<bool> announced(n, false);
  const auto program = [&](Vertex v, std::uint64_t /*round*/,
                           std::span<const Message> inbox,
                           Engine::Mailbox& mbox) {
    for (const Message& m : inbox) {
      if (out.value[v] == kNoValue) out.value[v] = m.a;
    }
    if (out.value[v] != kNoValue && !announced[v]) {
      announced[v] = true;
      for (Vertex u : g.neighbors(v)) mbox.send(u, Message{.a = out.value[v]});
    }
  };
  out.rounds = engine.run_until_quiescent(
      program, [] { return true; }, static_cast<std::uint64_t>(n) + 2);
  return out;
}

LeaderResult elect_min_id_leader(const Graph& g, Ledger* ledger) {
  LeaderResult out;
  const Vertex n = g.num_vertices();
  out.leader.resize(n);
  for (Vertex v = 0; v < n; ++v) out.leader[v] = v;

  Engine engine(g, ledger);
  std::vector<Vertex> last_sent(n, kInvalidVertex);
  const auto program = [&](Vertex v, std::uint64_t /*round*/,
                           std::span<const Message> inbox,
                           Engine::Mailbox& mbox) {
    for (const Message& m : inbox) {
      out.leader[v] = std::min(out.leader[v], static_cast<Vertex>(m.a));
    }
    if (out.leader[v] != last_sent[v]) {
      last_sent[v] = out.leader[v];
      for (Vertex u : g.neighbors(v)) mbox.send(u, Message{.a = out.leader[v]});
    }
  };
  out.rounds = engine.run_until_quiescent(
      program, [] { return true; }, static_cast<std::uint64_t>(n) + 2);
  return out;
}

std::uint64_t convergecast_sum(const Graph& g,
                               const std::vector<Vertex>& parent, Vertex root,
                               const std::vector<std::uint64_t>& value,
                               Ledger* ledger) {
  const Vertex n = g.num_vertices();
  if (parent.size() != n || value.size() != n) {
    throw std::invalid_argument("convergecast_sum: size mismatch");
  }
  // children counts: a vertex sends up once all children reported.
  std::vector<std::uint32_t> pending_children(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (parent[v] != kInvalidVertex) ++pending_children[parent[v]];
  }
  std::vector<std::uint64_t> acc(value);
  std::vector<bool> sent(n, false);

  Engine engine(g, ledger);
  const auto program = [&](Vertex v, std::uint64_t /*round*/,
                           std::span<const Message> inbox,
                           Engine::Mailbox& mbox) {
    for (const Message& m : inbox) {
      acc[v] += m.a;
      --pending_children[v];
    }
    if (!sent[v] && pending_children[v] == 0 && parent[v] != kInvalidVertex) {
      sent[v] = true;
      mbox.send(parent[v], Message{.a = acc[v]});
    }
  };
  engine.run_until_quiescent(program, [] { return true; },
                             static_cast<std::uint64_t>(n) + 2);
  return acc[root];
}

}  // namespace nas::congest
