// Multi-threaded synchronous CONGEST round engine.
//
// Executes the same NodeProgram contract as `Engine` (engine.hpp) but fans
// the per-vertex program calls of each round out across a pool of worker
// threads, with two barriers per round:
//
//   compute phase   workers run the program for a static block of vertices;
//                   sends are staged in worker-local outboxes bucketed by the
//                   receiving worker, so no lock is ever taken on the hot path,
//   --- barrier ---
//   delivery phase  each worker gathers the messages addressed to its block,
//                   sorts every inbox by sender ID, and clears the outboxes
//                   it consumed,
//   --- barrier --- (the last arriver aggregates counters, charges the
//                    ledger, and decides whether to stop).
//
// Determinism / equivalence: a vertex receives at most one message per
// incident edge-direction per round, so sender IDs within an inbox are
// unique and sorting by sender reproduces exactly the inbox order of the
// serial engine.  Provided the program only touches state belonging to the
// vertex it was invoked for (the CONGEST locality contract — a node program
// has no business reading another node's memory), the resulting program
// state is bit-identical to `Engine` and to the α-synchronizer for every
// thread count.  tests/test_substrate_equivalence.cpp enforces this across
// all three substrates.
//
// Bandwidth enforcement is unchanged: a second send over one edge-direction
// in one round throws std::logic_error, a send to a non-neighbor throws
// std::invalid_argument.  Exceptions thrown on worker threads (by the
// program or by these guards) are captured and rethrown on the calling
// thread after the pool drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace nas::congest {

struct ParallelOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
};

class ParallelEngine {
 public:
  using Mailbox = congest::Mailbox;
  using NodeProgram = Engine::NodeProgram;
  using Options = ParallelOptions;

  explicit ParallelEngine(const graph::Graph& g, Options options = {},
                          Ledger* ledger = nullptr);

  /// Runs exactly `rounds` rounds.  Returns the number of rounds executed.
  std::uint64_t run_rounds(std::uint64_t rounds, const NodeProgram& program);

  /// Runs until a round in which no messages are in flight and `quiescent`
  /// returns true, or until `max_rounds`.  Returns rounds executed.
  std::uint64_t run_until_quiescent(const NodeProgram& program,
                                    const std::function<bool()>& quiescent,
                                    std::uint64_t max_rounds);

  [[nodiscard]] const graph::Graph& graph() const { return *g_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  class WorkerMailbox;
  friend class WorkerMailbox;

  /// Central barrier; the last arriver runs `completion` (if any) before the
  /// group is released, so completion sees every worker quiesced.
  class Barrier {
   public:
    explicit Barrier(unsigned count) : count_(count) {}

    /// Only valid while no thread is inside arrive_and_wait.
    void reset(unsigned count) {
      count_ = count;
      waiting_ = 0;
    }

    void arrive_and_wait(const std::function<void()>& completion) {
      std::unique_lock<std::mutex> lock(m_);
      if (++waiting_ == count_) {
        if (completion) completion();
        waiting_ = 0;
        ++phase_;
        cv_.notify_all();
      } else {
        const std::uint64_t my_phase = phase_;
        cv_.wait(lock, [&] { return phase_ != my_phase; });
      }
    }

   private:
    std::mutex m_;
    std::condition_variable cv_;
    unsigned count_;
    unsigned waiting_ = 0;
    std::uint64_t phase_ = 0;
  };

  /// Shared driver behind both run modes; `quiescent` may be null.
  std::uint64_t run(const NodeProgram& program,
                    const std::function<bool()>* quiescent,
                    std::uint64_t max_rounds);
  void worker_loop(unsigned w, const NodeProgram& program);
  void end_of_round();  // barrier completion: aggregate, charge, decide stop
  void record_exception() noexcept;

  /// Vertex ownership follows the canonical shard partition, so the
  /// engine's blocks and every other sharded consumer stay in lockstep.
  [[nodiscard]] graph::Vertex block_begin(unsigned w) const {
    return static_cast<graph::Vertex>(
        util::ThreadPool::shard(g_->num_vertices(), threads_, w).first);
  }

  std::vector<unsigned> owner_;  // owner_[v]: worker whose block holds v

  const graph::Graph* g_;
  Ledger* ledger_;
  unsigned threads_ = 1;
  util::ThreadPool pool_;  // persistent workers reused across run() calls

  std::vector<std::vector<Message>> inbox_;
  std::vector<std::uint64_t> edge_used_round_;  // per directed-edge slot
  DirectedEdgeIndex dir_index_;

  // outbox_[sender_worker * threads_ + dest_worker]: messages staged during
  // the compute phase, consumed (and cleared) by dest_worker's delivery.
  std::vector<std::vector<std::pair<graph::Vertex, Message>>> outbox_;
  std::vector<std::uint64_t> worker_sent_;     // per-worker, this round
  std::vector<std::uint64_t> worker_pending_;  // per-worker, after delivery

  // Round state shared with the pool; written only while every worker is
  // parked in a barrier (end_of_round, record_exception's abort flag aside),
  // read by everyone after release.
  Barrier barrier_{1};
  std::uint64_t current_round_ = 0;
  std::uint64_t rounds_executed_ = 0;
  std::uint64_t max_rounds_ = 0;
  const std::function<bool()>* quiescent_ = nullptr;
  bool stop_ = false;

  std::uint64_t messages_sent_ = 0;
  std::size_t pending_count_ = 0;

  std::mutex error_m_;
  std::exception_ptr first_error_;
  std::atomic<bool> aborted_{false};  // a worker threw; drain without working
};

}  // namespace nas::congest
