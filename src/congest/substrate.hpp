// Substrate selection: one entry point to execute a synchronous NodeProgram
// on any of the library's three interchangeable execution substrates.
//
//   serial    -- the exact round engine (congest/engine.hpp)
//   parallel  -- the multi-threaded round engine (congest/parallel.hpp)
//   alpha     -- Awerbuch's synchronizer α over the asynchronous event
//                engine (congest/async.hpp)
//
// All three deliver identical inboxes in identical order, so a program that
// only touches its own vertex's state produces bit-identical results on each
// (tests/test_substrate_equivalence.cpp).  Callers that execute
// engine-backed reference checks — build_spanner's Algorithm 1 cross-check,
// run_algorithm1_exact, the scaling benches — take a `SubstrateOptions` so
// large-n runs can route through the parallel path.
//
// Restrictions: the alpha substrate supports neither quiescence detection
// (the synchronizer needs the round count up front) nor programs that use
// message field `c` (it carries the synchronizer tag).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "graph/graph.hpp"

namespace nas::congest {

enum class Substrate {
  kSerial,
  kParallel,
  kAlpha,
};

struct SubstrateOptions {
  Substrate substrate = Substrate::kSerial;
  /// Parallel substrate: worker threads, 0 = hardware concurrency.
  unsigned threads = 0;
  /// Alpha substrate: delay-model seed and maximum per-hop delay.
  std::uint64_t alpha_seed = 1;
  std::uint32_t alpha_max_delay = 4;
};

/// Parses "serial" / "parallel" / "alpha"; throws std::invalid_argument
/// otherwise.  This is the accepted vocabulary of every --substrate flag.
[[nodiscard]] Substrate parse_substrate(std::string_view name);

[[nodiscard]] std::string_view substrate_name(Substrate substrate);

/// What a substrate execution consumed, in CONGEST terms.
struct SubstrateRun {
  std::uint64_t rounds = 0;    ///< synchronous rounds executed
  std::uint64_t messages = 0;  ///< program (payload) messages sent
};

/// Runs exactly `rounds` rounds of `program` on the selected substrate and
/// charges `ledger` (if given) the synchronous cost: one round per round and
/// the payload messages.  Alpha control traffic is intentionally not charged
/// — the ledger accounts the synchronous algorithm, whichever substrate
/// simulates it.
SubstrateRun run_on_substrate(const graph::Graph& g, std::uint64_t rounds,
                              const Engine::NodeProgram& program,
                              const SubstrateOptions& options = {},
                              Ledger* ledger = nullptr);

}  // namespace nas::congest
