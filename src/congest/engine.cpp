#include "congest/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace nas::congest {

using graph::Graph;
using graph::Vertex;

DirectedEdgeIndex::DirectedEdgeIndex(const Graph& g) {
  const Vertex n = g.num_vertices();
  offsets_.resize(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
}

std::size_t DirectedEdgeIndex::slot(const Graph& g, Vertex from, Vertex to,
                                    const char* who) const {
  const auto nb = g.neighbors(from);
  const auto it = std::lower_bound(nb.begin(), nb.end(), to);
  if (it == nb.end() || *it != to) {
    throw std::invalid_argument(std::string(who) + ": send to non-neighbor");
  }
  return offsets_[from] + static_cast<std::size_t>(it - nb.begin());
}

/// The synchronous engine's concrete mailbox: validates the bandwidth
/// constraint and stages messages for next-round delivery.
class Engine::RoundMailbox final : public congest::Mailbox {
 public:
  RoundMailbox(Engine& engine) : engine_(engine) {}

  void send(Vertex to, Message m) override {
    Engine& e = engine_;
    const std::size_t slot = e.dir_index_.slot(*e.g_, from_, to, "Engine");
    if (e.edge_used_round_[slot] == e.current_round_) {
      throw std::logic_error(
          "CONGEST violation: two messages on one edge-direction in one round");
    }
    e.edge_used_round_[slot] = e.current_round_;
    m.src = from_;
    e.next_inbox_[to].push_back(m);
    ++e.messages_sent_;
    ++e.pending_count_;
    if (e.ledger_ != nullptr) e.ledger_->charge_messages(1);
  }

  Vertex from_ = graph::kInvalidVertex;

 private:
  Engine& engine_;
};

Engine::Engine(const Graph& g, Ledger* ledger)
    : g_(&g), ledger_(ledger), dir_index_(g) {
  const Vertex n = g.num_vertices();
  inbox_.resize(n);
  next_inbox_.resize(n);
  edge_used_round_.assign(dir_index_.size(), static_cast<std::uint64_t>(-1));
}

void Engine::begin_run() {
  // Round numbering restarts at 0 on every run call; drop last run's stamps
  // so a legitimate send in round r is not mistaken for a re-send on an edge
  // used in the previous run's round r.
  std::fill(edge_used_round_.begin(), edge_used_round_.end(),
            static_cast<std::uint64_t>(-1));
}

void Engine::do_round(std::uint64_t round, const NodeProgram& program) {
  current_round_ = round;
  RoundMailbox mbox(*this);
  for (Vertex v = 0; v < g_->num_vertices(); ++v) {
    // Deterministic delivery order: by sender ID.
    auto& in = inbox_[v];
    std::sort(in.begin(), in.end(),
              [](const Message& x, const Message& y) { return x.src < y.src; });
    mbox.from_ = v;
    program(v, round, std::span<const Message>(in.data(), in.size()), mbox);
  }
  pending_count_ = 0;
  for (Vertex v = 0; v < g_->num_vertices(); ++v) {
    inbox_[v].clear();
    inbox_[v].swap(next_inbox_[v]);
    pending_count_ += inbox_[v].size();
  }
  if (ledger_ != nullptr) ledger_->charge_rounds(1);
}

std::uint64_t Engine::run_rounds(std::uint64_t rounds, const NodeProgram& program) {
  begin_run();
  for (std::uint64_t r = 0; r < rounds; ++r) do_round(r, program);
  return rounds;
}

std::uint64_t Engine::run_until_quiescent(const NodeProgram& program,
                                          const std::function<bool()>& quiescent,
                                          std::uint64_t max_rounds) {
  begin_run();
  std::uint64_t r = 0;
  for (; r < max_rounds; ++r) {
    do_round(r, program);
    if (!in_flight() && quiescent()) return r + 1;
  }
  return r;
}

}  // namespace nas::congest
