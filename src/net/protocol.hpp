// The nas_served line protocol: parsing and framing, isolated from IO.
//
// One request per '\n'-terminated line (a trailing '\r' is stripped, so
// `nc`, `telnet`, and CRLF clients all work).  Grammar:
//
//   Q <u> <v>     one distance request; the reply is one "<u> <v> <d>" line
//                 (d = spanner distance, or "inf" for disconnected pairs) —
//                 byte-identical to the nas_oracle/nas_serve answer format.
//   BATCH <n>     exactly n "<u> <v>" body lines follow; the reply is n
//                 answer lines in request order.  n may be 0 (no reply).
//   STATS         one JSON object line: cluster configuration + cumulative
//                 serving counters (the nas_serve --stats-json schema plus
//                 the server's connection counters).
//   METRICS       one JSON object line: the cluster's work metrics — batch
//                 and replica-depth histograms, queue-depth high-water
//                 marks, lifetime per-replica counters, metrics_digest —
//                 plus the timing-only serve-latency histogram (the
//                 serve::cluster_metrics_fields schema).
//   QUIT          the server replies "BYE" and closes after flushing.
//
// Anything else is answered with one "ERR <reason>" line.  Errors that
// leave the stream position unambiguous (unknown command, bad vertex id,
// malformed batch body line) keep the connection open; errors that break
// framing (an overlong line, an unparseable BATCH header whose body length
// is therefore unknown) close it after the ERR is flushed.
//
// Parsing is strict: vertex ids are decimal, overflow-checked, and
// validated against the cluster's vertex universe before a request is ever
// submitted, so the serving path never throws on user input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "apps/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace nas::net {

/// One parsed request line.
struct Request {
  enum class Kind { kQuery, kBatch, kStats, kMetrics, kQuit };
  Kind kind = Kind::kStats;
  apps::Query query;            ///< kQuery only
  std::uint64_t batch_size = 0; ///< kBatch only
};

/// Outcome of parsing one line.  `ok` distinguishes success; on failure
/// `error` is the human-readable reason (without the "ERR " prefix) and
/// `fatal` says whether framing is lost (close after flushing the error).
struct ParseOutcome {
  bool ok = false;
  Request request;
  std::string error;
  bool fatal = false;
};

/// Parses one command line (terminator already stripped).  `universe` is the
/// cluster's vertex count; ids >= universe are rejected here.  `max_batch`
/// bounds the BATCH header.  Blank lines are reported as errors — callers
/// skip them before parsing.
[[nodiscard]] ParseOutcome parse_request_line(std::string_view line,
                                              graph::Vertex universe,
                                              std::uint64_t max_batch);

/// Parses one "u v" batch body line against the same vertex rules.
[[nodiscard]] ParseOutcome parse_batch_line(std::string_view line,
                                            graph::Vertex universe);

/// True when `line` is empty or all spaces/tabs (skipped, never an error).
[[nodiscard]] bool is_blank_line(std::string_view line);

/// Incremental '\n'-framed line extraction over an append-only buffer.
enum class LineStatus {
  kLine,      ///< one complete line extracted
  kNeedMore,  ///< no terminator buffered yet (and under the length cap)
  kOverlong,  ///< cap exceeded without a terminator — framing is lost
};

/// Extracts the next line from `buffer` starting at `*pos`, advancing
/// `*pos` past the terminator.  Strips "\n" and "\r\n".  Returns kOverlong
/// once more than `max_line_bytes` bytes are buffered without a terminator.
/// Callers periodically compact `buffer`/`*pos`; this function only reads.
[[nodiscard]] LineStatus next_line(const std::string& buffer,
                                   std::size_t* pos,
                                   std::size_t max_line_bytes,
                                   std::string* line);

}  // namespace nas::net
