#include "net/posix_io.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define NAS_HAVE_POSIX_NET 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace nas::net {

std::string errno_message(const std::string& what, int saved_errno) {
  return "net: cannot " + what + ": " + std::strerror(saved_errno);
}

void throw_errno(const std::string& what, int saved_errno) {
  throw std::runtime_error(errno_message(what, saved_errno));
}

void UniqueFd::reset(int fd) {
#if NAS_HAVE_POSIX_NET
  if (fd_ >= 0) {
    // POSIX leaves the descriptor state unspecified after an EINTR'd close;
    // retrying could close a descriptor another thread just received.  One
    // call, result deliberately ignored (there is no recovery from a failed
    // close on this side).
    const int rc = ::close(fd_);
    static_cast<void>(rc);
  }
#endif
  fd_ = fd;
}

#if NAS_HAVE_POSIX_NET

IoResult read_some(int fd, void* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    }
    if (n == 0) return {IoStatus::kEof, 0, 0};
    const int saved_errno = errno;
    if (saved_errno == EINTR) continue;
    if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, saved_errno};
  }
}

IoResult write_some(int fd, const void* buf, std::size_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a vanished peer is EPIPE on this connection, not a
    // process-wide SIGPIPE.  Falls back to ::write for non-socket fds.
    ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf, len);
    if (n >= 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    }
    const int saved_errno = errno;
    if (saved_errno == EINTR) continue;
    if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, saved_errno};
  }
}

bool write_all(int fd, const void* buf, std::size_t len, int* error) {
  const auto* cursor = static_cast<const unsigned char*>(buf);
  std::size_t left = len;
  while (left > 0) {
    const IoResult r = write_some(fd, cursor, left);
    if (r.status == IoStatus::kOk) {
      cursor += r.bytes;
      left -= r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      // Blocking-side helper used on blocking fds; a would-block here means
      // the caller handed us a non-blocking fd — spin via a zero-byte retry
      // would busy-wait, so report it as an error instead.
      if (error != nullptr) *error = EAGAIN;
      return false;
    }
    if (error != nullptr) *error = r.error;
    return false;
  }
  return true;
}

AcceptResult accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return {IoStatus::kOk, fd, 0};
    const int saved_errno = errno;
    if (saved_errno == EINTR || saved_errno == ECONNABORTED) continue;
    if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, -1, 0};
    }
    return {IoStatus::kError, -1, saved_errno};
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("read descriptor flags", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("set O_NONBLOCK", errno);
  }
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) throw_errno("read descriptor fd-flags", errno);
  if (::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0) {
    throw_errno("set FD_CLOEXEC", errno);
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  const int rc =
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  static_cast<void>(rc);
}

namespace {

[[nodiscard]] sockaddr_in make_addr(const std::string& host,
                                    std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: cannot parse IPv4 address \"" + host +
                             "\"");
  }
  return addr;
}

}  // namespace

UniqueFd open_listen_socket(const std::string& host, std::uint16_t port,
                            int backlog, std::uint16_t* bound_port) {
  const sockaddr_in addr = make_addr(host, port);
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("create listen socket", errno);
  set_cloexec(fd.get());
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) !=
      0) {
    throw_errno("set SO_REUSEADDR", errno);
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port), errno);
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw_errno("listen on " + host + ":" + std::to_string(port), errno);
  }
  set_nonblocking(fd.get());
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      throw_errno("read bound port", errno);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

UniqueFd connect_blocking(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("create client socket", errno);
  set_cloexec(fd.get());
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      break;
    }
    const int saved_errno = errno;
    if (saved_errno == EINTR) continue;
    throw_errno("connect to " + host + ":" + std::to_string(port),
                saved_errno);
  }
  set_nodelay(fd.get());
  return fd;
}

WakeupPipe open_wakeup_pipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) throw_errno("create wakeup pipe", errno);
  WakeupPipe p{UniqueFd(fds[0]), UniqueFd(fds[1])};
  for (const int fd : fds) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }
  return p;
}

void signal_wakeup(int wakeup_write_fd) {
  const char byte = 'w';
  for (;;) {
    const ssize_t n = ::write(wakeup_write_fd, &byte, 1);
    if (n >= 0) return;
    if (errno == EINTR) continue;
    // EAGAIN: the pipe already holds unread wakeups — the loop will wake.
    // Anything else is unrecoverable from a signal context; swallow it.
    return;
  }
}

#else  // !NAS_HAVE_POSIX_NET

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error(
      "net: POSIX sockets are unavailable on this platform");
}
}  // namespace

IoResult read_some(int, void*, std::size_t) { unsupported(); }
IoResult write_some(int, const void*, std::size_t) { unsupported(); }
bool write_all(int, const void*, std::size_t, int*) { unsupported(); }
AcceptResult accept_connection(int) { unsupported(); }
void set_nonblocking(int) { unsupported(); }
void set_cloexec(int) { unsupported(); }
void set_nodelay(int) { unsupported(); }
UniqueFd open_listen_socket(const std::string&, std::uint16_t, int,
                            std::uint16_t*) {
  unsupported();
}
UniqueFd connect_blocking(const std::string&, std::uint16_t) { unsupported(); }
WakeupPipe open_wakeup_pipe() { unsupported(); }
void signal_wakeup(int) { unsupported(); }

#endif

}  // namespace nas::net
