#include "net/protocol.hpp"

#include <vector>

namespace nas::net {

namespace {

/// Splits on runs of spaces/tabs.  The wire format is whitespace-delimited
/// tokens, so "Q  1   2" and "Q 1 2\t" parse identically.
[[nodiscard]] std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Strict decimal u64: digits only, overflow-checked.  Returns false on
/// anything else (signs, hex, empty, trailing junk).
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

[[nodiscard]] bool parse_vertex(std::string_view text, graph::Vertex universe,
                                graph::Vertex* out, std::string* error) {
  std::uint64_t value = 0;
  if (!parse_u64(text, &value)) {
    *error = "bad vertex id \"" + std::string(text) +
             "\" (expected a decimal integer)";
    return false;
  }
  if (value >= universe) {
    *error = "vertex " + std::to_string(value) + " out of range [0, " +
             std::to_string(universe) + ")";
    return false;
  }
  *out = static_cast<graph::Vertex>(value);
  return true;
}

[[nodiscard]] ParseOutcome parse_pair(
    const std::vector<std::string_view>& tokens, std::size_t first,
    graph::Vertex universe, Request::Kind kind) {
  ParseOutcome out;
  out.request.kind = kind;
  if (!parse_vertex(tokens[first], universe, &out.request.query.u,
                    &out.error) ||
      !parse_vertex(tokens[first + 1], universe, &out.request.query.v,
                    &out.error)) {
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace

bool is_blank_line(std::string_view line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t') return false;
  }
  return true;
}

ParseOutcome parse_request_line(std::string_view line, graph::Vertex universe,
                                std::uint64_t max_batch) {
  ParseOutcome out;
  const auto tokens = tokenize(line);
  if (tokens.empty()) {
    out.error = "empty request";
    return out;
  }
  const std::string_view command = tokens.front();

  if (command == "Q") {
    if (tokens.size() != 3) {
      out.error = "Q expects exactly two vertex ids (\"Q u v\")";
      return out;
    }
    return parse_pair(tokens, 1, universe, Request::Kind::kQuery);
  }

  if (command == "BATCH") {
    // A BATCH header we cannot trust leaves the body length unknown — the
    // next lines could be a body we'd misread as commands (or a body too
    // large to consume).  Framing is lost either way: fatal.
    out.request.kind = Request::Kind::kBatch;
    if (tokens.size() != 2) {
      out.error = "BATCH expects exactly one count (\"BATCH n\")";
      out.fatal = true;
      return out;
    }
    std::uint64_t n = 0;
    if (!parse_u64(tokens[1], &n)) {
      out.error = "bad batch count \"" + std::string(tokens[1]) +
                  "\" (expected a decimal integer)";
      out.fatal = true;
      return out;
    }
    if (n > max_batch) {
      out.error = "batch count " + std::to_string(n) +
                  " exceeds the server limit of " + std::to_string(max_batch);
      out.fatal = true;
      return out;
    }
    out.ok = true;
    out.request.batch_size = n;
    return out;
  }

  if (command == "STATS") {
    if (tokens.size() != 1) {
      out.error = "STATS takes no arguments";
      return out;
    }
    out.ok = true;
    out.request.kind = Request::Kind::kStats;
    return out;
  }

  if (command == "METRICS") {
    if (tokens.size() != 1) {
      out.error = "METRICS takes no arguments";
      return out;
    }
    out.ok = true;
    out.request.kind = Request::Kind::kMetrics;
    return out;
  }

  if (command == "QUIT") {
    if (tokens.size() != 1) {
      out.error = "QUIT takes no arguments";
      return out;
    }
    out.ok = true;
    out.request.kind = Request::Kind::kQuit;
    return out;
  }

  out.error = "unknown command \"" + std::string(command) +
              "\" (expected Q, BATCH, STATS, METRICS, or QUIT)";
  return out;
}

ParseOutcome parse_batch_line(std::string_view line, graph::Vertex universe) {
  ParseOutcome out;
  const auto tokens = tokenize(line);
  if (tokens.size() != 2) {
    out.error = "batch body line expects exactly two vertex ids (\"u v\")";
    return out;
  }
  out.request.kind = Request::Kind::kQuery;
  if (!parse_vertex(tokens[0], universe, &out.request.query.u, &out.error) ||
      !parse_vertex(tokens[1], universe, &out.request.query.v, &out.error)) {
    return out;
  }
  out.ok = true;
  return out;
}

LineStatus next_line(const std::string& buffer, std::size_t* pos,
                     std::size_t max_line_bytes, std::string* line) {
  const std::size_t newline = buffer.find('\n', *pos);
  if (newline == std::string::npos) {
    if (buffer.size() - *pos > max_line_bytes) return LineStatus::kOverlong;
    return LineStatus::kNeedMore;
  }
  std::size_t end = newline;
  if (end - *pos > max_line_bytes) return LineStatus::kOverlong;
  if (end > *pos && buffer[end - 1] == '\r') --end;
  line->assign(buffer, *pos, end - *pos);
  *pos = newline + 1;
  return LineStatus::kLine;
}

}  // namespace nas::net
