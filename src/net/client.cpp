#include "net/client.hpp"

#include <cerrno>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define NAS_HAVE_POSIX_NET 1
#include <sys/socket.h>
#include <sys/time.h>
#endif

namespace nas::net {

LineClient::LineClient(const std::string& host, std::uint16_t port,
                       std::uint64_t recv_timeout_ms)
    : fd_(connect_blocking(host, port)) {
#if NAS_HAVE_POSIX_NET
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000);
    if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) !=
        0) {
      throw_errno("set receive timeout", errno);
    }
  }
#else
  static_cast<void>(recv_timeout_ms);
#endif
}

void LineClient::send(std::string_view text) {
  int error = 0;
  if (!write_all(fd_.get(), text.data(), text.size(), &error)) {
    throw_errno("send request", error);
  }
}

std::optional<std::string> LineClient::recv_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      std::size_t end = newline;
      if (end > pos_ && buffer_[end - 1] == '\r') --end;
      std::string line = buffer_.substr(pos_, end - pos_);
      pos_ = newline + 1;
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      return line;
    }
    char chunk[4096];
    const IoResult r = read_some(fd_.get(), chunk, sizeof chunk);
    if (r.status == IoStatus::kOk) {
      buffer_.append(chunk, r.bytes);
      continue;
    }
    if (r.status == IoStatus::kEof) {
      if (pos_ < buffer_.size()) {
        throw std::runtime_error(
            "net: connection closed mid-line (partial: \"" +
            buffer_.substr(pos_) + "\")");
      }
      return std::nullopt;
    }
    if (r.status == IoStatus::kWouldBlock) {
      // SO_RCVTIMEO expiry on a blocking socket surfaces as EAGAIN.
      throw std::runtime_error("net: receive timed out waiting for a reply");
    }
    throw_errno("receive reply", r.error);
  }
}

std::vector<std::string> LineClient::recv_lines(std::size_t n) {
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto line = recv_line();
    if (!line.has_value()) {
      throw std::runtime_error("net: stream ended after " +
                               std::to_string(i) + " of " + std::to_string(n) +
                               " expected reply lines");
    }
    lines.push_back(std::move(*line));
  }
  return lines;
}

void LineClient::shutdown_write() {
#if NAS_HAVE_POSIX_NET
  const int rc = ::shutdown(fd_.get(), SHUT_WR);
  static_cast<void>(rc);  // already-reset peers are fine; reads continue
#endif
}

}  // namespace nas::net
