// Blocking line-protocol client for tests and the latency bench.
//
// Deliberately simple: one blocking connected socket, buffered line reads,
// `write_all` sends.  A receive timeout (default 30s) is armed on the
// socket so a wedged server fails a test with a clear error instead of
// hanging the suite.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/posix_io.hpp"

namespace nas::net {

class LineClient {
 public:
  /// Connects to `host:port` (IPv4 dotted quad).  Throws on failure.
  LineClient(const std::string& host, std::uint16_t port,
             std::uint64_t recv_timeout_ms = 30000);

  /// Sends `text` verbatim (callers include their own terminators).
  /// Throws on a connection error.
  void send(std::string_view text);

  /// One line, terminator stripped; std::nullopt on orderly EOF.  Throws on
  /// error or receive timeout.
  [[nodiscard]] std::optional<std::string> recv_line();

  /// Exactly `n` lines; throws if the stream ends first.
  [[nodiscard]] std::vector<std::string> recv_lines(std::size_t n);

  /// Half-close: no more sends; the server sees EOF after its replies.
  void shutdown_write();

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  UniqueFd fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace nas::net
