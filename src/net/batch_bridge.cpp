#include "net/batch_bridge.hpp"

#include <exception>
#include <utility>

#include "net/posix_io.hpp"

namespace nas::net {

BatchBridge::BatchBridge(serve::ShardedCluster& cluster, unsigned serve_threads,
                         std::size_t queue_depth, int wakeup_write_fd)
    : cluster_(cluster),
      serve_threads_(serve_threads),
      queue_depth_(queue_depth == 0 ? 1 : queue_depth),
      wakeup_write_fd_(wakeup_write_fd),
      worker_([this] { worker_main(); }) {}

BatchBridge::~BatchBridge() { shutdown(); }

bool BatchBridge::try_submit(BatchJob&& job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (jobs_.size() >= queue_depth_) return false;
    jobs_.push_back(std::move(job));
  }
  ++in_flight_;
  work_ready_.notify_one();
  return true;
}

std::vector<BatchResult> BatchBridge::drain_completions() {
  std::vector<BatchResult> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    while (!results_.empty()) {
      out.push_back(std::move(results_.front()));
      results_.pop_front();
    }
  }
  in_flight_ -= out.size();
  return out;
}

void BatchBridge::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Second call: the worker is already draining (or gone).
    }
    stopping_ = true;
  }
  work_ready_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void BatchBridge::worker_main() {
  for (;;) {
    BatchJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      // Drain-then-stop: queued jobs are answered even during shutdown, so
      // a graceful SIGTERM never drops an accepted request.
      if (jobs_.empty()) break;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    BatchResult result;
    result.kind = job.kind;
    result.connection_id = job.connection_id;
    result.queries = std::move(job.queries);
    switch (job.kind) {
      case BatchJob::Kind::kBatch:
        try {
          result.answers =
              cluster_.serve(result.queries, serve_threads_, &result.stats);
          lifetime_ += result.stats;
        } catch (const std::exception& e) {
          result.answers.clear();
          result.error = e.what();
        }
        break;
      // Snapshots run here — between serves, on the thread that owns the
      // cluster's counters — never on the loop thread, where they would
      // race an in-flight serve().
      case BatchJob::Kind::kStats:
        result.snapshot = serve::cluster_stats_fields(cluster_, lifetime_);
        break;
      case BatchJob::Kind::kMetrics:
        result.snapshot = serve::cluster_metrics_fields(cluster_);
        break;
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      results_.push_back(std::move(result));
    }
    signal_wakeup(wakeup_write_fd_);
  }
  // One parting wakeup so a loop blocked in wait() notices the worker is
  // done during shutdown even if no completion was pending.
  signal_wakeup(wakeup_write_fd_);
}

}  // namespace nas::net
