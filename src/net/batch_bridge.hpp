// The bounded-queue bridge between the IO event loop and the sharded
// cluster's batch path.
//
// The event loop must never block on a BFS: it stays IO-only, and all
// answering happens on a dedicated worker thread that feeds
// ShardedCluster::serve (which is one-serve-at-a-time by contract and
// parallelizes internally across its shard oracles).  The bridge is the
// only cross-thread seam in the daemon:
//
//   loop thread                      worker thread
//   -----------                      -------------
//   try_submit(job) --> [bounded FIFO] --> pop, cluster.serve(...)
//   drain_completions() <-- [FIFO] <------ push result, wakeup byte
//
// Ordering guarantee: jobs complete in submission order (single worker,
// FIFO queues), so every connection's responses come back in its own
// request order with no per-connection sequencing needed.  Backpressure:
// `try_submit` refuses past `queue_depth` instead of blocking — the loop
// parks the connection and retries after the next completion, so a burst
// of batches degrades to bounded memory, never to an unresponsive loop.
//
// A worker-side exception (impossible for validated requests, but the
// bridge does not get to assume that) is captured into the result's
// `error` field rather than tearing down the daemon.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "serve/cluster.hpp"
#include "util/json.hpp"

namespace nas::net {

struct BatchJob {
  /// What the worker should do.  kStats/kMetrics jobs carry no queries:
  /// they exist so cumulative cluster counters and metrics are *read on the
  /// thread that mutates them* — snapshotting on the loop thread while a
  /// serve() is in flight would race the worker.  Routing snapshots through
  /// the same FIFO also sequences them against the batches around them.
  enum class Kind { kBatch, kStats, kMetrics };
  Kind kind = Kind::kBatch;
  std::uint64_t connection_id = 0;
  std::vector<apps::Query> queries;  ///< kBatch only
};

struct BatchResult {
  BatchJob::Kind kind = BatchJob::Kind::kBatch;
  std::uint64_t connection_id = 0;
  std::vector<apps::Query> queries;   ///< echoed for answer rendering
  std::vector<std::uint32_t> answers; ///< empty when `error` is set
  serve::ClusterStats stats;
  /// kStats: cluster_stats_fields(cluster, lifetime counters);
  /// kMetrics: cluster_metrics_fields(cluster).  The loop thread appends
  /// its connection counters and renders.
  util::JsonObject snapshot;
  std::string error;                  ///< non-empty: serve() threw
};

class BatchBridge {
 public:
  /// `serve_threads` is passed through to every cluster.serve call;
  /// `wakeup_write_fd` receives one byte per completion (and one at worker
  /// exit) so the event loop never needs to poll the bridge.
  BatchBridge(serve::ShardedCluster& cluster, unsigned serve_threads,
              std::size_t queue_depth, int wakeup_write_fd);
  ~BatchBridge();
  BatchBridge(const BatchBridge&) = delete;
  BatchBridge& operator=(const BatchBridge&) = delete;

  /// Loop thread.  False when the queue is at capacity (the job is NOT
  /// consumed — the caller keeps it and retries after a completion).
  [[nodiscard]] bool try_submit(BatchJob&& job);

  /// Loop thread, after a wakeup byte: all results completed so far, in
  /// completion (= submission) order.
  [[nodiscard]] std::vector<BatchResult> drain_completions();

  /// Jobs submitted but not yet drained (loop-thread view).
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Finishes every queued job, then stops and joins the worker.  Called by
  /// the destructor; safe to call twice.
  void shutdown();

  /// Lifetime cluster counters accumulated by the worker (one += per batch,
  /// in completion order).  Only safe after shutdown() has joined the
  /// worker — the daemon reads it once, for the final --stats-json report.
  [[nodiscard]] const serve::ClusterStats& lifetime() const {
    return lifetime_;
  }

 private:
  void worker_main();

  serve::ShardedCluster& cluster_;
  const unsigned serve_threads_;
  const std::size_t queue_depth_;
  const int wakeup_write_fd_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<BatchJob> jobs_;
  std::deque<BatchResult> results_;
  bool stopping_ = false;

  std::size_t in_flight_ = 0;  ///< loop thread only
  serve::ClusterStats lifetime_;  ///< worker thread only (until joined)
  std::thread worker_;
};

}  // namespace nas::net
