#include "net/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/posix_io.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#endif

namespace nas::net {

#if defined(__linux__)

namespace {

[[nodiscard]] std::uint32_t interest_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

EventLoop::EventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (epoll_fd_ < 0) throw_errno("create epoll instance", errno);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) {
    const int rc = ::close(epoll_fd_);
    static_cast<void>(rc);
  }
}

void EventLoop::add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("register descriptor " + std::to_string(fd), errno);
  }
  ++watched_;
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("update descriptor " + std::to_string(fd), errno);
  }
}

void EventLoop::remove(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    throw_errno("deregister descriptor " + std::to_string(fd), errno);
  }
  --watched_;
}

const std::vector<ReadyEvent>& EventLoop::wait(int timeout_ms) {
  ready_.clear();
  std::vector<epoll_event> raw(std::max<std::size_t>(watched_, 1));
  const int n = ::epoll_wait(epoll_fd_, raw.data(),
                             static_cast<int>(raw.size()), timeout_ms);
  if (n < 0) {
    const int saved_errno = errno;
    if (saved_errno == EINTR) return ready_;  // caller re-checks and re-waits
    throw_errno("wait for readiness", saved_errno);
  }
  for (int i = 0; i < n; ++i) {
    const auto& ev = raw[static_cast<std::size_t>(i)];
    ReadyEvent out;
    out.fd = ev.data.fd;
    out.readable = (ev.events & EPOLLIN) != 0;
    out.writable = (ev.events & EPOLLOUT) != 0;
    out.broken = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
    ready_.push_back(out);
  }
  std::sort(ready_.begin(), ready_.end(),
            [](const ReadyEvent& a, const ReadyEvent& b) { return a.fd < b.fd; });
  return ready_;
}

#elif defined(__unix__) || defined(__APPLE__)

EventLoop::EventLoop() = default;
EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, bool want_read, bool want_write) {
  const auto it = std::lower_bound(
      interests_.begin(), interests_.end(), fd,
      [](const Interest& a, int key) { return a.fd < key; });
  if (it != interests_.end() && it->fd == fd) {
    throw std::runtime_error("net: descriptor " + std::to_string(fd) +
                             " registered twice");
  }
  interests_.insert(it, {fd, want_read, want_write});
  ++watched_;
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = std::lower_bound(
      interests_.begin(), interests_.end(), fd,
      [](const Interest& a, int key) { return a.fd < key; });
  if (it == interests_.end() || it->fd != fd) {
    throw std::runtime_error("net: descriptor " + std::to_string(fd) +
                             " not registered");
  }
  it->want_read = want_read;
  it->want_write = want_write;
}

void EventLoop::remove(int fd) {
  const auto it = std::lower_bound(
      interests_.begin(), interests_.end(), fd,
      [](const Interest& a, int key) { return a.fd < key; });
  if (it == interests_.end() || it->fd != fd) {
    throw std::runtime_error("net: descriptor " + std::to_string(fd) +
                             " not registered");
  }
  interests_.erase(it);
  --watched_;
}

const std::vector<ReadyEvent>& EventLoop::wait(int timeout_ms) {
  ready_.clear();
  std::vector<pollfd> fds;
  fds.reserve(interests_.size());
  for (const auto& interest : interests_) {
    pollfd p{};
    p.fd = interest.fd;
    if (interest.want_read) p.events |= POLLIN;
    if (interest.want_write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       timeout_ms);
  if (n < 0) {
    const int saved_errno = errno;
    if (saved_errno == EINTR) return ready_;
    throw_errno("wait for readiness", saved_errno);
  }
  // interests_ is sorted by fd, so the ready set comes out sorted too.
  for (const auto& p : fds) {
    if (p.revents == 0) continue;
    ReadyEvent out;
    out.fd = p.fd;
    out.readable = (p.revents & POLLIN) != 0;
    out.writable = (p.revents & POLLOUT) != 0;
    out.broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    ready_.push_back(out);
  }
  return ready_;
}

#else  // neither epoll nor poll: the posix_io stubs throw before any loop
       // is constructed, but the class must still link.

EventLoop::EventLoop() {
  throw std::runtime_error(
      "net: readiness multiplexing is unavailable on this platform");
}
EventLoop::~EventLoop() = default;
void EventLoop::add(int, bool, bool) {}
void EventLoop::modify(int, bool, bool) {}
void EventLoop::remove(int) {}
const std::vector<ReadyEvent>& EventLoop::wait(int) { return ready_; }

#endif

}  // namespace nas::net
