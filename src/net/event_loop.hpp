// Readiness multiplexer for the serving daemon: epoll on Linux, poll(2)
// everywhere else POSIX, behind one interface.
//
// Deliberately minimal — level-triggered readiness only, one interest set
// per descriptor, no callbacks.  The Server owns all session logic; the
// loop's single job is "which of these descriptors can make progress".
// Ready events are returned sorted by descriptor so the handling order for
// a fixed ready set is deterministic (kernel readiness order is not), in
// line with the repo's determinism discipline: answer bytes never depend on
// it either way, but deterministic traversal keeps behavior reproducible
// under a debugger.
#pragma once

#include <cstddef>
#include <vector>

namespace nas::net {

struct ReadyEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup condition (EPOLLERR/EPOLLHUP, POLLERR/POLLHUP/POLLNVAL).
  /// Reported alongside `readable` so handlers observe the pending EOF or
  /// the captured socket error through the normal read path.
  bool broken = false;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest set.  A descriptor is added at
  /// most once; update interest with `modify`.
  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Blocks until at least one registered descriptor is ready or
  /// `timeout_ms` elapses (-1 = no timeout; 0 = poll).  An interrupted wait
  /// (EINTR) returns an empty set — callers re-check their own state and
  /// wait again.  The returned reference is invalidated by the next call.
  [[nodiscard]] const std::vector<ReadyEvent>& wait(int timeout_ms);

  [[nodiscard]] std::size_t watched() const { return watched_; }

 private:
  std::size_t watched_ = 0;
  std::vector<ReadyEvent> ready_;
#if defined(__linux__)
  int epoll_fd_ = -1;
#else
  // poll fallback: interest list kept sorted by fd (insertion point via
  // binary search), rebuilt into pollfds on every wait.
  struct Interest {
    int fd;
    bool want_read;
    bool want_write;
  };
  std::vector<Interest> interests_;
#endif
};

}  // namespace nas::net
