#include "net/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/query_workload.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace nas::net {

namespace {

constexpr std::size_t kReadChunk = 4096;
/// Consumed-prefix size past which a buffer is compacted (amortized O(1)).
constexpr std::size_t kCompactBytes = 1 << 16;

}  // namespace

struct Server::Connection {
  UniqueFd fd;
  std::uint64_t id = 0;

  std::string in;          ///< appended by reads, consumed at `in_pos`
  std::size_t in_pos = 0;
  std::string out;         ///< appended by replies, flushed at `out_pos`
  std::size_t out_pos = 0;

  // Between a BATCH header and its last body line.  The first body error is
  // latched while the remaining (length-known) body lines are consumed, so
  // one bad pair costs one ERR, not the connection.
  bool collecting_batch = false;
  std::uint64_t batch_remaining = 0;
  std::string batch_error;
  std::vector<apps::Query> batch;

  bool awaiting_result = false;  ///< a job is at the bridge; parsing paused
  bool stalled = false;          ///< bridge queue full; `parked` waits
  BatchJob parked;

  bool read_closed = false;  ///< peer half-closed; drain buffer, then close
  bool want_close = false;   ///< close once `out` is flushed
  double last_active_ms = 0;

  // Interest currently registered with the event loop (diffed on update).
  bool reg_read = true;
  bool reg_write = false;

  [[nodiscard]] bool out_pending() const { return out_pos < out.size(); }
  [[nodiscard]] bool busy() const { return awaiting_result || stalled; }
};

/// All loop-thread state.  Lives on run()'s stack so a Server that never
/// runs (or has finished) holds no loop resources; Server itself keeps only
/// what request_stop() and port() need.
class Server::Impl {
 public:
  explicit Impl(Server& server)
      : s_(server),
        bridge_(server.cluster_, server.options_.serve_threads,
                server.options_.queue_depth,
                server.wakeup_.write_end.get()) {}

  void run_loop() {
    const int listen_fd = s_.listen_fd_.get();
    const int wakeup_fd = s_.wakeup_.read_end.get();
    loop_.add(listen_fd, /*want_read=*/true, /*want_write=*/false);
    loop_.add(wakeup_fd, /*want_read=*/true, /*want_write=*/false);
    listening_ = true;

    for (;;) {
      apply_stop();
      if (force_exit_) break;
      if (draining_) {
        if (conns_.empty()) break;
        if (timer_.millis() >= drain_deadline_ms_) break;
      }

      const auto& ready = loop_.wait(wait_timeout_ms());
      const double now = timer_.millis();

      // Accepts and completions are deferred past the per-connection events:
      // a close during this pass can recycle a descriptor number, and a
      // freshly accepted connection must never be hit by a stale ready
      // event carrying the same number.
      bool wakeup_ready = false;
      bool accept_ready = false;
      for (const auto& ev : ready) {
        if (ev.fd == wakeup_fd) {
          wakeup_ready = true;
        } else if (ev.fd == listen_fd) {
          accept_ready = true;
        } else {
          handle_conn_event(ev, now);
        }
      }
      if (wakeup_ready) {
        drain_wakeup_pipe(wakeup_fd);
        handle_completions(now);
      }
      if (accept_ready && listening_) accept_pending(now);
      if (s_.options_.idle_timeout_ms > 0) sweep_idle(now);
    }

    if (listening_) {
      loop_.remove(listen_fd);
      listening_ = false;
    }
    // Destructors: bridge_ joins its worker (finishing queued jobs whose
    // connections are gone), then conns_ closes every socket.
  }

 private:
  // --- shutdown -------------------------------------------------------------

  void apply_stop() {
    const unsigned stops =
        s_.stop_requests_.load(std::memory_order_acquire);
    if (stops >= 2) force_exit_ = true;
    if (stops == 0 || draining_) return;
    draining_ = true;
    drain_deadline_ms_ = timer_.millis() + static_cast<double>(
                                               s_.options_.drain_timeout_ms);
    if (listening_) {
      loop_.remove(s_.listen_fd_.get());
      listening_ = false;
    }
    // Every connection stops parsing; in-flight jobs still complete and
    // flush.  Collect descriptors first — finishing a connection can erase.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) {
      conn.want_close = true;
      fds.push_back(fd);
    }
    for (const int fd : fds) finish_conn(fd);
  }

  // --- accept ---------------------------------------------------------------

  void accept_pending(double now) {
    for (;;) {
      const AcceptResult r = accept_connection(s_.listen_fd_.get());
      if (r.status == IoStatus::kWouldBlock) break;
      if (r.status == IoStatus::kError) {
        // Transient exhaustion (EMFILE/ENFILE/ENOMEM): stop accepting this
        // round; the listen socket stays registered and we retry later.
        break;
      }
      UniqueFd fd(r.fd);
      if (conns_.size() >= s_.options_.max_conns) {
        ++s_.totals_.connections_rejected;
        // Best-effort courtesy on the still-blocking descriptor; the
        // close that follows is the real answer.
        static const char kBusy[] = "ERR server busy\n";
        int err = 0;
        const bool sent = write_all(fd.get(), kBusy, sizeof kBusy - 1, &err);
        static_cast<void>(sent);
        continue;
      }
      set_nonblocking(fd.get());
      set_cloexec(fd.get());
      set_nodelay(fd.get());
      ++s_.totals_.connections_accepted;
      Connection conn;
      conn.fd = std::move(fd);
      conn.id = next_id_++;
      conn.last_active_ms = now;
      const int raw = conn.fd.get();
      loop_.add(raw, /*want_read=*/true, /*want_write=*/false);
      id_to_fd_[conn.id] = raw;
      conns_.emplace(raw, std::move(conn));
    }
  }

  // --- per-connection events ------------------------------------------------

  void handle_conn_event(const ReadyEvent& ev, double now) {
    const auto it = conns_.find(ev.fd);
    if (it == conns_.end()) return;
    Connection& conn = it->second;
    if (ev.broken && conn.busy()) {
      // The peer is gone while its job is queued or running: the answer is
      // undeliverable, and with read interest off the hangup event would
      // otherwise re-fire every wait.  The in-flight result is dropped at
      // completion time (the id no longer resolves).
      close_conn(ev.fd);
      return;
    }
    if ((ev.readable || ev.broken) && !conn.busy() && !conn.want_close) {
      if (!read_into(conn, now)) {
        close_conn(ev.fd);
        return;
      }
      process_input(conn, now);
    }
    finish_conn(ev.fd);
  }

  /// Flush + close-if-done + interest refresh; safe on a just-erased fd.
  void finish_conn(int fd) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Connection& conn = it->second;
    if (!flush_out(conn)) {
      close_conn(fd);
      return;
    }
    if (conn.want_close && !conn.out_pending() && !conn.busy()) {
      close_conn(fd);
      return;
    }
    update_interest(conn);
  }

  /// Appends everything the socket has.  False on a hard error.
  [[nodiscard]] bool read_into(Connection& conn, double now) {
    char chunk[kReadChunk];
    for (;;) {
      const IoResult r = read_some(conn.fd.get(), chunk, sizeof chunk);
      if (r.status == IoStatus::kOk) {
        conn.in.append(chunk, r.bytes);
        conn.last_active_ms = now;
        continue;
      }
      if (r.status == IoStatus::kWouldBlock) return true;
      if (r.status == IoStatus::kEof) {
        conn.read_closed = true;
        return true;
      }
      return false;  // kError: reset/timeout — nothing left to salvage
    }
  }

  void process_input(Connection& conn, double now) {
    std::string line;
    while (!conn.busy() && !conn.want_close) {
      const LineStatus st = next_line(conn.in, &conn.in_pos,
                                      s_.options_.max_line_bytes, &line);
      if (st == LineStatus::kNeedMore) {
        if (conn.read_closed) {
          if (conn.collecting_batch) {
            ++s_.totals_.protocol_errors;
            send_line(conn,
                      "ERR truncated BATCH: " +
                          std::to_string(conn.batch_remaining) +
                          " body line(s) missing",
                      now);
            conn.collecting_batch = false;
          }
          conn.want_close = true;  // orderly EOF (any partial line is junk)
        }
        break;
      }
      if (st == LineStatus::kOverlong) {
        ++s_.totals_.protocol_errors;
        send_line(conn,
                  "ERR line exceeds " +
                      std::to_string(s_.options_.max_line_bytes) + " bytes",
                  now);
        conn.want_close = true;
        break;
      }
      handle_line(conn, line, now);
    }
    // Amortized compaction of the consumed prefix.
    if (conn.in_pos == conn.in.size()) {
      conn.in.clear();
      conn.in_pos = 0;
    } else if (conn.in_pos > kCompactBytes) {
      conn.in.erase(0, conn.in_pos);
      conn.in_pos = 0;
    }
  }

  void handle_line(Connection& conn, const std::string& line, double now) {
    if (conn.collecting_batch) {
      const ParseOutcome body = parse_batch_line(line, universe());
      if (body.ok) {
        if (conn.batch_error.empty()) conn.batch.push_back(body.request.query);
      } else if (conn.batch_error.empty()) {
        conn.batch_error = body.error;
      }
      if (--conn.batch_remaining > 0) return;
      conn.collecting_batch = false;
      if (!conn.batch_error.empty()) {
        ++s_.totals_.protocol_errors;
        send_line(conn, "ERR " + conn.batch_error, now);
        conn.batch.clear();
        conn.batch_error.clear();
        return;
      }
      s_.totals_.requests += conn.batch.size();
      submit(conn, std::move(conn.batch));
      conn.batch = {};
      return;
    }

    if (is_blank_line(line)) return;
    const ParseOutcome parsed =
        parse_request_line(line, universe(), s_.options_.max_batch);
    if (!parsed.ok) {
      ++s_.totals_.protocol_errors;
      send_line(conn, "ERR " + parsed.error, now);
      if (parsed.fatal) conn.want_close = true;
      return;
    }
    switch (parsed.request.kind) {
      case Request::Kind::kQuery:
        ++s_.totals_.requests;
        submit(conn, {parsed.request.query});
        break;
      case Request::Kind::kBatch:
        ++s_.totals_.batches;
        if (parsed.request.batch_size == 0) break;  // vacuous: no reply
        conn.collecting_batch = true;
        conn.batch_remaining = parsed.request.batch_size;
        conn.batch.clear();
        conn.batch_error.clear();
        break;
      case Request::Kind::kStats: {
        // Snapshots route through the bridge: the worker owns every cluster
        // counter, so reading them here would race an in-flight serve().
        ++s_.totals_.stats_requests;
        BatchJob job;
        job.kind = BatchJob::Kind::kStats;
        submit_job(conn, std::move(job));
        break;
      }
      case Request::Kind::kMetrics: {
        ++s_.totals_.metrics_requests;
        BatchJob job;
        job.kind = BatchJob::Kind::kMetrics;
        submit_job(conn, std::move(job));
        break;
      }
      case Request::Kind::kQuit:
        send_line(conn, "BYE", now);
        conn.want_close = true;
        break;
    }
  }

  // --- the bridge -----------------------------------------------------------

  void submit(Connection& conn, std::vector<apps::Query> queries) {
    BatchJob job;
    job.queries = std::move(queries);
    submit_job(conn, std::move(job));
  }

  void submit_job(Connection& conn, BatchJob job) {
    job.connection_id = conn.id;
    if (bridge_.try_submit(std::move(job))) {
      conn.awaiting_result = true;
      return;
    }
    // Queue full: park the job (try_submit left it intact) and join the
    // stalled FIFO — admission stays in arrival order under overload.
    conn.stalled = true;
    conn.parked = std::move(job);
    stalled_.push_back(conn.id);
  }

  void drain_wakeup_pipe(int wakeup_fd) {
    char sink[64];
    for (;;) {
      const IoResult r = read_some(wakeup_fd, sink, sizeof sink);
      if (r.status != IoStatus::kOk) break;  // kWouldBlock: drained
    }
  }

  void handle_completions(double now) {
    for (auto& result : bridge_.drain_completions()) {
      if (result.kind == BatchJob::Kind::kBatch) {
        s_.totals_.cluster += result.stats;
      }
      const auto idit = id_to_fd_.find(result.connection_id);
      if (idit == id_to_fd_.end()) continue;  // connection died in flight
      const int fd = idit->second;
      Connection& conn = conns_.at(fd);
      conn.awaiting_result = false;
      if (!result.error.empty()) {
        // serve() threw — should be unreachable for validated requests, but
        // the reply count is now unknowable, so the framing is forfeit.
        send_line(conn, "ERR internal: " + result.error, now);
        conn.want_close = true;
      } else if (result.kind == BatchJob::Kind::kStats) {
        util::JsonObject fields = std::move(result.snapshot);
        append_server_fields(&fields);
        send_line(conn, util::render_json_object(fields), now);
      } else if (result.kind == BatchJob::Kind::kMetrics) {
        send_line(conn, util::render_json_object(result.snapshot), now);
      } else {
        std::ostringstream os;
        apps::write_answers(result.queries, result.answers, os);
        append_out(conn, os.str(), now);
      }
      if (!conn.want_close) process_input(conn, now);  // buffered pipeline
      finish_conn(fd);
    }
    unstall();
  }

  void unstall() {
    while (!stalled_.empty()) {
      const std::uint64_t id = stalled_.front();
      const auto idit = id_to_fd_.find(id);
      if (idit == id_to_fd_.end()) {
        stalled_.pop_front();  // closed while parked; job dropped with it
        continue;
      }
      Connection& conn = conns_.at(idit->second);
      if (!bridge_.try_submit(std::move(conn.parked))) break;
      conn.stalled = false;
      conn.awaiting_result = true;
      conn.parked = BatchJob{};
      stalled_.pop_front();
      update_interest(conn);
    }
  }

  // --- output ---------------------------------------------------------------

  void append_out(Connection& conn, std::string text, double now) {
    if (conn.out.empty()) {
      conn.out = std::move(text);
    } else {
      conn.out += text;
    }
    conn.last_active_ms = now;
  }

  void send_line(Connection& conn, const std::string& line, double now) {
    append_out(conn, line + "\n", now);
  }

  /// Writes as much of `out` as the socket takes.  False on a hard error.
  [[nodiscard]] bool flush_out(Connection& conn) {
    while (conn.out_pending()) {
      const IoResult r =
          write_some(conn.fd.get(), conn.out.data() + conn.out_pos,
                     conn.out.size() - conn.out_pos);
      if (r.status == IoStatus::kOk) {
        conn.out_pos += r.bytes;
        continue;
      }
      if (r.status == IoStatus::kWouldBlock) break;
      return false;  // kError (EPIPE after MSG_NOSIGNAL, reset, ...)
    }
    if (!conn.out_pending()) {
      conn.out.clear();
      conn.out_pos = 0;
    } else if (conn.out_pos > kCompactBytes) {
      conn.out.erase(0, conn.out_pos);
      conn.out_pos = 0;
    }
    return true;
  }

  // --- bookkeeping ----------------------------------------------------------

  void update_interest(Connection& conn) {
    const bool want_read = !conn.read_closed && !conn.want_close &&
                           !conn.busy();
    const bool want_write = conn.out_pending();
    if (want_read == conn.reg_read && want_write == conn.reg_write) return;
    loop_.modify(conn.fd.get(), want_read, want_write);
    conn.reg_read = want_read;
    conn.reg_write = want_write;
  }

  void close_conn(int fd) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    loop_.remove(fd);
    id_to_fd_.erase(it->second.id);
    conns_.erase(it);  // UniqueFd closes the socket
  }

  void sweep_idle(double now) {
    const auto timeout = static_cast<double>(s_.options_.idle_timeout_ms);
    std::vector<int> victims;
    for (const auto& [fd, conn] : conns_) {
      if (conn.busy() || conn.want_close) continue;
      if (now - conn.last_active_ms >= timeout) victims.push_back(fd);
    }
    for (const int fd : victims) {
      ++s_.totals_.idle_closed;
      close_conn(fd);
    }
  }

  [[nodiscard]] int wait_timeout_ms() const {
    const double now = timer_.millis();
    double best = std::numeric_limits<double>::infinity();
    if (draining_) best = std::min(best, drain_deadline_ms_ - now);
    if (s_.options_.idle_timeout_ms > 0) {
      const auto timeout = static_cast<double>(s_.options_.idle_timeout_ms);
      for (const auto& [fd, conn] : conns_) {
        if (conn.busy() || conn.want_close) continue;
        best = std::min(best, conn.last_active_ms + timeout - now);
      }
    }
    if (!std::isfinite(best)) return -1;
    if (best <= 0) return 0;
    // +1: round up so a wait never expires a hair before its deadline.
    return static_cast<int>(best) + 1;
  }

  [[nodiscard]] graph::Vertex universe() const {
    return s_.cluster_.universe();
  }

  /// The loop thread's own counters, appended to a worker-built STATS
  /// snapshot at completion time.
  void append_server_fields(util::JsonObject* fields) const {
    const auto& t = s_.totals_;
    fields->emplace_back("connections_accepted",
                         util::JsonValue::number(t.connections_accepted));
    fields->emplace_back("connections_rejected",
                         util::JsonValue::number(t.connections_rejected));
    fields->emplace_back(
        "connections_open",
        util::JsonValue::number(static_cast<std::uint64_t>(conns_.size())));
    fields->emplace_back("served_requests",
                         util::JsonValue::number(t.requests));
    fields->emplace_back("served_batches", util::JsonValue::number(t.batches));
    fields->emplace_back("stats_requests",
                         util::JsonValue::number(t.stats_requests));
    fields->emplace_back("metrics_requests",
                         util::JsonValue::number(t.metrics_requests));
    fields->emplace_back("protocol_errors",
                         util::JsonValue::number(t.protocol_errors));
    fields->emplace_back("idle_closed", util::JsonValue::number(t.idle_closed));
  }

  Server& s_;
  EventLoop loop_;
  BatchBridge bridge_;
  util::Timer timer_;

  std::map<int, Connection> conns_;             ///< by descriptor
  std::map<std::uint64_t, int> id_to_fd_;       ///< live connection ids
  std::deque<std::uint64_t> stalled_;           ///< overload FIFO (by id)
  std::uint64_t next_id_ = 1;

  bool listening_ = false;
  bool draining_ = false;
  bool force_exit_ = false;
  double drain_deadline_ms_ = 0;
};

Server::Server(serve::ShardedCluster& cluster, const ServerOptions& options)
    : cluster_(cluster), options_(options) {
  listen_fd_ = open_listen_socket(options_.listen, options_.port,
                                  /*backlog=*/128, &bound_port_);
  wakeup_ = open_wakeup_pipe();
}

Server::~Server() = default;

void Server::run() {
  Impl impl(*this);
  impl.run_loop();
}

void Server::request_stop() {
  stop_requests_.fetch_add(1, std::memory_order_release);
  signal_wakeup(wakeup_.write_end.get());
}

}  // namespace nas::net
