// The nas_served event loop: a single-threaded readiness server speaking
// the `src/net/protocol.hpp` line protocol over the sharded cluster.
//
// Threading model — exactly two threads touch a running Server:
//
//   * the loop thread (run()) owns every socket, buffer, and connection
//     state; it never computes a distance.
//   * the BatchBridge worker owns the cluster; it never touches a socket.
//
// The only shared state is the bridge's two locked FIFOs plus one atomic
// stop flag, so the TSan job can hold the whole design in its head.
// STATS/METRICS snapshots obey the same split: the loop thread never reads
// a cluster counter directly (that would race an in-flight serve()) — it
// submits a snapshot job, the worker captures the fields between serves,
// and the loop appends its own connection counters before replying.
//
// Per-connection sequencing: one command is in flight at a time.  While a
// connection waits on the bridge its read interest is dropped (kernel-level
// backpressure: a client blasting batches fills its socket buffer instead
// of our heap) and parsing is paused, so responses are trivially in request
// order.  When the bridge's bounded queue is full the connection parks its
// job in a FIFO of stalled connections and retries after the next
// completion — admission order is preserved even under overload.
//
// Shutdown: `request_stop` is async-signal-safe (atomic increment + one
// self-pipe write) so SIGINT/SIGTERM handlers can call it directly.  The
// first stop closes the listen socket, lets in-flight batches finish and
// flush (bounded by `drain_timeout_ms`), and closes idle connections; a
// second stop abandons the drain and exits the loop immediately.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "net/batch_bridge.hpp"
#include "net/posix_io.hpp"
#include "serve/cluster.hpp"

namespace nas::net {

struct ServerOptions {
  std::string listen = "127.0.0.1";  ///< IPv4 dotted quad to bind
  std::uint16_t port = 0;            ///< 0 = kernel-assigned ephemeral port
  std::size_t max_conns = 256;       ///< beyond this: "ERR server busy"
  std::uint64_t idle_timeout_ms = 60000;  ///< 0 = never idle-close
  std::size_t max_line_bytes = 4096;      ///< per-line cap; overlong = fatal
  std::uint64_t max_batch = 1ull << 16;   ///< BATCH n ceiling
  std::size_t queue_depth = 64;           ///< bridge jobs buffered at most
  unsigned serve_threads = 1;  ///< cluster.serve threads per batch (0 = all)
  std::uint64_t drain_timeout_ms = 5000;  ///< graceful-shutdown bound
};

/// Lifetime counters, readable after run() returns (or from the loop
/// thread).  `cluster` accumulates every answered batch's ClusterStats.
struct ServerTotals {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< turned away at max_conns
  std::uint64_t requests = 0;              ///< individual queries answered
  std::uint64_t batches = 0;               ///< BATCH commands accepted
  std::uint64_t stats_requests = 0;
  std::uint64_t metrics_requests = 0;
  std::uint64_t protocol_errors = 0;       ///< ERR lines sent
  std::uint64_t idle_closed = 0;
  serve::ClusterStats cluster;
};

class Server {
 public:
  /// Binds and listens immediately (so `port()` is valid before `run`),
  /// but accepts nothing until `run` starts.  Throws on bind failure.
  Server(serve::ShardedCluster& cluster, const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until `request_stop`.  Call at most once.
  void run();

  /// Async-signal-safe stop: first call drains gracefully, second call
  /// exits the loop without waiting.  Callable from any thread or from a
  /// signal handler.
  void request_stop();

  [[nodiscard]] std::uint16_t port() const { return bound_port_; }
  [[nodiscard]] const ServerTotals& totals() const { return totals_; }

 private:
  struct Connection;
  class Impl;

  serve::ShardedCluster& cluster_;
  const ServerOptions options_;
  UniqueFd listen_fd_;
  std::uint16_t bound_port_ = 0;
  WakeupPipe wakeup_;
  std::atomic<unsigned> stop_requests_{0};
  ServerTotals totals_;
};

}  // namespace nas::net
