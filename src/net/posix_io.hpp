// EINTR-safe POSIX socket primitives for the serving daemon.
//
// Every raw descriptor operation the network layer performs goes through
// this file, for three reasons the rest of `src/net` depends on:
//
//   * EINTR discipline — `read_some`/`write_some`/`accept_connection` retry
//     interrupted calls internally, so callers never see a spurious failure
//     because a signal (SIGINT during graceful shutdown, a profiler tick)
//     landed mid-syscall.
//   * Short-transfer discipline — the `*_some` calls report exactly how many
//     bytes moved and classify the outcome (`kOk`/`kWouldBlock`/`kEof`/
//     `kError`), so partial reads and writes are explicit states the event
//     loop handles, never silently-dropped bytes.  `write_all` is the
//     blocking-side loop (client/tests) that keeps writing until everything
//     moved or a real error occurred.
//   * errno discipline — error text is built from the errno captured at the
//     failing call site, *before* any cleanup (`::close` can clobber errno;
//     see the MappedFile::map regression this repo carries a test for).
//
// Socket writes use MSG_NOSIGNAL so a peer that disappeared mid-response
// surfaces as EPIPE on the one affected connection instead of a
// process-killing SIGPIPE.  On non-POSIX platforms every entry point throws
// std::runtime_error — the serving daemon is a POSIX feature; the rest of
// the repo builds and runs without it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace nas::net {

/// Builds "net: cannot <what>: <strerror(saved_errno)>".  Pass the errno
/// captured immediately after the failing call.
[[nodiscard]] std::string errno_message(const std::string& what,
                                        int saved_errno);

/// Throws std::runtime_error with `errno_message(what, saved_errno)`.
[[noreturn]] void throw_errno(const std::string& what, int saved_errno);

/// Move-only owning file descriptor (closed exactly once on destruction).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Outcome classification for one descriptor operation.
enum class IoStatus {
  kOk,          ///< >= 1 byte moved (`bytes` says how many)
  kWouldBlock,  ///< non-blocking fd has no room/data right now
  kEof,         ///< orderly end of stream (reads only)
  kError,       ///< real failure; `error` holds the captured errno
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;  ///< bytes transferred (kOk only)
  int error = 0;          ///< errno captured at the failing call (kError only)
};

/// Reads up to `cap` bytes.  Retries EINTR; never throws.
[[nodiscard]] IoResult read_some(int fd, void* buf, std::size_t cap);

/// Writes up to `len` bytes (socket send with MSG_NOSIGNAL).  A short write
/// returns kOk with the partial count — callers keep the rest buffered.
/// Retries EINTR; never throws.
[[nodiscard]] IoResult write_some(int fd, const void* buf, std::size_t len);

/// Blocking-side helper: loops `write_some` until all `len` bytes moved.
/// Returns false (with the captured errno in `*error` when non-null) on a
/// real error; EINTR and short writes are handled internally.
[[nodiscard]] bool write_all(int fd, const void* buf, std::size_t len,
                             int* error = nullptr);

struct AcceptResult {
  IoStatus status = IoStatus::kError;
  int fd = -1;  ///< the accepted connection (kOk only); caller owns it
  int error = 0;
};

/// Accepts one pending connection from a non-blocking listen socket.
/// Retries EINTR and ECONNABORTED (the peer gave up while queued — not an
/// error worth surfacing); kWouldBlock means the backlog is drained.
[[nodiscard]] AcceptResult accept_connection(int listen_fd);

/// Sets O_NONBLOCK / FD_CLOEXEC.  Throw on fcntl failure.
void set_nonblocking(int fd);
void set_cloexec(int fd);

/// Best-effort TCP_NODELAY (the line protocol is latency-bound; Nagle only
/// adds round-trip delay to one-line responses).  Never fails visibly.
void set_nodelay(int fd);

/// Opens a TCP listen socket bound to `host:port` (IPv4 dotted quad;
/// port 0 = kernel-assigned ephemeral port), non-blocking, SO_REUSEADDR.
/// The actually-bound port is stored in `*bound_port`.  Throws on failure.
[[nodiscard]] UniqueFd open_listen_socket(const std::string& host,
                                          std::uint16_t port, int backlog,
                                          std::uint16_t* bound_port);

/// Blocking client connect to `host:port` (IPv4 dotted quad), TCP_NODELAY.
/// Throws on failure.
[[nodiscard]] UniqueFd connect_blocking(const std::string& host,
                                        std::uint16_t port);

/// A non-blocking self-pipe: worker threads (and signal handlers) write one
/// byte to `write_end` to wake the event loop; the loop drains `read_end`.
struct WakeupPipe {
  UniqueFd read_end;
  UniqueFd write_end;
};
[[nodiscard]] WakeupPipe open_wakeup_pipe();

/// Writes one byte to a wakeup pipe.  Async-signal-safe (one ::write call,
/// no allocation).  A full pipe (EAGAIN) counts as success — the reader has
/// wakeups queued already.
void signal_wakeup(int wakeup_write_fd);

}  // namespace nas::net
