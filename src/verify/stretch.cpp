#include "verify/stretch.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include "graph/bfs_kernel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nas::verify {

using graph::Graph;
using graph::kInfDist;
using graph::Vertex;

namespace {

/// Everything one source contributes to the report.  A partial is computed
/// identically no matter which worker runs it, and partials are merged in
/// source order — that is the whole determinism argument for the sharded
/// verifier.
struct SourceAccum {
  std::uint64_t pairs = 0;
  std::uint64_t disconnected = 0;  // d_G finite but d_H infinite
  std::uint64_t violations = 0;    // excess beyond A (+ float tolerance)
  double max_mult = 1.0;
  double mult_sum = 0.0;
  std::uint64_t mult_count = 0;
  std::uint64_t max_additive = 0;
  double max_excess = 0.0;  // worst_* is a real witness iff this is > 0
  Vertex worst_v = graph::kInvalidVertex;
  std::uint32_t worst_dg = 0;
  std::uint32_t worst_dh = 0;
};

/// Per-shard scratch: one direction-optimizing BfsScratch per graph, reused
/// across the shard's sources, so a shard of k sources costs zero
/// allocations after its first source and resets distances in O(active)
/// per source instead of two O(n) fills.
struct Scratch {
  graph::BfsScratch dg;
  graph::BfsScratch dh;
};

SourceAccum accumulate_source(const graph::Csr& g, const graph::Csr& h,
                              Vertex s, double m, double a, Scratch& scratch) {
  scratch.dg.run(g, s, graph::BfsKernel::kAuto);
  scratch.dh.run(h, s, graph::BfsKernel::kAuto);
  SourceAccum acc;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t dgv = scratch.dg.distance(v);
    if (v == s || dgv == kInfDist) continue;
    ++acc.pairs;
    const std::uint32_t dhv = scratch.dh.distance(v);
    if (dhv == kInfDist) {
      ++acc.disconnected;
      continue;
    }
    const double ratio = static_cast<double>(dhv) / static_cast<double>(dgv);
    acc.max_mult = std::max(acc.max_mult, ratio);
    acc.mult_sum += ratio;
    ++acc.mult_count;
    acc.max_additive = std::max<std::uint64_t>(acc.max_additive,
                                               dhv - std::min(dhv, dgv));
    const double excess =
        static_cast<double>(dhv) - m * static_cast<double>(dgv);
    if (excess > acc.max_excess) {
      acc.max_excess = excess;
      acc.worst_v = v;
      acc.worst_dg = dgv;
      acc.worst_dh = dhv;
    }
    if (excess > a + 1e-9) ++acc.violations;
  }
  return acc;
}

/// Shared driver behind the exact and sampled entry points: per-source
/// partials (sharded across a worker pool when threads != 1), then a
/// deterministic merge in source order with first-wins tie-breaking on the
/// worst pair.
StretchReport verify_over_sources(const Graph& g, const Graph& h,
                                  const std::vector<Vertex>& sources, double m,
                                  double a, unsigned threads) {
  if (g.num_vertices() != h.num_vertices()) {
    throw std::invalid_argument("verify_stretch: vertex count mismatch");
  }
  // Convert both adjacencies to CSR once and run every BFS on the flat
  // arrays (same neighbor order, so the report stays bit-identical to the
  // adjacency-list path the verifier used before).
  const graph::Csr gc = graph::Csr::from_graph(g);
  const graph::Csr hc = graph::Csr::from_graph(h);
  std::vector<SourceAccum> partials(sources.size());
  util::ThreadPool::run_sharded(
      sources.size(), threads, [&](std::size_t begin, std::size_t end) {
        Scratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
          partials[i] = accumulate_source(gc, hc, sources[i], m, a, scratch);
        }
      });

  StretchReport rep;
  double mult_sum = 0.0;
  std::uint64_t mult_count = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SourceAccum& sa = partials[i];
    rep.pairs_checked += sa.pairs;
    if (sa.disconnected > 0) {
      rep.connectivity_ok = false;
      rep.bound_ok = false;
    }
    if (sa.violations > 0) rep.bound_ok = false;
    rep.max_multiplicative = std::max(rep.max_multiplicative, sa.max_mult);
    mult_sum += sa.mult_sum;
    mult_count += sa.mult_count;
    rep.max_additive = std::max(rep.max_additive, sa.max_additive);
    if (sa.max_excess > rep.max_excess) {
      rep.max_excess = sa.max_excess;
      rep.worst_u = sources[i];
      rep.worst_v = sa.worst_v;
      rep.worst_dg = sa.worst_dg;
      rep.worst_dh = sa.worst_dh;
    }
  }
  rep.mean_multiplicative = mult_count ? mult_sum / mult_count : 1.0;
  return rep;
}

}  // namespace

bool bit_identical(const StretchReport& a, const StretchReport& b) {
  const auto bits = [](double x) { return std::bit_cast<std::uint64_t>(x); };
  return a.bound_ok == b.bound_ok && a.connectivity_ok == b.connectivity_ok &&
         a.pairs_checked == b.pairs_checked &&
         bits(a.max_multiplicative) == bits(b.max_multiplicative) &&
         bits(a.mean_multiplicative) == bits(b.mean_multiplicative) &&
         a.max_additive == b.max_additive &&
         bits(a.max_excess) == bits(b.max_excess) && a.worst_u == b.worst_u &&
         a.worst_v == b.worst_v && a.worst_dg == b.worst_dg &&
         a.worst_dh == b.worst_dh;
}

StretchReport verify_stretch_exact(const Graph& g, const Graph& h, double m,
                                   double a, unsigned threads) {
  std::vector<Vertex> sources(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) sources[v] = v;
  return verify_over_sources(g, h, sources, m, a, threads);
}

StretchReport verify_stretch_sampled(const Graph& g, const Graph& h, double m,
                                     double a, std::uint32_t num_sources,
                                     std::uint64_t seed, unsigned threads) {
  const Vertex n = g.num_vertices();
  util::Xoshiro256 rng(seed);
  std::vector<Vertex> sources;
  if (num_sources >= n) {
    for (Vertex v = 0; v < n; ++v) sources.push_back(v);
  } else {
    std::vector<std::uint8_t> picked(n, 0);
    while (sources.size() < num_sources) {
      const auto s = static_cast<Vertex>(rng.below(n));
      if (!picked[s]) {
        picked[s] = 1;
        sources.push_back(s);
      }
    }
    std::sort(sources.begin(), sources.end());
  }
  return verify_over_sources(g, h, sources, m, a, threads);
}

}  // namespace nas::verify
