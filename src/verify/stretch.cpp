#include "verify/stretch.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace nas::verify {

using graph::Graph;
using graph::kInfDist;
using graph::Vertex;

namespace {

void accumulate_source(const Graph& g, const Graph& h, Vertex s, double m,
                       double a, StretchReport& rep, double& mult_sum,
                       std::uint64_t& mult_count) {
  const auto dg = graph::bfs(g, s);
  const auto dh = graph::bfs(h, s);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == s || dg.dist[v] == kInfDist) continue;
    ++rep.pairs_checked;
    if (dh.dist[v] == kInfDist) {
      rep.connectivity_ok = false;
      rep.bound_ok = false;
      continue;
    }
    const double ratio =
        static_cast<double>(dh.dist[v]) / static_cast<double>(dg.dist[v]);
    rep.max_multiplicative = std::max(rep.max_multiplicative, ratio);
    mult_sum += ratio;
    ++mult_count;
    rep.max_additive = std::max<std::uint64_t>(
        rep.max_additive, dh.dist[v] - std::min(dh.dist[v], dg.dist[v]));
    const double excess =
        static_cast<double>(dh.dist[v]) - m * static_cast<double>(dg.dist[v]);
    if (excess > rep.max_excess) {
      rep.max_excess = excess;
      rep.worst_u = s;
      rep.worst_v = v;
      rep.worst_dg = dg.dist[v];
      rep.worst_dh = dh.dist[v];
    }
    if (excess > a + 1e-9) rep.bound_ok = false;
  }
}

}  // namespace

StretchReport verify_stretch_exact(const Graph& g, const Graph& h, double m,
                                   double a) {
  if (g.num_vertices() != h.num_vertices()) {
    throw std::invalid_argument("verify_stretch: vertex count mismatch");
  }
  StretchReport rep;
  double mult_sum = 0.0;
  std::uint64_t mult_count = 0;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    accumulate_source(g, h, s, m, a, rep, mult_sum, mult_count);
  }
  rep.mean_multiplicative = mult_count ? mult_sum / mult_count : 1.0;
  return rep;
}

StretchReport verify_stretch_sampled(const Graph& g, const Graph& h, double m,
                                     double a, std::uint32_t num_sources,
                                     std::uint64_t seed) {
  if (g.num_vertices() != h.num_vertices()) {
    throw std::invalid_argument("verify_stretch: vertex count mismatch");
  }
  StretchReport rep;
  double mult_sum = 0.0;
  std::uint64_t mult_count = 0;
  const Vertex n = g.num_vertices();
  util::Xoshiro256 rng(seed);
  std::vector<Vertex> sources;
  if (num_sources >= n) {
    for (Vertex v = 0; v < n; ++v) sources.push_back(v);
  } else {
    std::vector<std::uint8_t> picked(n, 0);
    while (sources.size() < num_sources) {
      const auto s = static_cast<Vertex>(rng.below(n));
      if (!picked[s]) {
        picked[s] = 1;
        sources.push_back(s);
      }
    }
    std::sort(sources.begin(), sources.end());
  }
  for (Vertex s : sources) {
    accumulate_source(g, h, s, m, a, rep, mult_sum, mult_count);
  }
  rep.mean_multiplicative = mult_count ? mult_sum / mult_count : 1.0;
  return rep;
}

}  // namespace nas::verify
