// Stretch verification: compares distances in the spanner H against the
// input graph G and checks the (M, A) guarantee d_H ≤ M·d_G + A.
//
// `verify_stretch_exact` checks every pair (O(n·m) BFS work) and is the
// test-suite oracle; `verify_stretch_sampled` BFS-es from a deterministic
// sample of sources and is used at bench scale.
//
// Both verifiers are source-sharded: with `threads` > 1 the BFS sources are
// split into contiguous blocks processed on a worker pool, and the
// per-source partial reports are merged afterwards in fixed source order.
// Because every per-source partial is computed identically regardless of
// which worker runs it, and the merge order never depends on the thread
// count, the returned StretchReport is bit-identical to the serial
// (threads == 1) result for every thread count.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace nas::verify {

struct StretchReport {
  /// False iff some checked pair violates d_H ≤ M·d_G + A beyond a 1e-9
  /// float tolerance, or connectivity_ok is false.
  bool bound_ok = true;
  bool connectivity_ok = true;   ///< d_H finite wherever d_G is finite
  std::uint64_t pairs_checked = 0;

  double max_multiplicative = 1.0;  ///< max d_H/d_G over checked pairs (d_G>0)
  double mean_multiplicative = 1.0;
  std::uint64_t max_additive = 0;   ///< max (d_H − d_G)
  double max_excess = 0.0;          ///< max(0, max (d_H − M·d_G))

  // Witness of the worst additive-excess pair.  Contract: set iff some
  // checked pair has strictly positive excess d_H − M·d_G (equivalently,
  // max_excess > 0); otherwise all four keep their sentinel values
  // (kInvalidVertex / 0).  Ties are broken deterministically towards the
  // first pair in verification order — smallest source u, then smallest v —
  // so the witness does not depend on the thread count.
  graph::Vertex worst_u = graph::kInvalidVertex;
  graph::Vertex worst_v = graph::kInvalidVertex;
  std::uint32_t worst_dg = 0;
  std::uint32_t worst_dh = 0;
};

/// Field-by-field bit equality of two reports, doubles compared by bit
/// pattern (so -0.0 vs 0.0 or differently-rounded sums count as
/// divergence).  The single authoritative comparison behind the
/// determinism tests and bench/verify_scaling — keep it in sync with
/// StretchReport's fields.
[[nodiscard]] bool bit_identical(const StretchReport& a,
                                 const StretchReport& b);

/// Exhaustive check over all connected pairs.  Throws std::invalid_argument
/// if the graphs have different vertex counts.  `threads` shards the BFS
/// sources across a worker pool (0 = hardware concurrency); the report is
/// bit-identical for every thread count.
[[nodiscard]] StretchReport verify_stretch_exact(const graph::Graph& g,
                                                 const graph::Graph& h,
                                                 double m, double a,
                                                 unsigned threads = 1);

/// Checks all pairs (s, v) for `num_sources` deterministically chosen
/// sources s (seeded).  `threads` as in verify_stretch_exact.
[[nodiscard]] StretchReport verify_stretch_sampled(const graph::Graph& g,
                                                   const graph::Graph& h,
                                                   double m, double a,
                                                   std::uint32_t num_sources,
                                                   std::uint64_t seed,
                                                   unsigned threads = 1);

}  // namespace nas::verify
