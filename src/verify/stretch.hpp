// Stretch verification: compares distances in the spanner H against the
// input graph G and checks the (M, A) guarantee d_H ≤ M·d_G + A.
//
// `verify_stretch_exact` checks every pair (O(n·m) BFS work) and is the
// test-suite oracle; `verify_stretch_sampled` BFS-es from a deterministic
// sample of sources and is used at bench scale.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace nas::verify {

struct StretchReport {
  bool bound_ok = true;          ///< d_H ≤ M·d_G + A everywhere checked
  bool connectivity_ok = true;   ///< d_H finite wherever d_G is finite
  std::uint64_t pairs_checked = 0;

  double max_multiplicative = 1.0;  ///< max d_H/d_G over checked pairs (d_G>0)
  double mean_multiplicative = 1.0;
  std::uint64_t max_additive = 0;   ///< max (d_H − d_G)
  double max_excess = 0.0;          ///< max (d_H − M·d_G); ≤ A iff bound_ok

  // Witness of the worst additive-excess pair.
  graph::Vertex worst_u = graph::kInvalidVertex;
  graph::Vertex worst_v = graph::kInvalidVertex;
  std::uint32_t worst_dg = 0;
  std::uint32_t worst_dh = 0;
};

/// Exhaustive check over all connected pairs.  Throws std::invalid_argument
/// if the graphs have different vertex counts.
[[nodiscard]] StretchReport verify_stretch_exact(const graph::Graph& g,
                                                 const graph::Graph& h,
                                                 double m, double a);

/// Checks all pairs (s, v) for `num_sources` deterministically chosen
/// sources s (seeded).
[[nodiscard]] StretchReport verify_stretch_sampled(const graph::Graph& g,
                                                   const graph::Graph& h,
                                                   double m, double a,
                                                   std::uint32_t num_sources,
                                                   std::uint64_t seed);

}  // namespace nas::verify
