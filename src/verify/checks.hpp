// Structural spanner checks shared by tests and benches.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace nas::verify {

/// True iff every edge of `h` is an edge of `g` (a spanner must be a
/// subgraph of its input).
[[nodiscard]] bool is_subgraph(const graph::Graph& g, const graph::Graph& h);

/// Size report against the paper's O(β·n^{1+1/κ}) bound.  Throws
/// std::invalid_argument when kappa < 1 (1/κ would otherwise divide by zero
/// or flip sign and return inf/NaN bounds).
struct SizeReport {
  std::size_t spanner_edges = 0;
  std::size_t input_edges = 0;
  double compression = 1.0;        ///< |H| / |E|
  double normalized = 0.0;         ///< |H| / n^{1+1/κ}
  double bound = 0.0;              ///< β · n^{1+1/κ}
  bool within_bound = true;
};
[[nodiscard]] SizeReport size_report(const graph::Graph& g,
                                     const graph::Graph& h, double beta,
                                     int kappa);

}  // namespace nas::verify
