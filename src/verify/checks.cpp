#include "verify/checks.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace nas::verify {

using graph::Graph;

bool is_subgraph(const Graph& g, const Graph& h) {
  if (h.num_vertices() != g.num_vertices()) return false;
  for (const auto& [u, v] : h.edges()) {
    if (!g.has_edge(u, v)) return false;
  }
  return true;
}

SizeReport size_report(const Graph& g, const Graph& h, double beta, int kappa) {
  if (kappa <= 0) {
    // 1/kappa below would divide by zero (or flip the exponent's sign) and
    // poison every bound with inf/NaN; the paper requires kappa >= 1 anyway.
    throw std::invalid_argument("size_report: kappa must be >= 1, got " +
                                std::to_string(kappa));
  }
  SizeReport rep;
  rep.spanner_edges = h.num_edges();
  rep.input_edges = g.num_edges();
  rep.compression = g.num_edges() == 0
                        ? 1.0
                        : static_cast<double>(h.num_edges()) /
                              static_cast<double>(g.num_edges());
  const double nk = std::pow(static_cast<double>(g.num_vertices()),
                             1.0 + 1.0 / kappa);
  rep.normalized = nk == 0.0 ? 0.0 : static_cast<double>(h.num_edges()) / nk;
  rep.bound = beta * nk;
  rep.within_bound = static_cast<double>(h.num_edges()) <= rep.bound;
  return rep;
}

}  // namespace nas::verify
