#include "run/runner.hpp"

#include <atomic>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "apps/distance_oracle.hpp"
#include "apps/query_workload.hpp"
#include "baselines/en17.hpp"
#include "congest/substrate.hpp"
#include "core/elkin_matar.hpp"
#include "core/params.hpp"
#include "graph/bfs_kernel.hpp"
#include "serve/cluster.hpp"
#include "util/temp_file.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace nas::run {

namespace {

/// A collision-free scratch path for one scenario's snapshot round-trip.
/// Exclusive-create semantics (util::create_temp_file) make the kernel the
/// arbiter, so concurrent runner workers, recycled pids, and concurrent nas
/// processes sharing one temp dir can never clobber each other's files —
/// pid+counter names alone only looked unique until two of those raced.
std::string temp_snapshot_path(const std::string& ext) {
  return util::create_temp_file("nas_run_snapshot_", ext);
}

/// RAII unlink so a throwing load still cleans the scratch file up.
struct ScopedRemove {
  std::string path;
  ~ScopedRemove() {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort
  }
};

}  // namespace

ResultRow Runner::run_one(const ScenarioSpec& spec, std::size_t index,
                          const RunOptions& options) {
  ResultRow row;
  row.index = index;
  row.spec = spec;
  try {
    const auto g = cache_.get(spec.family, spec.n, spec.seed,
                              &row.graph_cache_hit);
    row.n = g->num_vertices();
    row.m = g->num_edges();

    const auto params =
        spec.mode == "paper"
            ? core::Params::paper(g->num_vertices(), spec.eps, spec.kappa,
                                  spec.rho)
            : core::Params::practical(g->num_vertices(), spec.eps, spec.kappa,
                                      spec.rho);

    std::shared_ptr<const graph::Graph> spanner;
    util::Timer build_timer;
    if (spec.algo == "em") {
      core::BuildOptions build_options{.validate = spec.validate};
      build_options.cross_check_alg1 = spec.crosscheck;
      build_options.substrate.substrate =
          congest::parse_substrate(spec.substrate);
      build_options.substrate.threads = spec.build_threads;
      auto result = core::build_spanner(*g, params, build_options);
      row.rounds = result.ledger.rounds();
      row.guarantee_mult = params.stretch_multiplicative();
      row.guarantee_add = params.stretch_additive();
      spanner = std::make_shared<const graph::Graph>(std::move(result.spanner));
    } else if (spec.algo == "en17") {
      const auto algo_seed = spec.algo_seed != 0 ? spec.algo_seed : spec.seed;
      auto result = baselines::build_en17_spanner(*g, params, algo_seed);
      row.rounds = result.ledger.rounds();
      row.guarantee_mult = result.stretch_multiplicative;
      row.guarantee_add = result.stretch_additive;
      spanner = std::make_shared<const graph::Graph>(std::move(result.spanner));
    } else if (spec.algo == "identity") {
      // Spanner = input graph: zero construction cost, trivially (1, 0)
      // stretch.  Isolates verifier throughput (bench/verify_scaling).
      spanner = g;
    } else {
      throw std::invalid_argument("unknown algo \"" + spec.algo +
                                  "\" (expected em|en17|identity)");
    }
    row.build_wall_ms = build_timer.millis();
    row.spanner_edges = spanner->num_edges();

    if (spec.verify_mode == "sampled" || spec.verify_mode == "exact") {
      util::Timer verify_timer;
      row.report =
          spec.verify_mode == "exact"
              ? verify::verify_stretch_exact(*g, *spanner, row.guarantee_mult,
                                             row.guarantee_add,
                                             spec.verify_threads)
              : verify::verify_stretch_sampled(
                    *g, *spanner, row.guarantee_mult, row.guarantee_add,
                    spec.verify_sources, spec.verify_seed, spec.verify_threads);
      row.verify_wall_ms = verify_timer.millis();
      row.verified = true;
    } else if (spec.verify_mode != "off") {
      throw std::invalid_argument("unknown verify-mode \"" + spec.verify_mode +
                                  "\" (expected off|sampled|exact)");
    }

    if (spec.workload != "off") {
      // Serving stage: build the oracle over the produced spanner (identity
      // rows serve exact distances) and answer one generated batch — through
      // one oracle, or through a ShardedCluster when the spec asks for one.
      // A snapshot_format other than "none" inserts a save/reload round-trip
      // first: the oracle is written to a scratch file in that format, the
      // serving structure is loaded back (v2: mmapped), and the batch runs
      // against the loaded copy.  Every recorded field is deterministic at
      // any query-thread count, cache budget, shard count, and snapshot
      // format; only the wall-clock fields are not.
      util::Timer oracle_timer;
      const apps::WorkloadSpec workload_spec{spec.workload, spec.queries,
                                             spec.workload_seed,
                                             spec.zipf_theta};
      const auto requests =
          apps::make_query_workload(spanner->num_vertices(), workload_spec);

      std::optional<apps::SnapshotFormat> snapshot_format;
      if (spec.snapshot_format != "none") {
        snapshot_format = apps::parse_snapshot_format(spec.snapshot_format);
      }
      const auto round_trip =
          [&](const apps::SpannerDistanceOracle& built) -> std::string {
        const auto path = temp_snapshot_path(
            *snapshot_format == apps::SnapshotFormat::kV2 ? ".naso2" : ".naso");
        built.save_file(path, *snapshot_format);
        row.snapshot_bytes = std::filesystem::file_size(path);
        return path;
      };

      if (spec.cluster_shards == 0) {
        const apps::OracleOptions oracle_options{
            .cache_budget_bytes = spec.cache_budget,
            .bfs_kernel = graph::parse_bfs_kernel(spec.bfs_kernel)};
        std::optional<apps::SpannerDistanceOracle> oracle;
        std::optional<ScopedRemove> scratch;
        if (!snapshot_format.has_value()) {
          oracle.emplace(*spanner, row.guarantee_mult, row.guarantee_add,
                         oracle_options);
        } else {
          const apps::SpannerDistanceOracle built(*spanner, row.guarantee_mult,
                                                  row.guarantee_add,
                                                  oracle_options);
          scratch.emplace(round_trip(built));
          util::Timer warmup_timer;
          oracle.emplace(apps::SpannerDistanceOracle::load_file(
              scratch->path, oracle_options));
          row.snapshot_warmup_ms = warmup_timer.millis();
        }
        apps::BatchStats stats;
        const auto answers =
            oracle->batch_query(requests, spec.query_threads, &stats);
        row.oracle_queries = stats.queries;
        row.oracle_shards = stats.shards;
        row.oracle_sources = stats.distinct_sources;
        row.oracle_cache_hits = stats.cache_hits;
        row.oracle_bfs_passes = stats.bfs_passes;
        row.oracle_evictions = stats.evictions;
        row.oracle_digest = apps::digest_answers(answers);
      } else {
        const serve::ClusterOptions cluster_options{
            .shards = spec.cluster_shards,
            .partition = spec.partition,
            .replicas = spec.replicas,
            .route = spec.route,
            .shard_cache_budget_bytes = spec.cache_budget,
            .bfs_kernel = graph::parse_bfs_kernel(spec.bfs_kernel)};
        std::optional<serve::ShardedCluster> cluster;
        std::optional<ScopedRemove> scratch;
        if (!snapshot_format.has_value()) {
          cluster.emplace(*spanner, row.guarantee_mult, row.guarantee_add,
                          cluster_options);
        } else {
          const apps::SpannerDistanceOracle built(
              *spanner, row.guarantee_mult, row.guarantee_add,
              apps::OracleOptions{.cache_budget_bytes = 0});
          scratch.emplace(round_trip(built));
          util::Timer warmup_timer;
          cluster.emplace(serve::ShardedCluster::from_snapshot_files(
              {scratch->path}, cluster_options));
          row.snapshot_warmup_ms = warmup_timer.millis();
        }
        serve::ClusterStats stats;
        const auto answers =
            cluster->serve(requests, spec.query_threads, &stats);
        row.oracle_queries = stats.requests;
        row.oracle_shards = stats.shards_used;
        row.oracle_sources = stats.distinct_sources;
        row.oracle_cache_hits = stats.cache_hits;
        row.oracle_bfs_passes = stats.bfs_passes;
        row.oracle_evictions = stats.evictions;
        row.oracle_digest = apps::digest_answers(answers);
        row.cluster_shards_used = stats.shards_used;
        row.cluster_sheds = stats.sheds;
        row.cluster_queue_high_water = stats.queue_depth_high_water;
        row.cluster_counter_digest = stats.digest();
      }
      row.served = true;  // only after the stage ran; a throw leaves false
      row.oracle_wall_ms = oracle_timer.millis();
    }

    if (options.keep_graphs) {
      row.graph = g;
      row.spanner = spanner;
    }
  } catch (const std::exception& e) {
    row.ok = false;
    row.error = e.what();
  }
  return row;
}

std::vector<ResultRow> Runner::run(const std::vector<ScenarioSpec>& specs,
                                   const RunOptions& options) {
  std::vector<ResultRow> rows(specs.size());
  if (specs.empty()) return rows;
  const unsigned workers =
      util::ThreadPool::resolve(options.threads, specs.size());

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  const auto work = [&](unsigned) {
    for (std::size_t i = next.fetch_add(1); i < specs.size();
         i = next.fetch_add(1)) {
      rows[i] = run_one(specs[i], i, options);
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::cerr << "[" << (i + 1) << "/" << specs.size() << "] "
                  << specs[i].id() << ": "
                  << (rows[i].ok ? (rows[i].passed() ? "ok" : "BOUND VIOLATED")
                                 : "error: " + rows[i].error)
                  << "\n";
      }
    }
  };

  if (workers <= 1) {
    work(0);
  } else {
    util::ThreadPool pool(workers);
    pool.run(workers, work);
  }
  return rows;
}

}  // namespace nas::run
