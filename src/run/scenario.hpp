// Declarative experiment scenarios.
//
// A ScenarioSpec is everything one experiment datapoint needs: the graph
// source (generator family + size + seed, or an edge-list file), the spanner
// algorithm and its parameters, the CONGEST substrate for engine-backed
// cross-checks, and the verification settings.  A ScenarioMatrix holds one
// list of values per axis and expands to the cross product in a fixed,
// documented order, so every consumer — the nas_run CLI, the bench wrappers,
// the tests — agrees on which row is which.
//
// Matrices come from three places and all share the same key names:
//   * flags:          nas_run --family er,grid --n 512,1024 --eps 0.25,0.5
//   * scenario file:  one `key = value[, value...]` per line, '#' comments
//   * code:           fill the fields directly (the bench wrappers do this)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/flags.hpp"

namespace nas::run {

/// Formats a double the way every scenario id and unified sink row does
/// ("%.*g": no trailing zeros, deterministic for identical bit patterns).
[[nodiscard]] std::string format_real(double v, int digits = 6);

/// One experiment datapoint, fully described.
struct ScenarioSpec {
  // Graph source.  `family` is a graph::make_workload family name, or
  // "file:<path>" to read an edge list (then `n` and `seed` are ignored).
  std::string family = "er";
  graph::Vertex n = 1024;
  std::uint64_t seed = 1;

  // Algorithm: "em" (the paper's deterministic construction), "en17"
  // (the randomized Elkin-Neiman baseline), or "identity" (spanner = input;
  // isolates verifier cost).  `algo_seed` seeds randomized algorithms,
  // 0 = reuse the graph seed (so a seed sweep over a fixed graph is
  // expressed as one `seed` with many `algo_seed`s).
  std::string algo = "em";
  std::uint64_t algo_seed = 0;

  // Spanner schedule.
  double eps = 0.25;
  int kappa = 3;
  double rho = 0.4;
  std::string mode = "practical";  ///< "practical" | "paper"

  // Engine-backed execution options (see core::BuildOptions).
  std::string substrate = "serial";  ///< "serial" | "parallel" | "alpha"
  unsigned build_threads = 0;        ///< parallel substrate workers, 0 = all
  bool crosscheck = false;           ///< re-simulate Algorithm 1 round-by-round
  bool validate = false;             ///< structural lemma validation

  // Stretch verification of the produced spanner.
  std::string verify_mode = "off";   ///< "off" | "sampled" | "exact"
  std::uint32_t verify_sources = 16; ///< sampled mode: BFS source count
  unsigned verify_threads = 1;       ///< verifier shards, 0 = all cores
  std::uint64_t verify_seed = 1;     ///< sampled mode: source-choice seed

  // Distance-oracle serving stage (apps::SpannerDistanceOracle): generate a
  // query workload against the produced spanner and answer it as one batch.
  // "off" skips the stage entirely.
  std::string workload = "off";           ///< "off" | "uniform" | "zipf"
  std::uint64_t queries = 1000;           ///< requests per batch
  std::uint64_t workload_seed = 1;        ///< request-generator seed
  double zipf_theta = 0.99;               ///< zipf skew exponent
  std::uint64_t cache_budget = 64 << 20;  ///< oracle source-cache bytes
  unsigned query_threads = 1;             ///< batch shards, 0 = all cores

  // Sharded serving-cluster stage (serve::ShardedCluster): 0 serves the
  // batch through one DistanceOracle (PR 4's path); >= 1 partitions serving
  // across that many shard oracles, each with its own `cache_budget` cache,
  // routed by `partition` ("hash" | "range").  Answers are byte-identical
  // either way — the cluster axes only move the counters.
  unsigned cluster_shards = 0;
  std::string partition = "hash";

  // Replica-group axes (serve::ReplicaGroup, only meaningful when
  // cluster_shards >= 1): replicas per shard and the routing policy
  // ("round-robin" | "least-loaded" | "deterministic").  Answers are
  // byte-identical across both axes — they only move the per-replica
  // counters.
  unsigned replicas = 1;
  std::string route = "round-robin";

  // Snapshot round-trip axis: "none" serves straight from the built spanner;
  // "v1"/"v2" save the oracle snapshot in that format, reload it (v2 via
  // mmap), and serve from the loaded structure — measuring warmup cost and
  // proving answers are format-independent.  Ignored when `workload` is off.
  std::string snapshot_format = "none";  ///< "none" | "v1" | "v2"

  // BFS traversal strategy for the serving stage (graph::BfsKernel names:
  // "topdown" | "hybrid" | "auto").  Answers are byte-identical across
  // kernels — the axis exists so sweeps can compare BFS-pass cost and so CI
  // can cmp-gate the identity claim.
  std::string bfs_kernel = "auto";

  /// Compact deterministic identifier, e.g.
  /// "er/n=512/seed=1/em/eps=0.25/kappa=3/rho=0.4"; serving scenarios append
  /// "/w=<workload>/q=<queries>/cb=<cache_budget>/qt=<query_threads>" (and
  /// clustered ones "/cs=<cluster_shards>/<partition>", replicated ones
  /// "/r=<replicas>/<route>", snapshot round-trips
  /// "/sf=<snapshot_format>", non-default kernels "/bk=<bfs_kernel>") so
  /// every expansion axis is visible in the id (rows of a serving sweep stay
  /// distinguishable in logs and grouped sink output).
  [[nodiscard]] std::string id() const;
};

/// Value lists per scenario axis; `expand()` produces the cross product.
struct ScenarioMatrix {
  std::vector<std::string> families{"er"};
  std::vector<graph::Vertex> ns{1024};
  std::vector<std::uint64_t> seeds{1};
  std::vector<std::string> algos{"em"};
  std::vector<std::uint64_t> algo_seeds{0};
  std::vector<double> epss{0.25};
  std::vector<int> kappas{3};
  std::vector<double> rhos{0.4};
  // Oracle serving axes (sweepable like the schedule parameters).
  std::vector<std::string> workloads{"off"};
  std::vector<std::uint64_t> cache_budgets{64 << 20};
  std::vector<unsigned> query_threads{1};
  // Serving-cluster axes: shard counts (0 = single oracle) and partitioners.
  std::vector<unsigned> cluster_shards{0};
  std::vector<std::string> partitions{"hash"};
  // Replica-group axes: replicas per shard and routing policies.
  std::vector<unsigned> replica_counts{1};
  std::vector<std::string> routes{"round-robin"};
  // Snapshot round-trip axis: none|v1|v2 (see ScenarioSpec::snapshot_format).
  std::vector<std::string> snapshot_formats{"none"};
  // BFS kernel axis: topdown|hybrid|auto (see ScenarioSpec::bfs_kernel).
  std::vector<std::string> bfs_kernels{"auto"};

  // Scalar (non-matrix) settings copied into every spec.
  std::string mode = "practical";
  std::string substrate = "serial";
  unsigned build_threads = 0;
  bool crosscheck = false;
  bool validate = false;
  std::string verify_mode = "off";
  std::uint32_t verify_sources = 16;
  unsigned verify_threads = 1;
  std::uint64_t verify_seed = 1;
  std::uint64_t queries = 1000;
  std::uint64_t workload_seed = 1;
  double zipf_theta = 0.99;

  /// The cross product in fixed nesting order — family outermost, then n,
  /// seed, algo, algo_seed, eps, kappa, rho, workload, cache_budget,
  /// query_threads, cluster_shards, partition, replicas, route,
  /// snapshot_format, bfs_kernel innermost.  Deterministic: the i-th spec
  /// depends only on the axis lists, never on execution.
  [[nodiscard]] std::vector<ScenarioSpec> expand() const;

  /// Number of specs expand() will produce.
  [[nodiscard]] std::size_t size() const;

  /// Applies one `key = values` assignment (shared by flag and file input).
  /// List-valued keys take comma-separated values.  Throws
  /// std::invalid_argument on unknown keys or unparsable values.
  void set(const std::string& key, const std::string& value);

  /// Overlays every matrix key the caller passed on the command line onto
  /// this matrix (registering --help descriptions for all of them); keys the
  /// caller did not pass keep their current values — so flags can refine a
  /// matrix loaded from a scenario file.
  void apply_flags(const util::Flags& flags);

  /// Reads every matrix key from `flags` onto a default matrix.
  [[nodiscard]] static ScenarioMatrix from_flags(const util::Flags& flags);

  /// Parses a scenario file: `key = value[, value...]` lines, blank lines
  /// and '#' comments ignored.  Throws std::runtime_error with the line
  /// number on malformed input.
  [[nodiscard]] static ScenarioMatrix from_file(const std::string& path);
};

/// Splits "a,b,c" into trimmed non-empty items ("" -> empty vector).
[[nodiscard]] std::vector<std::string> split_list(const std::string& text);

}  // namespace nas::run
