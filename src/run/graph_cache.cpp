#include "run/graph_cache.hpp"

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace nas::run {

std::string GraphCache::key(const std::string& family, graph::Vertex n,
                            std::uint64_t seed) {
  if (family.rfind("file:", 0) == 0) return family;
  std::string out = family;
  out += "/";
  out += std::to_string(n);
  out += "/";
  out += std::to_string(seed);
  return out;
}

std::shared_ptr<const graph::Graph> GraphCache::get(const std::string& family,
                                                    graph::Vertex n,
                                                    std::uint64_t seed,
                                                    bool* hit) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(m_);
    auto [it, inserted] = entries_.try_emplace(key(family, n, seed));
    if (inserted) it->second = std::make_shared<Entry>();
    entry = it->second;
    (inserted ? stats_.misses : stats_.hits) += 1;
    if (hit) *hit = !inserted;
  }
  std::call_once(entry->once, [&] {
    try {
      auto g = family.rfind("file:", 0) == 0
                   ? graph::read_edge_list_file(family.substr(5))
                   : graph::make_workload(family, n, seed);
      entry->graph = std::make_shared<const graph::Graph>(std::move(g));
    } catch (...) {
      entry->error = std::current_exception();
    }
  });
  if (entry->error) std::rethrow_exception(entry->error);
  return entry->graph;
}

GraphCache::Stats GraphCache::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return entries_.size();
}

}  // namespace nas::run
