// Thread-safe build-once cache of workload graphs.
//
// Matrix expansion produces many scenarios over the same input graph (every
// eps/kappa/rho/algo combination at one (family, n, seed)); the cache makes
// the graph build happen exactly once per distinct source, even when
// scenarios run concurrently on Runner workers.  Entries are immutable
// shared_ptr<const Graph>, so concurrent scenarios can read one graph while
// later specs are still building theirs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/graph.hpp"

namespace nas::run {

class GraphCache {
 public:
  /// The cache key: "file:<path>" graphs are keyed by path alone (n/seed do
  /// not affect what read_edge_list_file returns), generator families by all
  /// three build inputs.
  [[nodiscard]] static std::string key(const std::string& family,
                                       graph::Vertex n, std::uint64_t seed);

  /// Returns the graph for (family, n, seed), building it on first request:
  /// `family` is a graph::make_workload family or "file:<path>".  Safe to
  /// call from multiple threads; exactly one caller builds, the rest block
  /// and share the result.  A failed build rethrows its error to every
  /// caller of that key.  `hit` (optional) reports whether the entry already
  /// existed.
  [[nodiscard]] std::shared_ptr<const graph::Graph> get(
      const std::string& family, graph::Vertex n, std::uint64_t seed,
      bool* hit = nullptr);

  struct Stats {
    std::uint64_t hits = 0;    ///< get() calls that found an existing entry
    std::uint64_t misses = 0;  ///< get() calls that created the entry
  };
  [[nodiscard]] Stats stats() const;

  /// Distinct graphs currently held.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const graph::Graph> graph;
    std::exception_ptr error;
  };

  mutable std::mutex m_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  Stats stats_;
};

}  // namespace nas::run
