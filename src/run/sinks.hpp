// Unified result emission: every experiment writes the same flat row schema,
// as a JSON array of objects or as CSV, from Runner rows in spec order.
//
// Determinism contract: with `timing == false` (the default) every emitted
// field is a pure function of the spec vector, so the bytes written are
// identical at any Runner/verifier thread count.  `timing == true` appends
// the wall-clock columns for perf-trajectory artifacts.
//
// Wrappers with derived columns (e.g. bench/verify_scaling's speedup) append
// them via `SinkOptions::extra`; string values go through the central JSON
// escaper like every built-in field.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "run/runner.hpp"
#include "util/json.hpp"

namespace nas::run {

struct SinkOptions {
  bool timing = false;  ///< include nondeterministic wall-clock fields
  /// Optional per-row derived fields, appended after the built-in schema.
  std::function<util::JsonObject(const ResultRow&)> extra;
};

/// The unified row schema (ordered key -> value), the single source of truth
/// both sinks render from.
[[nodiscard]] util::JsonObject row_fields(const ResultRow& row,
                                          const SinkOptions& options = {});

/// Renders rows as a JSON array of one-line objects.
[[nodiscard]] std::string render_json(const std::vector<ResultRow>& rows,
                                      const SinkOptions& options = {});

/// Renders rows as CSV (header + one line per row).
[[nodiscard]] std::string render_csv(const std::vector<ResultRow>& rows,
                                     const SinkOptions& options = {});

/// Writes render_json / render_csv to `path`; throws std::runtime_error when
/// the file cannot be opened.
void write_json(const std::vector<ResultRow>& rows, const std::string& path,
                const SinkOptions& options = {});
void write_csv(const std::vector<ResultRow>& rows, const std::string& path,
               const SinkOptions& options = {});

}  // namespace nas::run
