// Scenario execution engine.
//
// `Runner::run` executes a vector of ScenarioSpecs across util::ThreadPool
// workers and returns one ResultRow per spec, **in spec order**.  Every row
// is a pure function of its spec (graph builds are deterministic, the
// construction is deterministic, and the verifier's report is bit-identical
// at any shard count), and rows are stored by spec index, so the returned
// vector — and therefore the JSON/CSV a sink writes from it — is
// bit-identical at any worker count.  Wall-clock fields are the one
// exception and are excluded from the sinks unless timing output is
// explicitly requested.
//
// Scenario failures (unknown family, invalid parameter combination, ...) do
// not abort the batch: the row carries `ok = false` and the error text, and
// the remaining scenarios still run.
#pragma once

#include <memory>
#include <vector>

#include "run/graph_cache.hpp"
#include "run/scenario.hpp"
#include "verify/stretch.hpp"

namespace nas::run {

struct ResultRow {
  std::size_t index = 0;  ///< position in the spec vector
  ScenarioSpec spec;

  bool ok = true;     ///< scenario executed without throwing
  std::string error;  ///< exception text when !ok

  // Input graph actually used (after largest-component extraction).
  graph::Vertex n = 0;
  std::uint64_t m = 0;
  bool graph_cache_hit = false;

  // Construction results.
  std::uint64_t spanner_edges = 0;
  std::uint64_t rounds = 0;         ///< simulated CONGEST rounds
  double guarantee_mult = 1.0;      ///< proven stretch d_H <= M*d_G + A
  double guarantee_add = 0.0;

  // Verification results (valid iff `verified`).
  bool verified = false;
  verify::StretchReport report;

  // Oracle serving results (valid iff `served`; spec.workload != "off").
  // `oracle_digest` is apps::digest_answers over the batch answers — a pure
  // function of the spec, so sink byte-identity across query-thread counts
  // and cache budgets covers the served answers too.  When the spec requests
  // a serving cluster (spec.cluster_shards >= 1) the batch runs through a
  // serve::ShardedCluster instead of one oracle; the counters below then
  // hold the cluster-wide totals (summed over shards), the digest covers the
  // merged answers — equal to the single-oracle digest by the cluster's
  // byte-identity contract — and `cluster_shards_used` records how many
  // shards received traffic.
  bool served = false;
  std::uint64_t oracle_queries = 0;
  std::uint64_t oracle_shards = 0;     ///< BFS shards the batch actually used
  std::uint64_t oracle_sources = 0;    ///< distinct BFS sources in the batch
  std::uint64_t oracle_cache_hits = 0;
  std::uint64_t oracle_bfs_passes = 0;
  std::uint64_t oracle_evictions = 0;
  std::uint64_t oracle_digest = 0;
  std::uint64_t cluster_shards_used = 0;  ///< shards with >= 1 routed request
  /// Replica-group results (cluster path only; all deterministic).
  std::uint64_t cluster_sheds = 0;  ///< admission-control reroutes
  std::uint64_t cluster_queue_high_water = 0;  ///< max planned replica depth
  std::uint64_t cluster_counter_digest = 0;    ///< ClusterStats::digest()
  /// Snapshot round-trip results (spec.snapshot_format != "none"): the
  /// on-disk size of the saved snapshot.  Deterministic — v1 is canonical
  /// text, v2 a fixed-layout binary image — so the sinks always emit it.
  std::uint64_t snapshot_bytes = 0;

  // Wall clock — nondeterministic; sinks emit these only on request.
  double build_wall_ms = 0.0;
  double verify_wall_ms = 0.0;
  double oracle_wall_ms = 0.0;  ///< workload generation + batch answering
  double snapshot_warmup_ms = 0.0;  ///< snapshot reload (v2: mmap) time

  // Retained only when RunOptions::keep_graphs (wrappers that post-process
  // the actual spanner, e.g. per-distance error profiles or edge-list dumps).
  std::shared_ptr<const graph::Graph> graph;
  std::shared_ptr<const graph::Graph> spanner;

  /// The row's overall verdict: executed cleanly and, if verification ran,
  /// the stretch bound held.
  [[nodiscard]] bool passed() const {
    return ok && (!verified || report.bound_ok);
  }
};

struct RunOptions {
  unsigned threads = 1;      ///< Runner workers; 0 = hardware concurrency
  bool keep_graphs = false;  ///< retain graph/spanner pointers on each row
  bool progress = false;     ///< per-scenario completion lines on stderr
};

class Runner {
 public:
  /// Executes every spec and returns rows in spec order (see file comment
  /// for the determinism contract).
  [[nodiscard]] std::vector<ResultRow> run(const std::vector<ScenarioSpec>& specs,
                                           const RunOptions& options = {});

  /// Executes one spec against the shared cache; never throws (failures are
  /// recorded on the row).
  [[nodiscard]] ResultRow run_one(const ScenarioSpec& spec, std::size_t index,
                                  const RunOptions& options);

  /// The graph cache shared by all scenarios this runner executed.
  [[nodiscard]] GraphCache& cache() { return cache_; }

 private:
  GraphCache cache_;
};

}  // namespace nas::run
