#include "run/scenario.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "graph/bfs_kernel.hpp"
#include "serve/partition.hpp"
#include "serve/replica.hpp"

namespace nas::run {

std::string format_real(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string ScenarioSpec::id() const {
  // Assembled via += (GCC 12's -Wrestrict false positive PR105651 flags
  // `"literal" + rvalue-string` chains).
  std::string out = family;
  out += "/n=";
  out += std::to_string(n);
  out += "/seed=";
  out += std::to_string(seed);
  out += "/";
  out += algo;
  if (algo_seed != 0) {
    out += "@";
    out += std::to_string(algo_seed);
  }
  out += "/eps=";
  out += format_real(eps);
  out += "/kappa=";
  out += std::to_string(kappa);
  out += "/rho=";
  out += format_real(rho);
  if (mode != "practical") {
    out += "/";
    out += mode;
  }
  if (workload != "off") {
    out += "/w=";
    out += workload;
    out += "/q=";
    out += std::to_string(queries);
    out += "/cb=";
    out += std::to_string(cache_budget);
    out += "/qt=";
    out += std::to_string(query_threads);
    if (cluster_shards > 0) {
      out += "/cs=";
      out += std::to_string(cluster_shards);
      out += "/";
      out += partition;
      if (replicas != 1 || route != "round-robin") {
        out += "/r=";
        out += std::to_string(replicas);
        out += "/";
        out += route;
      }
    }
    if (snapshot_format != "none") {
      out += "/sf=";
      out += snapshot_format;
    }
    if (bfs_kernel != "auto") {
      out += "/bk=";
      out += bfs_kernel;
    }
  }
  return out;
}

std::vector<ScenarioSpec> ScenarioMatrix::expand() const {
  std::vector<ScenarioSpec> specs;
  specs.reserve(size());
  for (const auto& family : families)
    for (const auto n : ns)
      for (const auto seed : seeds)
        for (const auto& algo : algos)
          for (const auto algo_seed : algo_seeds)
            for (const auto eps : epss)
              for (const auto kappa : kappas)
                for (const auto rho : rhos)
                  for (const auto& workload : workloads)
                    for (const auto cache_budget : cache_budgets)
                      for (const auto threads : query_threads)
                        for (const auto shards : cluster_shards)
                          for (const auto& partition : partitions)
                            for (const auto reps : replica_counts)
                              for (const auto& route : routes)
                                for (const auto& snapshot_format :
                                     snapshot_formats)
                                  for (const auto& bfs_kernel : bfs_kernels) {
                                    ScenarioSpec s;
                                    s.family = family;
                                    s.n = n;
                                    s.seed = seed;
                                    s.algo = algo;
                                    s.algo_seed = algo_seed;
                                    s.eps = eps;
                                    s.kappa = kappa;
                                    s.rho = rho;
                                    s.mode = mode;
                                    s.substrate = substrate;
                                    s.build_threads = build_threads;
                                    s.crosscheck = crosscheck;
                                    s.validate = validate;
                                    s.verify_mode = verify_mode;
                                    s.verify_sources = verify_sources;
                                    s.verify_threads = verify_threads;
                                    s.verify_seed = verify_seed;
                                    s.workload = workload;
                                    s.queries = queries;
                                    s.workload_seed = workload_seed;
                                    s.zipf_theta = zipf_theta;
                                    s.cache_budget = cache_budget;
                                    s.query_threads = threads;
                                    s.cluster_shards = shards;
                                    s.partition = partition;
                                    s.replicas = reps;
                                    s.route = route;
                                    s.snapshot_format = snapshot_format;
                                    s.bfs_kernel = bfs_kernel;
                                    specs.push_back(std::move(s));
                                  }
  return specs;
}

std::size_t ScenarioMatrix::size() const {
  return families.size() * ns.size() * seeds.size() * algos.size() *
         algo_seeds.size() * epss.size() * kappas.size() * rhos.size() *
         workloads.size() * cache_budgets.size() * query_threads.size() *
         cluster_shards.size() * partitions.size() * replica_counts.size() *
         routes.size() * snapshot_formats.size() * bfs_kernels.size();
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    auto end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    std::string item = text.substr(begin, end - begin);
    const auto first = item.find_first_not_of(" \t");
    const auto last = item.find_last_not_of(" \t");
    if (first != std::string::npos) {
      items.push_back(item.substr(first, last - first + 1));
    }
    begin = end + 1;
  }
  return items;
}

namespace {

template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& key, const std::string& value,
                          Parse parse) {
  std::vector<T> out;
  for (const auto& item : split_list(value)) {
    out.push_back(static_cast<T>(parse(key, item)));
  }
  if (out.empty()) {
    throw std::invalid_argument("scenario key \"" + key +
                                "\" needs at least one value");
  }
  return out;
}

}  // namespace

void ScenarioMatrix::set(const std::string& key, const std::string& value) {
  const auto ints = [&](const std::string& k, const std::string& v) {
    return util::Flags::parse_integer(k, v);
  };
  // Keys stored into unsigned fields where a negative typo would otherwise
  // wrap to a huge value (an "unbounded" cache from `cache-budget = -4096`).
  const auto non_negative = [&](const std::string& k, const std::string& v) {
    const auto parsed = util::Flags::parse_integer(k, v);
    if (parsed < 0) {
      throw std::invalid_argument("scenario key \"" + k +
                                  "\" must be >= 0, got " + v);
    }
    return parsed;
  };
  const auto reals = [&](const std::string& k, const std::string& v) {
    return util::Flags::parse_real(k, v);
  };
  if (key == "family") {
    families = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) { return v; });
  } else if (key == "n") {
    ns = parse_list<graph::Vertex>(key, value, ints);
  } else if (key == "seed") {
    seeds = parse_list<std::uint64_t>(key, value, ints);
  } else if (key == "algo") {
    algos = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) { return v; });
  } else if (key == "algo-seed") {
    algo_seeds = parse_list<std::uint64_t>(key, value, ints);
  } else if (key == "eps") {
    epss = parse_list<double>(key, value, reals);
  } else if (key == "kappa") {
    kappas = parse_list<int>(key, value, ints);
  } else if (key == "rho") {
    rhos = parse_list<double>(key, value, reals);
  } else if (key == "mode") {
    mode = value;
  } else if (key == "substrate") {
    substrate = value;
  } else if (key == "build-threads") {
    build_threads = static_cast<unsigned>(ints(key, value));
  } else if (key == "crosscheck") {
    crosscheck = util::Flags::parse_boolean(value);
  } else if (key == "validate") {
    validate = util::Flags::parse_boolean(value);
  } else if (key == "verify") {
    verify_sources = static_cast<std::uint32_t>(ints(key, value));
    // Derive the mode, but never downgrade an explicitly requested "exact"
    // (e.g. a scenario file's `verify-mode = exact` refined by --verify N).
    if (verify_sources == 0) {
      verify_mode = "off";
    } else if (verify_mode != "exact") {
      verify_mode = "sampled";
    }
  } else if (key == "verify-mode") {
    if (value != "off" && value != "sampled" && value != "exact") {
      throw std::invalid_argument("verify-mode must be off|sampled|exact, got \"" +
                                  value + "\"");
    }
    verify_mode = value;
  } else if (key == "verify-threads") {
    verify_threads = static_cast<unsigned>(ints(key, value));
  } else if (key == "verify-seed") {
    verify_seed = static_cast<std::uint64_t>(ints(key, value));
  } else if (key == "workload") {
    workloads = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) {
          if (v != "off" && v != "uniform" && v != "zipf") {
            throw std::invalid_argument(
                "workload must be off|uniform|zipf, got \"" + v + "\"");
          }
          return v;
        });
  } else if (key == "cache-budget") {
    cache_budgets = parse_list<std::uint64_t>(key, value, non_negative);
  } else if (key == "query-threads") {
    query_threads = parse_list<unsigned>(key, value, non_negative);
  } else if (key == "cluster-shards") {
    cluster_shards = parse_list<unsigned>(key, value, non_negative);
  } else if (key == "partition") {
    partitions = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) {
          (void)serve::parse_partition(v);  // validates; throws on bad names
          return v;
        });
  } else if (key == "replicas") {
    replica_counts = parse_list<unsigned>(
        key, value, [&](const std::string& k, const std::string& v) {
          const auto parsed = non_negative(k, v);
          if (parsed == 0) {
            throw std::invalid_argument("scenario key \"" + k +
                                        "\" must be >= 1, got " + v);
          }
          return parsed;
        });
  } else if (key == "route") {
    routes = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) {
          (void)serve::parse_route_policy(v);  // validates; throws on bad names
          return v;
        });
  } else if (key == "snapshot-format") {
    snapshot_formats = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) {
          if (v != "none" && v != "v1" && v != "v2") {
            throw std::invalid_argument(
                "snapshot-format must be none|v1|v2, got \"" + v + "\"");
          }
          return v;
        });
  } else if (key == "bfs-kernel") {
    bfs_kernels = parse_list<std::string>(
        key, value, [](const std::string&, const std::string& v) {
          (void)graph::parse_bfs_kernel(v);  // validates; throws on bad names
          return v;
        });
  } else if (key == "queries") {
    queries = static_cast<std::uint64_t>(non_negative(key, value));
  } else if (key == "workload-seed") {
    workload_seed = static_cast<std::uint64_t>(ints(key, value));
  } else if (key == "zipf-theta") {
    zipf_theta = util::Flags::parse_real(key, value);
  } else {
    throw std::invalid_argument("unknown scenario key \"" + key + "\"");
  }
}

void ScenarioMatrix::apply_flags(const util::Flags& flags) {
  // Read every key (registering its --help description); apply only the ones
  // the caller actually passed so the others keep their current values.
  const struct {
    const char* key;
    const char* fallback;
    const char* desc;
  } kKeys[] = {
      {"family", "er", "graph families (comma list; or file:<path>)"},
      {"n", "1024", "target vertex counts (comma list)"},
      {"seed", "1", "graph generator seeds (comma list)"},
      {"algo", "em", "algorithms: em|en17|identity (comma list)"},
      {"algo-seed", "0", "algorithm seeds, 0 = graph seed (comma list)"},
      {"eps", "0.25", "epsilon values (comma list)"},
      {"kappa", "3", "kappa values (comma list)"},
      {"rho", "0.4", "rho values (comma list)"},
      {"mode", "practical", "schedule mode: practical|paper"},
      {"substrate", "serial", "engine substrate: serial|parallel|alpha"},
      {"build-threads", "0", "parallel-substrate workers, 0 = all cores"},
      {"crosscheck", "false", "re-simulate Algorithm 1 on the round engine"},
      {"validate", "false", "check structural lemmas during the build"},
      {"verify", "0", "sampled verification sources, 0 = off (sets verify-mode)"},
      {"verify-mode", "off", "stretch verification: off|sampled|exact"},
      {"verify-threads", "1", "verifier worker shards, 0 = all cores"},
      {"verify-seed", "1", "sampled verification source seed"},
      {"workload", "off", "oracle serving workloads: off|uniform|zipf (comma list)"},
      {"cache-budget", "67108864", "oracle cache budgets in bytes (comma list)"},
      {"query-threads", "1", "oracle batch shards, 0 = all cores (comma list)"},
      {"cluster-shards", "0",
       "serving-cluster shard counts, 0 = single oracle (comma list)"},
      {"partition", "hash", "cluster partitioners: hash|range (comma list)"},
      {"replicas", "1", "replicas per cluster shard (comma list)"},
      {"route", "round-robin",
       "replica routing policies: round-robin|least-loaded|deterministic "
       "(comma list)"},
      {"snapshot-format", "none",
       "serving snapshot round-trips: none|v1|v2 (comma list)"},
      {"bfs-kernel", "auto",
       "BFS traversal kernels: topdown|hybrid|auto (comma list)"},
      {"queries", "1000", "oracle requests per batch"},
      {"workload-seed", "1", "oracle request-generator seed"},
      {"zipf-theta", "0.99", "zipf workload skew exponent"},
  };
  for (const auto& k : kKeys) {
    const std::string raw = flags.str(k.key, k.fallback, k.desc);
    // Under --help only the descriptions matter; skip value parsing so a
    // malformed value next to --help still prints the listing (the same
    // contract util::Flags::integer/real honor).
    if (flags.provided(k.key) && !flags.help_requested()) set(k.key, raw);
  }
}

ScenarioMatrix ScenarioMatrix::from_flags(const util::Flags& flags) {
  ScenarioMatrix m;
  m.apply_flags(flags);
  return m;
}

ScenarioMatrix ScenarioMatrix::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file " + path);
  ScenarioMatrix m;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected `key = value[, value...]`");
    }
    const auto key_end = line.find_last_not_of(" \t", eq - 1);
    if (key_end == std::string::npos || key_end < first) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": missing key before '='");
    }
    const std::string key = line.substr(first, key_end - first + 1);
    std::string value = line.substr(eq + 1);
    const auto vfirst = value.find_first_not_of(" \t\r");
    const auto vlast = value.find_last_not_of(" \t\r");
    value = vfirst == std::string::npos
                ? ""
                : value.substr(vfirst, vlast - vfirst + 1);
    try {
      m.set(key, value);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return m;
}

}  // namespace nas::run
