#include "run/sinks.hpp"

#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace nas::run {

using util::JsonValue;

util::JsonObject row_fields(const ResultRow& row, const SinkOptions& options) {
  const auto& spec = row.spec;
  util::JsonObject fields{
      {"scenario", JsonValue::str(spec.id())},
      {"family", JsonValue::str(spec.family)},
      {"n", JsonValue::number(static_cast<std::uint64_t>(row.n))},
      {"m", JsonValue::number(row.m)},
      {"seed", JsonValue::number(spec.seed)},
      {"algo", JsonValue::str(spec.algo)},
      {"algo_seed", JsonValue::number(spec.algo_seed)},
      {"eps", JsonValue::literal(format_real(spec.eps))},
      {"kappa", JsonValue::number(static_cast<std::int64_t>(spec.kappa))},
      {"rho", JsonValue::literal(format_real(spec.rho))},
      {"mode", JsonValue::str(spec.mode)},
      {"substrate", JsonValue::str(spec.substrate)},
      {"spanner_edges", JsonValue::number(row.spanner_edges)},
      {"rounds", JsonValue::number(row.rounds)},
      {"guarantee_mult", JsonValue::literal(format_real(row.guarantee_mult))},
      {"guarantee_add", JsonValue::literal(format_real(row.guarantee_add))},
      {"verify_mode", JsonValue::str(spec.verify_mode)},
      {"pairs_checked",
       JsonValue::number(row.verified ? row.report.pairs_checked : 0)},
      {"max_mult", JsonValue::literal(
                       format_real(row.verified ? row.report.max_multiplicative
                                                : 0.0, 10))},
      {"max_add",
       JsonValue::number(row.verified ? row.report.max_additive : 0)},
      {"bound_ok", JsonValue::boolean(!row.verified || row.report.bound_ok)},
      {"workload", JsonValue::str(spec.workload)},
      {"queries", JsonValue::number(row.served ? row.oracle_queries : 0)},
      {"cache_budget", JsonValue::number(spec.cache_budget)},
      {"query_threads",
       JsonValue::number(static_cast<std::uint64_t>(spec.query_threads))},
      {"oracle_shards", JsonValue::number(row.oracle_shards)},
      {"oracle_sources", JsonValue::number(row.oracle_sources)},
      {"oracle_cache_hits", JsonValue::number(row.oracle_cache_hits)},
      {"oracle_bfs", JsonValue::number(row.oracle_bfs_passes)},
      {"oracle_evictions", JsonValue::number(row.oracle_evictions)},
      {"oracle_digest", JsonValue::hex64(row.oracle_digest)},
      {"cluster_shards",
       JsonValue::number(static_cast<std::uint64_t>(spec.cluster_shards))},
      {"cluster_partition", JsonValue::str(spec.partition)},
      {"cluster_shards_used", JsonValue::number(row.cluster_shards_used)},
      {"cluster_replicas",
       JsonValue::number(static_cast<std::uint64_t>(spec.replicas))},
      {"cluster_route", JsonValue::str(spec.route)},
      {"cluster_sheds", JsonValue::number(row.cluster_sheds)},
      {"cluster_queue_high_water",
       JsonValue::number(row.cluster_queue_high_water)},
      {"cluster_counter_digest", JsonValue::hex64(row.cluster_counter_digest)},
      {"snapshot_format", JsonValue::str(spec.snapshot_format)},
      {"snapshot_bytes", JsonValue::number(row.snapshot_bytes)},
      {"ok", JsonValue::boolean(row.ok)},
      {"error", JsonValue::str(row.error)},
  };
  if (options.timing) {
    fields.emplace_back("build_ms",
                        JsonValue::literal(format_real(row.build_wall_ms, 4)));
    fields.emplace_back("verify_ms",
                        JsonValue::literal(format_real(row.verify_wall_ms, 4)));
    fields.emplace_back("oracle_ms",
                        JsonValue::literal(format_real(row.oracle_wall_ms, 4)));
    fields.emplace_back(
        "warmup_ms", JsonValue::literal(format_real(row.snapshot_warmup_ms, 4)));
  }
  if (options.extra) {
    for (auto& field : options.extra(row)) fields.push_back(std::move(field));
  }
  return fields;
}

std::string render_json(const std::vector<ResultRow>& rows,
                        const SinkOptions& options) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "  ";
    out += util::render_json_object(row_fields(rows[i], options));
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string render_csv(const std::vector<ResultRow>& rows,
                       const SinkOptions& options) {
  std::string out;
  const auto header = row_fields(rows.empty() ? ResultRow{} : rows.front(),
                                 options);
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c) out += ',';
    out += util::CsvWriter::escape(header[c].first);
  }
  out += '\n';
  for (const auto& row : rows) {
    const auto fields = row_fields(row, options);
    for (std::size_t c = 0; c < fields.size(); ++c) {
      if (c) out += ',';
      out += util::CsvWriter::escape(fields[c].second.text);
    }
    out += '\n';
  }
  return out;
}

namespace {

void write_file(const std::string& text, const std::string& path,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string(what) + " sink: cannot open " + path);
  }
  out << text;
}

}  // namespace

void write_json(const std::vector<ResultRow>& rows, const std::string& path,
                const SinkOptions& options) {
  write_file(render_json(rows, options), path, "json");
}

void write_csv(const std::vector<ResultRow>& rows, const std::string& path,
               const SinkOptions& options) {
  write_file(render_csv(rows, options), path, "csv");
}

}  // namespace nas::run
