#include "baselines/en17.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/interconnect.hpp"
#include "core/popular.hpp"
#include "core/supercluster.hpp"
#include "util/rng.hpp"

namespace nas::baselines {

using core::ClusterState;
using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

BaselineResult build_en17_spanner(const Graph& g, const core::Params& params,
                                  std::uint64_t seed) {
  const Vertex n = g.num_vertices();
  BaselineResult result(n);
  ClusterState clusters(n);
  util::Xoshiro256 rng(seed);

  // EN17 radius/threshold schedule: same L_i and deg_i as the deterministic
  // algorithm, but superclusters grow only to depth δ_i, so
  // R_{i+1} = R_i + δ_i.
  const int ell = params.ell();
  std::uint64_t radius = 0;
  double add = 0.0, mul = 1.0;

  for (int i = 0; i <= ell; ++i) {
    const auto& sched = params.phase(i);
    const std::uint64_t L = sched.L;
    const std::uint64_t delta = L + 2 * radius;

    std::vector<Vertex> centers = clusters.centers();
    if (centers.empty()) break;

    // Knowledge gathering, uncapped (EN17 interconnection is exploration-
    // based; the unpopularity bound on added paths is probabilistic).
    const std::uint64_t cap = std::max<std::uint64_t>(sched.deg, centers.size());
    result.ledger.begin_section("en17 phase " + std::to_string(i));
    const auto alg1 =
        core::run_algorithm1(g, centers, delta, cap, &result.ledger);

    std::vector<Vertex> u_centers;
    if (i < ell) {
      // Random sampling with probability 1/deg_i.
      const double p = 1.0 / static_cast<double>(sched.deg);
      std::vector<Vertex> sampled;
      for (Vertex c : centers) {
        if (rng.bernoulli(p)) sampled.push_back(c);
      }
      const auto super = core::build_superclusters(
          g, clusters, sampled, delta, radius, result.edges, &result.ledger);
      for (Vertex c : centers) {
        if (super.forest_root[c] == kInvalidVertex) u_centers.push_back(c);
      }
    } else {
      u_centers = centers;
    }

    (void)core::interconnect(g, u_centers, alg1, delta, cap, result.edges,
                             &result.ledger);
    for (Vertex c : u_centers) clusters.settle_cluster(c, i);

    // Stretch recursion (Lemma 2.16 with EN17 radii), for the next phase.
    if (i >= 1) {
      add = 2.0 * add + 6.0 * static_cast<double>(radius);
      mul += add / static_cast<double>(L);
    }
    if (i < ell) radius = radius + delta;
  }
  // Final-phase contribution to the stretch pair was accumulated in-loop for
  // i >= 1 using the radius entering each phase; the pair after phase ell is
  // the guarantee.
  result.stretch_multiplicative = mul;
  result.stretch_additive = add;
  result.spanner = result.edges.to_graph();
  return result;
}

}  // namespace nas::baselines
