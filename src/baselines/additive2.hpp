// Purely-additive (1, 2)-spanner of Aingworth-Chekuri-Indyk-Motwani
// ([ACIM99] in the paper's introduction; also [DHZ00]).
//
// Construction (deterministic, centralized):
//   * every edge incident to a *light* vertex (degree < threshold, default
//     ceil(sqrt(n))) is kept;
//   * a greedy dominating set D for the heavy vertices is computed, and a
//     full BFS tree rooted at every d ∈ D is added.
// Size: O(n·|D|) = O(n^{3/2} log n)-ish; stretch: purely additive +2 —
// if a shortest u-v path is all-light it survives verbatim; otherwise some
// heavy vertex w on it has a dominator d at distance <= 1, and the BFS tree
// of d gives d_H(u,v) <= d(u,d) + d(d,v) <= d_G(u,v) + 2.
//
// Why it is here: the paper's motivation leans on Abboud-Bodwin [AB15] —
// arbitrarily *sparse* purely-additive spanners do not exist, so
// near-additive (1+ε, β) is the best sparse approximation available.  This
// baseline makes that concrete: +2 additive error costs Θ(n^{3/2}) edges,
// while the near-additive construction reaches O(β·n^{1+1/κ}) for any κ.
#pragma once

#include <cstdint>

#include "baselines/common.hpp"
#include "graph/graph.hpp"

namespace nas::baselines {

/// `degree_threshold` = 0 picks ceil(sqrt(n)).
[[nodiscard]] BaselineResult build_additive2_spanner(
    const graph::Graph& g, std::uint32_t degree_threshold = 0);

}  // namespace nas::baselines
