// Baswana-Sen randomized (2κ−1)-multiplicative spanner.
//
// The classic clustering algorithm: κ−1 sampling iterations followed by a
// final cluster-joining step; expected size O(κ·n^{1+1/κ}).  This is the
// canonical *multiplicative* spanner the paper's introduction contrasts
// near-additive spanners against: on long distances the 2κ−1 factor is far
// worse than (1+ε)d+β, which is exactly what the Table 2 bench shows.
//
// The implementation follows the distributed formulation (clusters of radius
// ≤ i after iteration i); the simulated round charge is O(κ) per iteration
// plus O(κ) for the final step, the textbook CONGEST cost of the algorithm.
#pragma once

#include <cstdint>

#include "baselines/common.hpp"
#include "graph/graph.hpp"

namespace nas::baselines {

[[nodiscard]] BaselineResult build_baswana_sen_spanner(const graph::Graph& g,
                                                       int kappa,
                                                       std::uint64_t seed);

}  // namespace nas::baselines
