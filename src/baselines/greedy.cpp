#include "baselines/greedy.hpp"

#include <queue>
#include <stdexcept>
#include <vector>

namespace nas::baselines {

using graph::Graph;
using graph::Vertex;

BaselineResult build_greedy_spanner(const Graph& g, int kappa) {
  if (kappa < 1) throw std::invalid_argument("greedy: kappa < 1");
  const Vertex n = g.num_vertices();
  BaselineResult result(n);
  const std::uint32_t threshold = 2 * static_cast<std::uint32_t>(kappa) - 1;
  result.stretch_multiplicative = threshold;

  // Incremental adjacency of the spanner under construction.
  std::vector<std::vector<Vertex>> adj(n);
  // Scratch for bounded BFS (distance stamps avoid re-initialization).
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<std::uint64_t> stamp(n, 0);
  std::uint64_t current = 0;

  const auto bounded_dist_exceeds = [&](Vertex s, Vertex t,
                                        std::uint32_t bound) {
    ++current;
    std::queue<Vertex> q;
    q.push(s);
    stamp[s] = current;
    dist[s] = 0;
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      if (u == t) return false;
      if (dist[u] >= bound) continue;
      for (Vertex w : adj[u]) {
        if (stamp[w] != current) {
          stamp[w] = current;
          dist[w] = dist[u] + 1;
          q.push(w);
        }
      }
    }
    return true;
  };

  for (const auto& [u, v] : g.edges()) {
    if (bounded_dist_exceeds(u, v, threshold)) {
      result.edges.insert(u, v);
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  result.spanner = result.edges.to_graph();
  return result;
}

}  // namespace nas::baselines
