// Elkin-Neiman (SODA'17) style *randomized* CONGEST near-additive spanner.
//
// This is the algorithm the paper derandomizes, implemented in the same
// superclustering-and-interconnection skeleton so the comparison isolates
// exactly the paper's change: EN17 samples each cluster center with
// probability 1/deg_i and grows superclusters by a depth-δ_i BFS from the
// sampled centers, whereas the paper covers the popular centers with a
// deterministic ruling set and grows to depth 2δ_i·c.
//
// Consequences reproduced by the benches:
//   * EN17's radii grow like R_{i+1} = R_i + δ_i (no ruling-set inflation),
//     so its additive term β_EN is smaller — the "same ballpark, slightly
//     inferior" relationship of Table 1/2.
//   * EN17's per-phase structure bounds hold only in expectation/w.h.p.;
//     the deterministic algorithm's hold always.
//
// The interconnection here gathers knowledge uncapped (EN17 uses
// Bellman-Ford explorations); the stretch guarantee of Lemma 2.16 therefore
// holds deterministically for the *returned* spanner, while the size bound
// is randomized.
#pragma once

#include <cstdint>

#include "baselines/common.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace nas::baselines {

[[nodiscard]] BaselineResult build_en17_spanner(const graph::Graph& g,
                                                const core::Params& params,
                                                std::uint64_t seed);

}  // namespace nas::baselines
