// Centralized Elkin-Peleg-style (1+ε, β) spanner.
//
// The existential construction (STOC'01) that both EN17 and this paper
// implement distributedly.  Centralized greedy selection replaces the
// ruling set: the supercluster roots are a greedily chosen maximal
// (2δ_i+1)-separated subset of the popular centers, which dominates all
// popular centers within 2δ_i.  Radii therefore grow like
// R_{i+1} = R_i + 2δ_i — the benchmark for how much the deterministic
// CONGEST ruling set (depth 2δ_i·c) inflates the additive term.
//
// The ledger records zero rounds: this baseline is centralized (Table 2's
// "centralized, deterministic" rows); it is used for spanner-quality
// comparisons only.
#pragma once

#include "baselines/common.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace nas::baselines {

[[nodiscard]] BaselineResult build_elkin_peleg_spanner(const graph::Graph& g,
                                                       const core::Params& params);

}  // namespace nas::baselines
