#include "baselines/baswana_sen.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace nas::baselines {

using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

BaselineResult build_baswana_sen_spanner(const Graph& g, int kappa,
                                         std::uint64_t seed) {
  if (kappa < 1) throw std::invalid_argument("baswana_sen: kappa < 1");
  const Vertex n = g.num_vertices();
  BaselineResult result(n);
  result.stretch_multiplicative = 2.0 * kappa - 1.0;
  result.stretch_additive = 0.0;
  util::Xoshiro256 rng(seed);

  // cluster[v]: id of v's cluster center, or kInvalidVertex once v left the
  // clustering (its inter-cluster edges are then fully represented in H).
  std::vector<Vertex> cluster(n);
  for (Vertex v = 0; v < n; ++v) cluster[v] = v;

  const double sample_p =
      std::pow(static_cast<double>(n), -1.0 / static_cast<double>(kappa));

  result.ledger.begin_section("baswana-sen iterations");
  for (int iter = 1; iter < kappa; ++iter) {
    // 1. Sample cluster centers.  The RNG stream is consumed in ascending
    // center order: iterating the live-center *set* here would hand each
    // center a hash-layout-dependent draw, making the sampled set (and the
    // whole spanner) depend on the standard library's bucket order rather
    // than only on the seed.
    std::unordered_set<Vertex> sampled_centers;
    {
      std::vector<char> live(n, 0);
      for (Vertex v = 0; v < n; ++v) {
        if (cluster[v] != kInvalidVertex) live[cluster[v]] = 1;
      }
      for (Vertex c = 0; c < n; ++c) {
        if (live[c] && rng.bernoulli(sample_p)) sampled_centers.insert(c);
      }
    }
    // 2. Re-cluster each still-clustered vertex.
    std::vector<Vertex> next_cluster(cluster);
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] == kInvalidVertex) continue;
      if (sampled_centers.count(cluster[v])) continue;  // stays put
      // Neighbor in a sampled cluster?  Deterministic pick: smallest
      // neighbor ID (adjacency is sorted).
      Vertex join_via = kInvalidVertex;
      for (Vertex w : g.neighbors(v)) {
        if (cluster[w] != kInvalidVertex && sampled_centers.count(cluster[w])) {
          join_via = w;
          break;
        }
      }
      if (join_via != kInvalidVertex) {
        result.edges.insert(v, join_via);
        next_cluster[v] = cluster[join_via];
      } else {
        // No sampled neighbor cluster: keep one edge per adjacent cluster,
        // then leave the clustering.
        std::unordered_set<Vertex> done;
        for (Vertex w : g.neighbors(v)) {
          if (cluster[w] == kInvalidVertex || cluster[w] == cluster[v]) continue;
          if (done.insert(cluster[w]).second) result.edges.insert(v, w);
        }
        next_cluster[v] = kInvalidVertex;
      }
    }
    cluster = std::move(next_cluster);
    // Cluster radius after iteration `iter` is at most `iter`; the
    // distributed implementation spends O(radius) rounds per iteration.
    result.ledger.charge_rounds(static_cast<std::uint64_t>(iter) + 1);
    result.ledger.charge_messages(g.num_edges());
  }

  // Final step: every still-clustered vertex keeps one edge to each
  // adjacent cluster (including joining its own cluster's internal tree via
  // the edges added when it joined).
  result.ledger.begin_section("baswana-sen final join");
  for (Vertex v = 0; v < n; ++v) {
    if (cluster[v] == kInvalidVertex) continue;
    std::unordered_set<Vertex> done;
    for (Vertex w : g.neighbors(v)) {
      if (cluster[w] == kInvalidVertex || cluster[w] == cluster[v]) continue;
      if (done.insert(cluster[w]).second) result.edges.insert(v, w);
    }
  }
  result.ledger.charge_rounds(static_cast<std::uint64_t>(kappa));
  result.ledger.charge_messages(g.num_edges());

  // Intra-cluster edges of the *original* singleton clusters grew through
  // the join edges; but two adjacent vertices that stayed in one cluster
  // throughout never added their edge.  Distances inside a cluster go
  // through its center (radius ≤ κ−1), which the 2κ−1 analysis accounts
  // for.  Nothing further to add.
  result.spanner = result.edges.to_graph();
  return result;
}

}  // namespace nas::baselines
