#include "baselines/elkin_peleg.hpp"

#include <algorithm>
#include <vector>

#include "core/cluster.hpp"
#include "core/interconnect.hpp"
#include "core/popular.hpp"
#include "core/supercluster.hpp"
#include "graph/bfs.hpp"

namespace nas::baselines {

using core::ClusterState;
using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

/// Greedy maximal (2δ+1)-separated subset of `candidates` (processed in ID
/// order): every unchosen candidate is within 2δ of a chosen one.
std::vector<Vertex> greedy_separated_subset(const Graph& g,
                                            const std::vector<Vertex>& candidates,
                                            std::uint64_t two_delta) {
  std::vector<Vertex> chosen;
  std::vector<std::uint8_t> covered(g.num_vertices(), 0);
  std::vector<Vertex> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  for (Vertex c : sorted) {
    if (covered[c]) continue;
    chosen.push_back(c);
    // Mark everything within 2δ of c as covered.
    const auto res = graph::multi_source_bfs_bounded(
        g, {c}, static_cast<std::uint32_t>(two_delta));
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (res.dist[v] != kInfDist) covered[v] = 1;
    }
  }
  return chosen;
}

}  // namespace

BaselineResult build_elkin_peleg_spanner(const Graph& g,
                                         const core::Params& params) {
  const Vertex n = g.num_vertices();
  BaselineResult result(n);
  ClusterState clusters(n);

  const int ell = params.ell();
  std::uint64_t radius = 0;
  double add = 0.0, mul = 1.0;

  for (int i = 0; i <= ell; ++i) {
    const auto& sched = params.phase(i);
    const std::uint64_t L = sched.L;
    const std::uint64_t delta = L + 2 * radius;

    std::vector<Vertex> centers = clusters.centers();
    if (centers.empty()) break;

    std::uint64_t cap = sched.deg;
    if (i == ell) cap = std::max<std::uint64_t>(cap, centers.size());
    // Knowledge gathering: reuse the deterministic Algorithm 1 (it is a
    // centralized computation here; the ledger is not charged).
    const auto alg1 = core::run_algorithm1(g, centers, delta, cap, nullptr);

    std::vector<Vertex> u_centers;
    if (i < ell) {
      std::vector<Vertex> popular;
      for (Vertex c : centers) {
        if (alg1.popular[c]) popular.push_back(c);
      }
      const auto roots = greedy_separated_subset(g, popular, 2 * delta);
      const auto super = core::build_superclusters(
          g, clusters, roots, 2 * delta, radius, result.edges, nullptr);
      for (Vertex c : centers) {
        if (super.forest_root[c] == kInvalidVertex) u_centers.push_back(c);
      }
    } else {
      u_centers = centers;
    }

    (void)core::interconnect(g, u_centers, alg1, delta, cap, result.edges,
                             nullptr);
    for (Vertex c : u_centers) clusters.settle_cluster(c, i);

    if (i >= 1) {
      add = 2.0 * add + 6.0 * static_cast<double>(radius);
      mul += add / static_cast<double>(L);
    }
    if (i < ell) radius = radius + 2 * delta;
  }
  result.stretch_multiplicative = mul;
  result.stretch_additive = add;
  result.spanner = result.edges.to_graph();
  return result;
}

}  // namespace nas::baselines
