// Shared result type for the baseline spanner constructions.
#pragma once

#include <cstdint>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"

namespace nas::baselines {

struct BaselineResult {
  graph::EdgeSet edges;
  graph::Graph spanner;
  congest::Ledger ledger;  ///< simulated CONGEST cost (0 rounds = centralized)
  /// Proven stretch guarantee d_H <= m*d_G + a (multiplicative baselines
  /// have a == 0).
  double stretch_multiplicative = 1.0;
  double stretch_additive = 0.0;

  explicit BaselineResult(graph::Vertex n) : edges(n) {}
};

}  // namespace nas::baselines
