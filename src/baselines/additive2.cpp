#include "baselines/additive2.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/bfs.hpp"

namespace nas::baselines {

using graph::Graph;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Vertex;

BaselineResult build_additive2_spanner(const Graph& g,
                                       std::uint32_t degree_threshold) {
  const Vertex n = g.num_vertices();
  BaselineResult result(n);
  result.stretch_multiplicative = 1.0;
  result.stretch_additive = 2.0;
  if (degree_threshold == 0) {
    degree_threshold = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(std::max<Vertex>(n, 1)))));
  }

  // Light edges: keep everything incident to a low-degree endpoint.
  std::vector<std::uint8_t> heavy(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    heavy[v] = g.degree(v) >= degree_threshold ? 1 : 0;
  }
  for (const auto& [u, v] : g.edges()) {
    if (!heavy[u] || !heavy[v]) result.edges.insert(u, v);
  }

  // Greedy dominating set for the heavy vertices: repeatedly take the
  // vertex that dominates the most not-yet-dominated heavy vertices.
  // (Classic ln-n-approximation; deterministic.)
  std::vector<std::uint8_t> dominated(n, 1);
  std::size_t remaining = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (heavy[v]) {
      dominated[v] = 0;
      ++remaining;
    }
  }
  std::vector<Vertex> dominators;
  while (remaining > 0) {
    Vertex best = kInvalidVertex;
    std::size_t best_gain = 0;
    for (Vertex v = 0; v < n; ++v) {
      std::size_t gain = dominated[v] ? 0 : 1;
      for (Vertex u : g.neighbors(v)) gain += dominated[u] ? 0 : 1;
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    dominators.push_back(best);
    if (!dominated[best]) {
      dominated[best] = 1;
      --remaining;
    }
    for (Vertex u : g.neighbors(best)) {
      if (!dominated[u]) {
        dominated[u] = 1;
        --remaining;
      }
    }
  }

  // Full BFS tree from every dominator.
  for (Vertex d : dominators) {
    const auto tree = graph::bfs(g, d);
    for (Vertex v = 0; v < n; ++v) {
      if (tree.parent[v] != kInvalidVertex) {
        result.edges.insert(v, tree.parent[v]);
      }
    }
  }

  result.spanner = result.edges.to_graph();
  return result;
}

}  // namespace nas::baselines
