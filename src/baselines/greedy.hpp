// Centralized greedy (2κ−1)-multiplicative spanner (Althöfer et al.).
//
// Scans edges in canonical order and keeps an edge iff the current spanner
// distance between its endpoints exceeds 2κ−1.  Guarantees stretch 2κ−1 and
// size O(n^{1+1/κ}) (girth argument); the strongest size/quality reference
// point among the multiplicative baselines.
#pragma once

#include "baselines/common.hpp"
#include "graph/graph.hpp"

namespace nas::baselines {

[[nodiscard]] BaselineResult build_greedy_spanner(const graph::Graph& g,
                                                  int kappa);

}  // namespace nas::baselines
