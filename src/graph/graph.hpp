// Core graph types.
//
// The paper works with unweighted, undirected, simple graphs whose vertices
// carry unique IDs in [n].  `Graph` is an immutable adjacency structure
// (vertex IDs are the indices), and `EdgeSet` is the growable edge container
// used for the spanner H while it is under construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace nas::graph {

using Vertex = std::uint32_t;
using Edge = std::pair<Vertex, Vertex>;

inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

/// Distance value for "unreachable" in BFS/APSP results.
inline constexpr std::uint32_t kInfDist = static_cast<std::uint32_t>(-1);

/// Canonical (min, max) form of an undirected edge.
constexpr Edge canonical(Vertex u, Vertex v) {
  return u < v ? Edge{u, v} : Edge{v, u};
}

/// Packs a canonical edge into one word (used as a hash key).
constexpr std::uint64_t edge_key(Vertex u, Vertex v) {
  const auto [lo, hi] = canonical(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// An immutable, simple, undirected, unweighted graph on vertices 0..n-1.
///
/// Adjacency lists are sorted by neighbor ID; all algorithms in this library
/// that iterate neighbors therefore do so in deterministic ID order, which is
/// what makes the deterministic protocols reproducible bit-for-bit.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an edge list.  Self-loops are rejected
  /// (std::invalid_argument); parallel edges are deduplicated.
  static Graph from_edges(Vertex n, const std::vector<Edge>& edges);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return m_; }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] std::size_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::size_t max_degree() const;

  /// O(log deg) membership test.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// All edges in canonical form, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Average degree 2m/n (0 for the empty graph).
  [[nodiscard]] double average_degree() const {
    return n_ == 0 ? 0.0 : 2.0 * static_cast<double>(m_) / n_;
  }

  /// Human-readable one-line summary, e.g. "Graph(n=100, m=250)".
  [[nodiscard]] std::string summary() const;

 private:
  Vertex n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::size_t> offsets_{0};  // CSR offsets, size n_+1
  std::vector<Vertex> adj_;              // concatenated sorted neighbor lists
};

/// Growable set of undirected edges over a fixed vertex universe.  This is
/// the representation of the spanner H during construction: inserts are
/// idempotent, and the final structure converts to a `Graph` for verification.
class EdgeSet {
 public:
  explicit EdgeSet(Vertex n) : n_(n) {}

  /// Inserts {u, v}; returns true if the edge was new.  Rejects self-loops
  /// and out-of-range endpoints via std::invalid_argument.
  bool insert(Vertex u, Vertex v);

  [[nodiscard]] bool contains(Vertex u, Vertex v) const {
    return keys_.count(edge_key(u, v)) != 0;
  }

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Materializes the subgraph (V, H).
  [[nodiscard]] Graph to_graph() const { return Graph::from_edges(n_, edges_); }

 private:
  Vertex n_;
  std::unordered_set<std::uint64_t> keys_;
  std::vector<Edge> edges_;  // insertion order, canonical form
};

}  // namespace nas::graph
