// Connectivity helpers.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace nas::graph {

struct Components {
  std::vector<Vertex> component;  // component id per vertex (0-based)
  std::vector<std::size_t> sizes;
  Vertex count = 0;
  Vertex largest = 0;  // id of the largest component
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Returns the induced subgraph on the largest connected component together
/// with the old->new vertex id map (kInvalidVertex for dropped vertices).
struct LargestComponent {
  Graph graph;
  std::vector<Vertex> old_to_new;
  std::vector<Vertex> new_to_old;
};
[[nodiscard]] LargestComponent largest_component(const Graph& g);

}  // namespace nas::graph
