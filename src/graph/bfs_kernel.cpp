#include "graph/bfs_kernel.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::graph {

namespace {

// Beamer-style switch thresholds.  Top-down -> bottom-up when the edges out
// of the current frontier exceed the edges still adjacent to unvisited
// vertices divided by kAlpha; bottom-up -> top-down when the frontier drops
// below n / kBeta vertices.  The classic paper values (14, 24) carry over
// unchanged: the repo's families (er, ba, grid, ...) sit squarely in the
// regimes they were tuned for, and correctness never depends on them.
constexpr std::uint64_t kAlpha = 14;
constexpr std::uint64_t kBeta = 24;

// kAuto resolves per graph, not per level: hybrid pays a bitmap-build and an
// O(n) unvisited scan per bottom-up level, which only amortizes when the
// middle levels are edge-dense.  Average directed degree >= kAutoDegree
// (er ~8, er_dense ~32, ba ~6 qualify; grid = 4, path/tree do not) is the
// whole heuristic — deterministic, O(1), no measurement involved.
constexpr std::uint64_t kAutoDegree = 5;

inline void set_bit(std::vector<std::uint64_t>& bits, Vertex v) {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63U);
}

inline bool test_bit(const std::vector<std::uint64_t>& bits, Vertex v) {
  return ((bits[v >> 6] >> (v & 63U)) & 1U) != 0;
}

}  // namespace

BfsKernel parse_bfs_kernel(const std::string& name) {
  if (name == "topdown") return BfsKernel::kTopDown;
  if (name == "hybrid") return BfsKernel::kHybrid;
  if (name == "auto") return BfsKernel::kAuto;
  std::string msg = "unknown BFS kernel '";
  msg += name;
  msg += "' (expected topdown, hybrid, or auto)";
  throw std::invalid_argument(msg);
}

const char* bfs_kernel_name(BfsKernel kernel) {
  switch (kernel) {
    case BfsKernel::kTopDown:
      return "topdown";
    case BfsKernel::kHybrid:
      return "hybrid";
    case BfsKernel::kAuto:
      return "auto";
  }
  return "auto";
}

void BfsScratch::resize(Vertex n) {
  if (n == n_) return;
  n_ = n;
  dist_.resize(n);
  mark_.assign(n, 0);
  epoch_ = 0;  // run() bumps to 1; all marks are stale by construction
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  front_bits_.resize(words);
  next_bits_.resize(words);
  frontier_.clear();
  frontier_.reserve(n);
}

void BfsScratch::run(const Csr& g, Vertex source, BfsKernel kernel,
                     BfsKernelStats* stats) {
  const Vertex n = g.num_vertices();
  if (source >= n) {
    throw std::invalid_argument("bfs_kernel: source out of range");
  }
  resize(n);

  // New epoch == every previous distance becomes invalid in O(1).  On wrap
  // (every 2^16 runs) the tags are flushed once so a stale mark from 65536
  // runs ago can never alias the fresh epoch.
  if (epoch_ == std::uint16_t(-1)) {
    std::fill(mark_.begin(), mark_.end(), std::uint16_t{0});
    epoch_ = 1;
  } else {
    epoch_ = static_cast<std::uint16_t>(epoch_ + 1);
  }

  BfsKernel resolved = kernel;
  if (resolved == BfsKernel::kAuto) {
    resolved = g.entries().size() >= kAutoDegree * n ? BfsKernel::kHybrid
                                                     : BfsKernel::kTopDown;
  }

  frontier_.clear();
  frontier_.push_back(source);
  dist_[source] = 0;
  mark_[source] = epoch_;

  const std::uint64_t total_directed = g.entries().size();
  std::uint64_t visited_degree = g.degree(source);  // deg sum over visited
  std::uint64_t level_degree = visited_degree;      // edges out of this level
  std::uint64_t edges_inspected = 0;
  std::uint32_t top_down_levels = 0;
  std::uint32_t bottom_up_levels = 0;
  std::uint32_t depth = 0;
  std::size_t level_begin = 0;
  bool bottom_up = false;
  bool bits_valid = false;  // front_bits_ mirrors the current level slice

  while (level_begin < frontier_.size()) {
    const std::size_t level_end = frontier_.size();

    if (resolved == BfsKernel::kHybrid) {
      if (!bottom_up) {
        // Both sums were accumulated while this frontier was generated
        // (Csr offsets are the degree prefix, so each discovered vertex
        // added its degree in O(1)) — the switch decision is O(1) here.
        const std::uint64_t unvisited_degree = total_directed - visited_degree;
        if (level_degree > unvisited_degree / kAlpha) bottom_up = true;
      } else if (level_end - level_begin < n / kBeta) {
        bottom_up = false;
      }
    }

    const std::uint32_t next_dist = depth + 1;
    std::uint64_t next_level_degree = 0;

    if (bottom_up) {
      // The frontier bitmap either survived from the previous bottom-up
      // level (the post-scan swap below leaves it in front_bits_) or is
      // rebuilt once from the level slice on a top-down -> bottom-up switch.
      if (!bits_valid) {
        std::fill(front_bits_.begin(), front_bits_.end(), std::uint64_t{0});
        for (std::size_t i = level_begin; i < level_end; ++i) {
          set_bit(front_bits_, frontier_[i]);
        }
      }
      std::fill(next_bits_.begin(), next_bits_.end(), std::uint64_t{0});
      // Ascending vertex order — the same per-level membership top-down
      // finds, so distances stay byte-identical.
      for (Vertex v = 0; v < n; ++v) {
        if (mark_[v] == epoch_) continue;
        for (Vertex u : g.neighbors(v)) {
          ++edges_inspected;
          if (test_bit(front_bits_, u)) {
            dist_[v] = next_dist;
            mark_[v] = epoch_;
            set_bit(next_bits_, v);
            frontier_.push_back(v);
            const std::uint64_t deg = g.degree(v);
            next_level_degree += deg;
            visited_degree += deg;
            break;  // first in-frontier neighbor suffices: distance only
          }
        }
      }
      std::swap(front_bits_, next_bits_);
      bits_valid = true;
      ++bottom_up_levels;
    } else {
      for (std::size_t i = level_begin; i < level_end; ++i) {
        const Vertex u = frontier_[i];
        edges_inspected += g.degree(u);
        for (Vertex v : g.neighbors(u)) {
          if (mark_[v] != epoch_) {
            dist_[v] = next_dist;
            mark_[v] = epoch_;
            frontier_.push_back(v);
            const std::uint64_t deg = g.degree(v);
            next_level_degree += deg;
            visited_degree += deg;
          }
        }
      }
      bits_valid = false;
      ++top_down_levels;
    }

    level_begin = level_end;
    level_degree = next_level_degree;
    ++depth;
  }

  if (stats != nullptr) {
    stats->edges_inspected = edges_inspected;
    stats->top_down_levels = top_down_levels;
    stats->bottom_up_levels = bottom_up_levels;
  }
}

void BfsScratch::copy_distances(std::span<std::uint32_t> out) const {
  if (out.size() != n_) {
    throw std::invalid_argument(
        "bfs_kernel: copy_distances size must equal num_vertices");
  }
  std::fill(out.begin(), out.end(), kInfDist);
  for (Vertex v : frontier_) out[v] = dist_[v];
}

std::uint32_t BfsScratch::max_reached_distance() const {
  std::uint32_t ecc = 0;
  for (Vertex v : frontier_) ecc = std::max(ecc, dist_[v]);
  return ecc;
}

void bfs_kernel_into(const Csr& g, Vertex source, std::span<std::uint32_t> dist,
                     BfsScratch& scratch, BfsKernel kernel,
                     BfsKernelStats* stats) {
  scratch.run(g, source, kernel, stats);
  scratch.copy_distances(dist);
}

}  // namespace nas::graph
