#include "graph/bfs.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs_kernel.hpp"
#include "graph/components.hpp"

namespace nas::graph {

namespace {

BfsResult bfs_impl(const Graph& g, const std::vector<Vertex>& sources,
                   std::uint32_t depth_limit) {
  const Vertex n = g.num_vertices();
  BfsResult res;
  res.dist.assign(n, kInfDist);
  res.parent.assign(n, kInvalidVertex);
  res.root.assign(n, kInvalidVertex);

  // Seed in sorted order so that equidistant ties resolve to the smaller
  // source ID.  The frontier vector is consumed front-to-back (head index),
  // so it is the same FIFO the retired std::queue was — identical visit
  // order, identical parent/root tie-breaks, zero per-BFS heap churn.
  std::vector<Vertex> seeds = sources;
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  std::vector<Vertex> frontier;
  frontier.reserve(n);
  for (Vertex s : seeds) {
    if (s >= n) throw std::invalid_argument("bfs: source out of range");
    res.dist[s] = 0;
    res.root[s] = s;
    frontier.push_back(s);
  }
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const Vertex u = frontier[head];
    if (res.dist[u] >= depth_limit) continue;
    for (Vertex v : g.neighbors(u)) {
      if (res.dist[v] == kInfDist) {
        res.dist[v] = res.dist[u] + 1;
        res.parent[v] = u;
        res.root[v] = res.root[u];
        frontier.push_back(v);
      }
    }
  }
  return res;
}

}  // namespace

BfsResult bfs(const Graph& g, Vertex source) {
  return bfs_impl(g, {source}, kInfDist);
}

namespace {

// One traversal shared by the adjacency-list and CSR entry points: both
// expose num_vertices()/neighbors(v) with neighbors ascending, so the
// visit order — and therefore every distance — is representation-free.
template <typename AnyGraph>
void bfs_into_impl(const AnyGraph& g, Vertex source,
                   std::span<std::uint32_t> dist,
                   std::vector<Vertex>& frontier) {
  const Vertex n = g.num_vertices();
  if (dist.size() != n) {
    throw std::invalid_argument("bfs_into: dist size must equal num_vertices");
  }
  if (source >= n) throw std::invalid_argument("bfs: source out of range");
  std::fill(dist.begin(), dist.end(), kInfDist);
  frontier.clear();
  frontier.reserve(n);
  frontier.push_back(source);
  dist[source] = 0;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const Vertex u = frontier[head];
    const std::uint32_t du = dist[u];
    for (Vertex v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = du + 1;
        frontier.push_back(v);
      }
    }
  }
}

}  // namespace

void bfs_into(const Graph& g, Vertex source, std::span<std::uint32_t> dist,
              std::vector<Vertex>& frontier) {
  bfs_into_impl(g, source, dist, frontier);
}

void bfs_into(const Graph& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>& frontier) {
  dist.resize(g.num_vertices());
  bfs_into_impl(g, source,
                std::span<std::uint32_t>(dist.data(), dist.size()), frontier);
}

void bfs_into(const Csr& g, Vertex source, std::span<std::uint32_t> dist,
              std::vector<Vertex>& frontier) {
  bfs_into_impl(g, source, dist, frontier);
}

void bfs_into(const Csr& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>& frontier) {
  dist.resize(g.num_vertices());
  bfs_into_impl(g, source,
                std::span<std::uint32_t>(dist.data(), dist.size()), frontier);
}

BfsResult multi_source_bfs(const Graph& g, const std::vector<Vertex>& sources) {
  return bfs_impl(g, sources, kInfDist);
}

BfsResult multi_source_bfs_bounded(const Graph& g,
                                   const std::vector<Vertex>& sources,
                                   std::uint32_t depth) {
  return bfs_impl(g, sources, depth);
}

std::uint32_t eccentricity(const Graph& g, Vertex v) {
  BfsScratch scratch;
  scratch.run(Csr::from_graph(g), v, BfsKernel::kTopDown);
  return scratch.max_reached_distance();
}

std::uint32_t diameter_largest_component(const Graph& g) {
  const auto comp = connected_components(g);
  // One CSR build and one scratch for the whole sweep: the previous version
  // allocated a full 3-vector BfsResult per source, turning the O(n·m)
  // traversal into an O(n·m) allocation storm on top.  The epoch-marked
  // scratch resets in O(component) per source instead.
  const Csr csr = Csr::from_graph(g);
  BfsScratch scratch;
  std::uint32_t diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (comp.component[v] == comp.largest) {
      scratch.run(csr, v, BfsKernel::kAuto);
      diam = std::max(diam, scratch.max_reached_distance());
    }
  }
  return diam;
}

}  // namespace nas::graph
