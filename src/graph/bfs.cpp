#include "graph/bfs.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/components.hpp"

namespace nas::graph {

namespace {

BfsResult bfs_impl(const Graph& g, const std::vector<Vertex>& sources,
                   std::uint32_t depth_limit) {
  const Vertex n = g.num_vertices();
  BfsResult res;
  res.dist.assign(n, kInfDist);
  res.parent.assign(n, kInvalidVertex);
  res.root.assign(n, kInvalidVertex);

  // Seed in sorted order so that equidistant ties resolve to the smaller
  // source ID (FIFO queue preserves insertion order per level).
  std::vector<Vertex> seeds = sources;
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  std::queue<Vertex> q;
  for (Vertex s : seeds) {
    if (s >= n) throw std::invalid_argument("bfs: source out of range");
    res.dist[s] = 0;
    res.root[s] = s;
    q.push(s);
  }
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    if (res.dist[u] >= depth_limit) continue;
    for (Vertex v : g.neighbors(u)) {
      if (res.dist[v] == kInfDist) {
        res.dist[v] = res.dist[u] + 1;
        res.parent[v] = u;
        res.root[v] = res.root[u];
        q.push(v);
      }
    }
  }
  return res;
}

}  // namespace

BfsResult bfs(const Graph& g, Vertex source) {
  return bfs_impl(g, {source}, kInfDist);
}

namespace {

// One traversal shared by the adjacency-list and CSR entry points: both
// expose num_vertices()/neighbors(v) with neighbors ascending, so the
// visit order — and therefore every distance — is representation-free.
template <typename AnyGraph>
void bfs_into_impl(const AnyGraph& g, Vertex source,
                   std::span<std::uint32_t> dist,
                   std::vector<Vertex>& frontier) {
  const Vertex n = g.num_vertices();
  if (dist.size() != n) {
    throw std::invalid_argument("bfs_into: dist size must equal num_vertices");
  }
  if (source >= n) throw std::invalid_argument("bfs: source out of range");
  std::fill(dist.begin(), dist.end(), kInfDist);
  frontier.clear();
  frontier.reserve(n);
  frontier.push_back(source);
  dist[source] = 0;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const Vertex u = frontier[head];
    const std::uint32_t du = dist[u];
    for (Vertex v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = du + 1;
        frontier.push_back(v);
      }
    }
  }
}

}  // namespace

void bfs_into(const Graph& g, Vertex source, std::span<std::uint32_t> dist,
              std::vector<Vertex>& frontier) {
  bfs_into_impl(g, source, dist, frontier);
}

void bfs_into(const Graph& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>& frontier) {
  dist.resize(g.num_vertices());
  bfs_into_impl(g, source,
                std::span<std::uint32_t>(dist.data(), dist.size()), frontier);
}

void bfs_into(const Csr& g, Vertex source, std::span<std::uint32_t> dist,
              std::vector<Vertex>& frontier) {
  bfs_into_impl(g, source, dist, frontier);
}

void bfs_into(const Csr& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>& frontier) {
  dist.resize(g.num_vertices());
  bfs_into_impl(g, source,
                std::span<std::uint32_t>(dist.data(), dist.size()), frontier);
}

BfsResult multi_source_bfs(const Graph& g, const std::vector<Vertex>& sources) {
  return bfs_impl(g, sources, kInfDist);
}

BfsResult multi_source_bfs_bounded(const Graph& g,
                                   const std::vector<Vertex>& sources,
                                   std::uint32_t depth) {
  return bfs_impl(g, sources, depth);
}

std::uint32_t eccentricity(const Graph& g, Vertex v) {
  const auto res = bfs(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : res.dist) {
    if (d != kInfDist) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_largest_component(const Graph& g) {
  const auto comp = connected_components(g);
  std::uint32_t diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (comp.component[v] == comp.largest) {
      diam = std::max(diam, eccentricity(g, v));
    }
  }
  return diam;
}

}  // namespace nas::graph
