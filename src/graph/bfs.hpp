// Centralized BFS primitives.
//
// These are the *verification* oracles: exact distances against which the
// distributed constructions are checked.  They are deliberately independent
// of the CONGEST simulator code path.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace nas::graph {

/// Result of a (single- or multi-source) BFS.
struct BfsResult {
  std::vector<std::uint32_t> dist;  // kInfDist if unreachable
  std::vector<Vertex> parent;       // kInvalidVertex at sources/unreached
  std::vector<Vertex> root;         // nearest source (kInvalidVertex if none)
};

/// BFS from a single source.
///
/// Tie-break contract (shared by every entry point below): sources are
/// seeded in ascending ID order and the frontier is consumed FIFO, so an
/// equidistant vertex takes its parent/root through the smallest-ID chain.
/// The traversal runs on a vector frontier drained by head index — the same
/// FIFO discipline the original std::queue implementation had, kept
/// allocation-flat instead of heap-churning per BFS.
[[nodiscard]] BfsResult bfs(const Graph& g, Vertex source);

/// Allocation-free single-source BFS distances into caller-owned buffers:
/// fills `dist` (which must have size n) with d(source, ·), kInfDist where
/// unreachable, using `frontier` as FIFO scratch.  Neither buffer is
/// reallocated once grown to capacity n, so a caller looping over sources
/// pays zero allocations per BFS — this is the hot primitive behind the
/// sharded stretch verifier and the APSP oracle.
void bfs_into(const Graph& g, Vertex source, std::span<std::uint32_t> dist,
              std::vector<Vertex>& frontier);

/// Convenience overload that resizes `dist` to n first.
void bfs_into(const Graph& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>& frontier);

/// CSR twins of bfs_into: identical traversal order (neighbors ascending),
/// identical buffers, so distances are byte-identical to the adjacency-list
/// path.  This is the serving hot loop — the oracle, the verifier, and APSP
/// all run on it.
void bfs_into(const Csr& g, Vertex source, std::span<std::uint32_t> dist,
              std::vector<Vertex>& frontier);
void bfs_into(const Csr& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>& frontier);

/// BFS from a set of sources.  Ties between equidistant sources are broken
/// towards the source reached through the smallest-ID parent chain; with the
/// sorted adjacency lists this makes the result deterministic.
[[nodiscard]] BfsResult multi_source_bfs(const Graph& g,
                                         const std::vector<Vertex>& sources);

/// Depth-bounded variant: vertices farther than `depth` from every source
/// keep dist == kInfDist.
[[nodiscard]] BfsResult multi_source_bfs_bounded(
    const Graph& g, const std::vector<Vertex>& sources, std::uint32_t depth);

/// Eccentricity of `v` within its connected component.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, Vertex v);

/// Exact diameter (max eccentricity) of the graph restricted to its largest
/// connected component.  O(n·m) traversal — intended for test/bench scale
/// graphs — over a single reused BfsScratch, so it performs O(1)
/// allocations total rather than O(n) BfsResult allocations.
[[nodiscard]] std::uint32_t diameter_largest_component(const Graph& g);

}  // namespace nas::graph
