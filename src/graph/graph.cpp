#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace nas::graph {

Graph Graph::from_edges(Vertex n, const std::vector<Edge>& edges) {
  Graph g;
  g.n_ = n;

  std::vector<std::uint64_t> keys;
  keys.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) {
      throw std::invalid_argument("Graph::from_edges: endpoint out of range");
    }
    if (u == v) {
      throw std::invalid_argument("Graph::from_edges: self-loop rejected");
    }
    keys.push_back(edge_key(u, v));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  g.m_ = keys.size();

  std::vector<std::size_t> deg(n + 1, 0);
  for (std::uint64_t k : keys) {
    ++deg[static_cast<Vertex>(k >> 32)];
    ++deg[static_cast<Vertex>(k & 0xffffffffu)];
  }
  g.offsets_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.adj_.resize(2 * g.m_);

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::uint64_t k : keys) {
    const auto u = static_cast<Vertex>(k >> 32);
    const auto v = static_cast<Vertex>(k & 0xffffffffu);
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  // Keys were processed in sorted order, so each adjacency list is sorted:
  // for a fixed u, its neighbors v > u appear in increasing order, and its
  // neighbors v < u also arrive in increasing order of v because keys sort by
  // (min, max).  The two interleave correctly since all (v, u) with v < u
  // precede all (u, w) with w > u... which is NOT true in general, so sort
  // each list explicitly to keep the invariant simple and guaranteed.
  for (Vertex v = 0; v < n; ++v) {
    std::sort(g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m_);
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(n_) + ", m=" + std::to_string(m_) + ")";
}

bool EdgeSet::insert(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_) {
    throw std::invalid_argument("EdgeSet::insert: endpoint out of range");
  }
  if (u == v) throw std::invalid_argument("EdgeSet::insert: self-loop");
  const auto [_, inserted] = keys_.insert(edge_key(u, v));
  if (inserted) edges_.push_back(canonical(u, v));
  return inserted;
}

}  // namespace nas::graph
