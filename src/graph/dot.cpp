#include "graph/dot.hpp"

#include <array>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_set>

namespace nas::graph {

namespace {

// A qualitative palette; group ids are hashed onto it.
constexpr std::array<const char*, 12> kPalette = {
    "#a6cee3", "#1f78b4", "#b2df8a", "#33a02c", "#fb9a99", "#e31a1c",
    "#fdbf6f", "#ff7f00", "#cab2d6", "#6a3d9a", "#ffff99", "#b15928"};

}  // namespace

void write_dot(const Graph& g, const DotStyle& style, std::ostream& out) {
  if (!style.group.empty() && style.group.size() != g.num_vertices()) {
    throw std::invalid_argument("write_dot: group size mismatch");
  }
  std::unordered_set<Vertex> emphasized(style.emphasized.begin(),
                                        style.emphasized.end());
  std::unordered_set<std::uint64_t> highlighted;
  for (const auto& [u, v] : style.highlighted_edges) {
    highlighted.insert(edge_key(u, v));
  }

  out << "graph \"" << style.name << "\" {\n"
      << "  layout=neato;\n  overlap=false;\n  node [style=filled];\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v << " [";
    if (!style.group.empty() && style.group[v] != kInvalidVertex) {
      out << "fillcolor=\"" << kPalette[style.group[v] % kPalette.size()]
          << "\"";
    } else {
      out << "fillcolor=\"#eeeeee\"";
    }
    if (emphasized.count(v)) out << ", shape=doublecircle, penwidth=2";
    out << "];\n";
  }
  for (const auto& [u, v] : g.edges()) {
    out << "  " << u << " -- " << v;
    if (!style.highlighted_edges.empty()) {
      if (highlighted.count(edge_key(u, v))) {
        out << " [penwidth=2]";
      } else {
        out << " [style=dotted, color=\"#999999\"]";
      }
    }
    out << ";\n";
  }
  out << "}\n";
}

void write_dot_file(const Graph& g, const DotStyle& style,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dot_file: cannot open " + path);
  write_dot(g, style, out);
}

}  // namespace nas::graph
