#include "graph/apsp.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace nas::graph {

Apsp::Apsp(const Graph& g, Vertex max_n) : n_(g.num_vertices()) {
  if (n_ > max_n) {
    throw std::invalid_argument("Apsp: graph too large for the exact oracle");
  }
  dist_.resize(static_cast<std::size_t>(n_) * n_);
  for (Vertex s = 0; s < n_; ++s) {
    const auto res = bfs(g, s);
    std::copy(res.dist.begin(), res.dist.end(),
              dist_.begin() + static_cast<std::size_t>(s) * n_);
  }
}

std::uint32_t Apsp::max_finite_distance() const {
  std::uint32_t best = 0;
  for (std::uint32_t d : dist_) {
    if (d != kInfDist) best = std::max(best, d);
  }
  return best;
}

}  // namespace nas::graph
