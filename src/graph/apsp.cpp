#include "graph/apsp.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/bfs_kernel.hpp"
#include "util/thread_pool.hpp"

namespace nas::graph {

Apsp::Apsp(const Graph& g, Vertex max_n, unsigned threads)
    : n_(g.num_vertices()) {
  if (n_ > max_n) {
    throw std::invalid_argument("Apsp: graph too large for the exact oracle");
  }
  dist_.resize(static_cast<std::size_t>(n_) * n_);
  // Each source owns one disjoint row of the table, so sharding sources
  // across workers is race-free; each worker runs the direction-optimizing
  // kernel on one reused BfsScratch, so the whole build allocates
  // O(threads · n).  The adjacency is flattened to CSR once so all n BFS
  // passes stream two flat arrays.  Distances are level structure — kernel
  // choice and traversal order cannot change them — so the table is
  // identical for every thread count and kernel.
  const Csr csr = Csr::from_graph(g);
  util::ThreadPool::run_sharded(
      n_, threads, [&](std::size_t begin, std::size_t end) {
        BfsScratch scratch;
        for (std::size_t s = begin; s < end; ++s) {
          bfs_kernel_into(csr, static_cast<Vertex>(s),
                          std::span<std::uint32_t>(dist_.data() + s * n_, n_),
                          scratch, BfsKernel::kAuto);
        }
      });
}

std::uint32_t Apsp::max_finite_distance() const {
  std::uint32_t best = 0;
  for (std::uint32_t d : dist_) {
    if (d != kInfDist) best = std::max(best, d);
  }
  return best;
}

}  // namespace nas::graph
