#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "graph/components.hpp"
#include "util/rng.hpp"

namespace nas::graph {

using util::Xoshiro256;

Graph erdos_renyi(Vertex n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: bad p");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  if (p >= 1.0) return complete(n);
  if (p > 0.0) {
    // Geometric skipping: visit only the edges that exist.
    const double log1mp = std::log1p(-p);
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    while (true) {
      const double u = std::max(rng.uniform(), 1e-18);
      idx += 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
      if (idx > total) break;
      // Map linear index in [1, total] to the (u, v) pair.
      const std::uint64_t k = idx - 1;
      // Row r such that r*(r-1)/2 <= k < (r+1)*r/2 with rows of growing size:
      // solve quadratically, then fix up.
      auto r = static_cast<std::uint64_t>(
          (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(k))) / 2.0);
      while (r * (r - 1) / 2 > k) --r;
      while ((r + 1) * r / 2 <= k) ++r;
      const std::uint64_t c = k - r * (r - 1) / 2;
      edges.emplace_back(static_cast<Vertex>(r), static_cast<Vertex>(c));
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gnm(Vertex n, std::size_t m, std::uint64_t seed) {
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = static_cast<std::size_t>(std::min<std::uint64_t>(m, total));
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  while (edges.size() < m) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.push_back({u, v});
  }
  return Graph::from_edges(n, edges);
}

Graph random_regularish(Vertex n, Vertex d, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex k = 0; k < d; ++k) {
      const auto v = static_cast<Vertex>(rng.below(n));
      if (v != u) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph grid(Vertex rows, Vertex cols) {
  std::vector<Edge> edges;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph torus(Vertex rows, Vertex cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus: need >=3x3");
  std::vector<Edge> edges;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph hypercube(Vertex dim) {
  if (dim > 24) throw std::invalid_argument("hypercube: dim too large");
  const Vertex n = Vertex{1} << dim;
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex b = 0; b < dim; ++b) {
      const Vertex u = v ^ (Vertex{1} << b);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_geometric(Vertex n, double radius, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(n), y(n);
  for (Vertex v = 0; v < n; ++v) {
    x[v] = rng.uniform();
    y[v] = rng.uniform();
  }
  // Grid-bucket the points so we only compare nearby pairs.
  const double cell = std::max(radius, 1e-6);
  const auto cells = static_cast<Vertex>(std::floor(1.0 / cell)) + 1;
  std::vector<std::vector<Vertex>> bucket(static_cast<std::size_t>(cells) * cells);
  auto bucket_of = [&](Vertex v) {
    const auto bx = std::min<Vertex>(static_cast<Vertex>(x[v] / cell), cells - 1);
    const auto by = std::min<Vertex>(static_cast<Vertex>(y[v] / cell), cells - 1);
    return static_cast<std::size_t>(bx) * cells + by;
  };
  for (Vertex v = 0; v < n; ++v) bucket[bucket_of(v)].push_back(v);
  const double r2 = radius * radius;
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) {
    const auto bx = static_cast<std::int64_t>(std::min<Vertex>(
        static_cast<Vertex>(x[v] / cell), cells - 1));
    const auto by = static_cast<std::int64_t>(std::min<Vertex>(
        static_cast<Vertex>(y[v] / cell), cells - 1));
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int64_t nx = bx + dx, ny = by + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (Vertex u : bucket[static_cast<std::size_t>(nx) * cells +
                               static_cast<std::size_t>(ny)]) {
          if (u <= v) continue;
          const double ddx = x[u] - x[v], ddy = y[u] - y[v];
          if (ddx * ddx + ddy * ddy <= r2) edges.emplace_back(v, u);
        }
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph barabasi_albert(Vertex n, Vertex attach, std::uint64_t seed) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach == 0");
  if (n <= attach) throw std::invalid_argument("barabasi_albert: n <= attach");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  // Repeated-endpoint list: picking a uniform element is preferential
  // attachment by degree.
  std::vector<Vertex> endpoints;
  for (Vertex v = 0; v < attach; ++v) {
    // Seed clique among the first `attach` vertices keeps early picks sane.
    for (Vertex u = v + 1; u < attach; ++u) {
      edges.emplace_back(v, u);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  if (endpoints.empty()) endpoints.push_back(0);
  for (Vertex v = attach; v < n; ++v) {
    // An *ordered* set: edges are emitted in ascending target order.  With a
    // hash set the emission order — and through the endpoints array every
    // later draw — would bake the standard library's bucket layout into the
    // generated graph instead of only (n, attach, seed).
    std::set<Vertex> targets;
    while (targets.size() < attach) {
      const Vertex t = endpoints[rng.below(endpoints.size())];
      if (t != v) targets.insert(t);
    }
    for (Vertex t : targets) {
      edges.emplace_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph caveman(Vertex caves, Vertex cave_size, Vertex bridges, std::uint64_t seed) {
  if (caves == 0 || cave_size == 0) {
    throw std::invalid_argument("caveman: empty shape");
  }
  Xoshiro256 rng(seed);
  const Vertex n = caves * cave_size;
  std::vector<Edge> edges;
  for (Vertex c = 0; c < caves; ++c) {
    const Vertex base = c * cave_size;
    for (Vertex i = 0; i < cave_size; ++i) {
      for (Vertex j = i + 1; j < cave_size; ++j) {
        edges.emplace_back(base + i, base + j);
      }
    }
    // Ring of caves: connect cave c's last vertex to cave (c+1)'s first.
    if (caves > 1) {
      const Vertex next_base = ((c + 1) % caves) * cave_size;
      edges.emplace_back(base + cave_size - 1, next_base);
    }
  }
  for (Vertex b = 0; b < bridges; ++b) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph path(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges);
}

Graph cycle(Vertex n) {
  if (n < 3) throw std::invalid_argument("cycle: n < 3");
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph star(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph complete(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph binary_tree(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(v, (v - 1) / 2);
  return Graph::from_edges(n, edges);
}

Graph dumbbell(Vertex blob, Vertex bar) {
  if (blob < 1) throw std::invalid_argument("dumbbell: blob < 1");
  const Vertex n = 2 * blob + bar;
  std::vector<Edge> edges;
  for (Vertex u = 0; u < blob; ++u) {
    for (Vertex v = u + 1; v < blob; ++v) edges.emplace_back(u, v);
  }
  const Vertex right = blob + bar;
  for (Vertex u = right; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  // The bar: blob-1 -> blob -> ... -> right.
  Vertex prev = blob - 1;
  for (Vertex v = blob; v < right; ++v) {
    edges.emplace_back(prev, v);
    prev = v;
  }
  edges.emplace_back(prev, right);
  return Graph::from_edges(n, edges);
}

Graph make_workload(const std::string& family, Vertex n, std::uint64_t seed) {
  Graph g;
  if (family == "er") {
    // Average degree ~8: comfortably connected, visibly compressible.
    g = erdos_renyi(n, std::min(1.0, 8.0 / std::max<Vertex>(n - 1, 1)), seed);
  } else if (family == "er_dense") {
    g = erdos_renyi(n, std::min(1.0, 32.0 / std::max<Vertex>(n - 1, 1)), seed);
  } else if (family == "gnm") {
    g = gnm(n, static_cast<std::size_t>(n) * 4, seed);
  } else if (family == "regular") {
    g = random_regularish(n, 3, seed);
  } else if (family == "grid") {
    const auto side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
    g = grid(std::max<Vertex>(side, 2), std::max<Vertex>(side, 2));
  } else if (family == "torus") {
    const auto side = std::max<Vertex>(
        3, static_cast<Vertex>(std::sqrt(static_cast<double>(n))));
    g = torus(side, side);
  } else if (family == "hypercube") {
    Vertex dim = 1;
    while ((Vertex{1} << (dim + 1)) <= n) ++dim;
    g = hypercube(dim);
  } else if (family == "geometric") {
    const double r = 1.6 * std::sqrt(std::log(std::max<double>(n, 2)) /
                                     (3.141592653589793 * n));
    g = random_geometric(n, r, seed);
  } else if (family == "ba") {
    g = barabasi_albert(n, 3, seed);
  } else if (family == "caveman") {
    const auto cave = std::max<Vertex>(
        4, static_cast<Vertex>(std::cbrt(static_cast<double>(n))));
    g = caveman(std::max<Vertex>(n / cave, 1), cave, n / 20, seed);
  } else if (family == "path") {
    g = path(n);
  } else if (family == "cycle") {
    g = cycle(std::max<Vertex>(n, 3));
  } else if (family == "star") {
    g = star(n);
  } else if (family == "complete") {
    g = complete(n);
  } else if (family == "tree") {
    g = binary_tree(n);
  } else if (family == "dumbbell") {
    const Vertex blob = std::max<Vertex>(n * 2 / 5, 2);
    g = dumbbell(blob, n - 2 * blob);
  } else {
    throw std::invalid_argument("make_workload: unknown family " + family);
  }
  return largest_component(g).graph;
}

}  // namespace nas::graph
