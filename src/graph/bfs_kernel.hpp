// Direction-optimizing BFS kernel — the serving/verification hot loop.
//
// Every answer the system produces (oracle queries, cluster serving, stretch
// verification, APSP rows) bottoms out in a single-source BFS over a
// graph::Csr.  This layer replaces the plain top-down traversal with a
// Beamer-style hybrid kernel that switches between two strategies per level:
//
//   * top-down:  expand the frontier vertex list, inspecting every edge out
//                of the frontier — cheap while the frontier is small;
//   * bottom-up: scan the *unvisited* vertices and stop at the first
//                neighbor inside the frontier bitmap — cheap on the middle
//                levels of low-diameter graphs (ba, er), where the frontier
//                touches most of the edge set and top-down would inspect
//                nearly all 2m directed entries just to rediscover it.
//
// Switch heuristics (the standard frontier-edge-count rules): go bottom-up
// when the edges out of the next frontier exceed the unexplored remainder
// divided by kAlpha; return top-down when the frontier shrinks below
// n / kBeta.  Both degree sums are accumulated while the frontier is built —
// the Csr offset array is the degree prefix, so each discovered vertex adds
// its degree in O(1) and the per-level switch decision is O(1).
//
// Determinism: the kernel exposes *distances only*.  BFS level membership is
// a property of the graph, not of the traversal order, so every kernel —
// and every interleaving of levels — produces byte-identical distance
// arrays.  CI enforces this with cmp gates over the serving binaries rather
// than trusting the argument (see .github/workflows/ci.yml).
//
// BfsScratch is the reusable per-worker state: the distance array is
// validity-tagged with a per-run epoch, so starting a new BFS costs
// O(active) — touched entries of the previous run — instead of an O(n)
// std::fill.  One scratch per ThreadPool worker makes a sharded loop over
// sources allocation-free after the first source.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace nas::graph {

/// Traversal strategy for the CSR BFS hot loop.
enum class BfsKernel {
  kTopDown,  ///< classic level-synchronous frontier expansion
  kHybrid,   ///< per-level top-down <-> bottom-up switching
  kAuto,     ///< hybrid on dense-enough graphs, top-down otherwise
};

/// Parses "topdown" | "hybrid" | "auto" (std::invalid_argument otherwise).
[[nodiscard]] BfsKernel parse_bfs_kernel(const std::string& name);

/// The canonical spelling parse_bfs_kernel accepts.
[[nodiscard]] const char* bfs_kernel_name(BfsKernel kernel);

/// Per-run traversal counters.  `edges_inspected` is the kernel's work
/// measure — every neighbor peek counts once, in either direction — and is
/// what BENCH_bfs.json tracks (wall-clock is meaningless on shared runners;
/// edge inspections are deterministic).
struct BfsKernelStats {
  std::uint64_t edges_inspected = 0;
  std::uint32_t top_down_levels = 0;
  std::uint32_t bottom_up_levels = 0;
};

/// Reusable BFS state: distance array + epoch marks, the two bitmap
/// frontiers the bottom-up steps test against, and the frontier vertex
/// vector (which doubles as the visit-order record of every vertex reached
/// by the current run).  Create one per worker and reuse it across sources;
/// after the first run on a given vertex count, run() allocates nothing.
class BfsScratch {
 public:
  /// Runs a single-source BFS over `g` with the requested kernel.
  /// Distances are readable through distance()/copy_distances() until the
  /// next run() on this scratch.  Throws std::invalid_argument when
  /// `source` is out of range.
  void run(const Csr& g, Vertex source, BfsKernel kernel = BfsKernel::kAuto,
           BfsKernelStats* stats = nullptr);

  /// d(source, v) of the last run; kInfDist when unreachable.
  [[nodiscard]] std::uint32_t distance(Vertex v) const {
    return mark_[v] == epoch_ ? dist_[v] : kInfDist;
  }

  /// Materializes the full distance array of the last run into `out`
  /// (size must be the graph's vertex count; kInfDist where unreachable).
  void copy_distances(std::span<std::uint32_t> out) const;

  /// Every vertex reached by the last run, in discovery order (the source
  /// first).  Iterating this instead of [0, n) keeps per-component loops —
  /// eccentricity, component sweeps — O(active).
  [[nodiscard]] std::span<const Vertex> reached() const { return frontier_; }

  /// Max finite distance of the last run (the source's eccentricity within
  /// its component).  O(reached).
  [[nodiscard]] std::uint32_t max_reached_distance() const;

  /// Vertex count the scratch is currently sized for.
  [[nodiscard]] Vertex num_vertices() const { return n_; }

 private:
  void resize(Vertex n);

  Vertex n_ = 0;
  std::vector<std::uint32_t> dist_;   // valid iff mark_[v] == epoch_
  std::vector<std::uint16_t> mark_;   // per-vertex epoch tag
  std::uint16_t epoch_ = 0;           // wraps; resize()/run() handle the wrap
  std::vector<std::uint64_t> front_bits_;  // current-level bitmap (bottom-up)
  std::vector<std::uint64_t> next_bits_;   // next-level bitmap (bottom-up)
  std::vector<Vertex> frontier_;      // reached vertices in discovery order
};

/// The direction-optimizing twin of graph::bfs_into: fills `dist` (size n)
/// with d(source, ·), kInfDist where unreachable, byte-identical to the
/// top-down result for every kernel.  `scratch` is reused across calls.
void bfs_kernel_into(const Csr& g, Vertex source, std::span<std::uint32_t> dist,
                     BfsScratch& scratch,
                     BfsKernel kernel = BfsKernel::kAuto,
                     BfsKernelStats* stats = nullptr);

}  // namespace nas::graph
