// Edge-list I/O: "n m" header followed by "u v" lines; '#' comments allowed.
//
// Reading is strict: any non-empty line (after stripping comments) that does
// not parse as the header or an edge, any trailing tokens, and any mismatch
// between the declared edge count m and the number of edge lines raise
// std::runtime_error with the offending line number.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace nas::graph {

void write_edge_list(const Graph& g, std::ostream& out);
/// CSR overload: emits the canonical edges (u < v) in the same lexicographic
/// order as the Graph overload, so the bytes are identical for the same
/// adjacency — the v1 snapshot writer runs on this without materializing an
/// adjacency-list Graph first.
void write_edge_list(const Csr& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// `line_offset` is added to every reported line number, so callers that
/// embed an edge list after their own header lines (the oracle snapshot
/// format) surface absolute positions in the enclosing file.
[[nodiscard]] Graph read_edge_list(std::istream& in,
                                   std::size_t line_offset = 0);
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

}  // namespace nas::graph
