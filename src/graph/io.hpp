// Edge-list I/O: "n m" header followed by "u v" lines; '#' comments allowed.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace nas::graph {

void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

[[nodiscard]] Graph read_edge_list(std::istream& in);
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

}  // namespace nas::graph
