// Flat compressed-sparse-row adjacency — the BFS hot-path representation.
//
// `Graph` is the construction-time structure: adjacency lists behind two
// vectors, built by sorting an edge list.  `Csr` is the serving-time view of
// the same adjacency: one offset array (n+1 entries) and one edge array (2m
// directed entries, each vertex's neighbors in ascending ID order — the same
// order Graph stores, so every BFS over a Csr visits vertices in exactly
// the order the adjacency-list BFS does and all distance answers stay
// byte-identical).
//
// A Csr never owns its arrays directly: it holds spans plus a shared_ptr
// keep-alive.  That makes copies O(1) — a sharded serving cluster hands
// every shard the same immutable arrays instead of replicating the spanner
// per shard — and lets the v2 binary snapshot loader point the spans
// straight into a util::MappedFile, so warming an oracle from disk is
// zero-copy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace nas::graph {

class Csr {
 public:
  /// An empty graph (n = 0, m = 0).
  Csr() = default;

  /// Copies `g`'s adjacency into freshly owned arrays.
  [[nodiscard]] static Csr from_graph(const Graph& g);

  /// Takes ownership of prebuilt arrays.  `offsets` must have n+1 entries
  /// starting at 0, ending at entries.size(), and nondecreasing; `entries`
  /// holds each vertex's neighbors in ascending order.  Trusted callers
  /// only (the snapshot loader validates before calling).
  [[nodiscard]] static Csr adopt(std::vector<std::uint64_t> offsets,
                                 std::vector<Vertex> entries);

  /// Wraps external arrays without copying; `keepalive` (e.g. the
  /// util::MappedFile behind a v2 snapshot) is retained for the lifetime of
  /// this Csr and every copy of it.
  [[nodiscard]] static Csr view(std::span<const std::uint64_t> offsets,
                                std::span<const Vertex> entries,
                                std::shared_ptr<const void> keepalive);

  [[nodiscard]] Vertex num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
  }
  /// Undirected edge count (half the directed entry count).
  [[nodiscard]] std::size_t num_edges() const { return entries_.size() / 2; }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return entries_.subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }
  [[nodiscard]] std::size_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// The raw arrays (the v2 snapshot writer serializes these verbatim).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::span<const Vertex> entries() const { return entries_; }

  /// True when both Csr objects point at the same underlying arrays (shared
  /// view rather than replicated storage).
  [[nodiscard]] bool shares_storage_with(const Csr& other) const {
    return !offsets_.empty() && offsets_.data() == other.offsets_.data() &&
           entries_.data() == other.entries_.data();
  }

  /// Materializes an adjacency-list Graph with identical neighbor order.
  [[nodiscard]] Graph to_graph() const;

  /// Human-readable one-line summary, e.g. "Graph(n=100, m=250)" — same
  /// rendering as Graph::summary() so CLI banners are representation-free.
  [[nodiscard]] std::string summary() const;

 private:
  std::span<const std::uint64_t> offsets_;  // n+1 entries; empty when n == 0
  std::span<const Vertex> entries_;         // 2m directed adjacency entries
  std::shared_ptr<const void> storage_;     // owned vectors or a file mapping
};

}  // namespace nas::graph
