// All-pairs shortest paths by repeated BFS — the exact-distance oracle used
// by the stretch verifier.  O(n·(n+m)) time, O(n²) space; guarded against
// accidental use on graphs too large for test/bench scale.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace nas::graph {

class Apsp {
 public:
  /// Computes all-pairs distances.  Throws std::invalid_argument if n
  /// exceeds `max_n` (a guard against multi-GB allocations in scripts).
  /// `threads` shards the BFS sources across a worker pool (0 = hardware
  /// concurrency); rows are disjoint so the table is identical — BFS
  /// distances are exact — for every thread count.
  explicit Apsp(const Graph& g, Vertex max_n = 20000, unsigned threads = 1);

  [[nodiscard]] std::uint32_t dist(Vertex u, Vertex v) const {
    return dist_[static_cast<std::size_t>(u) * n_ + v];
  }

  [[nodiscard]] Vertex num_vertices() const { return n_; }

  /// Maximum finite distance (diameter over connected pairs).
  [[nodiscard]] std::uint32_t max_finite_distance() const;

 private:
  Vertex n_;
  std::vector<std::uint32_t> dist_;
};

}  // namespace nas::graph
