#include "graph/components.hpp"

#include <algorithm>
#include <queue>

namespace nas::graph {

Components connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  Components out;
  out.component.assign(n, kInvalidVertex);
  std::queue<Vertex> q;
  for (Vertex s = 0; s < n; ++s) {
    if (out.component[s] != kInvalidVertex) continue;
    const Vertex id = out.count++;
    out.sizes.push_back(0);
    out.component[s] = id;
    q.push(s);
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      ++out.sizes[id];
      for (Vertex v : g.neighbors(u)) {
        if (out.component[v] == kInvalidVertex) {
          out.component[v] = id;
          q.push(v);
        }
      }
    }
  }
  if (out.count > 0) {
    out.largest = static_cast<Vertex>(std::distance(
        out.sizes.begin(), std::max_element(out.sizes.begin(), out.sizes.end())));
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

LargestComponent largest_component(const Graph& g) {
  const auto comp = connected_components(g);
  LargestComponent out;
  out.old_to_new.assign(g.num_vertices(), kInvalidVertex);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (comp.count > 0 && comp.component[v] == comp.largest) {
      out.old_to_new[v] = static_cast<Vertex>(out.new_to_old.size());
      out.new_to_old.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (const auto& [u, v] : g.edges()) {
    if (out.old_to_new[u] != kInvalidVertex && out.old_to_new[v] != kInvalidVertex) {
      edges.emplace_back(out.old_to_new[u], out.old_to_new[v]);
    }
  }
  out.graph = Graph::from_edges(static_cast<Vertex>(out.new_to_old.size()), edges);
  return out;
}

}  // namespace nas::graph
