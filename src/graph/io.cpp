#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nas::graph {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(g, out);
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  Vertex n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    if (!have_header) {
      if (ls >> n >> m) {
        have_header = true;
        edges.reserve(m);
      }
      continue;
    }
    Vertex u, v;
    if (ls >> u >> v) edges.emplace_back(u, v);
  }
  if (!have_header) throw std::runtime_error("read_edge_list: missing header");
  return Graph::from_edges(n, edges);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace nas::graph
