#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nas::graph {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

void write_edge_list(const Csr& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(g, out);
}

Graph read_edge_list(std::istream& in, std::size_t line_offset) {
  std::string line;
  Vertex n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  std::size_t line_no = line_offset;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("read_edge_list: " + what + " at line " +
                             std::to_string(line_no));
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r\v\f") == std::string::npos) continue;
    std::istringstream ls(line);
    std::string trailing;
    if (!have_header) {
      if (!(ls >> n >> m)) fail("malformed header (expected 'n m')");
      if (ls >> trailing) fail("trailing token '" + trailing + "' in header");
      have_header = true;
      // Don't trust a possibly-corrupt m for the up-front reservation: a
      // bogus header must fail via the line-numbered mismatch checks below,
      // not with std::bad_alloc on a multi-TB reserve.
      edges.reserve(std::min<std::size_t>(m, std::size_t{1} << 20));
      continue;
    }
    Vertex u, v;
    if (!(ls >> u >> v)) fail("malformed edge line (expected 'u v')");
    if (ls >> trailing) fail("trailing token '" + trailing + "' in edge line");
    if (edges.size() == m) {
      fail("more edge lines than the declared m=" + std::to_string(m));
    }
    edges.emplace_back(u, v);
  }
  if (!have_header) throw std::runtime_error("read_edge_list: missing header");
  if (edges.size() != m) {
    throw std::runtime_error(
        "read_edge_list: header declares m=" + std::to_string(m) +
        " edges but the file contains " + std::to_string(edges.size()) +
        " (after line " + std::to_string(line_no) + ")");
  }
  return Graph::from_edges(n, edges);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace nas::graph
