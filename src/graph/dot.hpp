// Graphviz (DOT) export, used to regenerate the paper's illustrations
// (Figures 1-5) from real runs: clusters as colors, spanner edges as solid
// lines, non-spanner edges dotted, cluster centers emphasized.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace nas::graph {

struct DotStyle {
  /// Optional group id per vertex (same group = same color); kInvalidVertex
  /// means ungrouped.
  std::vector<Vertex> group;
  /// Vertices drawn with double circles (e.g. cluster centers).
  std::vector<Vertex> emphasized;
  /// Edges of this subgraph are drawn solid/bold; all other edges of the
  /// base graph dotted.  Empty = draw everything solid.
  std::vector<Edge> highlighted_edges;
  std::string name = "G";
};

/// Writes `g` as an undirected DOT graph with the given styling.
void write_dot(const Graph& g, const DotStyle& style, std::ostream& out);

void write_dot_file(const Graph& g, const DotStyle& style,
                    const std::string& path);

}  // namespace nas::graph
