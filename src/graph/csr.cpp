#include "graph/csr.hpp"

namespace nas::graph {

namespace {

/// The owned-array backing store a from_graph/adopt Csr keeps alive.
struct OwnedArrays {
  std::vector<std::uint64_t> offsets;
  std::vector<Vertex> entries;
};

}  // namespace

Csr Csr::from_graph(const Graph& g) {
  const Vertex n = g.num_vertices();
  auto arrays = std::make_shared<OwnedArrays>();
  arrays->offsets.resize(static_cast<std::size_t>(n) + 1);
  arrays->entries.reserve(2 * g.num_edges());
  arrays->offsets[0] = 0;
  for (Vertex v = 0; v < n; ++v) {
    const auto neighbors = g.neighbors(v);
    arrays->entries.insert(arrays->entries.end(), neighbors.begin(),
                           neighbors.end());
    arrays->offsets[v + 1] = arrays->entries.size();
  }
  // Bind the spans before std::move(arrays): argument evaluation order is
  // unspecified, so passing arrays->offsets and std::move(arrays) in one
  // call could read a moved-from (null) shared_ptr.
  const std::span<const std::uint64_t> offsets(arrays->offsets);
  const std::span<const Vertex> entries(arrays->entries);
  return view(offsets, entries, std::move(arrays));
}

Csr Csr::adopt(std::vector<std::uint64_t> offsets,
               std::vector<Vertex> entries) {
  auto arrays = std::make_shared<OwnedArrays>();
  arrays->offsets = std::move(offsets);
  arrays->entries = std::move(entries);
  const std::span<const std::uint64_t> offset_view(arrays->offsets);
  const std::span<const Vertex> entry_view(arrays->entries);
  return view(offset_view, entry_view, std::move(arrays));
}

Csr Csr::view(std::span<const std::uint64_t> offsets,
              std::span<const Vertex> entries,
              std::shared_ptr<const void> keepalive) {
  Csr csr;
  csr.offsets_ = offsets;
  csr.entries_ = entries;
  csr.storage_ = std::move(keepalive);
  return csr;
}

Graph Csr::to_graph() const {
  const Vertex n = num_vertices();
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

std::string Csr::summary() const {
  return "Graph(n=" + std::to_string(num_vertices()) +
         ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace nas::graph
