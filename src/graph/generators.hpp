// Workload generators.
//
// The paper has no empirical section, so the reproduction harness needs a
// spread of graph families that exercise the algorithm's regimes:
//   - dense random graphs (many popular clusters, deep superclustering),
//   - sparse random / bounded-degree graphs (interconnection-dominated),
//   - structured low-diameter graphs (hypercube) and high-diameter grids
//     and tori (long shortest paths -> the near-additive guarantee matters),
//   - clustered "caveman" graphs (the paper's Figure 1 intuition: dense
//     areas become superclusters),
//   - scale-free Barabasi-Albert graphs (heavy-tailed popularity),
//   - adversarial shapes (dumbbell: two dense blobs joined by a long path).
//
// All generators are deterministic given the seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace nas::graph {

/// Erdos-Renyi G(n, p).
[[nodiscard]] Graph erdos_renyi(Vertex n, double p, std::uint64_t seed);

/// G(n, m): exactly m distinct uniform edges (m capped at n(n-1)/2).
[[nodiscard]] Graph gnm(Vertex n, std::size_t m, std::uint64_t seed);

/// Random graph with every vertex given `d` random out-picks (deduplicated),
/// i.e. expected average degree close to 2d; a cheap bounded-ish-degree model.
[[nodiscard]] Graph random_regularish(Vertex n, Vertex d, std::uint64_t seed);

/// rows x cols grid (4-neighborhood).  n = rows*cols.
[[nodiscard]] Graph grid(Vertex rows, Vertex cols);

/// rows x cols torus (grid with wraparound).
[[nodiscard]] Graph torus(Vertex rows, Vertex cols);

/// Hypercube on 2^dim vertices.
[[nodiscard]] Graph hypercube(Vertex dim);

/// Random geometric graph: n points in the unit square, edge iff distance
/// <= radius.
[[nodiscard]] Graph random_geometric(Vertex n, double radius, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices.
[[nodiscard]] Graph barabasi_albert(Vertex n, Vertex attach, std::uint64_t seed);

/// Connected caveman-style graph: `caves` cliques of size `cave_size`, with
/// `bridges` random inter-cave edges (plus a ring of caves to guarantee
/// connectivity).
[[nodiscard]] Graph caveman(Vertex caves, Vertex cave_size, Vertex bridges,
                            std::uint64_t seed);

/// Path on n vertices.
[[nodiscard]] Graph path(Vertex n);

/// Cycle on n vertices (n >= 3).
[[nodiscard]] Graph cycle(Vertex n);

/// Star with n-1 leaves.
[[nodiscard]] Graph star(Vertex n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(Vertex n);

/// Complete balanced binary tree on n vertices.
[[nodiscard]] Graph binary_tree(Vertex n);

/// Dumbbell: two cliques of size `blob` joined by a path of `bar` vertices.
[[nodiscard]] Graph dumbbell(Vertex blob, Vertex bar);

/// Named dispatch used by bench binaries: one of
/// er | gnm | regular | grid | torus | hypercube | geometric | ba | caveman |
/// path | cycle | star | complete | tree | dumbbell.
/// `n` is the target vertex count; family-specific shape parameters are
/// derived from it with sensible defaults.  Always returns the largest
/// connected component relabeled to [0, n').
[[nodiscard]] Graph make_workload(const std::string& family, Vertex n,
                                  std::uint64_t seed);

}  // namespace nas::graph
