// Approximate distance-oracle serving layer backed by a near-additive
// spanner.
//
// The application the spanner literature ([EP01], [TZ01], [RTZ05] in the
// paper's introduction) motivates: preprocess the graph once into a sparse
// structure, then serve distance queries from the structure alone.  With a
// (M, A)-spanner the answers satisfy
//
//     d_G(u,v) ≤ query(u,v) ≤ M·d_G(u,v) + A
//
// and each uncached query source costs one BFS over H (O(|H|) =
// O(β·n^{1+1/κ})) instead of O(|E|).
//
// Serving model:
//   * The oracle holds the spanner as a graph::Csr — two flat arrays the
//     BFS hot loop streams through.  Csr copies share storage, so cloning
//     an oracle across serving shards costs O(1) memory, and a v2 binary
//     snapshot serves straight out of a file mapping.
//   * `batch_query` answers a whole request vector at once: the distinct
//     BFS sources behind the batch are deduplicated and sharded across a
//     util::ThreadPool, each worker running the direction-optimizing
//     graph::BfsScratch kernel on its own reused scratch.  Planning,
//     answering, and cache maintenance are serial, so the answer vector
//     (request order) is byte-identical at every thread count, every cache
//     budget, and every --bfs-kernel choice.
//   * The per-source distance cache is *bounded*: OracleOptions fixes a
//     memory budget, each cached source costs 4·n bytes, and eviction is
//     deterministic LRU — least-recently-used batch first, ties broken by
//     evicting the smallest source ID.  Cache state is therefore a pure
//     function of the query history, never of thread scheduling.
//   * `save`/`load` snapshot the oracle (spanner + Params + guarantee) so
//     serving processes can load a prebuilt structure instead of re-running
//     the CONGEST construction (tools/nas_oracle drives this).  Two formats
//     exist — v1 text and v2 binary (apps/snapshot.hpp); answers are
//     byte-identical regardless of which one an oracle was loaded from.
//
// Thread-safety: const methods mutate the cache (and the lazily
// materialized adjacency-list spanner) under the hood — same contract as
// the previous implementation; callers must not invoke methods on one
// oracle concurrently.  The concurrency happens *inside* batch_query, on
// disjoint scratch buffers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "apps/snapshot.hpp"
#include "core/elkin_matar.hpp"
#include "core/params.hpp"
#include "graph/bfs_kernel.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace nas::apps {

/// One distance request.
struct Query {
  graph::Vertex u = 0;
  graph::Vertex v = 0;
};

struct OracleOptions {
  /// Source-cache memory budget in bytes; each cached source costs 4·n
  /// bytes, so the cache holds floor(budget / 4n) sources.  0 disables
  /// caching entirely (every batch re-runs its BFS passes).  Answers never
  /// depend on the budget — only the BFS-pass count does.
  std::uint64_t cache_budget_bytes = 64ull << 20;
  /// Traversal strategy for the BFS hot loop.  Distances are level
  /// structure — independent of traversal direction — so answers are
  /// byte-identical for every kernel; only the edges-inspected cost moves
  /// (CI cmp-gates this across kernels rather than trusting the argument).
  graph::BfsKernel bfs_kernel = graph::BfsKernel::kAuto;
};

/// Per-batch serving diagnostics.
struct BatchStats {
  std::uint64_t queries = 0;           ///< requests in the batch
  std::uint64_t distinct_sources = 0;  ///< deduplicated BFS sources
  std::uint64_t cache_hits = 0;        ///< sources served from the cache
  std::uint64_t bfs_passes = 0;        ///< sources that needed a BFS
  std::uint64_t evictions = 0;         ///< cache entries evicted afterwards
  /// Worker shards the BFS phase actually ran on: the requested thread
  /// count resolved against the uncached-source count (so it can be lower
  /// than requested on cache-hot or highly skewed batches).
  std::uint64_t shards = 0;
};

class SpannerDistanceOracle {
 public:
  /// Builds the spanner for `g` with schedule `params` and prepares the
  /// query structure.  The input graph is NOT retained.
  SpannerDistanceOracle(const graph::Graph& g, const core::Params& params,
                        OracleOptions options = {});

  /// Wraps an already-built construction (keeps its Params and guarantee).
  explicit SpannerDistanceOracle(core::SpannerResult result,
                                 OracleOptions options = {});

  /// Wraps an arbitrary spanner with an externally proven guarantee
  /// d_H ≤ multiplicative·d_G + additive (the baseline constructions come
  /// through here; no Params is attached unless `params` is provided).
  SpannerDistanceOracle(graph::Graph spanner, double multiplicative,
                        double additive, OracleOptions options = {},
                        std::optional<core::Params> params = std::nullopt);

  /// Same, from a CSR view directly.  The Csr's storage is shared, not
  /// copied — a serving cluster hands every shard the same arrays, and the
  /// v2 snapshot loader hands over its file mapping.
  SpannerDistanceOracle(graph::Csr spanner, double multiplicative,
                        double additive, OracleOptions options = {},
                        std::optional<core::Params> params = std::nullopt);

  /// Approximate distance; graph::kInfDist if disconnected.
  [[nodiscard]] std::uint32_t query(graph::Vertex u, graph::Vertex v) const;

  /// Answers `queries` in request order.  The distinct uncached sources are
  /// sharded across `threads` workers (0 = hardware concurrency); the
  /// returned vector is byte-identical for every thread count and cache
  /// budget.  `stats`, when non-null, receives the batch diagnostics.
  [[nodiscard]] std::vector<std::uint32_t> batch_query(
      std::span<const Query> queries, unsigned threads = 1,
      BatchStats* stats = nullptr) const;

  // --- snapshot -------------------------------------------------------------

  /// Writes the v1 text snapshot: a "NAS-ORACLE v1" header, the Params
  /// needed to rebuild the schedule (or "none"), the guarantee pair, then
  /// the spanner as a graph::io edge list.  Doubles are rendered with %.17g
  /// so the loaded guarantee is bit-identical.
  void save(std::ostream& out) const;
  /// Writes the snapshot to `path` in the requested format (v1 text by
  /// default; SnapshotFormat::kV2 writes the mmap-able binary image).
  void save_file(const std::string& path,
                 SnapshotFormat format = SnapshotFormat::kV1) const;

  /// Reads a v1 text snapshot.  Malformed input raises std::runtime_error
  /// naming the offending line, mirroring the graph::read_edge_list
  /// contract: bad magic (line 1), malformed params/guarantee lines (lines
  /// 2-3), truncated files, and edge-count mismatches in the edge-list
  /// body.  A snapshot with Params whose recomputed guarantee disagrees
  /// with the recorded pair beyond a small relative tolerance is rejected
  /// (schedule/schema drift guard; the tolerance absorbs cross-libm ulp
  /// differences, and the recorded pair is what serving uses either way).
  [[nodiscard]] static SpannerDistanceOracle load(std::istream& in,
                                                  OracleOptions options = {});
  /// Reads a snapshot from `path`, auto-detecting the format from its
  /// leading bytes: v2 binary images are mapped zero-copy (errors carry
  /// byte offsets), anything else goes through the v1 text reader.
  [[nodiscard]] static SpannerDistanceOracle load_file(
      const std::string& path, OracleOptions options = {});

  // --- introspection --------------------------------------------------------

  /// The guarantee: query(u,v) <= multiplicative()*d_G(u,v) + additive().
  [[nodiscard]] double multiplicative() const { return mult_; }
  [[nodiscard]] double additive() const { return add_; }

  /// The serving structure itself: the CSR the BFS hot loop runs on.
  [[nodiscard]] const graph::Csr& csr() const { return csr_; }
  /// Adjacency-list view of the spanner, materialized lazily on first use
  /// (identical neighbor order).  Cold-path/introspection helper — serving
  /// never touches it.
  [[nodiscard]] const graph::Graph& spanner() const;
  [[nodiscard]] graph::Vertex num_vertices() const {
    return csr_.num_vertices();
  }
  [[nodiscard]] std::size_t spanner_edges() const { return csr_.num_edges(); }
  /// One-line banner, e.g. "Graph(n=100, m=250)".
  [[nodiscard]] std::string summary() const { return csr_.summary(); }
  /// The schedule the spanner was built with, when known.
  [[nodiscard]] const std::optional<core::Params>& params() const {
    return params_;
  }

  /// Total BFS passes performed so far (cumulative, survives eviction).
  [[nodiscard]] std::uint64_t bfs_passes() const { return bfs_passes_; }
  /// Total cache evictions so far.
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Sources currently cached / the bound the budget resolves to.
  [[nodiscard]] std::size_t cached_sources() const { return cache_.size(); }
  [[nodiscard]] std::uint64_t cache_capacity() const { return capacity_; }

 private:
  struct CacheEntry {
    std::vector<std::uint32_t> dist;
    std::uint64_t last_used = 0;  ///< logical clock of the last touching batch
  };

  /// Inserts `dist` for `s` and evicts down to capacity (LRU, ties towards
  /// the smallest source ID).  No-op when the budget holds zero sources.
  void cache_insert(graph::Vertex s, std::vector<std::uint32_t>&& dist) const;
  void check_vertex(graph::Vertex v) const;

  graph::Csr csr_;  ///< the spanner, in serving form (sole retained copy)
  std::optional<core::Params> params_;
  double mult_ = 1.0;
  double add_ = 0.0;
  std::uint64_t capacity_ = 0;  ///< max cached sources (from the byte budget)
  graph::BfsKernel kernel_ = graph::BfsKernel::kAuto;

  /// Keyed by source ID in a *sorted* map: the LRU victim scan iterates the
  /// whole cache, and ordered iteration keeps that scan — and therefore the
  /// eviction sequence — structurally deterministic instead of relying on a
  /// hash-layout-commutes argument (nas_lint bans unordered iteration here).
  mutable std::map<graph::Vertex, CacheEntry> cache_;
  mutable std::uint64_t clock_ = 0;
  mutable std::uint64_t bfs_passes_ = 0;
  mutable std::uint64_t evictions_ = 0;
  mutable graph::BfsScratch scratch_;  ///< serial-path BFS scratch
  /// spanner() materialization (adjacency-list mirror of csr_).
  mutable std::shared_ptr<const graph::Graph> materialized_;
};

/// Order-sensitive 64-bit digest of an answer vector (SplitMix-style mixing;
/// includes the length).  The runner emits this through the unified sinks so
/// cross-thread/cross-budget byte-identity of a whole serving run collapses
/// to comparing one column.
[[nodiscard]] std::uint64_t digest_answers(std::span<const std::uint32_t> answers);

}  // namespace nas::apps
