// Approximate distance oracle backed by a near-additive spanner.
//
// The application the spanner literature ([EP01], [TZ01], [RTZ05] in the
// paper's introduction) motivates: preprocess the graph once into a sparse
// structure, then answer distance queries from the structure alone.  With a
// (1+ε, β)-spanner the answers satisfy
//
//     d_G(u,v) ≤ query(u,v) ≤ (1+ε)·d_G(u,v) + β
//
// and each uncached query costs one BFS over H (O(|H|) = O(β·n^{1+1/κ}))
// instead of O(|E|); per-source BFS results are cached, so answering all
// queries from k distinct sources costs k BFS passes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/elkin_matar.hpp"
#include "graph/graph.hpp"

namespace nas::apps {

class SpannerDistanceOracle {
 public:
  /// Builds the spanner for `g` with schedule `params` and prepares the
  /// query structure.  The input graph is NOT retained.
  SpannerDistanceOracle(const graph::Graph& g, const core::Params& params);

  /// Wraps an already-built spanner (shares the guarantee recorded in it).
  explicit SpannerDistanceOracle(core::SpannerResult result);

  /// Approximate distance; graph::kInfDist if disconnected.
  [[nodiscard]] std::uint32_t query(graph::Vertex u, graph::Vertex v) const;

  /// The guarantee: query(u,v) <= multiplicative()*d_G(u,v) + additive().
  [[nodiscard]] double multiplicative() const {
    return result_.params.stretch_multiplicative();
  }
  [[nodiscard]] double additive() const {
    return result_.params.stretch_additive();
  }

  [[nodiscard]] std::size_t spanner_edges() const {
    return result_.spanner.num_edges();
  }
  [[nodiscard]] const core::SpannerResult& construction() const {
    return result_;
  }

  /// Number of BFS passes performed so far (cache diagnostics).
  [[nodiscard]] std::size_t bfs_passes() const { return cache_.size(); }

 private:
  const std::vector<std::uint32_t>& distances_from(graph::Vertex s) const;

  core::SpannerResult result_;
  mutable std::unordered_map<graph::Vertex, std::vector<std::uint32_t>> cache_;
};

}  // namespace nas::apps
